"""Session-wide test hygiene.

The persistent result/trace caches (repro.exec.cache) default to the
user's ``~/.cache``; tests must neither read a stale cache nor leave
entries behind, so the whole pytest session is pointed at a private
temporary directory.  Tests still exercise the disk-cache code paths —
they just do so hermetically.
"""

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE_DIR", str(cache_dir))
    yield
    mp.undo()

"""Tests for the shared NUCA-baseline substrate."""

import numpy as np
import pytest

from repro.baselines.common import (
    MetadataCache,
    PartitionedNucaPolicy,
    PartitionSpec,
    RegionCopy,
)
from repro.sim.params import tiny
from repro.sim.topology import Topology
from repro.util.curves import MissCurve
from repro.workloads import TINY, build


@pytest.fixture()
def policy():
    config = tiny()
    policy = PartitionedNucaPolicy()
    policy.setup(config, Topology(config), build("pr", TINY))
    return policy


class TestMetadataCache:
    def test_hot_block_hits(self):
        cache = MetadataCache(tiny())
        units = np.zeros(4, dtype=np.int64)
        addrs = np.array([0, 8, 256, 511])  # same 512 B metadata block
        latency, dram = cache.lookup(units, addrs)
        assert dram == 1
        assert latency[0] > latency[1]

    def test_per_unit_isolation(self):
        cache = MetadataCache(tiny())
        addrs = np.array([0, 0])
        latency, dram = cache.lookup(np.array([0, 1]), addrs)
        assert dram == 2  # cold in both units' metadata caches

    def test_thrash_on_large_footprint(self):
        """Graph-scale footprints degrade the metadata cache (Sec VII-A)."""
        config = tiny()
        cache = MetadataCache(config)
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 64 * cache.entries, size=5000)
        addrs = blocks * 512
        latency, dram = cache.lookup(np.zeros(5000, dtype=np.int64), addrs)
        assert dram / 5000 > 0.5


class TestPartitionSpec:
    def test_signature_changes_with_rows(self):
        a = PartitionSpec(0, [RegionCopy(np.array([0]), np.array([4]))])
        b = PartitionSpec(0, [RegionCopy(np.array([0]), np.array([5]))])
        assert a.signature() != b.signature()

    def test_allocated(self):
        empty = PartitionSpec(0, [])
        assert not empty.allocated


class TestDefaultPolicy:
    def test_interleaved_partition_covers_cache(self, policy):
        spec = policy._interleaved_partition(0)
        assert spec.copies[0].total_rows == (
            policy.config.rows_per_unit * policy.config.n_units
        )

    def test_process_hits_on_reuse(self, policy):
        policy.begin_epoch(0)
        wl = policy.workload
        epoch = wl.trace.epochs(2000)[0]
        out = policy.process(epoch)
        assert out.hit.any()
        assert (out.serving_unit >= 0).all()

    def test_bulk_invalidation_on_change(self, policy):
        policy.begin_epoch(0)
        epoch = policy.workload.trace.epochs(2000)[0]
        policy.process(epoch)
        # Force a different partitioning: shrink to one unit.
        policy._partitions = {
            0: PartitionSpec(
                0, [RegionCopy(np.array([0]), np.array([policy.config.rows_per_unit]))]
            )
        }
        stats = policy.begin_epoch(1)
        assert stats.invalidations > 0


class TestSizingHelpers:
    def test_lookahead_respects_budget(self, policy):
        curves = {
            0: MissCurve(np.array([1024, 4096]), np.array([1000.0, 10.0])),
            1: MissCurve(np.array([1024, 4096]), np.array([500.0, 5.0])),
        }
        sizes = policy.lookahead_sizes(curves, budget_bytes=4096)
        assert sum(sizes.values()) <= 4096

    def test_placement_respects_capacity(self, policy):
        config = policy.config
        sizes = {0: config.rows_per_unit * 3, 1: config.rows_per_unit * 3}
        weights = {0: {0: 10}, 1: {3: 10}}
        importance = {0: 100, 1: 50}
        specs = policy.center_of_mass_placement(sizes, weights, importance)
        used = np.zeros(config.n_units, dtype=np.int64)
        for spec in specs.values():
            for copy in spec.copies:
                np.add.at(used, copy.units, copy.rows)
        assert np.all(used <= config.rows_per_unit)

    def test_placement_prefers_accessor_units(self, policy):
        config = policy.config
        sizes = {0: 2}
        specs = policy.center_of_mass_placement(
            {0: 2}, {0: {3: 100}}, {0: 1}
        )
        assert 3 in specs[0].copies[0].units

    def test_replication_creates_copies(self, policy):
        specs = policy.center_of_mass_placement(
            {0: 2}, {0: {0: 1}}, {0: 1}, replication={0: 2}
        )
        assert len(specs[0].copies) == 2

    def test_regions_partition_units(self, policy):
        regions = policy._regions(2)
        combined = sorted(int(u) for r in regions for u in r)
        assert combined == list(range(policy.config.n_units))

    def test_smooth_curve_damps(self, policy):
        caps = np.array([100, 200])
        first = policy.smooth_curve(0, MissCurve(caps, np.array([100.0, 0.0])))
        second = policy.smooth_curve(0, MissCurve(caps, np.array([0.0, 0.0])))
        assert second.misses[0] == pytest.approx(50.0)

    def test_should_install_requires_gain(self, policy):
        curves = {0: MissCurve(np.array([100, 1000]), np.array([1000.0, 10.0]))}
        assert policy.should_install(curves, {0: 100})  # nothing installed yet
        policy.record_install({0: 100})
        assert not policy.should_install(curves, {0: 101})  # no real gain
        assert policy.should_install(curves, {0: 1000})  # big gain

"""End-to-end tests for the concrete baseline policies."""

import numpy as np
import pytest

from repro.baselines import (
    HostJigsawPolicy,
    JigsawPolicy,
    NdpExtStaticPolicy,
    NexusPolicy,
    StaticNucaPolicy,
    WhirlpoolPolicy,
    host_config,
)
from repro.sim import SimulationEngine
from repro.sim.params import tiny
from repro.workloads import TINY, build


@pytest.fixture(scope="module")
def config():
    return tiny()


@pytest.fixture(scope="module")
def workload():
    return build("pr", TINY)


ALL_POLICIES = [
    StaticNucaPolicy,
    JigsawPolicy,
    WhirlpoolPolicy,
    NexusPolicy,
    NdpExtStaticPolicy,
]


class TestAllPoliciesRun:
    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_end_to_end(self, config, workload, factory):
        report = SimulationEngine(config).run(workload, factory())
        assert report.runtime_cycles > 0
        assert report.hits.cache_accesses > 0
        assert report.energy.total_nj > 0

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_deterministic(self, config, workload, factory):
        a = SimulationEngine(config).run(workload, factory())
        b = SimulationEngine(config).run(workload, factory())
        assert a.runtime_cycles == b.runtime_cycles


class TestStaticNuca:
    def test_no_reconfiguration(self, config, workload):
        report = SimulationEngine(config).run(workload, StaticNucaPolicy())
        assert report.reconfig_invalidations == 0


class TestJigsaw:
    def test_classification_learns_owners(self, config, workload):
        policy = JigsawPolicy()
        SimulationEngine(config).run(workload, policy)
        assert policy._line_owner is not None
        lines, owners = policy._line_owner
        assert len(lines) == len(owners)
        assert len(lines) > 0

    def test_partitions_installed_after_first_epoch(self, config, workload):
        policy = JigsawPolicy()
        SimulationEngine(config).run(workload, policy)
        assert any(spec.allocated for spec in policy._partitions.values())


class TestWhirlpool:
    def test_partitions_by_stream(self, config, workload):
        policy = WhirlpoolPolicy()
        SimulationEngine(config).run(workload, policy)
        stream_sids = {s.sid for s in workload.streams}
        assert set(policy._partitions) & stream_sids

    def test_tracks_read_only(self, config, workload):
        policy = WhirlpoolPolicy()
        SimulationEngine(config).run(workload, policy)
        written = {
            int(s) for s in np.unique(workload.trace.sid[workload.trace.write])
        }
        for sid in written:
            assert not policy._read_only.get(sid, True)


class TestNexus:
    def test_degree_is_valid(self, config, workload):
        policy = NexusPolicy()
        SimulationEngine(config).run(workload, policy)
        assert policy.chosen_degree >= 1
        assert policy.chosen_degree <= config.n_units

    def test_fixed_degree_respected(self, config):
        workload = build("recsys", TINY)
        policy = NexusPolicy(degree=2)
        SimulationEngine(config).run(workload, policy)
        assert policy.chosen_degree == 2
        replicated = [
            spec
            for spec in policy._partitions.values()
            if len(spec.copies) == 2
        ]
        assert replicated


class TestHost:
    def test_host_config_shape(self, config):
        host = host_config(config)
        assert host.n_units == config.n_units // 2
        assert host.total_cache_bytes < config.total_cache_bytes
        assert host.indirect_mlp == 1.0
        assert host.cxl.link_ns < config.cxl.link_ns

    def test_host_runs(self, config, workload):
        host = host_config(config)
        report = SimulationEngine(host).run(workload, HostJigsawPolicy())
        assert report.runtime_cycles > 0

    def test_ndp_beats_host_on_suite_sample(self, config):
        """The core Fig. 5 ordering at tiny scale for a streaming
        workload (the strongest NDP case)."""
        workload = build("hotspot", TINY)
        ndp = SimulationEngine(config).run(workload, NdpExtStaticPolicy())
        host = SimulationEngine(host_config(config)).run(
            workload, HostJigsawPolicy()
        )
        assert ndp.runtime_cycles < host.runtime_cycles

"""Focused tests for the baselines' classification and cost models."""

import numpy as np

from repro.baselines.jigsaw import DOMINANCE, SHARED_PID, JigsawPolicy
from repro.baselines.nexus import NexusPolicy
from repro.baselines.whirlpool import UNCLASSIFIED_PID, WhirlpoolPolicy
from repro.sim.engine import RequestOutcome
from repro.sim.params import tiny
from repro.sim.topology import Topology
from repro.workloads import TINY, build
from repro.workloads.trace import Trace


def crafted_trace(lines_cores, writes=None):
    """Trace from (line, core) pairs at 64 B granularity."""
    n = len(lines_cores)
    return Trace(
        core=np.array([c for _, c in lines_cores], np.int32),
        addr=np.array([l * 64 for l, _ in lines_cores], np.int64),
        write=np.zeros(n, bool) if writes is None else np.asarray(writes, bool),
        sid=np.full(n, -1, np.int32),
    )


def setup_policy(policy):
    config = tiny()
    policy.setup(config, Topology(config), build("pr", TINY))
    return policy


class TestJigsawClassification:
    def observe(self, policy, trace):
        pids = policy.classify(trace)
        policy.observe(0, trace, pids)
        # Adopt the pending classification as reconfigure would.
        policy._line_owner = policy._pending_owner
        return policy

    def test_dominant_core_owns_line(self):
        policy = setup_policy(JigsawPolicy())
        trace = crafted_trace([(100, 1)] * 9 + [(100, 2)])
        self.observe(policy, trace)
        lines, owners = policy._line_owner
        assert owners[list(lines).index(100)] == 1

    def test_shared_line_goes_to_shared_partition(self):
        policy = setup_policy(JigsawPolicy())
        trace = crafted_trace([(100, 0), (100, 1), (100, 2), (100, 3)])
        self.observe(policy, trace)
        lines, owners = policy._line_owner
        assert owners[list(lines).index(100)] == SHARED_PID

    def test_dominance_threshold(self):
        assert DOMINANCE == 0.5

    def test_unknown_lines_classified_shared(self):
        policy = setup_policy(JigsawPolicy())
        trace = crafted_trace([(7, 0)] * 5)
        self.observe(policy, trace)
        fresh = crafted_trace([(9999, 0)])
        assert policy.classify(fresh)[0] == SHARED_PID

    def test_curves_built_per_partition(self):
        policy = setup_policy(JigsawPolicy())
        trace = crafted_trace([(i, i % 2) for i in range(200)] * 3)
        self.observe(policy, trace)
        assert len(policy._curves) >= 2


class TestWhirlpoolClassification:
    def test_classifies_by_stream(self):
        policy = setup_policy(WhirlpoolPolicy())
        workload = policy.workload
        epoch = workload.trace.epochs(1000)[0]
        pids = policy.classify(epoch)
        valid = epoch.sid >= 0
        assert np.array_equal(pids[valid], epoch.sid[valid])

    def test_unannotated_goes_to_catchall(self):
        policy = setup_policy(WhirlpoolPolicy())
        trace = crafted_trace([(1, 0)])
        assert policy.classify(trace)[0] == UNCLASSIFIED_PID


class TestNexusDegreeModel:
    def test_avg_distance_shrinks_with_degree(self):
        policy = setup_policy(NexusPolicy())
        d1 = policy._avg_distance_ns(1)
        d4 = policy._avg_distance_ns(4)
        assert d4 <= d1

    def test_miss_penalty_includes_link(self):
        policy = setup_policy(NexusPolicy())
        assert policy._miss_penalty_ns() >= policy.config.cxl.link_ns

    def test_no_read_only_partitions_means_degree_one(self):
        policy = setup_policy(NexusPolicy())
        policy._read_only = {}
        policy._curves = {}
        assert policy._pick_degree() == 1


class TestEndEpochPlumbing:
    def test_last_pids_match_process(self):
        policy = setup_policy(WhirlpoolPolicy())
        policy.begin_epoch(0)
        epoch = policy.workload.trace.epochs(500)[0]
        out = policy.process(epoch)
        assert isinstance(out, RequestOutcome)
        assert len(policy._last_pids) == len(epoch)

"""Tests for the stack/unit topology and distance model."""

import numpy as np
import pytest

from repro.sim.params import small, tiny
from repro.sim.topology import Topology


class TestGeometry:
    def test_unit_positions_cover_all(self):
        topo = Topology(small())
        stacks = {p.stack for p in topo.positions}
        assert stacks == set(range(4))

    def test_self_distance_zero(self):
        topo = Topology(small())
        assert all(topo.distance_ns(u, u) == 0 for u in range(topo.n_units))

    def test_symmetric_latency(self):
        topo = Topology(small())
        assert np.allclose(topo.latency_ns, topo.latency_ns.T)

    def test_cross_stack_costs_inter_hops(self):
        config = small()
        topo = Topology(config)
        same_stack = topo.units_in_stack(0)
        other_stack = topo.units_in_stack(config.n_stacks - 1)
        within = topo.distance_ns(same_stack[0], same_stack[1])
        across = topo.distance_ns(same_stack[0], other_stack[0])
        assert across > within

    def test_hbm_crossbar_one_hop_within_stack(self):
        topo = Topology(small("hbm"))
        units = topo.units_in_stack(0)
        for u in units[1:]:
            assert topo.intra_hops[units[0], u] == 1

    def test_hmc_mesh_hops_within_stack(self):
        config = small("hmc").scaled(mesh_x=4, mesh_y=4, stacks_x=1, stacks_y=1)
        topo = Topology(config)
        # Opposite mesh corners of a 4x4: 3 + 3 hops.
        assert topo.intra_hops[0, 15] == 6


class TestQueries:
    def test_round_trip_doubles(self):
        topo = Topology(small())
        assert topo.round_trip_ns(0, 5) == 2 * topo.distance_ns(0, 5)

    def test_nearest_units_sorted(self):
        topo = Topology(small())
        order = topo.nearest_units(3)
        distances = [topo.distance_ns(3, u) for u in order]
        assert distances == sorted(distances)
        assert order[0] == 3  # self is closest

    def test_attenuation_bounds(self):
        topo = Topology(small())
        for u in range(topo.n_units):
            k = topo.attenuation(0, u)
            assert 0 < k <= 1
        assert topo.attenuation(0, 0) == 1.0

    def test_attenuation_decreases_with_distance(self):
        topo = Topology(small())
        far = max(range(topo.n_units), key=lambda u: topo.distance_ns(0, u))
        assert topo.attenuation(0, far) < topo.attenuation(0, 0)

    def test_centroid_of_single_unit(self):
        topo = Topology(small())
        assert topo.centroid_unit([5]) == 5

    def test_centroid_weighted(self):
        topo = Topology(tiny())
        # Heavy weight on unit 3 pulls the centroid there.
        assert topo.centroid_unit([0, 3], weights=[1, 100]) == 3

    def test_centroid_rejects_empty(self):
        topo = Topology(tiny())
        with pytest.raises(ValueError):
            topo.centroid_unit([])

    def test_mean_latency(self):
        topo = Topology(tiny())
        mean = topo.mean_latency_from(0, [0, 1])
        assert mean == pytest.approx(topo.distance_ns(0, 1) / 2)

    def test_mean_latency_rejects_empty(self):
        topo = Topology(tiny())
        with pytest.raises(ValueError):
            topo.mean_latency_from(0, [])

"""Engine edge-path tests: bypass addresses, probe charging, fills."""

import numpy as np

from repro.core.stream import StreamTable, configure_stream
from repro.sim.engine import DramCachePolicy, RequestOutcome, SimulationEngine
from repro.sim.params import tiny
from repro.workloads.trace import Trace, Workload


class ProbingMissPolicy(DramCachePolicy):
    """Misses that require a DRAM probe at the home unit (indirect tags)."""

    name = "probing-miss"

    def __init__(self, probe: bool):
        self.probe = probe

    def setup(self, config, topology, workload):
        self.config = config

    def process(self, epoch):
        n = len(epoch)
        unit = epoch.core.astype(np.int64) % self.config.n_units
        return RequestOutcome(
            hit=np.zeros(n, dtype=bool),
            serving_unit=unit,
            local_row=np.zeros(n, dtype=np.int64),
            miss_probe_dram=np.full(n, self.probe),
            metadata_ns=np.zeros(n),
        )


def mixed_workload(n=1000):
    """Half the accesses fall outside every stream (bypass)."""
    table = StreamTable()
    stream = configure_stream(
        table, "indirect", base=1 << 20, size=1 << 18, elem_size=64
    )
    rng = np.random.default_rng(5)
    in_stream = stream.base + rng.integers(0, stream.n_elements, n // 2) * 64
    outside = rng.integers(0, 1 << 18, n - n // 2) * 64  # below the stream
    addrs = np.concatenate([in_stream, outside])
    rng.shuffle(addrs)
    trace = Trace(
        core=np.arange(n, dtype=np.int32) % 4,
        addr=addrs,
        write=np.zeros(n, bool),
        sid=np.full(n, -1, np.int32),
    )
    return Workload(name="mixed", streams=table, trace=trace)


class TestBypass:
    def test_non_stream_addresses_resolve_to_minus_one(self):
        wl = mixed_workload()
        assert (wl.trace.sid == -1).sum() > 0
        assert (wl.trace.sid >= 0).sum() > 0

    def test_bypass_requests_reach_extended_memory(self):
        from repro.core import NdpExtPolicy

        config = tiny()
        report = SimulationEngine(config).run(mixed_workload(), NdpExtPolicy())
        # Bypass accesses can never be cache hits, so misses must be
        # substantial.
        assert report.hits.cache_misses > 0
        assert report.breakdown.extended_ns > 0


class TestProbeCharging:
    def test_probe_misses_cost_more_dram(self):
        config = tiny()
        wl = mixed_workload()
        with_probe = SimulationEngine(config).run(wl, ProbingMissPolicy(True))
        without = SimulationEngine(config).run(wl, ProbingMissPolicy(False))
        assert with_probe.breakdown.dram_ns > without.breakdown.dram_ns
        assert with_probe.runtime_cycles > without.runtime_cycles

    def test_fill_energy_charged_on_misses(self):
        config = tiny()
        report = SimulationEngine(config).run(
            mixed_workload(), ProbingMissPolicy(False)
        )
        # Fills write the fetched line into NDP DRAM: energy but no
        # critical-path DRAM latency.
        assert report.energy.ndp_dram_nj > 0
        assert report.breakdown.dram_ns == 0.0

"""Tests for the measurement containers."""

import pytest

from repro.sim.metrics import (
    EnergyBreakdown,
    HitStats,
    LatencyBreakdown,
    SimulationReport,
)


class TestLatencyBreakdown:
    def test_total(self):
        b = LatencyBreakdown(sram_ns=1, metadata_ns=2, dram_ns=3)
        assert b.total_ns == 6

    def test_add(self):
        a = LatencyBreakdown(dram_ns=1)
        b = LatencyBreakdown(dram_ns=2, extended_ns=5)
        c = a + b
        assert c.dram_ns == 3
        assert c.extended_ns == 5

    def test_interconnect(self):
        b = LatencyBreakdown(intra_noc_ns=2, inter_noc_ns=3)
        assert b.interconnect_ns == 5

    def test_fractions_sum_to_one(self):
        b = LatencyBreakdown(sram_ns=1, dram_ns=3)
        assert sum(b.fractions().values()) == pytest.approx(1.0)

    def test_fractions_of_empty(self):
        assert sum(LatencyBreakdown().fractions().values()) == 0.0


class TestEnergyBreakdown:
    def test_total_and_add(self):
        a = EnergyBreakdown(static_nj=1, noc_nj=2)
        b = EnergyBreakdown(static_nj=3)
        assert (a + b).total_nj == 6


class TestHitStats:
    def test_rates(self):
        h = HitStats(l1_hits=10, cache_hits_local=6, cache_hits_remote=2, cache_misses=2)
        assert h.cache_accesses == 10
        assert h.cache_hit_rate == pytest.approx(0.8)
        assert h.miss_rate == pytest.approx(0.2)
        assert h.total_requests == 20

    def test_empty(self):
        assert HitStats().cache_hit_rate == 0.0

    def test_add(self):
        total = HitStats(l1_hits=1) + HitStats(l1_hits=2, cache_misses=3)
        assert total.l1_hits == 3
        assert total.cache_misses == 3


class TestSimulationReport:
    def test_speedup(self):
        fast = SimulationReport(policy="a", workload="w", runtime_cycles=100)
        slow = SimulationReport(policy="b", workload="w", runtime_cycles=200)
        assert fast.speedup_over(slow) == 2.0

    def test_speedup_rejects_zero_runtime(self):
        broken = SimulationReport(policy="a", workload="w", runtime_cycles=0)
        other = SimulationReport(policy="b", workload="w", runtime_cycles=1)
        with pytest.raises(ValueError):
            broken.speedup_over(other)

    def test_avg_latency(self):
        report = SimulationReport(
            policy="a",
            workload="w",
            runtime_cycles=1,
            breakdown=LatencyBreakdown(dram_ns=100),
            hits=HitStats(cache_hits_local=10),
        )
        assert report.avg_access_latency_ns == 10.0

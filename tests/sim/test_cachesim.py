"""Tests for the vectorised cache-simulation primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cachesim import (
    _prev_in_group,
    cold_miss_count,
    direct_mapped_hits,
    recency_hits,
    set_assoc_hits,
)


def reference_direct_mapped(slots, tags):
    """Straightforward dict-based direct-mapped simulation."""
    cache = {}
    hits = []
    for slot, tag in zip(slots, tags):
        hits.append(cache.get(slot) == tag)
        cache[slot] = tag
    return np.array(hits)


class TestPrevInGroup:
    def test_basic(self):
        group = np.array([0, 1, 0, 1, 0])
        value = np.array([10, 20, 30, 40, 50])
        prev_idx, prev_val = _prev_in_group(group, value)
        assert list(prev_idx) == [-1, -1, 0, 1, 2]
        assert prev_val[2] == 10
        assert prev_val[4] == 30

    def test_empty(self):
        prev_idx, _ = _prev_in_group(np.empty(0, np.int64), np.empty(0, np.int64))
        assert len(prev_idx) == 0


class TestDirectMapped:
    def test_repeat_hits(self):
        slots = np.zeros(4, dtype=np.int64)
        tags = np.array([7, 7, 7, 7])
        assert list(direct_mapped_hits(slots, tags)) == [False, True, True, True]

    def test_conflict_evicts(self):
        slots = np.zeros(4, dtype=np.int64)
        tags = np.array([1, 2, 1, 2])
        assert not direct_mapped_hits(slots, tags).any()

    def test_independent_slots(self):
        slots = np.array([0, 1, 0, 1])
        tags = np.array([1, 2, 1, 2])
        assert list(direct_mapped_hits(slots, tags)) == [False, False, True, True]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=8),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, accesses):
        slots = np.array([a[0] for a in accesses], dtype=np.int64)
        tags = np.array([a[1] for a in accesses], dtype=np.int64)
        fast = direct_mapped_hits(slots, tags)
        ref = reference_direct_mapped(slots, tags)
        assert np.array_equal(fast, ref if len(ref) else fast)


class TestSetAssoc:
    def test_ways_one_is_direct_mapped(self):
        slots = np.array([0, 0, 1, 0], dtype=np.int64)
        tags = np.array([1, 2, 3, 1], dtype=np.int64)
        assert np.array_equal(
            set_assoc_hits(slots, tags, 1), direct_mapped_hits(slots, tags)
        )

    def test_two_way_holds_two_tags(self):
        sets = np.zeros(6, dtype=np.int64)
        tags = np.array([1, 2, 1, 2, 1, 2])
        hits = set_assoc_hits(sets, tags, 2)
        assert list(hits) == [False, False, True, True, True, True]

    def test_capacity_thrash(self):
        sets = np.zeros(6, dtype=np.int64)
        tags = np.array([1, 2, 3, 1, 2, 3])
        assert not set_assoc_hits(sets, tags, 2).any()

    def test_rereference_always_hits(self):
        sets = np.zeros(4, dtype=np.int64)
        tags = np.array([5, 5, 6, 6])
        hits = set_assoc_hits(sets, tags, 2)
        assert list(hits) == [False, True, False, True]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=6),
            ),
            max_size=120,
        ),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_hits_monotonic_in_ways(self, accesses, ways):
        """More associativity never loses hits (needed by Fig. 9(a))."""
        sets = np.array([a[0] for a in accesses], dtype=np.int64)
        tags = np.array([a[1] for a in accesses], dtype=np.int64)
        low = set_assoc_hits(sets, tags, ways)
        high = set_assoc_hits(sets, tags, ways + 1)
        assert not np.any(low & ~high)


class TestRecency:
    def test_window_zero_never_hits(self):
        keys = np.array([1, 1, 1])
        assert not recency_hits(keys, 0).any()

    def test_within_window_hits(self):
        keys = np.array([1, 2, 1])
        assert list(recency_hits(keys, 2)) == [False, False, True]

    def test_outside_window_misses(self):
        keys = np.array([1, 2, 3, 1])
        assert list(recency_hits(keys, 2)) == [False, False, False, False]

    @given(
        st.lists(st.integers(min_value=0, max_value=10), max_size=100),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_hits_monotonic_in_window(self, keys, window):
        keys = np.array(keys, dtype=np.int64)
        low = recency_hits(keys, window)
        high = recency_hits(keys, window + 5)
        assert not np.any(low & ~high)


class TestColdMissCount:
    def test_counts_distinct(self):
        assert cold_miss_count(np.array([1, 1, 2, 3, 3])) == 3

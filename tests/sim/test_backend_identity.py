"""End-to-end bit identity of SimulationReports across kernel backends.

The whole point of the backend seam (``EngineOptions.backend``) is that
it changes *speed only*: the numpy kernels, the pure-python reference
loops, and the optional numba JIT must produce literally the same
report — every float, every counter — for every policy, with and
without faults, through the serving loop, and with a live recorder
attached.  Anything less and cached reports, the regression gate, and
the paper figures would all depend on which backend happened to run.
"""

from dataclasses import fields

import pytest

from repro.experiments.runner import POLICIES
from repro.faults import FaultSchedule
from repro.faults.schedule import random_schedule
from repro.sim import SimulationEngine, tiny
from repro.sim.engine import EngineOptions
from repro.sim.kernels import numba_available
from repro.workloads import TINY, build

BACKENDS_PRESENT = ["numpy", "python"] + (
    ["numba"] if numba_available() else []
)

FAULT_PROFILES = {
    "fault-free": lambda config: None,
    "empty-schedule": lambda config: FaultSchedule(),
    "random-faults": lambda config: random_schedule(
        7,
        config.n_units,
        8,
        rows_per_unit=config.rows_per_unit,
        full_lanes=config.cxl.lanes,
    ),
}


def assert_reports_identical(a, b):
    for f in fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if va is None and vb is None:
            continue
        if hasattr(va, "__dataclass_fields__"):
            assert_reports_identical(va, vb)
        else:
            assert va == vb, f"field {f.name}: {va!r} != {vb!r}"


def _run(policy_name, backend, faults):
    config = tiny()
    workload = build("pr", TINY)
    engine = SimulationEngine(
        config, EngineOptions(backend=backend), faults=faults
    )
    return engine.run(workload, POLICIES[policy_name]())


@pytest.mark.parametrize("profile", sorted(FAULT_PROFILES))
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_python_backend_matches_numpy(policy_name, profile):
    make_faults = FAULT_PROFILES[profile]
    reference = _run(policy_name, "numpy", make_faults(tiny()))
    candidate = _run(policy_name, "python", make_faults(tiny()))
    assert_reports_identical(reference, candidate)


@pytest.mark.skipif(not numba_available(), reason="needs numba")
@pytest.mark.parametrize("profile", sorted(FAULT_PROFILES))
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_numba_backend_matches_numpy(policy_name, profile):
    make_faults = FAULT_PROFILES[profile]
    reference = _run(policy_name, "numpy", make_faults(tiny()))
    candidate = _run(policy_name, "numba", make_faults(tiny()))
    assert_reports_identical(reference, candidate)


@pytest.mark.parametrize("backend", [b for b in BACKENDS_PRESENT if b != "numpy"])
def test_recorded_run_matches_numpy(backend):
    """A live recorder must not perturb backend identity (and the
    recorded runs themselves must agree across backends)."""
    from repro.obs.recorder import Recorder

    config = tiny()
    workload = build("pr", TINY)
    reports = {}
    for name in ("numpy", backend):
        recorder = Recorder(workload="pr", policy="ndpext", preset="tiny")
        engine = SimulationEngine(
            config, EngineOptions(backend=name), recorder=recorder
        )
        reports[name] = engine.run(workload, POLICIES["ndpext"]())
    assert_reports_identical(reports["numpy"], reports[backend])


@pytest.mark.parametrize("backend", [b for b in BACKENDS_PRESENT if b != "numpy"])
def test_serve_scenario_matches_numpy(backend):
    """The resident serving loop — admission, backpressure, health
    gates, the works — replays identically on every backend."""
    from repro.serve.scenario import ServeHarness, two_tenant_scenario

    def run(name):
        scenario = two_tenant_scenario(max_batches=6)
        harness = ServeHarness(scenario, preset="tiny", backend=name)
        return harness.run().to_json()

    assert run("numpy") == run(backend)


def test_engine_session_step_matches_batch_run_across_backends():
    """The incremental EngineSession.step() path and the batch run()
    path share the fused kernels; stepping under the python backend
    still reproduces the numpy batch report."""
    config = tiny()
    workload = build("pr", TINY)
    batch = SimulationEngine(config, EngineOptions(backend="numpy")).run(
        workload, POLICIES["ndpext"]()
    )
    engine = SimulationEngine(config, EngineOptions(backend="python"))
    session = engine.begin_session(workload, POLICIES["ndpext"]())
    for epoch in workload.trace.epochs(config.epoch_accesses):
        session.step(epoch)
    stepped = session.finish()
    assert_reports_identical(batch, stepped)

"""Tests for the DRAM row-buffer model."""

import numpy as np
import pytest

from repro.sim.dram import DramModel
from repro.sim.params import DDR5_4800, HBM3


class TestRowBuffer:
    def test_same_row_hits(self):
        model = DramModel(HBM3)
        addrs = np.array([0, 8, 64, 128])  # all in row 0
        result = model.access(addrs)
        assert list(result.row_hit) == [False, True, True, True]

    def test_different_rows_same_bank_conflict(self):
        model = DramModel(HBM3)
        row = HBM3.row_bytes
        banks = HBM3.banks
        # Rows 0 and `banks` share bank 0 but differ in row id.
        addrs = np.array([0, row * banks, 0])
        result = model.access(addrs)
        assert list(result.row_hit) == [False, False, False]

    def test_different_banks_independent(self):
        model = DramModel(HBM3)
        row = HBM3.row_bytes
        addrs = np.array([0, row, 0, row])  # rows 0,1 -> banks 0,1
        result = model.access(addrs)
        assert list(result.row_hit) == [False, False, True, True]

    def test_latency_values(self):
        model = DramModel(HBM3)
        result = model.access(np.array([0, 0]))
        assert result.latency_ns[0] == pytest.approx(HBM3.row_miss_ns)
        assert result.latency_ns[1] == pytest.approx(HBM3.row_hit_ns)

    def test_channel_separation(self):
        model = DramModel(DDR5_4800)
        addrs = np.array([0, 0])
        # Same address but different channels: no shared row buffer.
        result = model.access(addrs, channel=np.array([0, 1]))
        assert list(result.row_hit) == [False, False]

    def test_row_hit_rate(self):
        model = DramModel(HBM3)
        result = model.access(np.zeros(10, dtype=np.int64))
        assert result.row_hit_rate == pytest.approx(0.9)

    def test_empty_batch(self):
        model = DramModel(HBM3)
        result = model.access(np.empty(0, dtype=np.int64))
        assert result.total_latency_ns == 0.0
        assert result.row_hit_rate == 0.0


class TestEnergy:
    def test_misses_add_activation(self):
        model = DramModel(HBM3)
        hit_only = model.energy_nj(np.array([True]))
        miss_only = model.energy_nj(np.array([False]))
        assert miss_only == pytest.approx(hit_only + HBM3.act_pre_nj)

    def test_scales_with_accesses(self):
        model = DramModel(HBM3)
        one = model.energy_nj(np.array([True]))
        ten = model.energy_nj(np.full(10, True))
        assert ten == pytest.approx(10 * one)

"""Tests for the CXL-attached extended memory model."""

import numpy as np
import pytest

from repro.sim.cxl import ExtendedMemory
from repro.sim.params import DDR5_4800, CxlParams


def make_memory(**overrides):
    params = dict(link_ns=200.0, pj_per_bit=11.4, lanes=16, channels=4)
    params.update(overrides)
    return ExtendedMemory(CxlParams(**params), DDR5_4800)


class TestLatency:
    def test_includes_link_latency(self):
        memory = make_memory()
        result = memory.access(np.array([0]))
        assert result.latency_ns[0] >= 200.0 + DDR5_4800.row_hit_ns

    def test_link_latency_additive(self):
        slow = make_memory(link_ns=400.0).access(np.array([0]))
        fast = make_memory(link_ns=50.0).access(np.array([0]))
        assert slow.latency_ns[0] - fast.latency_ns[0] == pytest.approx(350.0)

    def test_serialization_scales_with_lanes(self):
        wide = make_memory(lanes=16)
        narrow = make_memory(lanes=1)
        assert narrow.serialization_ns() == pytest.approx(
            16 * wide.serialization_ns()
        )

    def test_channels_interleave_row_buffers(self):
        memory = make_memory(channels=4)
        row = DDR5_4800.row_bytes
        # Rows 0..3 land on different channels; revisiting row 0 hits.
        addrs = np.array([0, row, 2 * row, 3 * row, 8])
        result = memory.access(addrs)
        assert result.row_hit[4]


class TestEnergy:
    def test_link_energy_per_access(self):
        memory = make_memory()
        result = memory.access(np.array([0, 64]))
        expected = 2 * 64 * 8 * 11.4 / 1000.0
        assert result.link_energy_nj == pytest.approx(expected)

    def test_dram_energy_positive(self):
        result = make_memory().access(np.array([0]))
        assert result.dram_energy_nj > 0

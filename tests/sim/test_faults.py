"""Tests for the fault schedule/state layer (repro.faults)."""

import numpy as np
import pytest

from repro.faults import (
    CxlCrcBurst,
    CxlLaneDowntrain,
    DramRowFault,
    FaultSchedule,
    FaultState,
    UnitFailure,
    random_schedule,
)
from repro.sim.cxl import ExtendedMemory
from repro.sim.engine import RequestOutcome
from repro.sim.params import tiny


def outcome_of(serving_unit, local_row=None):
    serving_unit = np.asarray(serving_unit, dtype=np.int64)
    n = len(serving_unit)
    if local_row is None:
        local_row = np.where(serving_unit >= 0, 0, -1)
    return RequestOutcome(
        hit=serving_unit >= 0,
        serving_unit=serving_unit,
        local_row=np.asarray(local_row, dtype=np.int64),
        miss_probe_dram=np.zeros(n, dtype=bool),
        metadata_ns=np.zeros(n, dtype=np.float64),
    )


class TestScheduleValidation:
    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            UnitFailure(epoch=-1, unit=0)

    def test_negative_unit_rejected(self):
        with pytest.raises(ValueError):
            UnitFailure(epoch=0, unit=-1)

    def test_zero_lanes_rejected(self):
        with pytest.raises(ValueError):
            CxlLaneDowntrain(epoch=1, lanes=0)

    def test_bad_retry_prob_rejected(self):
        with pytest.raises(ValueError):
            CxlCrcBurst(epoch=1, retry_prob=1.5)

    def test_negative_row_rejected(self):
        with pytest.raises(ValueError):
            DramRowFault(epoch=1, unit=0, row=-2)

    def test_validate_for_rejects_unknown_unit(self):
        schedule = FaultSchedule((UnitFailure(epoch=1, unit=9),))
        with pytest.raises(ValueError):
            schedule.validate_for(n_units=4, full_lanes=16)

    def test_validate_for_rejects_widening_downtrain(self):
        schedule = FaultSchedule((CxlLaneDowntrain(epoch=1, lanes=32),))
        with pytest.raises(ValueError):
            schedule.validate_for(n_units=4, full_lanes=16)

    def test_schedule_is_hashable_and_value_equal(self):
        a = FaultSchedule((UnitFailure(epoch=1, unit=0),), seed=7)
        b = FaultSchedule((UnitFailure(epoch=1, unit=0),), seed=7)
        assert a == b
        assert hash(a) == hash(b)
        assert not a.empty
        assert FaultSchedule().empty

    def test_events_accepts_any_iterable(self):
        schedule = FaultSchedule([UnitFailure(epoch=1, unit=0)])
        assert isinstance(schedule.events, tuple)


class TestRandomSchedule:
    def test_deterministic(self):
        a = random_schedule(3, n_units=4, n_epochs=8)
        b = random_schedule(3, n_units=4, n_epochs=8)
        assert a == b

    def test_seed_changes_schedule(self):
        a = random_schedule(3, n_units=4, n_epochs=8)
        b = random_schedule(4, n_units=4, n_epochs=8)
        assert a != b

    def test_valid_for_named_system(self):
        schedule = random_schedule(1, n_units=4, n_epochs=8, full_lanes=16)
        schedule.validate_for(n_units=4, full_lanes=16)  # must not raise

    def test_events_in_middle_half(self):
        schedule = random_schedule(5, n_units=4, n_epochs=16)
        for event in schedule.events:
            assert 1 <= event.epoch < 12


class TestFaultState:
    def test_unit_failure_delivered_once(self):
        config = tiny()
        state = FaultState(
            FaultSchedule((UnitFailure(epoch=2, unit=1),)), config
        )
        assert state.advance(0).empty
        assert not state.degraded
        events = state.advance(2)
        assert events.unit_failures == [1]
        assert not state.alive[1]
        assert state.degraded
        assert state.report.units_lost == 1
        # Replay of the same epoch index range never re-delivers.
        assert state.advance(3).empty
        assert state.report.units_lost == 1

    def test_downtrain_narrows_lanes(self):
        config = tiny()
        state = FaultState(
            FaultSchedule((CxlLaneDowntrain(epoch=1, lanes=4),)), config
        )
        state.advance(0)
        assert state.effective_lanes == config.cxl.lanes
        state.advance(1)
        assert state.effective_lanes == 4
        state.advance(2)
        assert state.report.downtrained_epochs == 2
        assert state.report.min_lanes == 4
        # A link fault alone needs no request demotion.
        assert not state.degraded

    def test_row_fault_quarantine_and_acknowledge(self):
        config = tiny()
        state = FaultState(
            FaultSchedule((DramRowFault(epoch=1, unit=2, row=5),)), config
        )
        events = state.advance(1)
        assert events.row_faults == [(2, 5)]
        assert state.degraded
        out = outcome_of([2, 2, 0], local_row=[5, 3, 5])
        assert state.demote(out) == 1  # only (unit 2, row 5)
        assert not out.hit[0] and out.serving_unit[0] == -1
        assert out.hit[1] and out.hit[2]
        state.acknowledge_row(2, 5)
        assert not state.degraded
        out2 = outcome_of([2], local_row=[5])
        assert state.demote(out2) == 0

    def test_demote_dead_unit(self):
        config = tiny()
        state = FaultState(FaultSchedule((UnitFailure(epoch=0, unit=0),)), config)
        state.advance(0)
        out = outcome_of([0, 1, -1, 0])
        assert state.demote(out) == 2
        assert not out.hit[0] and not out.hit[3]
        assert out.hit[1]
        assert state.report.demoted_requests == 2

    def test_row_fault_on_dead_unit_ignored(self):
        config = tiny()
        state = FaultState(
            FaultSchedule(
                (UnitFailure(epoch=1, unit=0), DramRowFault(epoch=2, unit=0, row=3))
            ),
            config,
        )
        state.advance(1)
        events = state.advance(2)
        assert events.row_faults == []
        assert state.report.rows_quarantined == 0


class TestCrcPenalties:
    def make_state(self, seed=0, **burst_kwargs):
        config = tiny()
        burst = CxlCrcBurst(epoch=0, **burst_kwargs)
        state = FaultState(FaultSchedule((burst,), seed=seed), config)
        state.advance(0)
        ext = ExtendedMemory(config.cxl, config.ext_dram)
        return state, ext

    def test_healthy_link_charges_nothing(self):
        config = tiny()
        state = FaultState(FaultSchedule(), config)
        state.advance(0)
        ext = ExtendedMemory(config.cxl, config.ext_dram)
        assert state.cxl_penalty_ns(100, ext) is None

    def test_draws_are_deterministic(self):
        a_state, ext = self.make_state(seed=9, retry_prob=0.5)
        b_state, _ = self.make_state(seed=9, retry_prob=0.5)
        a = a_state.cxl_penalty_ns(200, ext)
        b = b_state.cxl_penalty_ns(200, ext)
        assert np.array_equal(a, b)

    def test_sequence_position_decorrelates(self):
        state, ext = self.make_state(seed=9, retry_prob=0.5)
        first = state.cxl_penalty_ns(100, ext)
        second = state.cxl_penalty_ns(100, ext)
        assert not np.array_equal(first, second)

    def test_backoff_is_exponential(self):
        state, ext = self.make_state(retry_prob=1.0, max_retries=1, backoff_ns=10.0)
        penalty = state.cxl_penalty_ns(50, ext)
        # Every transfer retries exactly once (then exhausts): backoff of
        # 10 ns plus a full re-issue over the link.
        reissue = ext.cxl.link_ns + ext.serialization_ns()
        assert np.allclose(penalty, 10.0 + reissue)
        assert state.report.crc_reissues == 50
        assert state.report.crc_retries == 50
        assert state.report.crc_retry_ns == pytest.approx(float(penalty.sum()))

    def test_penalty_scales_with_retry_count(self):
        state, ext = self.make_state(retry_prob=1.0, max_retries=8, backoff_ns=1.0)
        penalty = state.cxl_penalty_ns(500, ext)
        # k retries wait 2**k - 1 backoff units (plus possible re-issue).
        assert penalty.min() >= 1.0
        assert state.report.crc_retries >= 500

"""Unit tests for the kernel backends themselves.

The backend contract is *bit identity*: every kernel returns exact
integers/booleans, or floating-point segment sums folded in the same
input order as the pure-python reference, so swapping backends can never
change a SimulationReport.  These tests pin that contract kernel by
kernel on adversarial random inputs; the end-to-end report equality
across whole simulations lives in ``test_backend_identity.py``.
"""

import warnings

import numpy as np
import pytest

from repro.sim import kernels
from repro.sim.kernels import (
    BACKENDS,
    NUMPY_KERNELS,
    PYTHON_KERNELS,
    active,
    numba_available,
    resolve_backend,
    use_backend,
)


def _backends():
    pairs = [("numpy", NUMPY_KERNELS), ("python", PYTHON_KERNELS)]
    if numba_available():
        pairs.append(("numba", resolve_backend("numba")[0]))
    return pairs


def _cases(rng):
    """Adversarial shapes: empty, singleton, all-one-group, high-card."""
    yield np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    yield np.zeros(1, dtype=np.int64), np.asarray([7], dtype=np.int64)
    n = 4096
    yield (
        np.zeros(n, dtype=np.int64),
        rng.integers(0, 17, size=n, dtype=np.int64),
    )
    yield (
        rng.integers(0, 5, size=n, dtype=np.int64),
        rng.integers(0, 1 << 40, size=n, dtype=np.int64),
    )
    yield (
        rng.integers(0, 700, size=n, dtype=np.int64),
        rng.integers(0, 97, size=n, dtype=np.int64),
    )


@pytest.mark.parametrize("name", [p[0] for p in _backends()])
def test_prev_in_group_matches_python(name):
    impl = dict(_backends())[name]
    rng = np.random.default_rng(11)
    for group, value in _cases(rng):
        got_idx, got_val = impl.prev_in_group(group, value)
        ref_idx, ref_val = PYTHON_KERNELS.prev_in_group(group, value)
        np.testing.assert_array_equal(got_idx, ref_idx)
        np.testing.assert_array_equal(got_val, ref_val)


@pytest.mark.parametrize("name", [p[0] for p in _backends()])
def test_direct_mapped_hits_matches_python(name):
    impl = dict(_backends())[name]
    rng = np.random.default_rng(12)
    for slots, tags in _cases(rng):
        got = impl.direct_mapped_hits(slots, tags)
        ref = PYTHON_KERNELS.direct_mapped_hits(slots, tags)
        np.testing.assert_array_equal(got, ref)
        assert got.dtype == bool


@pytest.mark.parametrize("name", [p[0] for p in _backends()])
@pytest.mark.parametrize("window", [0, 1, 3, 64, 100_000])
def test_window_hits_grouped_matches_python(name, window):
    impl = dict(_backends())[name]
    rng = np.random.default_rng(13)
    for groups, keys in _cases(rng):
        got = impl.window_hits_grouped(keys, groups, window)
        ref = PYTHON_KERNELS.window_hits_grouped(keys, groups, window)
        np.testing.assert_array_equal(got, ref)


def test_window_hits_grouped_huge_keys_fall_back_to_dense_reid():
    """Keys too wide for the bit-packed composite still give exact
    results via the np.unique re-id path."""
    keys = np.asarray([0, 1 << 62, 0, 1 << 62, 5], dtype=np.int64)
    groups = np.asarray([0, 0, 0, 0, 0], dtype=np.int64)
    got = NUMPY_KERNELS.window_hits_grouped(keys, groups, window=4)
    ref = PYTHON_KERNELS.window_hits_grouped(keys, groups, window=4)
    np.testing.assert_array_equal(got, ref)
    assert list(got) == [False, False, True, True, False]


def test_window_hits_grouped_respects_supplied_order():
    rng = np.random.default_rng(14)
    n = 2000
    groups = rng.integers(0, 9, size=n, dtype=np.int64)
    keys = rng.integers(0, 50, size=n, dtype=np.int64)
    order = np.argsort(groups, kind="stable")
    with_order = NUMPY_KERNELS.window_hits_grouped(
        keys, groups, 16, order=order
    )
    without = NUMPY_KERNELS.window_hits_grouped(keys, groups, 16)
    np.testing.assert_array_equal(with_order, without)


@pytest.mark.parametrize("name", [p[0] for p in _backends()])
def test_segment_sum_bitwise_matches_inorder_python_fold(name):
    """The float contract: segment_sum folds addends per bucket in input
    order, bitwise equal to a python running sum.  np.bincount guarantees
    this; the test pins it so a backend swap (or a numpy upgrade that
    changes bincount's accumulation order) cannot silently shift
    last-ulp report values between backends."""
    impl = dict(_backends())[name]
    rng = np.random.default_rng(15)
    index = rng.integers(0, 37, size=10_000, dtype=np.int64)
    weights = rng.normal(scale=1e9, size=10_000) + rng.normal(size=10_000)
    got = impl.segment_sum(index, weights, 37)
    ref = PYTHON_KERNELS.segment_sum(index, weights, 37)
    np.testing.assert_array_equal(got, ref)  # exact, not allclose


@pytest.mark.parametrize("name", [p[0] for p in _backends()])
def test_segment_count_matches_python(name):
    impl = dict(_backends())[name]
    rng = np.random.default_rng(16)
    index = rng.integers(0, 13, size=5000, dtype=np.int64)
    got = impl.segment_count(index, 13)
    ref = PYTHON_KERNELS.segment_count(index, 13)
    np.testing.assert_array_equal(got, ref)
    assert got.dtype == np.int64


def test_resolve_backend_known_names():
    assert set(BACKENDS) == {"numpy", "python", "numba"}
    impl, warning = resolve_backend("numpy")
    assert impl is NUMPY_KERNELS and warning is None
    impl, warning = resolve_backend("python")
    assert impl is PYTHON_KERNELS and warning is None
    with pytest.raises(ValueError):
        resolve_backend("fortran")


@pytest.mark.skipif(numba_available(), reason="numba is installed here")
def test_resolve_backend_numba_fallback_without_numba():
    impl, warning = resolve_backend("numba")
    assert impl is NUMPY_KERNELS
    assert warning is not None and "numba" in warning


@pytest.mark.skipif(not numba_available(), reason="needs numba")
def test_resolve_backend_numba_when_installed():
    impl, warning = resolve_backend("numba")
    assert impl.name == "numba"
    assert warning is None


def test_engine_warns_and_records_fallback_without_numba():
    if numba_available():
        pytest.skip("numba is installed here")
    from repro.obs.recorder import Recorder
    from repro.sim import SimulationEngine, tiny
    from repro.sim.engine import EngineOptions

    recorder = Recorder(workload="pr", policy="ndpext", preset="tiny")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        engine = SimulationEngine(
            tiny(), EngineOptions(backend="numba"), recorder=recorder
        )
    assert engine.kernels is NUMPY_KERNELS
    assert any("numba" in str(w.message) for w in caught)
    events = recorder.events_of("backend_fallback")
    assert events and events[0]["requested"] == "numba"


def test_engine_options_reject_unknown_backend():
    from repro.sim.engine import EngineOptions

    with pytest.raises(ValueError):
        EngineOptions(backend="cuda")


def test_use_backend_restores_on_exit():
    before = active()
    with use_backend(PYTHON_KERNELS):
        assert active() is PYTHON_KERNELS
        with use_backend(NUMPY_KERNELS):
            assert active() is NUMPY_KERNELS
        assert active() is PYTHON_KERNELS
    assert active() is before


def test_use_backend_restores_on_exception():
    before = active()
    with pytest.raises(RuntimeError):
        with use_backend(PYTHON_KERNELS):
            raise RuntimeError("boom")
    assert active() is before


def test_module_default_backend_is_numpy():
    assert kernels.active() is NUMPY_KERNELS

"""Tests for the simulation engine using stub policies."""

import numpy as np
import pytest

from repro.core.stream import StreamTable, configure_stream
from repro.sim.engine import (
    AFFINE_MLP,
    DramCachePolicy,
    EngineOptions,
    RequestOutcome,
    SimulationEngine,
)
from repro.sim.params import tiny
from repro.workloads.trace import Trace, Workload


def make_workload(n_accesses=2000, n_cores=4, kind="indirect", seed=3):
    """A workload gathering randomly over one stream."""
    table = StreamTable()
    stream = configure_stream(
        table, kind, base=4096, size=64 * 1024, elem_size=64, name="data"
    )
    rng = np.random.default_rng(seed)
    addrs = stream.base + rng.integers(0, stream.n_elements, n_accesses) * 64
    trace = Trace(
        core=np.arange(n_accesses, dtype=np.int32) % n_cores,
        addr=addrs,
        write=np.zeros(n_accesses, dtype=bool),
        sid=np.full(n_accesses, stream.sid, dtype=np.int32),
    )
    return Workload(name="stub", streams=table, trace=trace)


class AlwaysLocalHit(DramCachePolicy):
    """Every request hits in the requester's own unit."""

    name = "always-local"

    def setup(self, config, topology, workload):
        self.config = config

    def process(self, epoch):
        n = len(epoch)
        unit = epoch.core.astype(np.int64) % self.config.n_units
        return RequestOutcome(
            hit=np.ones(n, dtype=bool),
            serving_unit=unit,
            local_row=np.zeros(n, dtype=np.int64),
            miss_probe_dram=np.zeros(n, dtype=bool),
            metadata_ns=np.zeros(n),
        )


class AlwaysMiss(DramCachePolicy):
    """Every request goes to extended memory (bypass)."""

    name = "always-miss"

    def setup(self, config, topology, workload):
        pass

    def process(self, epoch):
        n = len(epoch)
        return RequestOutcome(
            hit=np.zeros(n, dtype=bool),
            serving_unit=np.full(n, -1, dtype=np.int64),
            local_row=np.full(n, -1, dtype=np.int64),
            miss_probe_dram=np.zeros(n, dtype=bool),
            metadata_ns=np.zeros(n),
        )


class AlwaysRemoteHit(AlwaysLocalHit):
    """Every request is served by the farthest unit."""

    name = "always-remote"

    def setup(self, config, topology, workload):
        self.config = config
        self.topology = topology

    def process(self, epoch):
        outcome = super().process(epoch)
        far = np.argmax(self.topology.latency_ns[0])
        outcome.serving_unit = np.full(len(epoch), far, dtype=np.int64)
        return outcome


class TestEngineAccounting:
    def test_hits_faster_than_misses(self):
        config = tiny()
        workload = make_workload()
        hit_report = SimulationEngine(config).run(workload, AlwaysLocalHit())
        miss_report = SimulationEngine(config).run(workload, AlwaysMiss())
        assert hit_report.runtime_cycles < miss_report.runtime_cycles

    def test_misses_charge_extended_and_cxl(self):
        config = tiny()
        report = SimulationEngine(config).run(make_workload(), AlwaysMiss())
        assert report.breakdown.extended_ns > 0
        assert report.energy.cxl_nj > 0
        assert report.hits.miss_rate == 1.0

    def test_local_hits_have_no_interconnect(self):
        config = tiny()
        report = SimulationEngine(config).run(make_workload(), AlwaysLocalHit())
        assert report.breakdown.interconnect_ns == 0.0
        assert report.hits.cache_hits_remote == 0

    def test_remote_hits_pay_interconnect(self):
        config = tiny()
        local = SimulationEngine(config).run(make_workload(), AlwaysLocalHit())
        remote = SimulationEngine(config).run(make_workload(), AlwaysRemoteHit())
        assert remote.breakdown.interconnect_ns > 0
        assert remote.runtime_cycles > local.runtime_cycles

    def test_l1_absorbs_hot_line(self):
        config = tiny()
        table = StreamTable()
        stream = configure_stream(
            table, "indirect", base=4096, size=4096, elem_size=64
        )
        n = 1000
        trace = Trace(
            core=np.zeros(n, dtype=np.int32),
            addr=np.full(n, stream.base, dtype=np.int64),
            write=np.zeros(n, dtype=bool),
            sid=np.full(n, stream.sid, dtype=np.int32),
        )
        workload = Workload(name="hot", streams=table, trace=trace)
        report = SimulationEngine(config).run(workload, AlwaysMiss())
        assert report.hits.l1_hits >= n - 5

    def test_affine_mlp_reduces_stall(self):
        config = tiny()
        indirect = SimulationEngine(config).run(
            make_workload(kind="indirect"), AlwaysMiss()
        )
        affine = SimulationEngine(config).run(
            make_workload(kind="affine"), AlwaysMiss()
        )
        # Same access counts, but affine latency overlaps by AFFINE_MLP
        # (relative to the indirect MLP).
        expected = config.indirect_mlp / AFFINE_MLP
        ratio = affine.runtime_cycles / indirect.runtime_cycles
        assert ratio < 1.0
        assert ratio == pytest.approx(expected, rel=0.35)

    def test_runtime_aggregates_threads_onto_units(self):
        config = tiny()  # 4 units
        few_threads = make_workload(n_cores=4)
        many_threads = make_workload(n_cores=8)
        few = SimulationEngine(config).run(few_threads, AlwaysMiss())
        many = SimulationEngine(config).run(many_threads, AlwaysMiss())
        # Same total work on the same 4 physical units: similar runtime.
        assert many.runtime_cycles == pytest.approx(few.runtime_cycles, rel=0.2)

    def test_max_epochs_option(self):
        config = tiny()
        engine = SimulationEngine(config, EngineOptions(max_epochs=1))
        report = engine.run(make_workload(n_accesses=20_000), AlwaysMiss())
        assert report.hits.total_requests <= config.epoch_accesses

    def test_static_energy_tracks_runtime(self):
        config = tiny()
        fast = SimulationEngine(config).run(make_workload(), AlwaysLocalHit())
        slow = SimulationEngine(config).run(make_workload(), AlwaysMiss())
        assert slow.energy.static_nj > fast.energy.static_nj

"""Tests for the Table II parameter presets."""

import dataclasses

import pytest

from repro.sim.params import (
    DDR5_4800,
    HBM3,
    HMC2,
    KB,
    MB,
    CoreParams,
    CxlParams,
    NocParams,
    SramCacheParams,
    paper_hbm,
    paper_hmc,
    small,
    tiny,
)


class TestDramTimings:
    def test_hbm3_table_ii(self):
        assert HBM3.freq_mhz == 1600.0
        assert (HBM3.t_rcd, HBM3.t_cas, HBM3.t_rp) == (24, 24, 24)
        assert HBM3.rd_wr_pj_per_bit == 1.7
        assert HBM3.act_pre_nj == 0.6

    def test_hmc2_table_ii(self):
        assert HMC2.freq_mhz == 1250.0
        assert (HMC2.t_rcd, HMC2.t_cas, HMC2.t_rp) == (14, 14, 14)

    def test_ddr5_table_ii(self):
        assert DDR5_4800.freq_mhz == 2400.0
        assert (DDR5_4800.t_rcd, DDR5_4800.t_cas, DDR5_4800.t_rp) == (40, 40, 40)
        assert DDR5_4800.rd_wr_pj_per_bit == 3.2
        assert DDR5_4800.act_pre_nj == 3.3

    def test_row_hit_faster_than_miss(self):
        for timing in (HBM3, HMC2, DDR5_4800):
            assert timing.row_hit_ns < timing.row_miss_ns

    def test_hbm_row_hit_ns(self):
        # 24 cycles at 1600 MHz = 15 ns.
        assert HBM3.row_hit_ns == pytest.approx(15.0)
        assert HBM3.row_miss_ns == pytest.approx(45.0)

    def test_access_energy(self):
        hit = HBM3.access_energy_nj(64, row_miss=False)
        miss = HBM3.access_energy_nj(64, row_miss=True)
        assert miss == pytest.approx(hit + 0.6)
        assert hit == pytest.approx(64 * 8 * 1.7 / 1000.0)


class TestPaperPresets:
    def test_paper_hbm_scale(self):
        config = paper_hbm()
        assert config.n_stacks == 8
        assert config.units_per_stack == 16
        assert config.n_units == 128
        assert config.n_cores == 128
        assert config.unit_cache_bytes == 256 * MB
        assert config.total_cache_bytes == 32 * 1024 * MB  # 32 GB across units

    def test_paper_hmc_uses_hmc_timing(self):
        assert paper_hmc().ndp_dram.name == "hmc2"
        assert paper_hmc().memory_style == "hmc"

    def test_core_params(self):
        core = paper_hbm().core
        assert core.freq_ghz == 2.0
        assert core.l1i.size_bytes == 32 * KB
        assert core.l1i.ways == 2
        assert core.l1d.size_bytes == 64 * KB
        assert core.l1d.ways == 4

    def test_noc_table_ii(self):
        noc = paper_hbm().noc
        assert noc.intra_hop_ns == 1.5
        assert noc.inter_hop_ns == 10.0
        assert noc.inter_bw_gbps == 32.0

    def test_cxl_table_ii(self):
        cxl = paper_hbm().cxl
        assert cxl.link_ns == 200.0
        assert cxl.pj_per_bit == 11.4
        assert cxl.lanes == 16

    def test_stream_params(self):
        stream = paper_hbm().stream
        assert stream.slb_entries == 32
        assert stream.affine_block_bytes == 1 * KB
        assert stream.affine_space_bytes == 16 * MB
        assert stream.samplers_per_unit == 4
        assert stream.sampler_sets == 32
        assert stream.sampler_points == 64
        assert stream.max_streams == 512


class TestScaledPresets:
    def test_small_is_smaller(self):
        assert small().total_cache_bytes < paper_hbm().total_cache_bytes

    def test_small_hmc_variant(self):
        assert small("hmc").ndp_dram.name == "hmc2"

    def test_tiny_runs_few_units(self):
        assert tiny().n_units == 4

    def test_rows_per_unit(self):
        config = small()
        assert (
            config.rows_per_unit * config.ndp_dram.row_bytes
            == config.unit_cache_bytes
        )

    def test_scaled_override(self):
        config = small().scaled(epoch_accesses=123)
        assert config.epoch_accesses == 123

    def test_invalid_memory_style_rejected(self):
        with pytest.raises(ValueError):
            small().scaled(memory_style="weird")

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            small().scaled(stacks_x=0)


class TestParamValidation:
    def test_dram_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            dataclasses.replace(HBM3, freq_mhz=0.0)

    def test_dram_rejects_negative_timing(self):
        with pytest.raises(ValueError):
            dataclasses.replace(HBM3, t_cas=-1)

    def test_dram_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            dataclasses.replace(HBM3, row_bytes=0)
        with pytest.raises(ValueError):
            dataclasses.replace(HBM3, banks=0)

    def test_dram_rejects_negative_energy(self):
        with pytest.raises(ValueError):
            dataclasses.replace(HBM3, act_pre_nj=-0.1)

    def test_cxl_rejects_zero_lanes(self):
        with pytest.raises(ValueError):
            CxlParams(lanes=0)
        with pytest.raises(ValueError):
            CxlParams(channels=0)

    def test_cxl_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            CxlParams(link_ns=-1.0)

    def test_noc_rejects_negative_hop(self):
        with pytest.raises(ValueError):
            NocParams(intra_hop_ns=-1.0)

    def test_noc_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            NocParams(inter_bw_gbps=0.0)
        with pytest.raises(ValueError):
            NocParams(link_bits=0)

    def test_sram_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            SramCacheParams(size_bytes=0, ways=2)
        with pytest.raises(ValueError):
            SramCacheParams(size_bytes=1 * KB, ways=0)
        # Fewer lines than ways: not even one full set.
        with pytest.raises(ValueError):
            SramCacheParams(size_bytes=128, ways=4, line_bytes=64)

    def test_sram_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            SramCacheParams(size_bytes=1 * KB, ways=2, hit_ns=-0.5)

    def test_core_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            CoreParams(freq_ghz=0.0)

    def test_all_presets_pass_validation(self):
        # Construction itself runs every __post_init__.
        for preset in (paper_hbm, paper_hmc, small, tiny):
            preset()

"""Tests for the SRAM cache models (exact LRU and window filter)."""

import numpy as np
import pytest

from repro.sim.params import SramCacheParams
from repro.sim.sram_cache import SetAssocLRUCache, filter_through_l1


def params(size=1024, ways=4, line=64):
    return SramCacheParams(size_bytes=size, ways=ways, line_bytes=line)


class TestExactLRU:
    def test_repeat_hits(self):
        cache = SetAssocLRUCache(params())
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(32)  # same line

    def test_lru_eviction_order(self):
        # One-set cache with 2 ways.
        cache = SetAssocLRUCache(params(size=128, ways=2))
        cache.access(0)
        cache.access(64)
        cache.access(0)  # refresh line 0
        cache.access(128)  # evicts line 64 (LRU)
        assert cache.access(0)
        assert not cache.access(64)

    def test_set_isolation(self):
        cache = SetAssocLRUCache(params(size=256, ways=1))  # 4 sets
        cache.access(0)
        cache.access(64)
        assert cache.access(0)

    def test_hit_rate_accounting(self):
        cache = SetAssocLRUCache(params())
        cache.run(np.array([0, 0, 0, 0]))
        assert cache.hit_rate == pytest.approx(0.75)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssocLRUCache(params(size=192, ways=4))  # 3 lines, not divisible


class TestWindowFilter:
    def test_streaming_misses(self):
        addrs = np.arange(0, 64 * 1000, 64)
        result = filter_through_l1(addrs, params())
        assert result.hit_rate == 0.0

    def test_hot_line_hits(self):
        addrs = np.zeros(100, dtype=np.int64)
        result = filter_through_l1(addrs, params())
        assert result.hits == 99

    def test_same_line_offsets_hit(self):
        addrs = np.array([0, 8, 16, 24])
        result = filter_through_l1(addrs, params())
        assert result.hits == 3

    def test_exact_mode_uses_reference(self):
        addrs = np.array([0, 64, 0, 128, 64])
        exact = filter_through_l1(addrs, params(size=128, ways=2), exact=True)
        assert exact.hits + exact.misses == len(addrs)

    def test_window_tracks_exact_on_mixed_trace(self):
        """The fast filter should agree with exact LRU within ~15% hit rate
        on a representative mixed streaming/reuse trace."""
        rng = np.random.default_rng(7)
        hot = rng.integers(0, 16, size=2000) * 64  # 16 hot lines
        stream = np.arange(0, 64 * 2000, 64) + 1 << 20
        trace = np.empty(4000, dtype=np.int64)
        trace[0::2] = hot
        trace[1::2] = stream[:2000]
        p = params(size=4096, ways=4)
        fast = filter_through_l1(trace, p)
        exact = filter_through_l1(trace, p, exact=True)
        assert abs(fast.hit_rate - exact.hit_rate) < 0.15

"""Failure injection: malformed policy outcomes must fail loudly."""

import numpy as np
import pytest

from repro.sim.engine import RequestOutcome


def valid_kwargs(n=4):
    return dict(
        hit=np.zeros(n, dtype=bool),
        serving_unit=np.full(n, -1, dtype=np.int64),
        local_row=np.full(n, -1, dtype=np.int64),
        miss_probe_dram=np.zeros(n, dtype=bool),
        metadata_ns=np.zeros(n),
    )


class TestOutcomeValidation:
    def test_valid_outcome_accepted(self):
        RequestOutcome(**valid_kwargs())

    @pytest.mark.parametrize(
        "field", ["serving_unit", "local_row", "miss_probe_dram", "metadata_ns"]
    )
    def test_length_mismatch_rejected(self, field):
        kwargs = valid_kwargs()
        kwargs[field] = kwargs[field][:-1]
        with pytest.raises(ValueError, match=field):
            RequestOutcome(**kwargs)

    def test_hit_without_serving_unit_rejected(self):
        kwargs = valid_kwargs()
        kwargs["hit"] = np.array([True, False, False, False])
        with pytest.raises(ValueError, match="hit must name"):
            RequestOutcome(**kwargs)

    def test_hit_with_unit_accepted(self):
        kwargs = valid_kwargs()
        kwargs["hit"] = np.array([True, False, False, False])
        kwargs["serving_unit"] = np.array([2, -1, -1, -1])
        kwargs["local_row"] = np.array([0, -1, -1, -1])
        RequestOutcome(**kwargs)

"""The fault layer must be invisible when no fault ever fires.

For every policy, an engine constructed with an *empty* fault schedule
must produce a bit-identical SimulationReport to the engine without any
fault layer at all — same runtime, same energy, same hit counts, down to
float equality.  This pins the fault hooks as pure additions: all fault
arithmetic is gated on fault activity, never restructuring the healthy
path.
"""

from dataclasses import fields

import pytest

from repro.experiments.runner import POLICIES
from repro.faults import FaultSchedule
from repro.sim import SimulationEngine, tiny
from repro.workloads import TINY, build


def assert_reports_identical(a, b):
    for f in fields(a):
        if f.name == "faults":
            continue  # presence of the (all-zero) report is the one diff
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if hasattr(va, "__dataclass_fields__"):
            assert_reports_identical(va, vb)
        else:
            assert va == vb, f"field {f.name}: {va!r} != {vb!r}"


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_empty_schedule_is_bit_identical(policy_name):
    config = tiny()
    workload = build("pr", TINY)
    plain = SimulationEngine(config).run(workload, POLICIES[policy_name]())
    faulted = SimulationEngine(config, faults=FaultSchedule()).run(
        build("pr", TINY), POLICIES[policy_name]()
    )
    assert_reports_identical(plain, faulted)
    assert faulted.faults is not None
    assert faulted.faults.demoted_requests == 0
    assert faulted.faults.penalty_ns == 0.0
    assert plain.faults is None


def test_rerun_on_same_workload_object_is_deterministic():
    """Running the engine must not contaminate the shared workload: two
    runs on the *same* Workload instance agree bit for bit (this is what
    makes the experiment cache order-independent)."""
    config = tiny()
    workload = build("pr", TINY)
    first = SimulationEngine(config).run(workload, POLICIES["ndpext"]())
    second = SimulationEngine(config).run(workload, POLICIES["ndpext"]())
    assert_reports_identical(first, second)

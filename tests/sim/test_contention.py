"""Tests for the shared-memory contention model (queueing + roofline)."""

import numpy as np
import pytest

from repro.core.stream import StreamTable, configure_stream
from repro.sim.engine import DramCachePolicy, RequestOutcome, SimulationEngine
from repro.sim.params import tiny
from repro.workloads.trace import Trace, Workload

from dataclasses import replace


class AlwaysMiss(DramCachePolicy):
    name = "always-miss"

    def setup(self, config, topology, workload):
        pass

    def process(self, epoch):
        n = len(epoch)
        return RequestOutcome(
            hit=np.zeros(n, dtype=bool),
            serving_unit=np.full(n, -1, dtype=np.int64),
            local_row=np.full(n, -1, dtype=np.int64),
            miss_probe_dram=np.zeros(n, dtype=bool),
            metadata_ns=np.zeros(n),
        )


def gather_workload(n=4000, n_cores=4, seed=1):
    table = StreamTable()
    stream = configure_stream(
        table, "indirect", base=4096, size=1 << 20, elem_size=64
    )
    rng = np.random.default_rng(seed)
    addrs = stream.base + rng.integers(0, stream.n_elements, n) * 64
    trace = Trace(
        core=np.arange(n, dtype=np.int32) % n_cores,
        addr=addrs,
        write=np.zeros(n, bool),
        sid=np.full(n, stream.sid, np.int32),
    )
    return Workload(name="gather", streams=table, trace=trace)


class TestQueueing:
    def test_fewer_channels_is_slower(self):
        config = tiny()
        wide = config.scaled(cxl=replace(config.cxl, channels=8))
        narrow = config.scaled(cxl=replace(config.cxl, channels=1))
        wl = gather_workload()
        fast = SimulationEngine(wide).run(wl, AlwaysMiss())
        slow = SimulationEngine(narrow).run(wl, AlwaysMiss())
        assert slow.runtime_cycles >= fast.runtime_cycles

    def test_queue_delay_positive_under_load(self):
        config = tiny().scaled(cxl=replace(tiny().cxl, channels=1))
        engine = SimulationEngine(config)
        wl = gather_workload()
        epoch = wl.trace.epochs(config.epoch_accesses)[0]
        # Assemble the inputs _queueing_delay needs.
        engine.run(wl, AlwaysMiss())  # sets _sid_affine
        stall = np.full(len(epoch), 100.0)
        ext_mask = np.ones(len(epoch), dtype=bool)
        delay = engine._queueing_delay(epoch, stall, ext_mask, wl)
        assert delay > 0

    def test_no_misses_no_delay(self):
        config = tiny()
        engine = SimulationEngine(config)
        wl = gather_workload()
        epoch = wl.trace.epochs(config.epoch_accesses)[0]
        delay = engine._queueing_delay(
            epoch, np.zeros(len(epoch)), np.zeros(len(epoch), bool), wl
        )
        assert delay == 0.0


class TestRoofline:
    def test_bound_scales_with_misses(self):
        config = tiny()
        engine = SimulationEngine(config)
        engine._ext_accesses = 1000
        low = engine._bandwidth_bound_ns()
        engine._ext_accesses = 2000
        assert engine._bandwidth_bound_ns() == pytest.approx(2 * low)

    def test_zero_without_traffic(self):
        engine = SimulationEngine(tiny())
        engine._ext_accesses = 0
        assert engine._bandwidth_bound_ns() == 0.0

    def test_service_time_components(self):
        config = tiny()
        engine = SimulationEngine(config)
        service = engine._ext_service_ns()
        ext = config.ext_dram
        assert service > ext.row_miss_ns / ext.banks  # plus transfer time

    def test_inter_stack_link_bound(self):
        """A remote-heavy access pattern is bounded by the inter-stack
        links' aggregate bandwidth when those links are slow."""
        from repro.sim.params import small
        from dataclasses import replace as dreplace

        base = small()
        slow_links = base.scaled(
            noc=dreplace(base.noc, inter_bw_gbps=0.05)
        )

        class RemoteHit(DramCachePolicy):
            name = "remote-hit"

            def setup(self, config, topology, workload):
                self.config = config
                self.far = int(np.argmax(topology.inter_hops[0]))

            def process(self, epoch):
                n = len(epoch)
                return RequestOutcome(
                    hit=np.ones(n, dtype=bool),
                    serving_unit=np.full(n, self.far, dtype=np.int64),
                    local_row=np.zeros(n, dtype=np.int64),
                    miss_probe_dram=np.zeros(n, dtype=bool),
                    metadata_ns=np.zeros(n),
                )

        wl = gather_workload(n=6000, n_cores=4)
        fast = SimulationEngine(base).run(wl, RemoteHit())
        slow = SimulationEngine(slow_links).run(wl, RemoteHit())
        assert slow.runtime_cycles > fast.runtime_cycles * 1.5

    def test_runtime_respects_roofline(self):
        """A miss-heavy run's runtime is at least the bandwidth bound."""
        config = tiny().scaled(cxl=replace(tiny().cxl, channels=1))
        engine = SimulationEngine(config)
        report = engine.run(gather_workload(n=8000), AlwaysMiss())
        bound_cycles = engine._bandwidth_bound_ns() / config.core.cycle_ns
        assert report.runtime_cycles >= bound_cycles * 0.999

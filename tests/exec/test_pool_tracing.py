"""Tracing through the supervised pool: per-worker task timelines are
shipped over the result pipes, clock-corrected, and merged into the
supervisor's tracer — serial and parallel runs stay bit-identical."""

import pytest

from repro.core import NdpExtPolicy
from repro.exec.parallel import CellTask, fork_available, run_supervised
from repro.obs.perfreport import (
    bottleneck_report,
    critical_path,
    missing_engine_phases,
)
from repro.obs.tracing import PerfTracer, activate
from repro.sim import tiny
from repro.workloads import TINY, build
from tests.exec.test_cache import assert_reports_identical

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs fork")


def _tasks(n=4):
    config = tiny()
    return [
        CellTask(
            build(name, TINY),
            config,
            NdpExtPolicy,
            label=f"{name}/ndpext",
        )
        for name in ("pr", "hotspot", "recsys", "mv")[:n]
    ]


def _run(jobs, tracer):
    with activate(tracer):
        return run_supervised(_tasks(), jobs=jobs).reports


class TestSerialTracing:
    def test_serial_run_traces_tasks(self):
        tracer = PerfTracer()
        reports = _run(1, tracer)
        assert all(r is not None for r in reports)
        tasks = [e for e in tracer.events if e.cat == "task" and e.name == "task"]
        assert len(tasks) == 4
        assert {e.args["label"] for e in tasks} == {
            "pr/ndpext", "hotspot/ndpext", "recsys/ndpext", "mv/ndpext"
        }
        # Serial: the critical path is all four tasks in order.
        assert len(critical_path(tracer.events)) == 4
        assert tracer.aggregates["pool.run"].calls == 1


@needs_fork
class TestPoolTracing:
    def test_worker_spans_merge_across_processes(self):
        tracer = PerfTracer()
        reports = _run(2, tracer)
        assert all(r is not None for r in reports)
        tasks = [e for e in tracer.events if e.cat == "task" and e.name == "task"]
        assert len(tasks) == 4
        # The initial dispatch hands one task to each worker, so at
        # least two distinct worker pids must appear.
        assert len({e.pid for e in tasks}) >= 2
        # Engine phases recorded inside workers fold into the parent's
        # aggregates through the snapshot merge.
        assert missing_engine_phases(tracer) == []
        assert tracer.aggregates["engine.run"].calls == 4
        # Supervisor-side spans coexist with the merged worker spans.
        assert "pool.wait" in tracer.aggregates
        assert tracer.aggregates["pool.run"].calls == 1

    def test_merged_timeline_yields_pool_report(self):
        tracer = PerfTracer()
        _run(2, tracer)
        prof = bottleneck_report(tracer)
        assert prof["critical_path"], "merged task spans must chain"
        assert prof["critical_path_s"] > 0
        util = prof["worker_utilization"]
        assert len(util) >= 2
        for row in util.values():
            assert row["label"].startswith("worker-")
            assert 0.0 < row["utilization"] <= 1.0

    def test_traced_pool_is_bit_identical_to_untraced_serial(self):
        plain = [task.run() for task in _tasks()]
        tracer = PerfTracer()
        traced = _run(2, tracer)
        for a, b in zip(plain, traced):
            assert_reports_identical(a, b)

    def test_untraced_pool_ships_no_snapshots(self):
        reports = run_supervised(_tasks(2), jobs=2).reports
        assert all(r is not None for r in reports)

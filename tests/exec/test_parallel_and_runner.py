"""Parallel fan-out bit-equivalence and the runner's two-layer cache."""

import pytest

from repro.core import NdpExtPolicy
from repro.exec.parallel import CellTask, fork_available, run_cells
from repro.experiments.runner import Cell, ExperimentContext
from repro.sim import SimulationEngine, tiny
from repro.workloads import TINY, build
from tests.exec.test_cache import assert_reports_identical


@pytest.fixture()
def context(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return ExperimentContext(preset="tiny")


GRID = [
    Cell("pr", "ndpext"),
    Cell("pr", "nexus"),
    Cell("hotspot", "ndpext"),
    Cell("pr", "ndpext"),  # duplicate: must dedup, not re-simulate
]


class TestRunCells:
    def test_parallel_bit_identical_to_serial(self):
        config = tiny()
        workload = build("pr", TINY)
        tasks = [
            CellTask(workload, config, NdpExtPolicy),
            CellTask(workload, config, lambda: NdpExtPolicy(mode="static")),
        ]
        serial = run_cells(tasks, jobs=1)
        parallel = run_cells(tasks, jobs=2)
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert_reports_identical(a, b)

    def test_jobs_one_never_forks(self, monkeypatch):
        import multiprocessing

        def boom(*a, **kw):  # pragma: no cover - fails the test if hit
            raise AssertionError("pool created for jobs=1")

        monkeypatch.setattr(multiprocessing, "get_context", boom)
        config = tiny()
        workload = build("pr", TINY)
        reports = run_cells([CellTask(workload, config, NdpExtPolicy)], jobs=1)
        assert reports[0].runtime_cycles > 0


class TestRunMany:
    def test_matches_run_and_dedups(self, context):
        reports = context.run_many(GRID, jobs=1)
        assert len(reports) == len(GRID)
        # Duplicate cells resolve to the same object, simulated once.
        assert reports[0] is reports[3]
        # And agree with the serial scalar API.
        assert_reports_identical(reports[1], context.run("pr", "nexus"))

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_parallel_matches_serial(self, context, monkeypatch, tmp_path):
        serial = context.run_many(GRID, jobs=1)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "other"))
        fresh = ExperimentContext(preset="tiny")
        parallel = fresh.run_many(GRID, jobs=2)
        for a, b in zip(serial, parallel):
            assert_reports_identical(a, b)


class TestDiskLayer:
    def test_second_context_runs_zero_simulations(self, context, monkeypatch):
        context.run_many(GRID)
        assert context.cache_misses == 3  # unique cells simulated once

        # A fresh context sharing the cache dir must never touch the
        # engine: make simulation impossible and rerun everything.
        def boom(self, *a, **kw):
            raise AssertionError("engine invoked despite warm disk cache")

        monkeypatch.setattr(SimulationEngine, "run", boom)
        warm = ExperimentContext(preset="tiny")
        reports = warm.run_many(GRID)
        assert warm.cache_misses == 0
        assert warm.cache_hits_disk == 3
        for a, b in zip(context.run_many(GRID), reports):
            assert_reports_identical(a, b)

    def test_disk_cache_disabled_by_env(self, context, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        context.run("pr", "ndpext")
        fresh = ExperimentContext(preset="tiny")
        fresh.run("pr", "ndpext")
        assert fresh.cache_hits_disk == 0
        assert fresh.cache_misses == 1

    def test_recording_bypasses_caches(self, context):
        from repro.obs import Recorder

        context.run("pr", "ndpext")
        hits_before = context.cache_hits_mem + context.cache_hits_disk
        recorded = context.run(
            "pr", "ndpext", recorder=Recorder(workload="pr")
        )
        assert recorded.timeline is not None
        assert context.cache_hits_mem + context.cache_hits_disk == hits_before
        # The cached (trace-free) report is still served afterwards.
        assert context.run("pr", "ndpext").timeline is None


class TestContextHygiene:
    def test_clear_resets_state_and_counters(self, context):
        context.run("pr", "ndpext")
        assert context._reports and context._workloads
        context.clear()
        assert not context._reports and not context._workloads
        assert context.cache_misses == 0
        # Disk survives a clear(): the rerun is a disk hit, not a miss.
        context.run("pr", "ndpext")
        assert context.cache_hits_disk == 1
        assert context.cache_misses == 0

    def test_report_cache_is_bounded(self, context):
        context.max_reports = 2
        context.run("pr", "ndpext")
        context.run("pr", "nexus")
        context.run("pr", "jigsaw")
        assert len(context._reports) == 2
        # The oldest entry was evicted; rerunning is a disk hit.
        disk_before = context.cache_hits_disk
        context.run("pr", "ndpext")
        assert context.cache_hits_disk == disk_before + 1

"""Workload trace memoization and the bench harness smoke test."""

import numpy as np
import pytest

from repro.exec.cache import cache_root
from repro.exec.tracecache import TraceCache, workload_key
from repro.workloads import TINY, build
from repro.workloads.registry import _build_uncached


def assert_workloads_identical(a, b):
    assert a.name == b.name
    assert np.array_equal(a.trace.core, b.trace.core)
    assert np.array_equal(a.trace.addr, b.trace.addr)
    assert np.array_equal(a.trace.write, b.trace.write)
    assert np.array_equal(a.trace.sid, b.trace.sid)
    assert a.compute_cycles_per_access == b.compute_cycles_per_access
    assert a.phases == b.phases
    sa, sb = list(a.streams), list(b.streams)
    assert len(sa) == len(sb)
    for x, y in zip(sa, sb):
        assert (x.sid, x.kind, x.base, x.size, x.elem_size) == (
            y.sid,
            y.kind,
            y.base,
            y.size,
            y.elem_size,
        )
        assert (x.read_only, x.dims, x.order, x.name) == (
            y.read_only,
            y.dims,
            y.order,
            y.name,
        )


@pytest.fixture()
def cache_dir(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


def _count_builds(counter_path):
    """Child-process body for the single-builder concurrency test.

    Builds "pr"/TINY through the registry (hitting the shared trace
    cache) with the real generator wrapped to log one line per actual
    generation — the flock must collapse four concurrent builders to
    one.
    """
    from repro.workloads import registry

    uncached = registry._build_uncached

    def logging_build(name, scale):
        workload = uncached(name, scale)
        with open(counter_path, "a") as f:
            f.write("built\n")
        return workload

    registry._build_uncached = logging_build
    workload = registry.build("pr", TINY)
    assert len(workload.trace) > 0


class TestTraceCache:
    def test_npz_round_trip(self, cache_dir):
        workload = _build_uncached("pr", TINY)
        cache = TraceCache(cache_dir)
        key = workload_key("pr", TINY)
        cache.put(key, workload)
        loaded = cache.get(key)
        assert loaded is not None
        assert_workloads_identical(workload, loaded)

    def test_registry_build_memoizes(self, cache_dir):
        first = build("pr", TINY)
        assert any(cache_root().rglob("meta.json"))
        cached = build("pr", TINY)
        assert_workloads_identical(first, cached)

    def test_cached_trace_is_mmapped_read_only(self, cache_dir):
        build("pr", TINY)  # populate
        cached = build("pr", TINY)
        # Served from the store via mmap: pages are shared read-only
        # across every process that loads the same entry.
        assert not cached.trace.addr.flags.writeable

    def test_multi_process_merge_round_trips(self, cache_dir):
        scale = TINY.scaled(processes=2, n_cores=4)
        assert_workloads_identical(build("pr", scale), build("pr", scale))

    def test_scale_changes_key(self):
        assert workload_key("pr", TINY) != workload_key(
            "pr", TINY.scaled(seed=7)
        )
        assert workload_key("pr", TINY) != workload_key("bfs", TINY)

    def test_corrupt_entry_is_quarantined_miss(self, cache_dir):
        workload = _build_uncached("pr", TINY)
        cache = TraceCache(cache_dir)
        key = workload_key("pr", TINY)
        cache.put(key, workload)
        (cache._dir(key) / "meta.json").write_text("not json")
        assert cache.get(key) is None
        assert cache.quarantined == 1
        # The broken entry was moved aside, not left to fail forever.
        assert not cache._dir(key).exists()
        assert (cache.root / "quarantine" / key).exists()

    def test_truncated_array_is_quarantined_and_rebuilt(self, cache_dir):
        build("pr", TINY)  # populate the store
        # In-memory reference: the cached ``build`` result is mmapped to
        # the very file we are about to truncate, so comparing against
        # it would SIGBUS — the whole point of the corruption.
        expected = _build_uncached("pr", TINY)
        cache = TraceCache(cache_root())
        key = workload_key("pr", TINY)
        path = cache._dir(key) / "addr.npy"
        path.write_bytes(path.read_bytes()[:100])
        # The registry recovers transparently: quarantine + rebuild.
        rebuilt = build("pr", TINY)
        assert_workloads_identical(expected, rebuilt)
        assert (cache.root / "quarantine" / key).exists()

    def test_single_builder_under_concurrency(self, cache_dir, tmp_path):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")
        counter = tmp_path / "builds.log"
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_count_builds, args=(str(counter),))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        # Exactly one of the four concurrent processes generated the
        # trace; the rest blocked on the lock and mmapped its entry.
        assert counter.read_text().count("built\n") == 1

    def test_disabled_env_skips_disk(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c2"))
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        build("pr", TINY)
        assert not (tmp_path / "c2").exists()


class TestBenchSmoke:
    def test_quick_bench_end_to_end(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "bench-cache"))
        from repro.exec.bench import run_bench

        result = run_bench(quick=True, jobs=2)
        engine = result["engine"]
        suite = result["suite"]
        kernels = result["kernels"]
        paper = result["engine_paper"]
        assert engine["accesses_per_second"] > 0
        assert engine["l1_grouped_seconds"] > 0
        # The backend comparison timed bit-identical reports.
        assert kernels["reports_identical"]
        assert set(kernels["backends"]) >= {"numpy", "python"}
        assert kernels["kernel_speedup"] > 1.0
        assert paper["n_units"] == 128
        assert paper["accesses_per_second"] > 0
        assert suite["cells"] == 4
        # The warm pass must be pure cache: zero simulations.
        assert suite["warm_counters"]["cache_misses"] == 0
        assert suite["warm_counters"]["cache_hits_disk"] == suite["cells"]
        assert suite["warm_speedup"] > 1.0

    def test_cli_bench_writes_json(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
        monkeypatch.chdir(tmp_path)
        from repro.__main__ import main

        out = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out


class TestBuildSpanAttribution:
    """The workload.build span must cover actual generation only: a warm
    TraceCache hit is storage I/O, not build time, and double-counting it
    skewed profile and bench attributions (the bug this class pins)."""

    def _spans(self, fn):
        from repro.obs.tracing import PerfTracer, activate

        tracer = PerfTracer(process_label="test")
        with activate(tracer):
            fn()
        return [e.name for e in tracer.events]

    def test_cold_build_emits_build_span(self, cache_dir):
        names = self._spans(lambda: build("pr", TINY))
        assert "workload.build" in names

    def test_warm_mmap_hit_emits_no_build_span(self, cache_dir):
        build("pr", TINY)  # populate the cache, untraced
        names = self._spans(lambda: build("pr", TINY))
        assert "workload.build" not in names
        assert any(n.startswith("cache.trace_load") for n in names)

    def test_cache_disabled_still_attributes_build(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c3"))
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        names = self._spans(lambda: build("pr", TINY))
        assert "workload.build" in names

"""Persistent report cache: keys, round trips, invalidation, tolerance."""

import json
from dataclasses import fields

import pytest

from repro.core import NdpExtPolicy
from repro.exec.cache import (
    ReportCache,
    cache_enabled,
    cache_root,
    cell_key,
    code_stamp,
)
from repro.faults import FaultSchedule, UnitFailure
from repro.sim import SimulationEngine, tiny
from repro.sim.metrics import SimulationReport
from repro.workloads import TINY, build


def assert_reports_identical(a, b, skip=("timeline",)):
    for f in fields(a):
        if f.name in skip:
            continue
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if hasattr(va, "__dataclass_fields__"):
            assert_reports_identical(va, vb, skip=skip)
        else:
            assert va == vb, f"field {f.name}: {va!r} != {vb!r}"


@pytest.fixture(scope="module")
def report():
    return SimulationEngine(tiny()).run(build("pr", TINY), NdpExtPolicy())


class TestCellKey:
    def test_stable_across_calls(self):
        config = tiny()
        assert cell_key("pr", "ndpext", config, TINY) == cell_key(
            "pr", "ndpext", config, TINY
        )

    def test_discriminates_every_ingredient(self):
        config = tiny()
        base = cell_key("pr", "ndpext", config, TINY)
        assert cell_key("bfs", "ndpext", config, TINY) != base
        assert cell_key("pr", "nexus", config, TINY) != base
        assert cell_key("pr", "ndpext", config, TINY.scaled(seed=2)) != base
        assert cell_key("pr", "ndpext", config, TINY, cache_key="v:1") != base
        assert (
            cell_key("pr", "ndpext", config, TINY, faults=FaultSchedule())
            != base
        )
        assert (
            cell_key(
                "pr",
                "ndpext",
                config,
                TINY,
                faults=FaultSchedule((UnitFailure(epoch=1, unit=0),)),
            )
            != cell_key("pr", "ndpext", config, TINY, faults=FaultSchedule())
        )

    def test_config_content_not_just_name(self):
        config = tiny()
        renamed_only = config.scaled(name=config.name, epoch_accesses=123)
        assert cell_key("pr", "ndpext", config, TINY) != cell_key(
            "pr", "ndpext", renamed_only, TINY
        )

    def test_stamp_changes_invalidate(self):
        config = tiny()
        assert cell_key("pr", "ndpext", config, TINY, stamp="a") != cell_key(
            "pr", "ndpext", config, TINY, stamp="b"
        )
        # The real stamp is deterministic within one process.
        assert code_stamp() == code_stamp()


class TestReportJson:
    def test_round_trip_is_exact(self, report):
        rebuilt = SimulationReport.from_json(
            json.loads(json.dumps(report.to_json()))
        )
        assert_reports_identical(report, rebuilt)

    def test_float_repr_survives_json(self, report):
        # JSON floats round-trip by repr; cycles and ns must come back
        # bit-for-bit, not merely approximately.
        data = json.loads(json.dumps(report.to_json()))
        assert data["runtime_cycles"] == report.runtime_cycles
        assert data["per_epoch_cycles"] == report.per_epoch_cycles


class TestReportCache:
    def test_round_trip(self, tmp_path, report):
        cache = ReportCache(tmp_path)
        key = cell_key("pr", "ndpext", tiny(), TINY)
        cache.put(key, report)
        loaded = cache.get(key)
        assert loaded is not None
        assert_reports_identical(report, loaded)
        assert cache.hits == 1

    def test_missing_entry_is_miss(self, tmp_path):
        cache = ReportCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_miss_not_crash(self, tmp_path, report):
        cache = ReportCache(tmp_path)
        key = cell_key("pr", "ndpext", tiny(), TINY)
        cache.put(key, report)
        path = cache._path(key)
        path.write_text("{ truncated garbage")
        assert cache.get(key) is None

    def test_unknown_schema_is_miss(self, tmp_path, report):
        cache = ReportCache(tmp_path)
        key = cell_key("pr", "ndpext", tiny(), TINY)
        cache.put(key, report)
        entry = json.loads(cache._path(key).read_text())
        entry["schema"] = 999
        cache._path(key).write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_unserializable_report_skipped(self, tmp_path):
        cache = ReportCache(tmp_path)

        class Weird:
            pass

        broken = SimulationReport(
            policy="p", workload="w", runtime_cycles=Weird()
        )
        cache.put("f" * 64, broken)  # must not raise
        assert cache.get("f" * 64) is None


class TestEnvKnobs:
    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "x"))
        assert cache_root() == tmp_path / "x"

    def test_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        assert not cache_enabled()
        monkeypatch.setenv("REPRO_DISK_CACHE", "1")
        assert cache_enabled()

"""--jobs auto sizing and the context-managed throwaway cache dir."""

import os
from pathlib import Path

import pytest

from repro.exec.cache import CACHE_DIR_ENV, throwaway_cache_dir
from repro.exec.parallel import AUTO_JOBS_CAP, auto_jobs


class TestAutoJobs:
    @pytest.mark.parametrize(
        "cpus,expected",
        [
            (1, 1),
            (2, 2),
            (4, 3),  # leave one core for the parent
            (8, 7),
            (9, 8),  # capped
            (64, AUTO_JOBS_CAP),
        ],
    )
    def test_sizing(self, monkeypatch, cpus, expected):
        monkeypatch.setattr(os, "cpu_count", lambda: cpus)
        assert auto_jobs() == expected

    def test_unknown_cpu_count_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert auto_jobs() == 1

    def test_custom_cap(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 32)
        assert auto_jobs(cap=3) == 3


class TestJobsArg:
    def test_auto_resolves_to_int(self, monkeypatch):
        from repro.__main__ import _jobs_arg

        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert _jobs_arg("auto") == 3
        assert _jobs_arg("AUTO") == 3

    def test_explicit_integer_unchanged(self):
        from repro.__main__ import _jobs_arg

        assert _jobs_arg("5") == 5

    def test_garbage_is_a_parse_error(self):
        import argparse

        from repro.__main__ import _jobs_arg

        with pytest.raises(argparse.ArgumentTypeError):
            _jobs_arg("many")


class TestThrowawayCacheDir:
    def test_redirects_and_restores(self, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, "/original")
        with throwaway_cache_dir() as tmp:
            assert os.environ[CACHE_DIR_ENV] == str(tmp)
            assert Path(tmp).is_dir()
        assert os.environ[CACHE_DIR_ENV] == "/original"
        assert not Path(tmp).exists()

    def test_restores_unset_variable(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        with throwaway_cache_dir():
            assert CACHE_DIR_ENV in os.environ
        assert CACHE_DIR_ENV not in os.environ

    def test_exception_safe(self, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, "/original")
        with pytest.raises(RuntimeError, match="boom"):
            with throwaway_cache_dir() as tmp:
                (Path(tmp) / "partial.json").write_text("{}")
                raise RuntimeError("boom")
        assert os.environ[CACHE_DIR_ENV] == "/original"
        assert not Path(tmp).exists()

    def test_inner_redirect_still_restored(self, monkeypatch):
        """bench points the var at subdirectories inside the block; the
        manager must still restore the original on exit."""
        monkeypatch.setenv(CACHE_DIR_ENV, "/original")
        with throwaway_cache_dir() as tmp:
            os.environ[CACHE_DIR_ENV] = str(tmp / "phase2")
        assert os.environ[CACHE_DIR_ENV] == "/original"

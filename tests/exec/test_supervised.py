"""Chaos paths of the supervised pool: SIGKILLed workers, hangs,
transient failures, poison-list quarantine, and checkpoint/resume."""

import json
import os
import time
import types

import pytest

from repro.baselines import NexusPolicy
from repro.core import NdpExtPolicy
from repro.exec.checkpoint import SweepManifest
from repro.exec.parallel import (
    CHAOS_KILL_ENV,
    CellExecutionError,
    CellTask,
    RetryPolicy,
    fork_available,
    run_cells,
    run_supervised,
    schedule_order,
)
from repro.experiments.runner import Cell, ExperimentContext
from repro.sim import SimulationEngine, tiny
from repro.workloads import TINY, build
from tests.exec.test_cache import assert_reports_identical

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs fork")

GRID = [
    Cell("pr", "ndpext"),
    Cell("pr", "nexus"),
    Cell("hotspot", "ndpext"),
]


@pytest.fixture()
def cache_dir(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path


def _grid_tasks():
    config = tiny()
    workload = build("pr", TINY)
    return [
        CellTask(workload, config, NdpExtPolicy, label="pr/ndpext"),
        CellTask(
            workload,
            config,
            lambda: NdpExtPolicy(mode="static"),
            label="pr/static",
        ),
        CellTask(workload, config, NexusPolicy, label="pr/nexus"),
    ]


def _always_boom():
    raise ValueError("policy exploded")


def _flaky_policy(flag):
    """Fails the first attempt (marked by a flag file, so the failure is
    visible across worker processes), succeeds on the retry."""

    def factory():
        if not os.path.exists(flag):
            open(flag, "w").close()
            raise RuntimeError("transient glitch")
        return NdpExtPolicy()

    return factory


def _hang_once_policy(flag):
    def factory():
        if not os.path.exists(flag):
            open(flag, "w").close()
            time.sleep(300)
        return NdpExtPolicy()

    return factory


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(seed=3)
        assert policy.backoff_s(5, 1) == policy.backoff_s(5, 1)
        assert policy.backoff_s(5, 1) != policy.backoff_s(5, 2)
        for attempt in range(1, 9):
            backoff = policy.backoff_s(0, attempt)
            assert 0.0 < backoff <= policy.backoff_cap_s

    def test_explicit_timeout_wins(self):
        assert RetryPolicy(timeout_s=5.0).timeout_for(10**9) == 5.0

    def test_derived_timeout_scales_with_cell_size(self):
        policy = RetryPolicy()
        assert policy.timeout_for(0) == policy.timeout_floor_s
        big = 10**9
        assert policy.timeout_for(big) == pytest.approx(
            big / policy.timeout_accesses_per_s
        )


class TestScheduleOrder:
    def test_interleaves_workload_groups_longest_first(self):
        big = types.SimpleNamespace(trace=[0] * 100)
        small = types.SimpleNamespace(trace=[0] * 10)
        tasks = [
            CellTask(big, None, object),
            CellTask(big, None, object),
            CellTask(small, None, object),
        ]
        # Round-robin across groups: workers draw *distinct* workloads,
        # so concurrent trace builds never serialize on one flock.
        assert schedule_order(tasks) == [0, 2, 1]

    def test_is_a_permutation(self):
        tasks = _grid_tasks()
        assert sorted(schedule_order(tasks)) == list(range(len(tasks)))


class TestChaosKills:
    @needs_fork
    def test_sigkilled_workers_recover_bit_identical(self, monkeypatch):
        serial = run_cells(_grid_tasks(), jobs=1)
        # Every worker SIGKILLs itself before the first attempt of every
        # even-indexed cell: two deaths, two retries, zero lost results.
        monkeypatch.setenv(CHAOS_KILL_ENV, "2")
        outcome = run_supervised(_grid_tasks(), jobs=2)
        assert not outcome.poisoned
        assert outcome.worker_deaths == 2
        assert outcome.retries == 2
        for a, b in zip(serial, outcome.reports):
            assert_reports_identical(a, b)

    @needs_fork
    def test_run_many_under_chaos_matches_serial(
        self, cache_dir, monkeypatch, tmp_path
    ):
        serial_ctx = ExperimentContext(preset="tiny")
        serial = serial_ctx.run_many(GRID, jobs=1)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "other"))
        monkeypatch.setenv(CHAOS_KILL_ENV, "2")
        manifest_path = tmp_path / "chaos.jsonl"
        chaos_ctx = ExperimentContext(
            preset="tiny", manifest_path=str(manifest_path)
        )
        chaos = chaos_ctx.run_many(GRID, jobs=2)
        assert chaos_ctx.worker_deaths >= 1
        for a, b in zip(serial, chaos):
            assert_reports_identical(a, b)
        # Every completed cell was journaled despite the kills.
        assert SweepManifest(manifest_path).done_count == len(GRID)

    @needs_fork
    def test_retry_events_reach_recorder(self, cache_dir, monkeypatch):
        from repro.obs import Recorder

        monkeypatch.setenv(CHAOS_KILL_ENV, "2")
        recorder = Recorder(workload="grid")
        context = ExperimentContext(preset="tiny")
        context.run_many(GRID, jobs=2, recorder=recorder)
        assert recorder.counters.get("runner.exec_retry", 0) >= 1
        retries = recorder.events_of("exec_retry")
        assert retries and retries[0]["failure"] == "worker-death"


class TestRetries:
    def test_serial_retries_transient_failures(self, tmp_path):
        task = CellTask(
            build("pr", TINY),
            tiny(),
            _flaky_policy(str(tmp_path / "flag")),
            label="pr/flaky",
        )
        outcome = run_supervised(
            [task], jobs=1, policy=RetryPolicy(backoff_base_s=0.001)
        )
        assert outcome.reports[0] is not None
        assert outcome.retries == 1
        assert outcome.attempts == 2
        assert not outcome.poisoned

    @needs_fork
    def test_parallel_retries_worker_exceptions(self, tmp_path):
        task = CellTask(
            build("pr", TINY),
            tiny(),
            _flaky_policy(str(tmp_path / "flag")),
            label="pr/flaky",
        )
        outcome = run_supervised(
            [task], jobs=2, policy=RetryPolicy(backoff_base_s=0.001)
        )
        assert outcome.reports[0] is not None
        assert outcome.retries == 1
        assert not outcome.poisoned

    @needs_fork
    def test_hung_worker_is_killed_and_cell_retried(self, tmp_path):
        task = CellTask(
            build("pr", TINY),
            tiny(),
            _hang_once_policy(str(tmp_path / "flag")),
            label="pr/hang",
        )
        policy = RetryPolicy(timeout_s=2.0, backoff_base_s=0.01)
        start = time.monotonic()
        outcome = run_supervised([task], jobs=2, policy=policy)
        assert outcome.timeouts == 1
        assert outcome.reports[0] is not None
        assert not outcome.poisoned
        # The 300 s sleep was cut off at the deadline, not waited out.
        assert time.monotonic() - start < 60


class TestPoisonList:
    def test_strict_raises_after_batch_completes(self):
        workload = build("pr", TINY)
        config = tiny()
        bad = CellTask(workload, config, _always_boom, label="pr/bad")
        good = CellTask(workload, config, NdpExtPolicy, label="pr/good")
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.001)
        with pytest.raises(CellExecutionError) as err:
            run_cells([bad, good], jobs=1, policy=policy)
        assert "pr/bad" in str(err.value)
        assert "ValueError" in str(err.value)

    def test_non_strict_returns_placeholders(self):
        workload = build("pr", TINY)
        config = tiny()
        bad = CellTask(workload, config, _always_boom, label="pr/bad")
        good = CellTask(workload, config, NdpExtPolicy, label="pr/good")
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.001)
        outcome = run_supervised([bad, good], jobs=1, policy=policy)
        assert outcome.reports[0] is None
        assert outcome.reports[1] is not None
        poisoned = outcome.poisoned[0]
        assert poisoned.kind == "exception"
        assert poisoned.attempts == 2
        assert "policy exploded" in poisoned.error

    @needs_fork
    def test_repeated_worker_death_quarantines(self, monkeypatch):
        monkeypatch.setenv(CHAOS_KILL_ENV, "1")
        task = CellTask(build("pr", TINY), tiny(), NdpExtPolicy, label="pr/k")
        outcome = run_supervised(
            [task], jobs=2, policy=RetryPolicy(max_attempts=1)
        )
        assert outcome.reports == [None]
        assert outcome.worker_deaths == 1
        assert outcome.poisoned[0].kind == "worker-death"


class TestResume:
    def test_resume_recomputes_nothing(self, cache_dir, monkeypatch, tmp_path):
        manifest_path = tmp_path / "sweep.jsonl"
        first = ExperimentContext(
            preset="tiny", manifest_path=str(manifest_path)
        )
        reports = first.run_many(GRID, jobs=1)
        assert SweepManifest(manifest_path).done_count == len(GRID)

        def boom(self, *a, **kw):  # pragma: no cover - fails the test
            raise AssertionError("re-simulated a journaled cell")

        monkeypatch.setattr(SimulationEngine, "run", boom)
        resumed = ExperimentContext(
            preset="tiny", manifest_path=str(manifest_path)
        )
        again = resumed.run_many(GRID, jobs=1)
        assert resumed.cache_misses == 0
        assert resumed.resumed_cells == len(GRID)
        for a, b in zip(reports, again):
            assert_reports_identical(a, b)

    def test_interrupted_sweep_resumes_only_missing(self, cache_dir, tmp_path):
        manifest = str(tmp_path / "sweep.jsonl")
        first = ExperimentContext(preset="tiny", manifest_path=manifest)
        first.run_many(GRID[:2], jobs=1)  # "interrupted" after two cells
        second = ExperimentContext(preset="tiny", manifest_path=manifest)
        second.run_many(GRID, jobs=1)
        assert second.resumed_cells == 2
        assert second.cache_misses == 1
        assert SweepManifest(manifest).done_count == len(GRID)

    def test_manifest_is_advisory_without_cache(self, monkeypatch, tmp_path):
        # A journaled cell whose report vanished (here: cache disabled)
        # is recomputed — the manifest never invents results.
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        manifest = str(tmp_path / "sweep.jsonl")
        first = ExperimentContext(preset="tiny", manifest_path=manifest)
        first.run_many(GRID[:1], jobs=1)
        second = ExperimentContext(preset="tiny", manifest_path=manifest)
        second.run_many(GRID[:1], jobs=1)
        assert second.cache_misses == 1
        assert second.resumed_cells == 0

    def test_poisoned_cells_skip_the_retry_budget(
        self, cache_dir, monkeypatch, tmp_path
    ):
        manifest_path = tmp_path / "sweep.jsonl"
        context = ExperimentContext(
            preset="tiny", manifest_path=str(manifest_path)
        )
        manifest = SweepManifest(manifest_path)
        manifest.journal_poisoned(
            context._cell_key(GRID[0]),
            failure="timeout",
            attempts=3,
            error="wedged",
        )
        manifest.close()

        def boom(self, *a, **kw):  # pragma: no cover - fails the test
            raise AssertionError("poisoned cell was re-attempted")

        monkeypatch.setattr(SimulationEngine, "run", boom)
        out = context.run_many([GRID[0]], jobs=1, strict=False)
        assert out == [None]
        assert context.quarantined_cells == 1
        with pytest.raises(CellExecutionError, match="timeout"):
            context.run_many([GRID[0]], jobs=1)

    def test_cli_resume_journals_and_skips(
        self, cache_dir, monkeypatch, tmp_path, capsys
    ):
        from repro.__main__ import main

        manifest = tmp_path / "cli.jsonl"
        argv = [
            "--preset",
            "tiny",
            "--resume",
            str(manifest),
            "compare",
            "--workload",
            "pr",
        ]
        assert main(argv) == 0
        journal = manifest.read_text()
        assert '"status": "done"' in journal

        def boom(self, *a, **kw):  # pragma: no cover - fails the test
            raise AssertionError("resumed CLI run re-simulated a cell")

        monkeypatch.setattr(SimulationEngine, "run", boom)
        assert main(argv) == 0
        # Nothing new to journal: the manifest is byte-identical.
        assert manifest.read_text() == journal
        capsys.readouterr()


class TestManifest:
    def test_round_trip_and_error_trim(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = SweepManifest(path, stamp="s1")
        manifest.journal_done("k1", workload="pr", policy="ndpext")
        manifest.journal_poisoned(
            "k2", failure="timeout", attempts=3, error="x" * 5000
        )
        manifest.close()
        again = SweepManifest(path, stamp="s1")
        assert again.is_done("k1")
        assert again.is_poisoned("k2")
        assert len(again.poison_record("k2")["error"]) <= 2000
        assert again.done_count == 1
        assert again.poisoned_count == 1

    def test_done_overrides_poisoned(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = SweepManifest(path, stamp="s")
        manifest.journal_poisoned("k", failure="exception", attempts=3, error="e")
        manifest.journal_done("k")
        manifest.close()
        again = SweepManifest(path, stamp="s")
        assert again.is_done("k")
        assert not again.is_poisoned("k")

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = SweepManifest(path, stamp="s")
        manifest.journal_done("k1")
        manifest.journal_done("k2")
        manifest.close()
        with open(path, "a") as f:
            f.write('{"kind": "cell", "status": "done", "key": "k3"')
        again = SweepManifest(path, stamp="s")
        assert again.is_done("k1")
        assert again.is_done("k2")
        assert not again.is_done("k3")

    def test_stale_stamp_rotates_aside(self, tmp_path):
        path = tmp_path / "m.jsonl"
        old = SweepManifest(path, stamp="old")
        old.journal_done("k")
        old.close()
        fresh = SweepManifest(path, stamp="new")
        assert not fresh.is_done("k")
        assert path.with_name("m.jsonl.stale").exists()
        fresh.journal_done("k2")
        fresh.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["stamp"] == "new"

"""Tests for the degradation-sweep experiment driver."""

import pytest

from repro.experiments import faults
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(preset="tiny")


class TestUnitFailureSweep:
    def test_remap_recovery_beats_failstop(self, context):
        result = faults.run_unit_failure(
            context, workloads=("pr",), fail_epoch=2, verbose=False
        )
        row = result["pr"]
        assert set(row) == set(faults.VARIANTS)
        # The headline claim: consistent-hash remap recovery finishes the
        # post-failure epochs strictly faster than fail-stop/bypass — on
        # the same policy and against the Nexus baseline.
        remap = row["ndpext-remap"]["post_failure_cycles"]
        assert remap < row["ndpext-failstop"]["post_failure_cycles"]
        assert remap < row["nexus-failstop"]["post_failure_cycles"]

    def test_failstop_demotes_remap_does_not(self, context):
        result = faults.run_unit_failure(
            context, workloads=("pr",), fail_epoch=2, verbose=False
        )
        row = result["pr"]
        assert row["ndpext-remap"]["demoted"] == 0
        assert row["ndpext-failstop"]["demoted"] > 0
        assert row["ndpext-remap"]["fault_movements"] > 0

    def test_failstop_never_speeds_up(self, context):
        result = faults.run_unit_failure(
            context, workloads=("pr",), fail_epoch=2, verbose=False
        )
        row = result["pr"]
        # Losing capacity without remapping can only hurt.  (Remap
        # recovery may beat even the clean run: the forced re-placement
        # sometimes lands a better configuration, so it gets no bound.)
        assert row["ndpext-failstop"]["slowdown"] >= 1.0
        assert row["nexus-failstop"]["slowdown"] >= 1.0
        for r in row.values():
            assert r["post_failure_cycles"] > 0


class TestLinkDegradationSweep:
    def test_penalties_reported(self, context):
        result = faults.run_link_degradation(
            context, workloads=("pr",), verbose=False
        )
        row = result["pr"]
        crc = row["crc-burst"]
        assert crc["crc_retries"] > 0
        assert crc["penalty_ns"] > 0
        assert crc["slowdown"] >= 1.0

    def test_narrower_link_is_never_faster(self, context):
        result = faults.run_link_degradation(
            context, workloads=("pr",), verbose=False
        )
        row = result["pr"]
        lanes = context.config.cxl.lanes
        half = row[f"downtrain-x{lanes // 2}"]
        quarter = row[f"downtrain-x{lanes // 4}"]
        assert half["min_lanes"] == lanes // 2
        assert quarter["min_lanes"] == lanes // 4
        assert quarter["slowdown"] >= half["slowdown"] >= 1.0
        assert quarter["penalty_ns"] > half["penalty_ns"]

    def test_combined_driver(self, context, capsys):
        result = faults.run(context, verbose=True)
        assert set(result) == {"unit_failure", "link_degradation"}
        out = capsys.readouterr().out
        assert "Degradation" in out

"""Structural tests for the experiment drivers (tiny preset for speed)."""

import pytest

from repro.experiments import fig2, fig4b, fig5, fig6, fig7, fig8, fig9, sec5d
from repro.experiments.runner import (
    ExperimentContext,
    add_geomean_row,
    speedup_table,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(preset="tiny")


WORKLOADS = ("pr", "hotspot")


class TestRunner:
    def test_reports_cached(self, context):
        a = context.run("pr", "ndpext-static")
        b = context.run("pr", "ndpext-static")
        assert a is b

    def test_default_scale_shares_cache_with_explicit(self, context):
        # scale=None and the context's own default scale must normalize
        # to the same cache key — one simulation, not two.
        a = context.run("pr", "ndpext-static")
        b = context.run("pr", "ndpext-static", scale=context.scale)
        assert a is b

    def test_fault_schedule_extends_cache_key(self, context):
        from repro.faults import FaultSchedule, UnitFailure

        plain = context.run("pr", "ndpext-static")
        empty = context.run("pr", "ndpext-static", faults=FaultSchedule())
        assert plain is not empty  # distinct cells...
        assert plain.runtime_cycles == empty.runtime_cycles  # ...same result
        schedule = FaultSchedule((UnitFailure(epoch=1, unit=0),))
        faulted = context.run("pr", "ndpext-static", faults=schedule)
        assert faulted.runtime_cycles > plain.runtime_cycles
        # Value-equal schedules hit the same cell.
        again = context.run(
            "pr", "ndpext-static", faults=FaultSchedule((UnitFailure(epoch=1, unit=0),))
        )
        assert faulted is again

    def test_speedup_table_rejects_degenerate_runtime(self, context):
        from repro.experiments.runner import Cell
        from repro.sim.metrics import SimulationReport

        broken = ExperimentContext(preset="tiny")
        key = broken._cell_key(Cell("pr", "ndpext"))
        broken._reports[key] = SimulationReport(
            policy="ndpext", workload="pr", runtime_cycles=0.0
        )
        with pytest.raises(ValueError, match="non-positive runtime"):
            speedup_table(broken, ["pr"], ["ndpext"], baseline="ndpext")

    def test_speedup_table_shape(self, context):
        table = speedup_table(context, list(WORKLOADS), ["ndpext", "nexus"])
        assert set(table) == set(WORKLOADS)
        for row in table.values():
            assert set(row) == {"ndpext", "nexus"}
            assert all(v > 0 for v in row.values())

    def test_geomean_row(self):
        table = {"a": {"p": 2.0}, "b": {"p": 8.0}}
        extended = add_geomean_row(table)
        assert extended["geomean"]["p"] == pytest.approx(4.0)

    def test_host_runs(self, context):
        report = context.run_host("pr")
        assert report.runtime_cycles > 0


class TestFigureDrivers:
    def test_fig2(self, context):
        result = fig2.run(context, verbose=False)
        assert set(result) == {"ndp", "nuca"}
        for row in result.values():
            assert 0 <= row["hit_rate"] <= 1
        # NDP's big cache hits more than the small NUCA LLC.
        assert result["ndp"]["hit_rate"] > result["nuca"]["hit_rate"]

    def test_fig4b(self):
        result = fig4b.run(n_units=8, verbose=False, repeats=1)
        assert all(r["ms"] > 0 for r in result.values())

    def test_fig5(self, context):
        table = fig5.run(context, workloads=WORKLOADS, verbose=False)
        assert "geomean" in table
        assert set(table["geomean"]) == set(fig5.POLICIES)

    def test_fig6(self, context):
        result = fig6.run(context, workloads=WORKLOADS, verbose=False)
        for row in result.values():
            assert row["ndpext_total"] > 0

    def test_fig7(self, context):
        result = fig7.run(context, workloads=WORKLOADS, verbose=False)
        for row in result.values():
            assert row["nexus_ic_ns"] >= 0
            assert 0 <= row["ndpext_miss"] <= 1

    def test_fig8_cxl(self, context):
        result = fig8.run_cxl(context, workloads=("pr",), verbose=False)
        assert set(result) == set(fig8.CXL_LATENCIES_NS)
        assert all(v > 0 for v in result.values())

    def test_fig9_reconfig_method(self, context):
        result = fig9.run_reconfig_method(
            context, workloads=("pr",), verbose=False
        )
        assert result["pr"]["full"] == pytest.approx(1.0)

    def test_fig9_associativity(self, context):
        result = fig9.run_associativity(context, workloads=("pr",), verbose=False)
        assert result["default"] == pytest.approx(1.0)
        # Associativity never hurts (hit monotonicity).
        assert all(v >= 0.95 for v in result.values())

    def test_sec5d(self, context):
        result = sec5d.run(context, workloads=("pr",), verbose=False)
        row = result["pr"]
        assert row["consistent_invalidations"] <= row["bulk_invalidations"] or (
            row["bulk_invalidations"] == 0
        )

"""Cross-module integration tests: full-stack invariants on real runs."""

import numpy as np
import pytest

from repro.baselines import (
    JigsawPolicy,
    NdpExtStaticPolicy,
    NexusPolicy,
    StaticNucaPolicy,
)
from repro.core import NdpExtPolicy
from repro.experiments.runner import PRESETS, SCALES, ExperimentContext
from repro.sim import SimulationEngine
from repro.sim.params import tiny
from repro.workloads import TINY, build


@pytest.fixture(scope="module")
def reports():
    """One run of every policy on two contrasting workloads (tiny)."""
    config = tiny()
    engine = SimulationEngine(config)
    out = {}
    for wname in ("pr", "hotspot"):
        workload = build(wname, TINY)
        out[wname] = {}
        for factory in (
            StaticNucaPolicy,
            JigsawPolicy,
            NexusPolicy,
            NdpExtStaticPolicy,
            NdpExtPolicy,
        ):
            policy = factory()
            out[wname][policy.name] = (engine.run(workload, policy), workload)
    return out


class TestConservation:
    def test_requests_conserved(self, reports):
        """Every trace request is accounted exactly once: L1 hit, cache
        hit (local/remote), or miss."""
        for wname, runs in reports.items():
            for name, (report, workload) in runs.items():
                assert report.hits.total_requests == len(workload.trace), (
                    wname,
                    name,
                )

    def test_latency_components_nonnegative(self, reports):
        for runs in reports.values():
            for report, _ in runs.values():
                b = report.breakdown
                for value in b.fractions().values():
                    assert value >= 0

    def test_energy_positive_components(self, reports):
        for runs in reports.values():
            for report, _ in runs.values():
                assert report.energy.static_nj > 0
                assert report.energy.total_nj > report.energy.static_nj

    def test_runtime_exceeds_pure_compute(self, reports):
        for runs in reports.values():
            for report, workload in runs.values():
                per_core = np.bincount(workload.trace.core)
                floor = per_core.max() * workload.compute_cycles_per_access
                assert report.runtime_cycles >= floor

    def test_epoch_cycles_monotone(self, reports):
        """Cumulative per-epoch runtime never decreases."""
        for runs in reports.values():
            for report, _ in runs.values():
                series = report.per_epoch_cycles
                assert all(b >= a for a, b in zip(series, series[1:]))


class TestOrderingAtTinyScale:
    def test_stream_metadata_cheaper_than_line_metadata(self, reports):
        for wname, runs in reports.items():
            ndp = runs["ndpext-static"][0]
            nuca = runs["static-nuca"][0]
            ndp_meta = ndp.breakdown.metadata_ns / max(1, ndp.hits.cache_accesses)
            nuca_meta = nuca.breakdown.metadata_ns / max(1, nuca.hits.cache_accesses)
            assert ndp_meta < nuca_meta

    def test_ndpext_never_badly_loses(self, reports):
        for wname, runs in reports.items():
            best_other = min(
                r.runtime_cycles for n, (r, _) in runs.items() if n != "ndpext"
            )
            assert runs["ndpext"][0].runtime_cycles < best_other * 1.25


class TestPresetRegistry:
    def test_presets_construct(self):
        for name, factory in PRESETS.items():
            if name.startswith("paper"):
                continue  # huge but still cheap to *construct*
            config = factory()
            assert config.n_units >= 1

    def test_paper_presets_construct(self):
        assert PRESETS["paper"]().n_units == 128
        assert PRESETS["paper-hmc"]().memory_style == "hmc"

    def test_scales_match_presets(self):
        for name in SCALES:
            assert name in PRESETS

    def test_context_defaults(self):
        ctx = ExperimentContext(preset="tiny")
        assert ctx.config.name.startswith("tiny")
        assert ctx.scale.n_cores >= 1

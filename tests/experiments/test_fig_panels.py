"""Structural tests for the remaining figure panels (tiny preset)."""

import pytest

from repro.experiments import fig8, fig9
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(preset="tiny")


class TestFig8Scaling:
    def test_all_scale_points_present(self, context):
        result = fig8.run_scaling(context, workloads=("pr",), verbose=False)
        labels = {label for label, *_ in fig8.SCALE_POINTS}
        assert labels <= set(result)
        assert "single-unit" in result
        assert all(v > 0 for v in result.values())


class TestFig9Panels:
    def test_block_size_panel(self, context):
        result = fig9.run_block_size(context, workloads=("hotspot",), verbose=False)
        assert result["default"] == pytest.approx(1.0)
        assert set(result) == {
            "256B", "512B", "default", "2048B", "4096B", "adaptive",
        }

    def test_affine_space_panel(self, context):
        result = fig9.run_affine_space(context, workloads=("hotspot",), verbose=False)
        assert result["default"] == pytest.approx(1.0)
        assert "unlimited" in result

    def test_sampler_sets_panel(self, context):
        result = fig9.run_sampler_sets(context, workloads=("pr",), verbose=False)
        assert result["default"] == pytest.approx(1.0)
        assert len(result) >= 3

    def test_interval_panel(self, context):
        result = fig9.run_reconfig_interval(context, workloads=("pr",), verbose=False)
        assert result["default"] == pytest.approx(1.0)
        assert set(result) == {"default", "x2", "x4"}

"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import FIGURES, build_parser, main


class TestParser:
    def test_run_requires_workload_and_policy(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run"])

    def test_valid_run_args(self):
        args = build_parser().parse_args(
            ["--preset", "tiny", "run", "--workload", "pr", "--policy", "ndpext"]
        )
        assert args.preset == "tiny"
        assert args.workload == "pr"

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom", "--policy", "ndpext"])

    def test_figure_choices_cover_all_panels(self):
        expected = {
            "fig2", "fig4b", "fig5", "fig6", "fig7", "fig8a", "fig8b",
            "fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f", "sec5d",
            "faults",
        }
        assert set(FIGURES) == expected


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["--preset", "tiny", "run", "--workload", "pr", "--policy", "ndpext-static"]) == 0
        out = capsys.readouterr().out
        assert "runtime cycles" in out
        assert "hit rate" in out

    def test_compare_command(self, capsys):
        assert main(["--preset", "tiny", "compare", "--workload", "hotspot"]) == 0
        out = capsys.readouterr().out
        assert "ndpext" in out
        assert "jigsaw" in out

    def test_figure_command(self, capsys):
        assert main(["--preset", "tiny", "figure", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "latency breakdown" in out

"""Tests for the `python -m repro` command-line interface."""

import json

import pytest

import repro.__main__ as cli
from repro.__main__ import FIGURES, build_parser, main
from repro.obs import read_trace


class TestParser:
    def test_run_requires_workload_and_policy(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run"])

    def test_valid_run_args(self):
        args = build_parser().parse_args(
            ["--preset", "tiny", "run", "--workload", "pr", "--policy", "ndpext"]
        )
        assert args.preset == "tiny"
        assert args.workload == "pr"

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom", "--policy", "ndpext"])

    def test_figure_choices_cover_all_panels(self):
        expected = {
            "fig2", "fig4b", "fig5", "fig6", "fig7", "fig8a", "fig8b",
            "fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f", "sec5d",
            "faults",
        }
        assert set(FIGURES) == expected


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["--preset", "tiny", "run", "--workload", "pr", "--policy", "ndpext-static"]) == 0
        out = capsys.readouterr().out
        assert "runtime cycles" in out
        assert "hit rate" in out

    def test_compare_command(self, capsys):
        assert main(["--preset", "tiny", "compare", "--workload", "hotspot"]) == 0
        out = capsys.readouterr().out
        assert "ndpext" in out
        assert "jigsaw" in out
        # Normalized against the explicit host baseline row.
        assert "host" in out
        assert "speedup vs host" in out

    def test_figure_command(self, capsys):
        assert main(["--preset", "tiny", "figure", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "latency breakdown" in out

    def test_report_command(self, tmp_path, capsys, monkeypatch):
        # The full report regenerates every figure; pin it to two cheap
        # ones so the test exercises the capture/write path, not the suite.
        subset = {name: FIGURES[name] for name in ("fig2", "fig4b")}
        monkeypatch.setattr(cli, "FIGURES", subset)
        out_path = tmp_path / "results.md"
        assert main(["--preset", "tiny", "report", "--output", str(out_path)]) == 0
        body = out_path.read_text()
        assert body.startswith("# NDPExt reproduction results")
        assert "## fig2" in body and "## fig4b" in body
        assert "latency breakdown" in body
        assert f"wrote {out_path}" in capsys.readouterr().out


class TestTraceCommands:
    def test_trace_then_stats_round_trip(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        csv_path = tmp_path / "timeline.csv"
        assert main([
            "--preset", "tiny", "trace",
            "--workload", "pr", "--policy", "ndpext",
            "--out", str(trace_path), "--csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "self-profile" in out
        assert csv_path.exists()

        # Every line is valid JSON with the documented framing.
        lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        assert lines[-1]["kind"] == "footer"

        trace = read_trace(str(trace_path))
        assert trace.header["workload"] == "pr"
        assert trace.header["policy"] == "ndpext"
        assert len(trace.timeline) > 0

        # Acceptance: the trace carries at least one reconfiguration
        # decision with predicted per-stream hit rates, and the realized
        # rates to compare them against.
        reconfigs = trace.events_of("reconfig")
        assert reconfigs
        assert all(
            0.0 <= s["predicted_hit_rate"] <= 1.0
            for e in reconfigs
            for s in e["streams"]
        )
        accuracy = trace.events_of("hit_accuracy")
        assert accuracy
        assert all(
            {"predicted", "realized"} <= set(s)
            for e in accuracy
            for s in e["streams"]
        )

        assert main(["stats", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "cache_hit_rate" in out
        assert "mean_hit_prediction_error" in out

    def test_stats_diff_two_traces(self, tmp_path, capsys):
        paths = []
        for policy in ("ndpext", "ndpext-static"):
            path = tmp_path / f"{policy}.jsonl"
            assert main([
                "--preset", "tiny", "trace",
                "--workload", "pr", "--policy", policy,
                "--out", str(path),
            ]) == 0
            paths.append(str(path))
        capsys.readouterr()
        assert main(["stats", *paths]) == 0
        out = capsys.readouterr().out
        assert "trace diff" in out
        assert "delta" in out

    def test_stats_rejects_three_traces(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert main([
            "--preset", "tiny", "trace",
            "--workload", "pr", "--policy", "ndpext",
            "--out", str(path),
        ]) == 0
        with pytest.raises(SystemExit):
            main(["stats", str(path), str(path), str(path)])

    def test_serve_slo_end_to_end(self, tmp_path, capsys):
        """The CI storm recipe through the CLI: SLO admission with
        explicit objectives writes a schema-3 trace whose burns the
        stats verb then surfaces."""
        trace = tmp_path / "serve.jsonl"
        report = tmp_path / "serve.json"
        prom = tmp_path / "serve.prom"
        assert main([
            "--preset", "tiny", "serve",
            "--name", "ci-storm", "--storm",
            "--batch-accesses", "500",
            "--wave-size", "6", "--steps-per-wave", "3",
            "--admission", "slo",
            "--slo", "interactive:12000::0.10",
            "--slo", "analytics:70000::0.10",
            "--trace-out", str(trace),
            "--report-out", str(report),
            "--prom", str(prom),
        ]) == 0
        out = capsys.readouterr().out
        assert "slo" in out.lower()

        payload = json.loads(report.read_text())
        assert payload["slo"]["tenants"]["analytics"]["alert"] in (
            "ok", "warn", "page",
        )
        assert "repro_slo_alert_state" in prom.read_text()

        parsed = read_trace(str(trace))
        assert parsed.events_of("slo_burn")
        assert parsed.events_of("slo_status")

        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "slo_burns" in out
        assert "slo_worst_burn[interactive]" in out

    def test_serve_listen_announces_endpoint(self, tmp_path, capsys):
        assert main([
            "--preset", "tiny", "serve",
            "--max-batches", "4",
            "--listen", "127.0.0.1:0",
        ]) == 0
        out = capsys.readouterr().out
        assert "live endpoint at http://127.0.0.1:" in out

    @pytest.mark.parametrize(
        "spec", [":123", "a:b:c:d:e", "interactive:not-a-number"]
    )
    def test_serve_rejects_bad_slo_specs(self, spec):
        with pytest.raises(SystemExit):
            main([
                "--preset", "tiny", "serve", "--max-batches", "2",
                "--slo", spec,
            ])

    def test_profile_command(self, tmp_path, capsys):
        perf_path = tmp_path / "prof.json"
        report_path = tmp_path / "bottleneck.json"
        assert main([
            "--preset", "tiny", "profile",
            "--workload", "pr", "--policy", "ndpext",
            "--perf-out", str(perf_path),
            "--report-out", str(report_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "engine phases by exclusive time" in out
        assert "ui.perfetto.dev" in out

        # The perf trace is Perfetto-loadable JSON naming every engine
        # phase; the bottleneck report carries the coverage invariant.
        from repro.obs.tracing import ENGINE_PHASES

        payload = json.loads(perf_path.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert set(ENGINE_PHASES) <= names
        assert all(
            e["ph"] in ("X", "i", "M") for e in payload["traceEvents"]
        )
        prof = json.loads(report_path.read_text())
        assert prof["coverage"] >= 0.95
        assert prof["top_phases"]
        assert prof["accesses"] > 0

    def test_profile_requires_cell_or_suite(self):
        with pytest.raises(SystemExit, match="workload"):
            main(["--preset", "tiny", "profile"])

    def test_profile_restores_cache_dir(self, monkeypatch, tmp_path):
        # The throwaway profiling cache must not leak into the
        # environment the caller set up.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "mine"))
        assert main([
            "--preset", "tiny", "profile",
            "--workload", "pr", "--policy", "ndpext-static",
            "--perf-out", str(tmp_path / "p.json"),
        ]) == 0
        import os

        assert os.environ["REPRO_CACHE_DIR"] == str(tmp_path / "mine")

    def test_run_trace_out(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        assert main([
            "--preset", "tiny", "run",
            "--workload", "pr", "--policy", "ndpext",
            "--trace-out", str(trace_path),
        ]) == 0
        assert "runtime cycles" in capsys.readouterr().out
        trace = read_trace(str(trace_path))
        assert trace.events_of("epoch")

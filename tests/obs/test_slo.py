"""Tests for the per-tenant SLO engine: burn math, alert state machine
with hysteresis, error-budget accounting, and the status payload."""

import pytest

from repro.obs.recorder import Recorder
from repro.obs.slo import (
    OBJ_AVAILABILITY,
    OBJ_LATENCY,
    OBJ_SHED_RATE,
    SLO_OK,
    SLO_PAGE,
    SLO_WARN,
    SloEngine,
    SloObjective,
    alert_severity,
    default_objectives,
)


def make_engine(objective, recorder=None, **kwargs):
    defaults = dict(fast_window=3, slow_window=6, page_burn=10.0,
                    warn_burn=5.0, hysteresis=2)
    defaults.update(kwargs)
    return SloEngine([objective], recorder=recorder, **defaults)


class TestSloObjective:
    def test_requires_at_least_one_bound(self):
        with pytest.raises(ValueError, match="no bound"):
            SloObjective("a")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p99_ns": 0},
            {"p99_ns": -1.0},
            {"availability": 0.0},
            {"availability": 1.0},
            {"max_shed_rate": 0.0},
            {"max_shed_rate": 1.5},
        ],
    )
    def test_rejects_out_of_range_bounds(self, kwargs):
        with pytest.raises(ValueError):
            SloObjective("a", **kwargs)

    def test_budgets_per_kind(self):
        obj = SloObjective(
            "a", p99_ns=1000.0, availability=0.99, max_shed_rate=0.2
        )
        budgets = obj.budgets()
        assert budgets[OBJ_LATENCY] == (1000.0, 0.01)
        assert budgets[OBJ_AVAILABILITY] == (0.99, pytest.approx(0.01))
        assert budgets[OBJ_SHED_RATE] == (0.2, 0.2)

    def test_default_objectives_follow_deadlines(self):
        class Spec:
            def __init__(self, name, deadline_ns):
                self.name = name
                self.deadline_ns = deadline_ns

        objs = default_objectives([Spec("rt", 5000.0), Spec("batch", None)])
        by_name = {o.tenant: o for o in objs}
        assert by_name["rt"].p99_ns == 5000.0
        assert by_name["rt"].availability == 0.999
        assert by_name["batch"].p99_ns is None
        assert by_name["batch"].availability is None
        assert by_name["batch"].max_shed_rate == 0.10

    def test_severity_order(self):
        assert alert_severity(SLO_OK) < alert_severity(SLO_WARN)
        assert alert_severity(SLO_WARN) < alert_severity(SLO_PAGE)


class TestBurnMath:
    def test_no_traffic_means_zero_burn_and_full_budget(self):
        eng = make_engine(SloObjective("a", p99_ns=100.0))
        eng.end_epoch(0)
        state = eng.tenants["a"].states[OBJ_LATENCY]
        assert state.burn_fast == 0.0
        assert state.burn_slow == 0.0
        assert state.budget_remaining == 1.0

    def test_burn_is_bad_fraction_over_budget(self):
        # 2 of 4 completions over the bound; latency budget is 1%.
        eng = make_engine(SloObjective("a", p99_ns=100.0))
        for latency in (50.0, 60.0, 150.0, 200.0):
            eng.on_complete("a", latency)
        eng.end_epoch(0)
        state = eng.tenants["a"].states[OBJ_LATENCY]
        assert state.burn_fast == pytest.approx(0.5 / 0.01)
        assert state.burn_slow == pytest.approx(0.5 / 0.01)

    def test_shed_rate_counts_sheds_and_rejects(self):
        eng = make_engine(SloObjective("a", max_shed_rate=0.5))
        eng.on_complete("a", 1.0)
        eng.on_shed("a")
        eng.on_reject("a")
        eng.on_timeout("a")
        eng.end_epoch(0)
        state = eng.tenants["a"].states[OBJ_SHED_RATE]
        # 2 bad of 4 terminal outcomes over a 0.5 budget -> burn 1.0.
        assert state.burn_fast == pytest.approx(1.0)

    def test_availability_counts_timeouts_against_completions(self):
        eng = make_engine(SloObjective("a", availability=0.9))
        for _ in range(3):
            eng.on_complete("a", 1.0)
        eng.on_timeout("a")
        eng.end_epoch(0)
        state = eng.tenants["a"].states[OBJ_AVAILABILITY]
        assert state.burn_fast == pytest.approx(0.25 / 0.1)

    def test_fast_window_slides_but_slow_window_remembers(self):
        eng = make_engine(SloObjective("a", p99_ns=100.0))
        eng.on_complete("a", 500.0)  # one bad epoch
        eng.end_epoch(0)
        for epoch in range(1, 4):  # three clean epochs push it out of fast
            eng.on_complete("a", 10.0)
            eng.end_epoch(epoch)
        state = eng.tenants["a"].states[OBJ_LATENCY]
        assert state.burn_fast == 0.0  # fast window is the clean tail
        assert state.burn_slow > 0.0  # slow window still holds the miss

    def test_outcomes_for_unknown_tenants_are_ignored(self):
        eng = make_engine(SloObjective("a", p99_ns=100.0))
        eng.on_complete("nobody", 999.0)
        eng.on_shed("nobody")
        eng.end_epoch(0)
        assert eng.tenant_alert("nobody") == SLO_OK
        assert eng.worst_burn("nobody") == 0.0


class TestAlerting:
    def _burn_hard(self, eng, epoch):
        eng.on_complete("a", 10_000.0)  # far over the 100ns bound
        eng.end_epoch(epoch)

    def test_page_requires_both_windows(self):
        # One terrible epoch makes the fast window burn, but the slow
        # window is diluted by history -> no page until it catches up.
        eng = make_engine(SloObjective("a", p99_ns=100.0))
        for epoch in range(6):
            eng.on_complete("a", 10.0)
            eng.end_epoch(epoch)
        rec = Recorder()
        eng.recorder = rec
        self._burn_hard(eng, 6)
        state = eng.tenants["a"].states[OBJ_LATENCY]
        assert state.burn_fast >= eng.page_burn
        # slow window: 1 bad of 7 -> burn 100/7 ≈ 14.3 > 10 — pick a
        # longer clean history so the dilution argument actually holds.
        eng2 = make_engine(SloObjective("a", p99_ns=100.0), slow_window=60)
        for epoch in range(59):
            for _ in range(3):
                eng2.on_complete("a", 10.0)
            eng2.end_epoch(epoch)
        eng2.recorder = Recorder()
        eng2.on_complete("a", 10_000.0)
        eng2.end_epoch(59)
        state2 = eng2.tenants["a"].states[OBJ_LATENCY]
        assert state2.burn_fast >= eng2.page_burn
        assert state2.burn_slow < eng2.page_burn
        assert state2.state == SLO_OK

    def test_sustained_burn_pages_and_emits_event(self):
        rec = Recorder()
        eng = make_engine(SloObjective("a", p99_ns=100.0), recorder=rec)
        for epoch in range(3):
            self._burn_hard(eng, epoch)
        assert eng.tenant_alert("a") == SLO_PAGE
        burns = rec.events_of("slo_burn")
        assert burns and burns[-1]["state"] == SLO_PAGE
        assert burns[-1]["tenant"] == "a"
        assert burns[-1]["objective"] == OBJ_LATENCY
        assert burns[-1]["burn_fast"] >= eng.page_burn

    def test_recovery_needs_hysteresis_clean_evals(self):
        rec = Recorder()
        eng = make_engine(SloObjective("a", p99_ns=100.0), recorder=rec)
        for epoch in range(3):
            self._burn_hard(eng, epoch)
        assert eng.tenant_alert("a") == SLO_PAGE
        # Empty epochs: the bad completions stay in the fast window
        # (size 3) until it slides past them entirely.
        eng.end_epoch(3)
        eng.end_epoch(4)
        assert eng.tenant_alert("a") == SLO_PAGE
        eng.end_epoch(5)  # first clean evaluation (fast window empty)
        assert eng.tenant_alert("a") == SLO_PAGE  # 1 < hysteresis 2
        eng.end_epoch(6)
        assert eng.tenant_alert("a") == SLO_OK
        recovered = rec.events_of("slo_recovered")
        assert len(recovered) == 1
        assert recovered[0]["epoch"] == 6

    def test_relapse_resets_the_hysteresis_counter(self):
        eng = make_engine(SloObjective("a", p99_ns=100.0))
        for epoch in range(3):
            self._burn_hard(eng, epoch)
        eng.end_epoch(3)  # one clean eval
        self._burn_hard(eng, 4)  # relapse
        eng.end_epoch(5)  # clean again — counter must restart at 1
        assert eng.tenant_alert("a") == SLO_PAGE

    def test_escalation_is_immediate_no_hysteresis(self):
        rec = Recorder()
        # warn at 1.0, page at 50: a mild burn warns, a hard one pages
        # on the very next evaluation — no hysteresis on the way up.
        eng = make_engine(
            SloObjective("a", p99_ns=100.0), recorder=rec,
            warn_burn=1.0, page_burn=50.0,
        )
        for _ in range(99):
            eng.on_complete("a", 10.0)
        eng.on_complete("a", 500.0)  # 1% bad -> burn 1.0 -> warn
        eng.end_epoch(0)
        assert eng.tenant_alert("a") == SLO_WARN
        for _ in range(100):  # a storm epoch: half the window now bad
            eng.on_complete("a", 10_000.0)
        eng.end_epoch(1)
        assert eng.tenant_alert("a") == SLO_PAGE

    def test_budget_remaining_goes_negative_when_overspent(self):
        eng = make_engine(SloObjective("a", p99_ns=100.0))
        for epoch in range(3):
            self._burn_hard(eng, epoch)
        assert eng.tenants["a"].budget_remaining() < 0.0

    def test_windows_met_counts_fast_window_p99(self):
        eng = make_engine(SloObjective("a", p99_ns=100.0))
        eng.on_complete("a", 50.0)
        eng.end_epoch(0)  # met
        self._burn_hard(eng, 1)  # missed
        eng.end_epoch(2)  # no samples in this epoch, but window has some
        state = eng.tenants["a"].states[OBJ_LATENCY]
        assert state.windows_total == 3
        assert state.windows_met == 1


class TestStatus:
    def test_status_shape(self):
        eng = make_engine(
            SloObjective("a", p99_ns=100.0, max_shed_rate=0.5)
        )
        eng.on_complete("a", 10.0)
        eng.end_epoch(0)
        status = eng.status()
        assert status["fast_window"] == 3
        assert status["evaluations"] == 1
        tenant = status["tenants"]["a"]
        assert tenant["alert"] == SLO_OK
        assert tenant["budget_history"] == [[0, 1.0]]
        assert set(tenant["objectives"]) == {OBJ_LATENCY, OBJ_SHED_RATE}
        assert "windows_total" in tenant["objectives"][OBJ_LATENCY]
        assert "windows_total" not in tenant["objectives"][OBJ_SHED_RATE]

    def test_budget_history_is_downsampled_but_keeps_the_end(self):
        eng = make_engine(SloObjective("a", p99_ns=100.0))
        for epoch in range(1000):
            eng.on_complete("a", 10.0)
            eng.end_epoch(epoch)
        history = eng.status()["tenants"]["a"]["budget_history"]
        assert len(history) <= 257
        assert history[0][0] == 0
        assert history[-1][0] == 999

    def test_emit_status_writes_one_event_per_tenant(self):
        rec = Recorder()
        eng = SloEngine(
            [SloObjective("a", p99_ns=1.0), SloObjective("b", p99_ns=1.0)],
            recorder=rec,
        )
        eng.end_epoch(0)
        eng.emit_status()
        events = rec.events_of("slo_status")
        assert sorted(e["tenant"] for e in events) == ["a", "b"]
        assert all("budget_history" in e for e in events)

    def test_null_recorder_emit_status_is_a_noop(self):
        eng = make_engine(SloObjective("a", p99_ns=1.0))
        eng.emit_status()  # must not raise


class TestValidation:
    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError, match="fast_window"):
            SloEngine([], fast_window=5, slow_window=3)

    def test_rejects_bad_burn_thresholds(self):
        with pytest.raises(ValueError, match="warn_burn"):
            SloEngine([], warn_burn=10.0, page_burn=5.0)

    def test_rejects_duplicate_tenants(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine(
                [SloObjective("a", p99_ns=1.0), SloObjective("a", p99_ns=2.0)]
            )

"""Unit tests for EpochRecord / Timeline serialization and aggregation."""

import csv

from repro.obs import EpochRecord, Timeline
from repro.sim.metrics import EnergyBreakdown, HitStats, LatencyBreakdown


def _record(epoch: int) -> EpochRecord:
    return EpochRecord(
        epoch=epoch,
        requests=100 * (epoch + 1),
        post_l1_requests=60 * (epoch + 1),
        hits=HitStats(l1_hits=40, cache_hits_local=30, cache_hits_remote=20, cache_misses=10),
        breakdown=LatencyBreakdown(dram_ns=5.0 * (epoch + 1), extended_ns=2.0),
        energy=EnergyBreakdown(ndp_dram_nj=3.0, cxl_nj=1.0 * epoch),
        ext_accesses=10,
        ext_bytes=640,
        reconfig_movements=epoch,
        cycles_total=1000.0 * (epoch + 1),
    )


class TestEpochRecord:
    def test_json_round_trip(self):
        rec = _record(2)
        clone = EpochRecord.from_json(rec.to_json())
        assert clone == rec

    def test_from_json_reconstructs_nested_dataclasses(self):
        clone = EpochRecord.from_json(_record(0).to_json())
        assert isinstance(clone.hits, HitStats)
        assert isinstance(clone.breakdown, LatencyBreakdown)
        assert isinstance(clone.energy, EnergyBreakdown)

    def test_from_json_ignores_unknown_keys(self):
        payload = _record(0).to_json()
        payload["future_field"] = 42
        clone = EpochRecord.from_json(payload)
        assert clone.epoch == 0


class TestTimeline:
    def _timeline(self, n=3) -> Timeline:
        tl = Timeline()
        for i in range(n):
            tl.append(_record(i))
        return tl

    def test_len_and_iter(self):
        tl = self._timeline()
        assert len(tl) == 3
        assert [r.epoch for r in tl] == [0, 1, 2]

    def test_aggregate_hits_sums_fieldwise(self):
        agg = self._timeline().aggregate_hits()
        assert agg.l1_hits == 120
        assert agg.cache_misses == 30
        assert agg.total_requests == 300

    def test_aggregate_breakdown_and_energy(self):
        tl = self._timeline()
        assert tl.aggregate_breakdown().dram_ns == 5.0 + 10.0 + 15.0
        assert tl.aggregate_energy().cxl_nj == 0.0 + 1.0 + 2.0
        assert tl.aggregate_energy().static_nj == 0.0

    def test_event_round_trip_sorts_by_epoch(self):
        tl = self._timeline()
        events = tl.to_events()
        assert all(e["kind"] == "epoch" for e in events)
        # shuffle + add foreign event kinds; from_events must recover order
        mixed = [events[2], {"kind": "reconfig", "epoch": 1}, events[0], events[1]]
        clone = Timeline.from_events(mixed)
        assert clone.records == tl.records

    def test_csv_has_dotted_nested_columns(self, tmp_path):
        tl = self._timeline()
        header, rows = tl.csv_rows()
        assert "hits.cache_misses" in header
        assert "energy.cxl_nj" in header
        assert len(rows) == 3
        path = tmp_path / "timeline.csv"
        tl.to_csv(str(path))
        with open(path, newline="") as f:
            parsed = list(csv.reader(f))
        assert parsed[0] == header
        assert len(parsed) == 4

"""Prometheus/JSON exporter validity: every emitted line must parse
under the text-format grammar, histogram series must be cumulative and
capped by ``+Inf == _count``, and the JSON payload must be strictly
finite."""

import json
import math
import re

import pytest

from repro.core import NdpExtPolicy
from repro.obs import Recorder
from repro.obs.export import json_payload, prometheus_text, write_json
from repro.sim import SimulationEngine, tiny
from repro.workloads import TINY, build

# Prometheus text format: HELP/TYPE comments, or `name{labels} value`.
METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (?:[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN))$"
)
COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


@pytest.fixture(scope="module")
def recorded_report():
    recorder = Recorder(workload="pr", policy="ndpext", preset="tiny")
    engine = SimulationEngine(tiny(), recorder=recorder)
    return engine.run(build("pr", TINY), NdpExtPolicy())


@pytest.fixture(scope="module")
def prom(recorded_report):
    return prometheus_text(recorded_report, extra_labels={"preset": "tiny"})


class TestPrometheusFormat:
    def test_every_line_parses(self, prom):
        for line in prom.strip().splitlines():
            assert METRIC_LINE.match(line) or COMMENT_LINE.match(line), line

    def test_each_metric_declared_once_before_samples(self, prom):
        declared = []
        for line in prom.splitlines():
            if line.startswith("# TYPE "):
                declared.append(line.split()[2])
        assert len(declared) == len(set(declared)), "duplicate TYPE headers"
        seen = set()
        for line in prom.splitlines():
            if line.startswith("#"):
                seen.add(line.split()[2])
            else:
                name = re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*", line).group(0)
                base = re.sub(r"_(bucket|sum|count)$", "", name)
                assert name in seen or base in seen, name

    def test_core_series_present(self, prom):
        for needle in (
            "repro_runtime_cycles",
            'repro_requests_total{workload="pr",policy="ndpext",preset="tiny",level="l1"}',
            "repro_request_latency_ns_bucket",
            "repro_unit_served_requests_total",
            "repro_load_imbalance",
        ):
            assert needle in prom, needle

    def test_histogram_buckets_cumulative_and_capped(self, prom, recorded_report):
        for tier, hist in recorded_report.tier_histograms.items():
            pattern = re.compile(
                r"repro_request_latency_ns_bucket\{[^}]*tier=\""
                + tier
                + r"\"[^}]*le=\"([^\"]+)\"\} (\d+)"
            )
            rows = [
                (le, int(count))
                for le, count in pattern.findall(prom)
            ]
            assert rows, tier
            counts = [count for _, count in rows]
            assert counts == sorted(counts), f"{tier}: not cumulative"
            assert rows[-1][0] == "+Inf"
            assert counts[-1] == hist.n

    def test_unit_series_reconcile_with_spatial(self, prom, recorded_report):
        served = re.findall(
            r"repro_unit_served_requests_total\{[^}]*\} (\d+)", prom
        )
        assert [int(v) for v in served] == recorded_report.spatial.served


class TestJsonPayload:
    def test_no_non_finite_values_anywhere(self, recorded_report):
        payload = json_payload(
            recorded_report, extra={"weird": float("nan")}
        )
        text = json.dumps(payload, allow_nan=False)  # raises if any slip
        assert "NaN" not in text and "Infinity" not in text
        assert payload["weird"] is None

    def test_carries_percentiles_and_imbalance(self, recorded_report):
        payload = json_payload(recorded_report)
        assert set(payload["percentiles_ns"]) == {
            "local",
            "intra",
            "inter",
            "extended",
        }
        for stats in payload["percentiles_ns"].values():
            assert set(stats) == {"p50", "p95", "p99", "p999"}
            assert all(
                v is None or math.isfinite(v) for v in stats.values()
            )
        assert payload["load_imbalance"] >= 1.0

    def test_counters_passthrough(self, recorded_report):
        payload = json_payload(
            recorded_report, counters={"runner.cache_miss": 3}
        )
        assert payload["counters"] == {"runner.cache_miss": 3}

    def test_write_json_round_trips(self, recorded_report, tmp_path):
        path = tmp_path / "m.json"
        write_json(str(path), json_payload(recorded_report))
        loaded = json.loads(path.read_text())
        assert loaded["runtime_cycles"] == recorded_report.runtime_cycles

"""Prometheus/JSON exporter validity: every emitted line must parse
under the text-format grammar, histogram series must be cumulative and
capped by ``+Inf == _count``, and the JSON payload must be strictly
finite."""

import json
import math
import re

import pytest

from repro.core import NdpExtPolicy
from repro.obs import Recorder
from repro.obs.export import json_payload, prometheus_text, write_json
from repro.sim import SimulationEngine, tiny
from repro.workloads import TINY, build

# Prometheus text format: HELP/TYPE comments, or `name{labels} value`.
METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (?:[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN))$"
)
COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


@pytest.fixture(scope="module")
def recorded_report():
    recorder = Recorder(workload="pr", policy="ndpext", preset="tiny")
    engine = SimulationEngine(tiny(), recorder=recorder)
    return engine.run(build("pr", TINY), NdpExtPolicy())


@pytest.fixture(scope="module")
def prom(recorded_report):
    return prometheus_text(recorded_report, extra_labels={"preset": "tiny"})


class TestPrometheusFormat:
    def test_every_line_parses(self, prom):
        for line in prom.strip().splitlines():
            assert METRIC_LINE.match(line) or COMMENT_LINE.match(line), line

    def test_each_metric_declared_once_before_samples(self, prom):
        declared = []
        for line in prom.splitlines():
            if line.startswith("# TYPE "):
                declared.append(line.split()[2])
        assert len(declared) == len(set(declared)), "duplicate TYPE headers"
        seen = set()
        for line in prom.splitlines():
            if line.startswith("#"):
                seen.add(line.split()[2])
            else:
                name = re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*", line).group(0)
                base = re.sub(r"_(bucket|sum|count)$", "", name)
                assert name in seen or base in seen, name

    def test_core_series_present(self, prom):
        for needle in (
            "repro_runtime_cycles",
            'repro_requests_total{workload="pr",policy="ndpext",preset="tiny",level="l1"}',
            "repro_request_latency_ns_bucket",
            "repro_unit_served_requests_total",
            "repro_load_imbalance",
        ):
            assert needle in prom, needle

    def test_histogram_buckets_cumulative_and_capped(self, prom, recorded_report):
        for tier, hist in recorded_report.tier_histograms.items():
            pattern = re.compile(
                r"repro_request_latency_ns_bucket\{[^}]*tier=\""
                + tier
                + r"\"[^}]*le=\"([^\"]+)\"\} (\d+)"
            )
            rows = [
                (le, int(count))
                for le, count in pattern.findall(prom)
            ]
            assert rows, tier
            counts = [count for _, count in rows]
            assert counts == sorted(counts), f"{tier}: not cumulative"
            assert rows[-1][0] == "+Inf"
            assert counts[-1] == hist.n

    def test_unit_series_reconcile_with_spatial(self, prom, recorded_report):
        served = re.findall(
            r"repro_unit_served_requests_total\{[^}]*\} (\d+)", prom
        )
        assert [int(v) for v in served] == recorded_report.spatial.served


class TestJsonPayload:
    def test_no_non_finite_values_anywhere(self, recorded_report):
        payload = json_payload(
            recorded_report, extra={"weird": float("nan")}
        )
        text = json.dumps(payload, allow_nan=False)  # raises if any slip
        assert "NaN" not in text and "Infinity" not in text
        assert payload["weird"] is None

    def test_carries_percentiles_and_imbalance(self, recorded_report):
        payload = json_payload(recorded_report)
        assert set(payload["percentiles_ns"]) == {
            "local",
            "intra",
            "inter",
            "extended",
        }
        for stats in payload["percentiles_ns"].values():
            assert set(stats) == {"p50", "p95", "p99", "p999"}
            assert all(
                v is None or math.isfinite(v) for v in stats.values()
            )
        assert payload["load_imbalance"] >= 1.0

    def test_counters_passthrough(self, recorded_report):
        payload = json_payload(
            recorded_report, counters={"runner.cache_miss": 3}
        )
        assert payload["counters"] == {"runner.cache_miss": 3}

    def test_write_json_round_trips(self, recorded_report, tmp_path):
        path = tmp_path / "m.json"
        write_json(str(path), json_payload(recorded_report))
        loaded = json.loads(path.read_text())
        assert loaded["runtime_cycles"] == recorded_report.runtime_cycles


class TestServePrometheusFormat:
    """The serving exporter under a real two-tenant fault storm: every
    line must parse, every family must carry HELP/TYPE, and the
    per-tenant histograms must stay cumulative."""

    @pytest.fixture(scope="class")
    def storm(self):
        from repro.obs.export import serve_prometheus
        from repro.obs.slo import SloObjective
        from repro.serve import ServeHarness
        from repro.serve.scenario import two_tenant_scenario

        scenario = two_tenant_scenario(
            name="export-storm",
            batch_accesses=500,
            wave_size=6,
            steps_per_wave=3,
            faults={
                "unit_failures": 1,
                "row_faults": 1,
                "crc_bursts": 1,
                "downtrains": 1,
            },
            admission="slo",
            objectives=(
                SloObjective(
                    "analytics", p99_ns=70_000.0, max_shed_rate=0.10
                ),
            ),
        )
        report = ServeHarness(scenario, preset="tiny").run()
        return serve_prometheus(report, {"preset": "tiny"}), report

    def test_every_line_parses(self, storm):
        text, _ = storm
        for line in text.strip().splitlines():
            assert METRIC_LINE.match(line) or COMMENT_LINE.match(line), line

    def test_help_and_type_precede_every_family(self, storm):
        text, _ = storm
        helped, typed, seen = set(), set(), set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                helped.add(line.split()[2])
            elif line.startswith("# TYPE "):
                name = line.split()[2]
                assert name in helped, f"TYPE before HELP for {name}"
                typed.add(name)
            else:
                name = re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*", line).group(0)
                base = re.sub(r"_(bucket|sum|count)$", "", name)
                assert name in typed or base in typed, name
                seen.add(base if base in typed else name)
        assert typed == seen, "declared families with no samples"

    def test_tenant_histograms_cumulative_and_capped(self, storm):
        text, report = storm
        populated = ["all"] + [
            name
            for name, stats in report.tenants.items()
            if stats.latency.n
        ]
        assert len(populated) >= 3, "storm must populate both tenants"
        for tenant in populated:
            rows = re.findall(
                r'repro_serve_batch_latency_ns_bucket\{[^}]*tenant="'
                + tenant
                + r'"[^}]*le="([^"]+)"\} (\d+)',
                text,
            )
            assert rows, tenant
            counts = [int(count) for _, count in rows]
            assert counts == sorted(counts), f"{tenant}: not cumulative"
            assert rows[-1][0] == "+Inf"
            hist = (
                report.latency
                if tenant == "all"
                else report.tenants[tenant].latency
            )
            assert counts[-1] == hist.n

    def test_slo_series_present_with_objectives(self, storm):
        text, _ = storm
        for needle in (
            'repro_slo_alert_state{scenario="export-storm",preset="tiny",'
            'tenant="analytics"}',
            "repro_slo_budget_remaining",
            'objective="latency_p99",window="fast"',
            'objective="latency_p99",window="slow"',
            "repro_slo_latency_windows_total",
            "repro_slo_latency_windows_met",
        ):
            assert needle in text, needle

    def test_tenant_label_values_are_escaped(self):
        from repro.obs.export import serve_prometheus
        from repro.obs.histogram import LatencyHistogram
        from repro.serve import ServeReport, TenantStats

        weird = 'ten"ant\\one'
        report = ServeReport(
            scenario='sce"nario',
            tenants={weird: TenantStats(submitted=1, admitted=1)},
            latency=LatencyHistogram(),
            epochs=1,
            reconfigs=0,
            health_reconfig_requests=0,
            degraded_windows=[],
        )
        text = serve_prometheus(report)
        assert 'tenant="ten\\"ant\\\\one"' in text
        assert 'scenario="sce\\"nario"' in text
        # The raw (unescaped) label value never appears verbatim.
        assert f'tenant="{weird}"' not in text


class TestSloPrometheusStandalone:
    def test_renders_status_payload(self):
        from repro.obs.export import slo_prometheus

        status = {
            "tenants": {
                "a": {
                    "alert": "page",
                    "budget_remaining": -0.5,
                    "objectives": {
                        "latency_p99": {
                            "burn_fast": 20.0,
                            "burn_slow": 15.0,
                            "windows_total": 4,
                            "windows_met": 1,
                        }
                    },
                }
            }
        }
        text = slo_prometheus(status, {"preset": "tiny"})
        for line in text.strip().splitlines():
            assert METRIC_LINE.match(line) or COMMENT_LINE.match(line), line
        assert 'repro_slo_alert_state{preset="tiny",tenant="a"} 2' in text
        assert "repro_slo_budget_remaining" in text
        assert 'window="slow"} 15.0' in text
        assert 'repro_slo_latency_windows_met{preset="tiny",tenant="a",objective="latency_p99"} 1' in text

    def test_empty_status_is_headers_only(self):
        from repro.obs.export import slo_prometheus

        text = slo_prometheus({"tenants": {}})
        assert all(
            line.startswith("#") for line in text.strip().splitlines()
        )

"""The ``repro dash`` renderer: structurally valid standalone HTML from
either input shape (JSONL trace or report JSON), with every section the
acceptance criteria name — CDF, unit heatmap, link matrix, timeline."""

from html.parser import HTMLParser

import pytest

from repro.core import NdpExtPolicy
from repro.obs import Recorder
from repro.obs.dash import load_input, render_dash
from repro.obs.export import write_json
from repro.sim import SimulationEngine, tiny
from repro.workloads import TINY, build


class TagChecker(HTMLParser):
    """Minimal well-formedness check: every non-void tag closes in order."""

    VOID = {"meta", "br", "hr", "img", "input", "link", "line", "rect", "circle", "path"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack: list[str] = []
        self.errors: list[str] = []
        self.tags: dict[str, int] = {}

    def handle_starttag(self, tag, attrs):
        self.tags[tag] = self.tags.get(tag, 0) + 1
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        self.tags[tag] = self.tags.get(tag, 0) + 1

    def handle_endtag(self, tag):
        if tag in self.VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"unbalanced </{tag}> (stack: {self.stack[-3:]})")
        else:
            self.stack.pop()


def checked(html_text: str) -> TagChecker:
    checker = TagChecker()
    checker.feed(html_text)
    assert not checker.errors, checker.errors
    assert not checker.stack, f"unclosed tags: {checker.stack}"
    return checker


@pytest.fixture(scope="module")
def recorded():
    recorder = Recorder(workload="pr", policy="ndpext", preset="tiny")
    engine = SimulationEngine(tiny(), recorder=recorder)
    report = engine.run(build("pr", TINY), NdpExtPolicy())
    return report, recorder


class TestRenderDash:
    def test_standalone_well_formed_html(self, recorded):
        report, _ = recorded
        html_text = render_dash(report, source="test")
        checker = checked(html_text)
        assert html_text.startswith("<!DOCTYPE html>")
        # Self-contained: no external scripts, stylesheets, or images.
        assert "<script" not in html_text
        assert "http://" not in html_text and "https://" not in html_text

    def test_all_sections_present(self, recorded):
        report, _ = recorded
        html_text = render_dash(report)
        for heading in (
            "Latency CDF by serving tier",
            "Requests served per NDP unit",
            "Stack-to-stack link traffic",
            "Epoch timeline",
        ):
            assert heading in html_text, heading
        checker = checked(html_text)
        assert checker.tags.get("svg", 0) >= 3
        assert checker.tags.get("polyline", 0) >= 2  # CDFs + timeline
        assert checker.tags.get("rect", 0) >= report.spatial.n_units
        assert checker.tags.get("table", 0) >= 3  # percentiles, units, matrix
        assert checker.tags.get("title", 0) >= 3  # native tooltips

    def test_percentile_table_carries_each_populated_tier(self, recorded):
        report, _ = recorded
        html_text = render_dash(report)
        for tier, hist in report.tier_histograms.items():
            if hist.n:
                assert f">{tier}<" in html_text or f"{tier}</td>" in html_text

    def test_report_without_obs_degrades_gracefully(self, recorded):
        report, _ = recorded
        from repro.sim.metrics import SimulationReport

        bare = SimulationReport.from_json(report.to_json())
        html_text = render_dash(bare)
        checked(html_text)
        assert "no latency histograms" in html_text

    def test_text_never_wears_series_color(self, recorded):
        """SVG text elements use ink tokens, never the tier hues."""
        report, _ = recorded
        html_text = render_dash(report)
        import re

        for match in re.finditer(r"<text[^>]*fill=\"([^\"]+)\"", html_text):
            assert match.group(1) in (
                "var(--ink)",
                "var(--ink-2)",
                "var(--muted)",
            ), match.group(0)


class TestLoadInput:
    def test_loads_jsonl_trace(self, recorded, tmp_path):
        report, recorder = recorded
        path = tmp_path / "t.jsonl"
        recorder.write_jsonl(str(path))
        loaded = load_input(str(path))
        assert loaded.runtime_cycles == report.runtime_cycles
        assert loaded.tier_histograms is not None
        assert loaded.spatial is not None

    def test_loads_report_json(self, recorded, tmp_path):
        report, _ = recorded
        path = tmp_path / "r.json"
        write_json(str(path), report.to_json(include_obs=True))
        loaded = load_input(str(path))
        assert loaded.runtime_cycles == report.runtime_cycles
        assert loaded.spatial.served == report.spatial.served

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("hello\nworld\n")
        with pytest.raises(ValueError, match="neither"):
            load_input(str(path))


SLO_EVENTS = [
    {"kind": "slo_burn", "tenant": "interactive", "state": "warn",
     "epoch": 13, "burn_fast": 8.0},
    {"kind": "slo_burn", "tenant": "interactive", "state": "page",
     "epoch": 15, "burn_fast": 21.0},
    {"kind": "slo_recovered", "tenant": "interactive", "state": "ok",
     "epoch": 22},
    {"kind": "slo_status", "tenant": "interactive", "alert": "ok",
     "budget_remaining": 0.4, "worst_burn": 21.0,
     "budget_history": [[0, 1.0], [15, 0.1], [22, 0.4]]},
    {"kind": "slo_status", "tenant": "analytics", "alert": "ok",
     "budget_remaining": 0.9, "worst_burn": 1.2,
     "budget_history": [[0, 1.0], [22, 0.9]]},
]


class TestSloPanel:
    def test_panel_renders_bands_burndown_and_rollup(self, recorded):
        report, _ = recorded
        html_text = render_dash(report, slo_events=SLO_EVENTS)
        checker = checked(html_text)
        assert "SLO error budgets" in html_text
        # Alert-state bands use the dedicated SLO color tokens.
        for token in ("var(--slo-ok)", "var(--slo-warn)", "var(--slo-page)"):
            assert token in html_text, token
        # Rollup table: both tenants, final alert, burn multiple,
        # escalation count (two slo_burn events for interactive).
        assert ">interactive<" in html_text
        assert ">analytics<" in html_text
        assert "21.0x" in html_text
        assert "<td>2</td>" in html_text
        assert "page from epoch 15" in html_text
        # One SVG per tenant card on top of the base dashboard's three.
        assert checker.tags.get("svg", 0) >= 5

    def test_no_slo_events_no_panel(self, recorded):
        report, _ = recorded
        html_text = render_dash(report, slo_events=[])
        checked(html_text)
        assert "SLO error budgets" not in html_text

    def test_status_only_tenant_still_gets_a_card(self, recorded):
        """A tenant that never alerted renders from its final status
        alone — an all-ok band plus the budget line."""
        report, _ = recorded
        html_text = render_dash(
            report, slo_events=[e for e in SLO_EVENTS if e["tenant"] == "analytics"]
        )
        checked(html_text)
        assert ">analytics<" in html_text
        assert "0.90" in html_text


class TestLoadSloEvents:
    def test_pulls_slo_events_from_trace(self, tmp_path):
        from repro.obs.dash import load_slo_events

        rec = Recorder(workload="pr", policy="ndpext")
        rec.event("epoch", epoch=0)
        rec.event("slo_burn", tenant="a", state="page", epoch=3)
        rec.event("slo_status", tenant="a", alert="page",
                  budget_remaining=-0.2, worst_burn=30.0)
        path = tmp_path / "t.jsonl"
        rec.write_jsonl(str(path))
        events = load_slo_events(str(path))
        assert [e["kind"] for e in events] == ["slo_burn", "slo_status"]

    def test_report_json_input_yields_no_events(self, recorded, tmp_path):
        from repro.obs.dash import load_slo_events

        report, _ = recorded
        path = tmp_path / "r.json"
        write_json(str(path), report.to_json(include_obs=True))
        assert load_slo_events(str(path)) == []


class TestCli:
    def test_dash_verb_end_to_end(self, recorded, tmp_path, capsys):
        from repro.__main__ import main

        _, recorder = recorded
        trace = tmp_path / "t.jsonl"
        recorder.write_jsonl(str(trace))
        out = tmp_path / "dash.html"
        prom = tmp_path / "m.prom"
        assert (
            main(
                [
                    "dash",
                    str(trace),
                    "--out",
                    str(out),
                    "--prom",
                    str(prom),
                ]
            )
            == 0
        )
        checked(out.read_text())
        assert prom.read_text().startswith("# HELP")
        assert "wrote" in capsys.readouterr().out

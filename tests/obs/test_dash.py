"""The ``repro dash`` renderer: structurally valid standalone HTML from
either input shape (JSONL trace or report JSON), with every section the
acceptance criteria name — CDF, unit heatmap, link matrix, timeline."""

from html.parser import HTMLParser

import pytest

from repro.core import NdpExtPolicy
from repro.obs import Recorder
from repro.obs.dash import load_input, render_dash
from repro.obs.export import write_json
from repro.sim import SimulationEngine, tiny
from repro.workloads import TINY, build


class TagChecker(HTMLParser):
    """Minimal well-formedness check: every non-void tag closes in order."""

    VOID = {"meta", "br", "hr", "img", "input", "link", "line", "rect", "circle", "path"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack: list[str] = []
        self.errors: list[str] = []
        self.tags: dict[str, int] = {}

    def handle_starttag(self, tag, attrs):
        self.tags[tag] = self.tags.get(tag, 0) + 1
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        self.tags[tag] = self.tags.get(tag, 0) + 1

    def handle_endtag(self, tag):
        if tag in self.VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"unbalanced </{tag}> (stack: {self.stack[-3:]})")
        else:
            self.stack.pop()


def checked(html_text: str) -> TagChecker:
    checker = TagChecker()
    checker.feed(html_text)
    assert not checker.errors, checker.errors
    assert not checker.stack, f"unclosed tags: {checker.stack}"
    return checker


@pytest.fixture(scope="module")
def recorded():
    recorder = Recorder(workload="pr", policy="ndpext", preset="tiny")
    engine = SimulationEngine(tiny(), recorder=recorder)
    report = engine.run(build("pr", TINY), NdpExtPolicy())
    return report, recorder


class TestRenderDash:
    def test_standalone_well_formed_html(self, recorded):
        report, _ = recorded
        html_text = render_dash(report, source="test")
        checker = checked(html_text)
        assert html_text.startswith("<!DOCTYPE html>")
        # Self-contained: no external scripts, stylesheets, or images.
        assert "<script" not in html_text
        assert "http://" not in html_text and "https://" not in html_text

    def test_all_sections_present(self, recorded):
        report, _ = recorded
        html_text = render_dash(report)
        for heading in (
            "Latency CDF by serving tier",
            "Requests served per NDP unit",
            "Stack-to-stack link traffic",
            "Epoch timeline",
        ):
            assert heading in html_text, heading
        checker = checked(html_text)
        assert checker.tags.get("svg", 0) >= 3
        assert checker.tags.get("polyline", 0) >= 2  # CDFs + timeline
        assert checker.tags.get("rect", 0) >= report.spatial.n_units
        assert checker.tags.get("table", 0) >= 3  # percentiles, units, matrix
        assert checker.tags.get("title", 0) >= 3  # native tooltips

    def test_percentile_table_carries_each_populated_tier(self, recorded):
        report, _ = recorded
        html_text = render_dash(report)
        for tier, hist in report.tier_histograms.items():
            if hist.n:
                assert f">{tier}<" in html_text or f"{tier}</td>" in html_text

    def test_report_without_obs_degrades_gracefully(self, recorded):
        report, _ = recorded
        from repro.sim.metrics import SimulationReport

        bare = SimulationReport.from_json(report.to_json())
        html_text = render_dash(bare)
        checked(html_text)
        assert "no latency histograms" in html_text

    def test_text_never_wears_series_color(self, recorded):
        """SVG text elements use ink tokens, never the tier hues."""
        report, _ = recorded
        html_text = render_dash(report)
        import re

        for match in re.finditer(r"<text[^>]*fill=\"([^\"]+)\"", html_text):
            assert match.group(1) in (
                "var(--ink)",
                "var(--ink-2)",
                "var(--muted)",
            ), match.group(0)


class TestLoadInput:
    def test_loads_jsonl_trace(self, recorded, tmp_path):
        report, recorder = recorded
        path = tmp_path / "t.jsonl"
        recorder.write_jsonl(str(path))
        loaded = load_input(str(path))
        assert loaded.runtime_cycles == report.runtime_cycles
        assert loaded.tier_histograms is not None
        assert loaded.spatial is not None

    def test_loads_report_json(self, recorded, tmp_path):
        report, _ = recorded
        path = tmp_path / "r.json"
        write_json(str(path), report.to_json(include_obs=True))
        loaded = load_input(str(path))
        assert loaded.runtime_cycles == report.runtime_cycles
        assert loaded.spatial.served == report.spatial.served

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("hello\nworld\n")
        with pytest.raises(ValueError, match="neither"):
            load_input(str(path))


class TestCli:
    def test_dash_verb_end_to_end(self, recorded, tmp_path, capsys):
        from repro.__main__ import main

        _, recorder = recorded
        trace = tmp_path / "t.jsonl"
        recorder.write_jsonl(str(trace))
        out = tmp_path / "dash.html"
        prom = tmp_path / "m.prom"
        assert (
            main(
                [
                    "dash",
                    str(trace),
                    "--out",
                    str(out),
                    "--prom",
                    str(prom),
                ]
            )
            == 0
        )
        checked(out.read_text())
        assert prom.read_text().startswith("# HELP")
        assert "wrote" in capsys.readouterr().out

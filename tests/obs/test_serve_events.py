"""Serve events in traces (schema 2) and the serving Prometheus export."""

import pytest

from repro.obs import SCHEMA_VERSION, Recorder, read_trace
from repro.obs.export import serve_prometheus
from repro.obs.histogram import LatencyHistogram
from repro.obs.traceio import serve_event_counts, summarize
from repro.serve import ServeReport, TenantStats


def _trace_with(tmp_path, events):
    rec = Recorder(workload="pr", policy="ndpext")
    for kind, fields in events:
        rec.event(kind, **fields)
    path = tmp_path / "trace.jsonl"
    rec.write_jsonl(str(path))
    return read_trace(str(path))


class TestServeEventCounts:
    def test_schema_was_bumped_for_slo_events(self):
        assert SCHEMA_VERSION == 3

    def test_counts_well_formed_events(self, tmp_path):
        trace = _trace_with(
            tmp_path,
            [
                ("serve_shed", {"tenant": "a", "batch": 1, "priority": 0}),
                ("serve_shed", {"tenant": "b", "batch": 2, "priority": 1}),
                ("serve_timeout", {"tenant": "a", "batch": 3}),
                ("serve_degraded", {"state": "degraded"}),
                ("slo_burn", {"tenant": "a", "state": "page", "epoch": 4}),
                ("slo_recovered", {"tenant": "a", "state": "ok", "epoch": 9}),
                ("epoch", {"epoch": 0}),  # unrelated kinds are ignored
            ],
        )
        assert serve_event_counts(trace) == {
            "serve_shed": 2,
            "serve_timeout": 1,
            "serve_degraded": 1,
            "slo_burn": 1,
            "slo_recovered": 1,
        }

    def test_unknown_serve_kind_warns_and_counts(self, tmp_path):
        """Forward compatibility: a serve_*/slo_* kind this reader does
        not know (from a newer schema) is counted, not a hard failure."""
        trace = _trace_with(
            tmp_path,
            [
                ("serve_shed", {"tenant": "a", "batch": 1}),
                ("slo_exotic_future_kind", {"tenant": "a"}),
                ("serve_novel", {"whatever": 1}),
            ],
        )
        with pytest.warns(UserWarning, match="unknown serve/slo"):
            counts = serve_event_counts(trace)
        assert counts["serve_shed"] == 1
        assert counts["slo_exotic_future_kind"] == 1
        assert counts["serve_novel"] == 1

    def test_summarize_reports_serve_counters(self, tmp_path):
        trace = _trace_with(
            tmp_path,
            [
                ("serve_shed", {"tenant": "a", "batch": 1}),
                ("serve_degraded", {"state": "flapping"}),
            ],
        )
        summary = summarize(trace)
        assert summary["serve_shed"] == 1
        assert summary["serve_timeouts"] == 0
        assert summary["serve_degraded_transitions"] == 1

    @pytest.mark.parametrize(
        "kind,fields",
        [
            ("serve_shed", {"tenant": "a"}),  # missing batch
            ("serve_timeout", {"batch": 1}),  # missing tenant
            ("serve_degraded", {"epoch": 3}),  # missing state
            ("slo_burn", {"tenant": "a"}),  # missing state
            ("slo_recovered", {"state": "ok"}),  # missing tenant
        ],
    )
    def test_malformed_event_hard_fails(self, tmp_path, kind, fields):
        trace = _trace_with(tmp_path, [(kind, fields)])
        with pytest.raises(ValueError, match=kind):
            serve_event_counts(trace)

    def test_traces_without_serve_events_summarize_to_zero(self, tmp_path):
        trace = _trace_with(tmp_path, [("epoch", {"epoch": 0})])
        summary = summarize(trace)
        assert summary["serve_shed"] == 0
        assert summary["serve_degraded_transitions"] == 0
        assert summary["slo_burns"] == 0
        assert summary["slo_recoveries"] == 0

    def test_summarize_reports_slo_burns_and_worst_burn(self, tmp_path):
        trace = _trace_with(
            tmp_path,
            [
                ("slo_burn", {"tenant": "a", "state": "warn", "epoch": 3,
                              "burn_fast": 8.0}),
                ("slo_burn", {"tenant": "a", "state": "page", "epoch": 5,
                              "burn_fast": 20.0}),
                ("slo_burn", {"tenant": "b", "state": "warn", "epoch": 6,
                              "burn_fast": 7.5}),
                ("slo_recovered", {"tenant": "a", "state": "ok", "epoch": 12}),
                ("slo_status", {"tenant": "c", "worst_burn": 3.0}),
            ],
        )
        summary = summarize(trace)
        assert summary["slo_burns"] == 3
        assert summary["slo_recoveries"] == 1
        assert summary["slo_worst_burn[a]"] == 20.0
        assert summary["slo_worst_burn[b]"] == 7.5
        # Tenants that never alerted still report via the final status.
        assert summary["slo_worst_burn[c]"] == 3.0


def _report():
    hist = LatencyHistogram()
    hist.observe([100.0, 2000.0, 50000.0])
    tenant_hist = LatencyHistogram()
    tenant_hist.observe([100.0])
    return ServeReport(
        scenario="unit",
        tenants={
            "interactive": TenantStats(
                submitted=5, admitted=4, rejected=1, completed=4,
                latency=tenant_hist,
            ),
            "analytics": TenantStats(submitted=3, shed=2, timed_out=1),
        },
        latency=hist,
        epochs=4,
        reconfigs=2,
        health_reconfig_requests=1,
        degraded_windows=[[3, 7]],
        drained_queued=2,
    )


class TestServePrometheus:
    def test_outcome_counters_per_tenant(self):
        text = serve_prometheus(_report())
        assert (
            'repro_serve_batches_total{scenario="unit",'
            'tenant="analytics",outcome="shed"} 2' in text
        )
        assert (
            'repro_serve_batches_total{scenario="unit",'
            'tenant="interactive",outcome="completed"} 4' in text
        )

    def test_latency_histogram_and_gauges(self):
        text = serve_prometheus(_report(), {"preset": "tiny"})
        assert 'tenant="all"' in text
        assert "repro_serve_batch_latency_ns_count" in text
        assert "repro_serve_reconfigs_total" in text
        # degraded window [3, 7) -> 4 epochs
        assert "repro_serve_degraded_epochs" in text
        line = next(
            ln for ln in text.splitlines()
            if ln.startswith("repro_serve_degraded_epochs{")
        )
        assert line.endswith(" 4")
        assert 'preset="tiny"' in line

    def test_empty_tenant_histograms_are_omitted(self):
        text = serve_prometheus(_report())
        assert 'tenant="analytics",le=' not in text

"""Serve events in traces (schema 2) and the serving Prometheus export."""

import pytest

from repro.obs import SCHEMA_VERSION, Recorder, read_trace
from repro.obs.export import serve_prometheus
from repro.obs.histogram import LatencyHistogram
from repro.obs.traceio import serve_event_counts, summarize
from repro.serve import ServeReport, TenantStats


def _trace_with(tmp_path, events):
    rec = Recorder(workload="pr", policy="ndpext")
    for kind, fields in events:
        rec.event(kind, **fields)
    path = tmp_path / "trace.jsonl"
    rec.write_jsonl(str(path))
    return read_trace(str(path))


class TestServeEventCounts:
    def test_schema_was_bumped_for_serve_events(self):
        assert SCHEMA_VERSION == 2

    def test_counts_well_formed_events(self, tmp_path):
        trace = _trace_with(
            tmp_path,
            [
                ("serve_shed", {"tenant": "a", "batch": 1, "priority": 0}),
                ("serve_shed", {"tenant": "b", "batch": 2, "priority": 1}),
                ("serve_timeout", {"tenant": "a", "batch": 3}),
                ("serve_degraded", {"state": "degraded"}),
                ("epoch", {"epoch": 0}),  # unrelated kinds are ignored
            ],
        )
        assert serve_event_counts(trace) == {
            "serve_shed": 2,
            "serve_timeout": 1,
            "serve_degraded": 1,
        }

    def test_summarize_reports_serve_counters(self, tmp_path):
        trace = _trace_with(
            tmp_path,
            [
                ("serve_shed", {"tenant": "a", "batch": 1}),
                ("serve_degraded", {"state": "flapping"}),
            ],
        )
        summary = summarize(trace)
        assert summary["serve_shed"] == 1
        assert summary["serve_timeouts"] == 0
        assert summary["serve_degraded_transitions"] == 1

    @pytest.mark.parametrize(
        "kind,fields",
        [
            ("serve_shed", {"tenant": "a"}),  # missing batch
            ("serve_timeout", {"batch": 1}),  # missing tenant
            ("serve_degraded", {"epoch": 3}),  # missing state
        ],
    )
    def test_malformed_event_hard_fails(self, tmp_path, kind, fields):
        trace = _trace_with(tmp_path, [(kind, fields)])
        with pytest.raises(ValueError, match=kind):
            serve_event_counts(trace)

    def test_traces_without_serve_events_summarize_to_zero(self, tmp_path):
        trace = _trace_with(tmp_path, [("epoch", {"epoch": 0})])
        summary = summarize(trace)
        assert summary["serve_shed"] == 0
        assert summary["serve_degraded_transitions"] == 0


def _report():
    hist = LatencyHistogram()
    hist.observe([100.0, 2000.0, 50000.0])
    tenant_hist = LatencyHistogram()
    tenant_hist.observe([100.0])
    return ServeReport(
        scenario="unit",
        tenants={
            "interactive": TenantStats(
                submitted=5, admitted=4, rejected=1, completed=4,
                latency=tenant_hist,
            ),
            "analytics": TenantStats(submitted=3, shed=2, timed_out=1),
        },
        latency=hist,
        epochs=4,
        reconfigs=2,
        health_reconfig_requests=1,
        degraded_windows=[[3, 7]],
        drained_queued=2,
    )


class TestServePrometheus:
    def test_outcome_counters_per_tenant(self):
        text = serve_prometheus(_report())
        assert (
            'repro_serve_batches_total{scenario="unit",'
            'tenant="analytics",outcome="shed"} 2' in text
        )
        assert (
            'repro_serve_batches_total{scenario="unit",'
            'tenant="interactive",outcome="completed"} 4' in text
        )

    def test_latency_histogram_and_gauges(self):
        text = serve_prometheus(_report(), {"preset": "tiny"})
        assert 'tenant="all"' in text
        assert "repro_serve_batch_latency_ns_count" in text
        assert "repro_serve_reconfigs_total" in text
        # degraded window [3, 7) -> 4 epochs
        assert "repro_serve_degraded_epochs" in text
        line = next(
            ln for ln in text.splitlines()
            if ln.startswith("repro_serve_degraded_epochs{")
        )
        assert line.endswith(" 4")
        assert 'preset="tiny"' in line

    def test_empty_tenant_histograms_are_omitted(self):
        text = serve_prometheus(_report())
        assert 'tenant="analytics",le=' not in text

"""Tests for the recorder, null recorder, and self-profiler."""

import json
import math

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    NullRecorder,
    Recorder,
    SelfProfiler,
    read_trace,
    sanitize_json,
)


class TestNullRecorder:
    def test_disabled(self):
        assert NullRecorder.enabled is False

    def test_all_hooks_are_noops(self):
        null = NullRecorder()
        null.event("epoch", epoch=0)
        null.counter("x")
        null.gauge("y", 1.0)
        with null.span("anything"):
            pass
        assert not hasattr(null, "events")

    def test_span_is_reusable_singleton(self):
        null = NullRecorder()
        assert null.span("a") is null.span("b")


class TestRecorder:
    def test_events_carry_monotone_seq_and_kind(self):
        rec = Recorder()
        rec.event("alpha", x=1)
        rec.event("beta", y=2)
        assert [e["seq"] for e in rec.events] == [0, 1]
        assert rec.events[0]["kind"] == "alpha"
        assert rec.events[1]["y"] == 2

    def test_counters_accumulate_and_gauges_overwrite(self):
        rec = Recorder()
        rec.counter("n", 2)
        rec.counter("n", 3)
        rec.gauge("g", 1.0)
        rec.gauge("g", 4.0)
        assert rec.counters["n"] == 5
        assert rec.gauges["g"] == 4.0

    def test_events_of_filters_by_kind(self):
        rec = Recorder()
        rec.event("a")
        rec.event("b")
        rec.event("a")
        assert len(rec.events_of("a")) == 2

    def test_span_accumulates_wall_clock(self):
        rec = Recorder()
        with rec.span("work"):
            pass
        with rec.span("work"):
            pass
        stats = rec.profiler.spans["work"]
        assert stats.calls == 2
        assert stats.total_s >= 0.0

    def test_jsonl_layout(self, tmp_path):
        rec = Recorder(workload="pr", policy="ndpext")
        rec.event("epoch", epoch=0)
        rec.counter("n", 1)
        with rec.span("s"):
            pass
        path = tmp_path / "t.jsonl"
        lines = rec.write_jsonl(str(path))
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(parsed) == lines
        assert parsed[0]["kind"] == "header"
        assert parsed[0]["schema"] == SCHEMA_VERSION
        assert parsed[0]["workload"] == "pr"
        assert parsed[-1] == {"kind": "footer", "events": 1}

    def test_jsonl_never_emits_nan_or_infinity_tokens(self, tmp_path):
        """A non-finite gauge or event field must serialize as ``null``:
        the bare ``NaN``/``Infinity`` tokens json.dumps would otherwise
        produce are rejected by the JSON spec and strict parsers."""
        rec = Recorder()
        rec.event("weird", value=float("nan"), nested={"x": float("inf")})
        rec.gauge("bad_gauge", float("-inf"))
        path = tmp_path / "t.jsonl"
        rec.write_jsonl(str(path))
        text = path.read_text()
        assert "NaN" not in text
        assert "Infinity" not in text
        parsed = [json.loads(line) for line in text.splitlines()]
        event = next(p for p in parsed if p.get("kind") == "weird")
        assert event["value"] is None
        assert event["nested"]["x"] is None
        # And the sanitized trace still round-trips through read_trace.
        trace = read_trace(str(path))
        assert trace.gauges["bad_gauge"] is None


class TestSanitizeJson:
    def test_maps_non_finite_to_none_recursively(self):
        dirty = {
            "a": float("nan"),
            "b": [1.0, float("inf"), {"c": float("-inf")}],
            "d": (2.0, math.nan),
            "ok": 3.5,
        }
        clean = sanitize_json(dirty)
        assert clean == {"a": None, "b": [1.0, None, {"c": None}], "d": [2.0, None], "ok": 3.5}

    def test_leaves_finite_values_and_non_floats_alone(self):
        payload = {"i": 7, "s": "x", "f": 1.25, "b": True, "n": None}
        assert sanitize_json(payload) == payload


class TestReadTrace:
    def _write(self, tmp_path, rec):
        path = tmp_path / "t.jsonl"
        rec.write_jsonl(str(path))
        return str(path)

    def test_round_trip(self, tmp_path):
        rec = Recorder(workload="pr")
        rec.event("epoch", epoch=0)
        rec.event("reconfig", epoch=1, applied=True)
        path = self._write(tmp_path, rec)
        trace = read_trace(path)
        assert trace.header["workload"] == "pr"
        assert [e["kind"] for e in trace.events] == ["epoch", "reconfig"]
        assert trace.footer["events"] == 2

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "epoch", "epoch": 0}\n')
        with pytest.raises(ValueError, match="header"):
            read_trace(str(path))

    @pytest.mark.parametrize("schema", ['"x"', "null", "0", "-1", "true"])
    def test_rejects_invalid_schema(self, tmp_path, schema):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "schema": %s}\n' % schema)
        with pytest.raises(ValueError, match="schema"):
            read_trace(str(path))

    def test_newer_schema_warns_but_reads(self, tmp_path):
        """Forward compatibility: a trace from a newer recorder is read
        with a warning (the framing is stable), not refused."""
        path = tmp_path / "newer.jsonl"
        path.write_text(
            '{"kind": "header", "schema": 999}\n'
            '{"kind": "epoch", "epoch": 0}\n'
        )
        with pytest.warns(UserWarning, match="newer"):
            trace = read_trace(str(path))
        assert trace.events[0]["epoch"] == 0

    def test_older_schema_reads_silently(self, tmp_path):
        path = tmp_path / "older.jsonl"
        path.write_text('{"kind": "header", "schema": 1}\n')
        trace = read_trace(str(path))
        assert trace.header["schema"] == 1

    def test_rejects_truncated_trace(self, tmp_path):
        rec = Recorder()
        rec.event("epoch", epoch=0)
        rec.event("epoch", epoch=1)
        path = tmp_path / "t.jsonl"
        rec.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        del lines[1]  # drop one event; the footer count now disagrees
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            read_trace(str(path))

    def test_rejects_garbage_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "schema": 1}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            read_trace(str(path))


class TestSelfProfiler:
    def test_add_and_summary_order(self):
        prof = SelfProfiler()
        prof.add("slow", 2.0)
        prof.add("fast", 0.5, calls=5)
        summary = prof.summary()
        assert summary[0]["label"] == "slow"
        assert summary[1]["calls"] == 5
        assert prof.total_s == pytest.approx(2.5)

    def test_mean(self):
        prof = SelfProfiler()
        prof.add("x", 4.0, calls=2)
        assert prof.spans["x"].mean_s == pytest.approx(2.0)

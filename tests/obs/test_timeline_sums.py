"""Validation of the observability layer against the engine's aggregates.

Two guarantees pin the design:

1. Recording must be *read-only*: a run under a live Recorder produces a
   SimulationReport bit-identical to a run under the default
   NullRecorder (only ``timeline`` is additionally populated).
2. The per-epoch timeline must be *complete*: its series sum back to the
   run's aggregate report — exactly for integer hit counts, within float
   tolerance for latency/energy (static energy is charged once from the
   final runtime, so it is excluded from the per-epoch series).
"""

from dataclasses import fields

import pytest

from repro.experiments.runner import POLICIES
from repro.faults import CxlCrcBurst, FaultSchedule, UnitFailure
from repro.obs import Recorder
from repro.sim import SimulationEngine, tiny
from repro.sim.metrics import EnergyBreakdown
from repro.workloads import TINY, build


def assert_reports_identical(
    a, b, skip=("faults", "timeline", "tier_histograms", "spatial")
):
    for f in fields(a):
        if f.name in skip:
            continue
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if hasattr(va, "__dataclass_fields__"):
            assert_reports_identical(va, vb, skip=skip)
        else:
            assert va == vb, f"field {f.name}: {va!r} != {vb!r}"


def run_recorded(policy_name="ndpext", faults=None):
    recorder = Recorder(workload="pr", policy=policy_name, preset="tiny")
    engine = SimulationEngine(tiny(), faults=faults, recorder=recorder)
    report = engine.run(build("pr", TINY), POLICIES[policy_name]())
    return report, recorder


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_null_recorder_bit_identical(policy_name):
    """Recording must never perturb the simulation (DESIGN.md contract)."""
    plain = SimulationEngine(tiny()).run(build("pr", TINY), POLICIES[policy_name]())
    recorded, _ = run_recorded(policy_name)
    assert_reports_identical(plain, recorded)
    assert plain.timeline is None
    assert recorded.timeline is not None
    # The distributional/spatial accumulators are recording-only too: a
    # NullRecorder run never constructs them.
    assert plain.tier_histograms is None and plain.spatial is None
    assert recorded.tier_histograms is not None
    assert recorded.spatial is not None


def test_timeline_populated_one_record_per_epoch():
    report, _ = run_recorded()
    assert len(report.timeline) == len(report.per_epoch_cycles)
    assert [r.epoch for r in report.timeline] == list(range(len(report.timeline)))


def test_hit_series_sums_exactly_to_aggregate():
    report, _ = run_recorded()
    assert report.timeline.aggregate_hits() == report.hits


def test_latency_series_sums_to_aggregate():
    report, _ = run_recorded()
    agg = report.timeline.aggregate_breakdown()
    for f in fields(agg):
        assert getattr(agg, f.name) == pytest.approx(
            getattr(report.breakdown, f.name), rel=1e-9, abs=1e-6
        ), f.name


def test_energy_series_sums_to_aggregate_minus_static():
    report, _ = run_recorded()
    agg = report.timeline.aggregate_energy()
    # Static energy is charged once after the epoch loop, from the final
    # runtime; it cannot be attributed to an epoch.
    assert agg.static_nj == 0.0
    assert report.energy.static_nj > 0.0
    for f in fields(EnergyBreakdown):
        if f.name == "static_nj":
            continue
        assert getattr(agg, f.name) == pytest.approx(
            getattr(report.energy, f.name), rel=1e-9, abs=1e-6
        ), f.name


def test_last_record_carries_final_runtime():
    report, _ = run_recorded()
    assert report.timeline.records[-1].cycles_total == report.runtime_cycles


def test_reconfig_series_sums_to_aggregate():
    report, _ = run_recorded()
    assert (
        sum(r.reconfig_movements for r in report.timeline) == report.reconfig_movements
    )
    assert (
        sum(r.reconfig_invalidations for r in report.timeline)
        == report.reconfig_invalidations
    )


def test_reconfig_events_carry_predictions():
    _, recorder = run_recorded()
    reconfigs = recorder.events_of("reconfig")
    assert reconfigs, "ndpext must emit at least one reconfiguration event"
    for event in reconfigs:
        assert "applied" in event
        assert event["streams"], "per-stream predictions missing"
        for stream in event["streams"]:
            assert 0.0 <= stream["predicted_hit_rate"] <= 1.0


def test_hit_accuracy_events_pair_predicted_with_realized():
    _, recorder = run_recorded()
    accuracy = recorder.events_of("hit_accuracy")
    assert accuracy, "expected predicted-vs-realized events after epoch 0"
    for event in accuracy:
        for stream in event["streams"]:
            assert 0.0 <= stream["predicted"] <= 1.0
            assert 0.0 <= stream["realized"] <= 1.0


def test_fault_events_recorded_in_trace_and_timeline():
    schedule = FaultSchedule(
        (UnitFailure(epoch=1, unit=2), CxlCrcBurst(epoch=1, duration=1))
    )
    report, recorder = run_recorded(faults=schedule)
    unit_events = recorder.events_of("fault_unit")
    assert len(unit_events) == 1
    assert unit_events[0]["epoch"] == 1
    assert recorder.events_of("crc_burst")
    assert sum(r.fault_units for r in report.timeline) == 1
    # Every fault event lands before the epoch record that reports it.
    seq_of_epoch1 = next(
        e["seq"] for e in recorder.events_of("epoch") if e["epoch"] == 1
    )
    assert unit_events[0]["seq"] < seq_of_epoch1


def test_engine_profile_spans_present():
    _, recorder = run_recorded()
    labels = set(recorder.profiler.spans)
    assert {"policy.setup", "engine.l1_filter", "policy.process", "engine.charge"} <= labels
    assert "configure.solve" in labels


def test_perf_tracer_bit_identical():
    """The span tracer holds the same read-only contract as the
    Recorder: an ambient PerfTracer must not perturb any simulated
    quantity — only observe where the simulator's wall clock went."""
    from repro.obs.tracing import PerfTracer, activate

    plain = SimulationEngine(tiny()).run(build("pr", TINY), POLICIES["ndpext"]())
    tracer = PerfTracer()
    with activate(tracer):
        traced = SimulationEngine(tiny()).run(
            build("pr", TINY), POLICIES["ndpext"]()
        )
    assert_reports_identical(plain, traced)
    from repro.obs.perfreport import missing_engine_phases

    assert missing_engine_phases(tracer) == []

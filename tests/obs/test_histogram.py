"""Latency-histogram accuracy, mergeability, and serialization."""

import numpy as np
import pytest

from repro.obs.histogram import (
    BUCKET_SCHEME,
    BUCKETS_PER_DECADE,
    EDGES,
    N_BUCKETS,
    TIERS,
    LatencyHistogram,
    TierHistogramSet,
    bucket_indices,
)

# One bucket spans a factor of 10**(1/24), so any in-range percentile
# estimate is within this relative error of the exact order statistic.
BUCKET_REL = 10.0 ** (1.0 / BUCKETS_PER_DECADE) - 1.0


class TestBucketing:
    def test_edges_are_log_spaced(self):
        ratios = EDGES[1:] / EDGES[:-1]
        assert np.allclose(ratios, 10.0 ** (1.0 / BUCKETS_PER_DECADE))

    def test_underflow_and_overflow_indices(self):
        idx = bucket_indices(np.array([0.0, 0.05, EDGES[0], 1e9]))
        assert idx[0] == 0  # exact zero -> underflow
        assert idx[1] == 0
        assert idx[2] == 1  # right-inclusive edge
        assert idx[3] == N_BUCKETS - 1  # overflow

    def test_every_bucket_index_in_range(self):
        rng = np.random.default_rng(7)
        values = 10.0 ** rng.uniform(-3, 9, size=10_000)
        idx = bucket_indices(values)
        assert idx.min() >= 0
        assert idx.max() <= N_BUCKETS - 1


class TestPercentiles:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("q", [50.0, 95.0, 99.0, 99.9])
    def test_matches_numpy_percentile_within_bucket_width(self, seed, q):
        """Bucketed estimates land within one bucket's relative width of
        numpy's exact order statistic, across distributions."""
        rng = np.random.default_rng(seed)
        samples = np.concatenate(
            [
                rng.lognormal(mean=3.0, sigma=1.2, size=4000),
                rng.uniform(10.0, 500.0, size=2000),
            ]
        )
        hist = LatencyHistogram()
        hist.observe(samples)
        exact = float(np.percentile(samples, q))
        estimate = hist.percentile(q)
        assert estimate == pytest.approx(exact, rel=2 * BUCKET_REL)

    def test_extremes_clamp_to_observed_min_max(self):
        hist = LatencyHistogram()
        hist.observe(np.array([3.0, 17.0, 250.0]))
        assert hist.percentile(0) == 3.0
        assert hist.percentile(100) == 250.0

    def test_empty_histogram_is_all_zero(self):
        hist = LatencyHistogram()
        assert hist.n == 0
        assert hist.mean_ns == 0.0
        assert hist.percentile(99) == 0.0
        assert hist.cdf_points() == []


class TestMerge:
    def _random_hist(self, seed):
        rng = np.random.default_rng(seed)
        hist = LatencyHistogram()
        hist.observe(rng.lognormal(mean=4.0, sigma=1.0, size=1000))
        return hist

    def test_merge_equals_joint_observation(self):
        rng = np.random.default_rng(11)
        a_vals = rng.lognormal(3.0, 1.0, size=700)
        b_vals = rng.lognormal(5.0, 0.5, size=300)
        a, b, joint = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        a.observe(a_vals)
        b.observe(b_vals)
        joint.observe(np.concatenate([a_vals, b_vals]))
        merged = a + b
        assert np.array_equal(merged.counts, joint.counts)
        assert merged.n == joint.n
        assert merged.min_ns == joint.min_ns
        assert merged.max_ns == joint.max_ns
        assert merged.total_ns == pytest.approx(joint.total_ns)

    def test_merge_is_associative(self):
        a, b, c = (self._random_hist(s) for s in (1, 2, 3))
        assert (a + b) + c == a + (b + c)

    def test_merge_with_empty_is_identity(self):
        a = self._random_hist(5)
        assert a + LatencyHistogram() == a


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self):
        hist = LatencyHistogram()
        hist.observe(np.array([0.5, 12.0, 12.5, 4000.0]))
        data = hist.to_json()
        assert data["scheme"] == BUCKET_SCHEME
        rebuilt = LatencyHistogram.from_json(data)
        assert rebuilt == hist

    def test_empty_round_trip(self):
        rebuilt = LatencyHistogram.from_json(LatencyHistogram().to_json())
        assert rebuilt.n == 0
        assert rebuilt.min_ns == float("inf")

    def test_rejects_foreign_scheme(self):
        data = LatencyHistogram().to_json()
        data["scheme"] = "linear/please-no"
        with pytest.raises(ValueError, match="scheme"):
            LatencyHistogram.from_json(data)


def assert_hists_equivalent(a, b):
    """Counts/min/max must match bit-exactly; total_ns only up to float
    summation order (bincount-with-weights vs np.sum reduce in a
    different sequence)."""
    assert np.array_equal(a.counts, b.counts)
    assert a.min_ns == b.min_ns
    assert a.max_ns == b.max_ns
    assert a.total_ns == pytest.approx(b.total_ns, rel=1e-12)


class TestTierHistogramSet:
    def test_combined_bincount_matches_per_tier_observation(self):
        rng = np.random.default_rng(23)
        values = rng.lognormal(3.0, 1.5, size=5000)
        tier = rng.integers(0, len(TIERS), size=5000)
        combined = TierHistogramSet()
        combined.observe(tier, values)
        split = combined.histograms()
        for t, name in enumerate(TIERS):
            reference = LatencyHistogram()
            reference.observe(values[tier == t])
            assert_hists_equivalent(split[name], reference)

    def test_observing_in_chunks_equals_one_shot(self):
        rng = np.random.default_rng(29)
        values = rng.lognormal(2.0, 1.0, size=2000)
        tier = rng.integers(0, len(TIERS), size=2000)
        chunked, one_shot = TierHistogramSet(), TierHistogramSet()
        one_shot.observe(tier, values)
        for lo in range(0, 2000, 137):
            chunked.observe(tier[lo : lo + 137], values[lo : lo + 137])
        for name in TIERS:
            assert_hists_equivalent(
                chunked.histograms()[name], one_shot.histograms()[name]
            )

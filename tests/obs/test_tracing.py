"""The span tracer's core contracts: zero-cost off state, exact
nested-span accounting, bounded event buffers with exact aggregates,
and the cross-process snapshot/merge clock correction."""

import pickle

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    PerfTracer,
    activate,
    current,
)


class FakeClock:
    """Injectable monotonic/wall clock with manual advancement."""

    def __init__(self, start=0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, ns):
        self.now += ns


def make_tracer(perf_start=0, wall_start=0, **kw):
    clock = FakeClock(perf_start)
    wall = FakeClock(wall_start)
    return PerfTracer(clock=clock, wall=wall, **kw), clock


class TestNullTracer:
    def test_span_returns_one_shared_constant(self):
        a = NULL_TRACER.span("x")
        b = NULL_TRACER.span("y", cat="io", epoch=3)
        assert a is b

    def test_off_state_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything") as s:
            assert s is not None
        assert NULL_TRACER.instant("marker") is None


class TestAmbient:
    def test_defaults_to_null(self):
        assert current() is NULL_TRACER

    def test_activate_scopes_and_restores(self):
        tracer = PerfTracer()
        with activate(tracer) as active:
            assert active is tracer
            assert current() is tracer
            inner = PerfTracer()
            with activate(inner):
                assert current() is inner
            assert current() is tracer
        assert current() is NULL_TRACER

    def test_perf_tracer_is_a_null_tracer(self):
        # Call sites type against the null interface; the real tracer
        # must be substitutable.
        assert isinstance(PerfTracer(), NullTracer)
        assert PerfTracer().enabled is True


class TestSpanAccounting:
    def test_nested_exclusive_time(self):
        tracer, clock = make_tracer()
        with tracer.span("outer"):
            clock.advance(60)
            with tracer.span("inner"):
                clock.advance(40)
        outer, inner = tracer.aggregates["outer"], tracer.aggregates["inner"]
        assert outer.total_ns == 100 and outer.exclusive_ns == 60
        assert inner.total_ns == 40 and inner.exclusive_ns == 40
        assert outer.calls == inner.calls == 1

    def test_sibling_children_both_subtract(self):
        tracer, clock = make_tracer()
        with tracer.span("outer"):
            with tracer.span("a"):
                clock.advance(10)
            clock.advance(5)
            with tracer.span("b"):
                clock.advance(20)
        assert tracer.aggregates["outer"].exclusive_ns == 5

    def test_events_carry_parent_ids(self):
        tracer, clock = make_tracer()
        with tracer.span("outer"):
            clock.advance(1)
            with tracer.span("inner"):
                clock.advance(1)
        by_name = {e.name: e for e in tracer.events}
        assert by_name["outer"].parent == -1
        assert by_name["inner"].parent == by_name["outer"].sid
        # Inner closes first, so it is recorded first; the ids still
        # order by span *start*.
        assert by_name["inner"].sid > by_name["outer"].sid

    def test_instant_records_zero_duration_event(self):
        tracer, _ = make_tracer()
        tracer.instant("pool.dispatch", index=3)
        (ev,) = tracer.events
        assert ev.dur_ns == 0 and ev.cat == "instant"
        assert ev.args == {"index": 3}
        assert "pool.dispatch" not in tracer.aggregates

    def test_add_external_folds_into_aggregates_without_events(self):
        tracer, _ = make_tracer()
        tracer.add_external("configure.solve", 5_000, calls=2)
        agg = tracer.aggregates["configure.solve"]
        assert agg.calls == 2 and agg.total_ns == 5_000
        assert agg.exclusive_ns == 5_000
        assert tracer.events == []

    def test_event_buffer_caps_but_aggregates_stay_exact(self):
        tracer, clock = make_tracer(max_events=2)
        for _ in range(5):
            with tracer.span("step"):
                clock.advance(10)
        assert len(tracer.events) == 2
        assert tracer.dropped_events == 3
        assert tracer.aggregates["step"].calls == 5
        assert tracer.aggregates["step"].total_ns == 50

    def test_keep_events_false_records_no_events(self):
        tracer, clock = make_tracer(keep_events=False)
        with tracer.span("step"):
            clock.advance(10)
        assert tracer.events == []
        assert tracer.dropped_events == 0
        assert tracer.aggregates["step"].total_ns == 10

    def test_total_s_sums_aggregates(self):
        tracer, _ = make_tracer()
        tracer.add_external("a", 1_500_000_000)
        tracer.add_external("b", 500_000_000)
        assert tracer.total_s == pytest.approx(2.0)


class TestSnapshotMerge:
    def test_snapshot_is_picklable(self):
        tracer, clock = make_tracer()
        with tracer.span("task", cat="task", index=0):
            clock.advance(10)
        snap = tracer.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_reset_keeps_anchors_and_identity(self):
        tracer, clock = make_tracer(perf_start=100, wall_start=9000)
        with tracer.span("task"):
            clock.advance(10)
        anchors = (tracer.anchor_perf_ns, tracer.anchor_wall_ns)
        tracer.reset()
        assert tracer.events == [] and tracer.aggregates == {}
        assert (tracer.anchor_perf_ns, tracer.anchor_wall_ns) == anchors

    def test_merge_corrects_clock_skew(self):
        """A worker's monotonic origin is arbitrary; merge must land its
        events on the parent's timebase via the shared wall clock."""
        parent, _ = make_tracer(perf_start=1_000, wall_start=1_000_000)
        # Worker constructed 50 ns of wall time later, with a monotonic
        # clock whose origin differs wildly from the parent's.
        worker, wclock = make_tracer(
            perf_start=500, wall_start=1_000_050, process_label="worker-9"
        )
        wclock.advance(100)  # worker wall time 1_000_150
        with worker.span("task", cat="task"):
            wclock.advance(30)
        parent.merge(worker.snapshot())
        (ev,) = parent.events
        # Wall 1_000_150 is 150 ns past the parent's anchor, whose perf
        # clock then read 1_000 + 150.
        assert ev.ts_ns == 1_150
        assert ev.dur_ns == 30

    def test_merge_folds_aggregates_and_labels(self):
        parent, _ = make_tracer()
        parent.add_external("engine.l1_filter", 100)
        worker, wclock = make_tracer(process_label="worker-7")
        with worker.span("engine.l1_filter"):
            wclock.advance(40)
        worker.dropped_events = 2
        parent.merge(worker.snapshot())
        agg = parent.aggregates["engine.l1_filter"]
        assert agg.calls == 2 and agg.total_ns == 140
        assert parent.process_labels[worker.pid] == "worker-7"
        assert parent.dropped_events == 2

    def test_snapshot_delta_protocol(self):
        """snapshot() + reset() ships per-task deltas that still share
        one timebase (the pool's per-task shipping discipline)."""
        parent, _ = make_tracer(perf_start=0, wall_start=0)
        worker, wclock = make_tracer(
            perf_start=0, wall_start=0, process_label="w"
        )
        with worker.span("task", cat="task", index=0):
            wclock.advance(10)
        parent.merge(worker.snapshot())
        worker.reset()
        wclock.advance(5)
        with worker.span("task", cat="task", index=1):
            wclock.advance(20)
        parent.merge(worker.snapshot())
        t0, t1 = sorted(e.ts_ns for e in parent.events)
        assert t1 - t0 == 15  # first task (10) + idle (5)
        assert parent.aggregates["task"].calls == 2

"""Perf-trace analysis: Perfetto export schema, phase attribution and
its coverage invariant, pool critical path, and worker utilization."""

import json

import pytest

from repro.experiments.runner import POLICIES
from repro.obs.perfreport import (
    bottleneck_report,
    chrome_trace,
    critical_path,
    missing_engine_phases,
    phase_summary,
    render_bottleneck,
    worker_utilization,
    write_chrome_trace,
)
from repro.obs.tracing import ENGINE_PHASES, PerfTracer, SpanEvent, activate
from repro.sim import SimulationEngine, tiny
from repro.workloads import TINY, build


class FakeClock:
    def __init__(self, start=0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, ns):
        self.now += ns


def task_event(sid, ts_ns, dur_ns, pid, label=""):
    return SpanEvent(
        sid=sid,
        parent=-1,
        name="task",
        cat="task",
        ts_ns=ts_ns,
        dur_ns=dur_ns,
        pid=pid,
        tid=1,
        args={"label": label} if label else None,
    )


@pytest.fixture(scope="module")
def traced_run():
    """One tiny simulation under an ambient tracer (module-cached)."""
    tracer = PerfTracer()
    with activate(tracer):
        report = SimulationEngine(tiny()).run(
            build("pr", TINY), POLICIES["ndpext"]()
        )
    return tracer, report


class TestChromeTrace:
    def test_schema_sanity(self, traced_run):
        tracer, _ = traced_run
        payload = chrome_trace(tracer, meta={"preset": "tiny"})
        events = payload["traceEvents"]
        assert events, "a traced run must export events"
        assert payload["otherData"]["preset"] == "tiny"
        last_ts = None
        for ev in events:
            assert ev["ph"] in ("X", "i", "M")
            if ev["ph"] == "M":
                assert ev["name"] == "process_name"
                continue
            assert ev["ts"] >= 0
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
            else:
                assert ev["s"] == "t"
            if last_ts is not None:
                assert ev["ts"] >= last_ts
            last_ts = ev["ts"]

    def test_process_metadata_names_every_process(self, traced_run):
        tracer, _ = traced_run
        payload = chrome_trace(tracer)
        named = {
            e["pid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M"
        }
        assert named == tracer.process_labels

    def test_write_round_trips_as_json(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = tmp_path / "prof.json"
        count = write_chrome_trace(tracer, str(path))
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        names = {e["name"] for e in payload["traceEvents"]}
        assert set(ENGINE_PHASES) <= names

    def test_instants_export_with_scope(self):
        clock = FakeClock()
        tracer = PerfTracer(clock=clock, wall=clock)
        tracer.instant("pool.dispatch", index=1)
        (meta, ev) = chrome_trace(tracer)["traceEvents"]
        assert meta["ph"] == "M"
        assert ev["ph"] == "i" and ev["s"] == "t"
        assert "dur" not in ev


class TestPhaseSummary:
    def test_real_run_covers_the_wall_clock(self, traced_run):
        tracer, _ = traced_run
        summary = phase_summary(tracer)
        assert summary["sim_wall_s"] > 0
        # Acceptance bound is >= 0.95; by construction every engine
        # phase nests under engine.run, so coverage is exactly 1.
        assert summary["coverage"] == pytest.approx(1.0)
        assert missing_engine_phases(tracer) == []
        shares = [row["share"] for row in summary["phases"].values()]
        assert all(0.0 <= s <= 1.0 for s in shares)

    def test_structural_spans_become_orchestration_not_phases(self, traced_run):
        tracer, _ = traced_run
        summary = phase_summary(tracer)
        assert "engine.run" not in summary["phases"]
        assert "engine.epoch" not in summary["phases"]
        assert summary["orchestration_s"] >= 0

    def test_exclusive_sums_reconstruct_sim_wall(self, traced_run):
        tracer, _ = traced_run
        summary = phase_summary(tracer)
        reconstructed = (
            sum(r["exclusive_s"] for r in summary["phases"].values())
            + summary["orchestration_s"]
        )
        assert reconstructed == pytest.approx(summary["sim_wall_s"], rel=0.05)

    def test_empty_tracer_reports_everything_missing(self):
        tracer = PerfTracer()
        assert missing_engine_phases(tracer) == list(ENGINE_PHASES)
        assert phase_summary(tracer)["sim_wall_s"] == 0.0


class TestCriticalPath:
    def test_chain_walks_latest_predecessors(self):
        # B finishes latest before C starts, so the chain is B -> C even
        # though A also precedes C.
        events = [
            task_event(0, ts_ns=0, dur_ns=100, pid=1, label="a"),
            task_event(1, ts_ns=0, dur_ns=150, pid=2, label="b"),
            task_event(2, ts_ns=160, dur_ns=40, pid=2, label="c"),
        ]
        steps = critical_path(events)
        assert [s.label for s in steps] == ["b", "c"]
        assert steps[0].gap_s == 0.0
        assert steps[1].gap_s == pytest.approx(10 / 1e9)
        assert steps[1].start_s == pytest.approx(160 / 1e9)

    def test_serial_degenerates_to_full_sequence(self):
        events = [
            task_event(i, ts_ns=i * 100, dur_ns=90, pid=1, label=f"t{i}")
            for i in range(3)
        ]
        steps = critical_path(events)
        assert [s.label for s in steps] == ["t0", "t1", "t2"]
        assert all(s.gap_s == pytest.approx(10 / 1e9) for s in steps[1:])

    def test_no_tasks_no_path(self):
        assert critical_path([]) == []


class TestWorkerUtilization:
    def test_busy_fraction_over_batch_window(self):
        events = [
            task_event(0, ts_ns=0, dur_ns=100, pid=1),
            task_event(1, ts_ns=0, dur_ns=150, pid=2),
            task_event(2, ts_ns=160, dur_ns=40, pid=2),
        ]
        util = worker_utilization(events, {1: "w1", 2: "w2"})
        assert util["1"]["utilization"] == pytest.approx(0.5)
        assert util["2"]["utilization"] == pytest.approx(0.95)
        assert util["2"]["tasks"] == 2
        assert util["1"]["label"] == "w1"

    def test_empty_events(self):
        assert worker_utilization([], {}) == {}


class TestBottleneckReport:
    def test_report_and_render(self, traced_run):
        tracer, report = traced_run
        prof = bottleneck_report(tracer, accesses=report.hits.total_requests)
        assert prof["coverage"] == pytest.approx(1.0)
        assert prof["top_phases"]
        assert prof["accesses"] == report.hits.total_requests
        for row in prof["attribution"].values():
            assert row["accesses_per_s"] > 0
        text = render_bottleneck(prof)
        assert "engine phases by exclusive time" in text
        assert "(orchestration)" in text
        assert "accesses/s if alone" in text

    def test_report_without_accesses_has_no_attribution(self, traced_run):
        tracer, _ = traced_run
        prof = bottleneck_report(tracer)
        assert "attribution" not in prof
        assert "accesses/s" not in render_bottleneck(prof)

    def test_report_is_json_serializable(self, traced_run):
        tracer, report = traced_run
        prof = bottleneck_report(tracer, accesses=report.hits.total_requests)
        json.dumps(prof)

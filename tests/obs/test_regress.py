"""Regression-gate semantics: direction normalization, thresholds,
missing metrics, quick-vs-full refusal, and CLI exit behavior."""

import json

import pytest

from repro.obs.regress import (
    DEFAULT_THRESHOLD,
    GUARDED_METRICS,
    METRIC_THRESHOLDS,
    PHASE_SHARE_WARN_PTS,
    check_bench,
    check_floors,
    compare_bench,
    compare_phase_shares,
    delta_rows,
    floor_rows,
    load_bench,
    phase_share_rows,
    regressions,
)


def bench(
    aps=500_000.0,
    l1=2.0,
    serial=10.0,
    parallel=4.0,
    warm=0.5,
    speedup=2.5,
    kernel=4.0,
    paper_aps=80_000.0,
    quick=False,
):
    return {
        "quick": quick,
        "engine": {"accesses_per_second": aps, "l1_speedup": l1},
        "kernels": {"kernel_speedup": kernel},
        "engine_paper": {"accesses_per_second": paper_aps},
        "suite": {
            "serial_cold_s": serial,
            "parallel_cold_s": parallel,
            "warm_s": warm,
            "parallel_speedup": speedup,
        },
    }


class TestCompare:
    def test_identical_runs_have_zero_regression(self):
        deltas = compare_bench(bench(), bench())
        assert len(deltas) == len(GUARDED_METRICS)
        assert all(d.regression == pytest.approx(0.0) for d in deltas)
        assert not regressions(deltas)

    def test_throughput_drop_is_positive_regression(self):
        """Lower accesses/s is worse: +x% regression."""
        deltas = compare_bench(bench(aps=500.0), bench(aps=1000.0))
        by_name = {d.metric: d for d in deltas}
        assert by_name["engine.accesses_per_second"].regression == pytest.approx(1.0)
        assert by_name["engine.accesses_per_second"].failed

    def test_wall_clock_growth_is_positive_regression(self):
        """Higher wall clock is worse: the sign is normalized."""
        deltas = compare_bench(bench(serial=15.0), bench(serial=10.0))
        by_name = {d.metric: d for d in deltas}
        assert by_name["suite.serial_cold_s"].regression == pytest.approx(0.5)
        assert by_name["suite.serial_cold_s"].failed

    def test_improvement_never_fails(self):
        deltas = compare_bench(
            bench(aps=2000.0, serial=5.0), bench(aps=1000.0, serial=10.0)
        )
        assert not regressions(deltas)
        by_name = {d.metric: d for d in deltas}
        assert by_name["engine.accesses_per_second"].regression < 0

    def test_threshold_boundary_is_not_a_failure(self):
        deltas = compare_bench(
            bench(serial=12.0), bench(serial=10.0), threshold=0.20
        )
        by_name = {d.metric: d for d in deltas}
        assert by_name["suite.serial_cold_s"].regression == pytest.approx(0.2)
        assert not by_name["suite.serial_cold_s"].failed

    def test_missing_metrics_are_skipped_not_failed(self):
        previous = {"engine": {"accesses_per_second": 1000.0}}
        deltas = compare_bench(bench(), previous)
        assert [d.metric for d in deltas] == ["engine.accesses_per_second"]

    def test_non_positive_values_are_skipped(self):
        deltas = compare_bench(bench(aps=0.0), bench(aps=1000.0))
        assert "engine.accesses_per_second" not in {d.metric for d in deltas}

    def test_delta_rows_render_status(self):
        rows = delta_rows(compare_bench(bench(aps=100.0), bench(aps=1000.0)))
        status = {row[0]: row[4] for row in rows}
        assert status["engine.accesses_per_second"] == "REGRESSED"
        assert status["suite.warm_s"] == "ok"


class TestMetricThresholds:
    """Per-metric leashes tighter than the global threshold."""

    def test_l1_speedup_has_a_ten_percent_leash(self):
        # The exact drift that motivated the override: 1.16x -> 1.01x
        # is a 14.9% regression — under the 20% default it passed
        # silently; the 10% leash catches it.
        deltas = compare_bench(bench(l1=1.01), bench(l1=1.16))
        by_name = {d.metric: d for d in deltas}
        delta = by_name["engine.l1_speedup"]
        assert delta.threshold == pytest.approx(0.10)
        assert delta.regression == pytest.approx(1.16 / 1.01 - 1.0)
        assert delta.failed

    def test_override_never_loosens_the_cli_threshold(self):
        # A user-tightened global threshold (5%) beats the 10% override.
        deltas = compare_bench(bench(l1=1.08), bench(l1=1.16), threshold=0.05)
        by_name = {d.metric: d for d in deltas}
        assert by_name["engine.l1_speedup"].threshold == pytest.approx(0.05)
        assert by_name["engine.l1_speedup"].failed

    def test_other_metrics_keep_the_global_threshold(self):
        deltas = compare_bench(bench(), bench())
        by_name = {d.metric: d for d in deltas}
        assert by_name["suite.warm_s"].threshold == pytest.approx(
            DEFAULT_THRESHOLD
        )
        assert set(METRIC_THRESHOLDS) == {"engine.l1_speedup"}


class TestPhaseShares:
    """Engine phase-share drift: always warn-only attribution news."""

    def _payload(self, **shares):
        return {
            "engine": {
                "phases": {
                    name: {"share": share} for name, share in shares.items()
                }
            }
        }

    def test_identical_shares_are_quiet(self):
        cur = self._payload(**{"policy.process": 0.4, "engine.charge": 0.1})
        deltas = compare_phase_shares(cur, cur)
        assert all(not d.failed for d in deltas)
        assert all(d.status == "ok" for d in deltas)

    def test_large_shift_is_flagged_in_percentage_points(self):
        deltas = compare_phase_shares(
            self._payload(**{"policy.process": 0.45}),
            self._payload(**{"policy.process": 0.30}),
        )
        (delta,) = deltas
        assert delta.moved_pts == pytest.approx(15.0)
        assert delta.threshold_pts == PHASE_SHARE_WARN_PTS
        assert delta.failed and delta.status == "SHIFTED"

    def test_phase_present_in_only_one_payload_compares_against_zero(self):
        deltas = compare_phase_shares(
            self._payload(**{"engine.queueing": 0.15}), self._payload()
        )
        (delta,) = deltas
        assert delta.previous_pts == 0.0
        assert delta.failed

    def test_sorted_by_magnitude_of_move(self):
        deltas = compare_phase_shares(
            self._payload(**{"a": 0.50, "b": 0.10}),
            self._payload(**{"a": 0.45, "b": 0.30}),
        )
        assert [d.phase for d in deltas] == ["b", "a"]

    def test_missing_phase_sections_yield_no_deltas(self):
        assert compare_phase_shares({}, {}) == []
        assert compare_phase_shares({"engine": {}}, {}) == []

    def test_rows_render_signed_moves(self):
        rows = phase_share_rows(
            compare_phase_shares(
                self._payload(**{"x": 0.42}), self._payload(**{"x": 0.30})
            )
        )
        assert rows[0] == ["x", "30.0", "42.0", "+12.0", "SHIFTED"]

    def test_bench_cli_phase_check_is_warn_only(self, tmp_path, capsys):
        import argparse

        from repro.exec.bench import _check_phase_shares

        prev = bench()
        prev["engine"]["phases"] = {"policy.process": {"share": 0.20}}
        path = tmp_path / "prev.json"
        path.write_text(json.dumps(prev))
        cur = bench()
        cur["engine"]["phases"] = {"policy.process": {"share": 0.45}}
        args = argparse.Namespace(check=str(path), check_strict=True)
        # Even under --check-strict a share shift must not exit.
        _check_phase_shares(cur, args)
        out = capsys.readouterr().out
        assert "SHIFTED" in out


class TestFloors:
    """Absolute invariants need no baseline file at all."""

    def test_speedup_above_floor_passes(self):
        checks = check_floors(bench(speedup=1.8))
        by_name = {c.metric: c for c in checks}
        assert "suite.parallel_speedup" in by_name
        assert not by_name["suite.parallel_speedup"].failed
        assert all(c.status == "ok" for c in checks)

    def test_speedup_at_or_below_floor_fails(self):
        # The floor is exclusive: exactly 1.0x (no faster than serial)
        # is a failure, not a pass.
        assert check_floors(bench(speedup=1.0))[0].failed
        assert check_floors(bench(speedup=0.8))[0].failed
        assert check_floors(bench(speedup=0.8))[0].status == "BELOW FLOOR"

    def test_missing_metric_is_skipped(self):
        assert check_floors({"suite": {}}) == []

    def test_single_cpu_machines_skip_the_parallel_floor(self):
        # One core cannot beat serial with process fan-out; the floor
        # only binds where parallelism is physically possible.
        payload = bench(speedup=0.9)
        payload["cpu_count"] = 1
        assert "suite.parallel_speedup" not in [
            c.metric for c in check_floors(payload)
        ]
        payload["cpu_count"] = 2
        by_name = {c.metric: c for c in check_floors(payload)}
        assert by_name["suite.parallel_speedup"].failed

    def test_floor_rows_render(self):
        rows = floor_rows(check_floors(bench(speedup=0.5)))
        assert rows[0][0] == "suite.parallel_speedup"
        assert rows[0][3] == "BELOW FLOOR"

    def test_bench_cli_strict_floor_exits(self, capsys):
        import argparse

        from repro.exec.bench import _check_floors

        payload = bench(speedup=0.7)
        args = argparse.Namespace(check_strict=False)
        _check_floors(payload, args)
        assert "below floor" in capsys.readouterr().out
        with pytest.raises(SystemExit, match="BELOW FLOOR"):
            _check_floors(payload, argparse.Namespace(check_strict=True))

    def test_bench_cli_floor_pass_is_quiet(self, capsys):
        import argparse

        from repro.exec.bench import _check_floors

        _check_floors(bench(speedup=3.0), argparse.Namespace(check_strict=True))
        out = capsys.readouterr().out
        assert "BELOW FLOOR" not in out


class TestCheckBench:
    def _write(self, tmp_path, payload, name="prev.json"):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_loads_and_splits_failures(self, tmp_path):
        path = self._write(tmp_path, bench(aps=1000.0))
        deltas, failed = check_bench(bench(aps=100.0), path)
        assert len(deltas) == len(GUARDED_METRICS)
        assert [d.metric for d in failed] == ["engine.accesses_per_second"]

    def test_refuses_quick_vs_full(self, tmp_path):
        path = self._write(tmp_path, bench(quick=True))
        with pytest.raises(ValueError, match="quick"):
            check_bench(bench(quick=False), path)

    def test_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(ValueError, match="not a valid bench JSON"):
            load_bench(str(path))

    def test_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="object"):
            load_bench(str(path))

    def test_default_threshold_is_twenty_percent(self):
        assert DEFAULT_THRESHOLD == pytest.approx(0.20)


class TestBenchCliGate:
    """The ``bench --check`` wiring, without running a real bench."""

    def _args(self, **kw):
        import argparse

        defaults = dict(
            check=None, check_threshold=None, check_strict=False
        )
        defaults.update(kw)
        return argparse.Namespace(**defaults)

    def test_strict_mode_exits_nonzero_on_regression(self, tmp_path):
        from repro.exec.bench import _check_against

        path = tmp_path / "prev.json"
        path.write_text(json.dumps(bench(aps=10_000.0)))
        with pytest.raises(SystemExit):
            _check_against(
                bench(aps=100.0),
                self._args(check=str(path), check_strict=True),
            )

    def test_warn_only_returns_normally(self, tmp_path, capsys):
        from repro.exec.bench import _check_against

        path = tmp_path / "prev.json"
        path.write_text(json.dumps(bench(aps=10_000.0)))
        _check_against(bench(aps=100.0), self._args(check=str(path)))
        out = capsys.readouterr().out
        assert "warning: regressed" in out

    def test_missing_previous_file_warns_unless_strict(self, tmp_path, capsys):
        from repro.exec.bench import _check_against

        missing = str(tmp_path / "nope.json")
        _check_against(bench(), self._args(check=missing))
        assert "not found" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            _check_against(
                bench(), self._args(check=missing, check_strict=True)
            )

    def test_quick_mismatch_warns_unless_strict(self, tmp_path, capsys):
        from repro.exec.bench import _check_against

        path = tmp_path / "prev.json"
        path.write_text(json.dumps(bench(quick=True)))
        _check_against(bench(quick=False), self._args(check=str(path)))
        assert "check skipped" in capsys.readouterr().out


class TestHistory:
    """Rolling best-of-history: one slow baseline cannot hide a regression."""

    def test_history_best_picks_strongest_value(self):
        from repro.obs.regress import history_best

        prev = bench(aps=400_000.0)
        prev["history"] = [
            {"engine.accesses_per_second": 600_000.0},
            {"engine.accesses_per_second": 500_000.0},
        ]
        assert history_best(prev, "engine.accesses_per_second", True) == 600_000.0

    def test_history_best_without_history_is_payload_value(self):
        from repro.obs.regress import history_best

        assert history_best(bench(aps=123.0), "engine.accesses_per_second", True) == 123.0
        assert history_best({}, "engine.accesses_per_second", True) is None

    def test_compare_bench_uses_best_of_history(self):
        prev = bench(aps=400_000.0)
        prev["history"] = [{"engine.accesses_per_second": 800_000.0}]
        deltas = compare_bench(bench(aps=400_000.0), prev)
        by_name = {d.metric: d for d in deltas}
        # 400k vs best-of-history 800k: a 2x regression, not zero.
        assert by_name["engine.accesses_per_second"].regression == pytest.approx(1.0)
        assert by_name["engine.accesses_per_second"].failed

    def test_malformed_history_entries_are_ignored(self):
        from repro.obs.regress import history_best

        prev = bench(aps=100.0)
        prev["history"] = ["junk", {"engine.accesses_per_second": "NaN-ish"}, {}]
        assert history_best(prev, "engine.accesses_per_second", True) == 100.0

    def test_roll_history_appends_and_caps(self):
        from repro.exec.bench import HISTORY_CAP, roll_history

        prev = bench(aps=250_000.0)
        prev["date"] = "2026-01-01"
        prev["history"] = [
            {"date": f"2025-12-{d:02d}", "engine.accesses_per_second": 1.0 * d}
            for d in range(1, HISTORY_CAP + 3)
        ]
        fresh = bench(aps=300_000.0)
        roll_history(fresh, prev)
        assert len(fresh["history"]) == HISTORY_CAP
        newest = fresh["history"][-1]
        assert newest["date"] == "2026-01-01"
        assert newest["engine.accesses_per_second"] == 250_000.0
        assert newest["kernels.kernel_speedup"] == 4.0

    def test_roll_history_without_previous_is_empty(self):
        from repro.exec.bench import roll_history

        fresh = bench()
        roll_history(fresh, None)
        assert fresh["history"] == []

"""Spatial accumulators must reconcile exactly with the engine's
aggregate counters — the heatmap is the same data as HitStats, just not
collapsed — plus the paper-facing acceptance check that the local tier's
tail latency sits below the extended tier's."""

import numpy as np
import pytest

from repro.core import NdpExtPolicy
from repro.faults import FaultSchedule, UnitFailure
from repro.obs import Recorder, SpatialReport
from repro.sim import SimulationEngine, small, tiny
from repro.workloads import SMALL, TINY, build


def run_recorded(workload="pr", config=None, scale=TINY, faults=None):
    config = config if config is not None else tiny()
    recorder = Recorder(workload=workload, policy="ndpext")
    engine = SimulationEngine(config, faults=faults, recorder=recorder)
    report = engine.run(build(workload, scale), NdpExtPolicy())
    return report, engine, recorder


class TestReconciliation:
    def test_issued_total_equals_post_l1_requests(self):
        report, _, _ = run_recorded()
        assert sum(report.spatial.issued) == report.hits.cache_accesses

    def test_served_total_equals_cache_hits(self):
        report, _, _ = run_recorded()
        assert (
            sum(report.spatial.served)
            == report.hits.cache_hits_local + report.hits.cache_hits_remote
        )

    def test_occupancy_total_equals_dram_latency(self):
        """Per-unit DRAM occupancy re-partitions breakdown.dram_ns."""
        report, _, _ = run_recorded()
        assert sum(report.spatial.occupancy_ns) == pytest.approx(
            report.breakdown.dram_ns, rel=1e-9
        )

    def test_off_diagonal_link_bytes_match_engine_roofline_counter(self):
        """The link matrix's off-diagonal sum is exactly the byte count
        the engine feeds its inter-stack bandwidth roofline."""
        report, engine, _ = run_recorded(config=small(), scale=SMALL)
        assert report.spatial.n_stacks == 4
        assert report.spatial.inter_stack_bytes == engine._inter_stack_bytes
        assert report.spatial.inter_stack_bytes > 0

    def test_single_stack_has_no_inter_stack_traffic(self):
        report, engine, _ = run_recorded()  # tiny: one stack
        assert report.spatial.n_stacks == 1
        assert report.spatial.inter_stack_bytes == 0
        assert engine._inter_stack_bytes == 0

    def test_ext_requests_by_stack_counts_four_legs_per_miss(self):
        """Each extended access shows up four times across the per-stack
        NoC legs: origin->port, port (x2: entry+exit), port->core."""
        report, _, _ = run_recorded()
        assert (
            sum(report.spatial.ext_requests_by_stack)
            == 4 * report.hits.cache_misses
        )

    def test_load_imbalance_at_least_one_when_anything_served(self):
        report, _, _ = run_recorded()
        assert report.spatial.load_imbalance >= 1.0
        assert report.load_imbalance == report.spatial.load_imbalance


class TestSpatialReportJson:
    def test_round_trip(self):
        report, _, _ = run_recorded()
        data = report.spatial.to_json()
        rebuilt = SpatialReport.from_json(data)
        assert rebuilt.issued == report.spatial.issued
        assert rebuilt.served == report.spatial.served
        assert rebuilt.link_bytes == report.spatial.link_bytes
        assert rebuilt.occupancy_ns == report.spatial.occupancy_ns
        assert rebuilt.load_imbalance == report.spatial.load_imbalance

    def test_json_is_plain_python_types(self):
        report, _, _ = run_recorded()
        data = report.spatial.to_json()
        assert all(isinstance(v, int) for v in data["issued"])
        assert all(isinstance(v, float) for v in data["occupancy_ns"])
        assert not any(
            isinstance(v, np.generic)
            for row in data["link_bytes"]
            for v in row
        )


class TestDemoteAttribution:
    def test_demote_events_carry_per_unit_counts(self):
        """Recorded demotions attribute each request to the unit it was
        aimed at, computed before the engine rewrites serving_unit."""
        from repro.faults import FaultState
        from repro.sim.engine import RequestOutcome

        config = tiny()
        recorder = Recorder()
        state = FaultState(
            FaultSchedule((UnitFailure(epoch=0, unit=2),)),
            config,
            recorder=recorder,
        )
        state.advance(0)
        serving = np.array([2, 1, 2, -1, 2], dtype=np.int64)
        outcome = RequestOutcome(
            hit=serving >= 0,
            serving_unit=serving,
            local_row=np.where(serving >= 0, 0, -1),
            miss_probe_dram=np.zeros(5, dtype=bool),
            metadata_ns=np.zeros(5),
        )
        assert state.demote(outcome) == 3
        (event,) = recorder.events_of("demote")
        assert event["requests"] == 3
        assert sum(event["by_unit"]) == 3
        assert event["by_unit"][2] == 3
        assert len(event["by_unit"]) == config.n_units

    def test_demote_under_null_recorder_skips_attribution(self):
        """The by_unit bincount is recording-only work; the demotion
        itself (and its aggregate count) is identical without it."""
        from repro.faults import FaultState
        from repro.sim.engine import RequestOutcome

        config = tiny()
        state = FaultState(
            FaultSchedule((UnitFailure(epoch=0, unit=1),)), config
        )
        state.advance(0)
        serving = np.array([1, 0], dtype=np.int64)
        outcome = RequestOutcome(
            hit=serving >= 0,
            serving_unit=serving,
            local_row=np.zeros(2, dtype=np.int64),
            miss_probe_dram=np.zeros(2, dtype=bool),
            metadata_ns=np.zeros(2),
        )
        assert state.demote(outcome) == 1
        assert state.report.demoted_requests == 1


class TestAcceptance:
    def test_p99_local_below_p99_extended_on_recsys_smoke(self):
        """The paper's core claim, distributionally: requests served by
        the issuing unit's own tier have a far shorter tail than those
        that fall through to CXL-extended memory."""
        report, _, _ = run_recorded(workload="recsys")
        local = report.tier_histograms["local"]
        extended = report.tier_histograms["extended"]
        assert local.n > 0 and extended.n > 0
        assert local.percentile(99.0) < extended.percentile(99.0)
        # The medians separate too, not just the tails.
        assert local.percentile(50.0) < extended.percentile(50.0)

    def test_tier_populations_partition_post_l1_requests(self):
        report, _, _ = run_recorded()
        total = sum(h.n for h in report.tier_histograms.values())
        assert total == report.hits.cache_accesses
        assert (
            report.tier_histograms["extended"].n == report.hits.cache_misses
        )
        assert (
            report.tier_histograms["local"].n
            + report.tier_histograms["intra"].n
            + report.tier_histograms["inter"].n
            == report.hits.cache_hits_local + report.hits.cache_hits_remote
        )

"""Tests for miss curves and the lookahead slope primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.curves import (
    LookaheadState,
    MissCurve,
    SlopeSegment,
    geometric_capacities,
)


class TestGeometricCapacities:
    def test_paper_spacing(self):
        """64 points from 32 kB to 256 MB gives a ~1.16 step factor."""
        caps = geometric_capacities(32 * 1024, 256 * 1024 * 1024, 64)
        ratios = caps[1:] / caps[:-1]
        assert 1.10 < ratios.mean() < 1.22

    def test_endpoints(self):
        caps = geometric_capacities(1000, 100_000, 10)
        assert caps[0] == 1000
        assert caps[-1] == 100_000

    def test_strictly_increasing(self):
        caps = geometric_capacities(16, 4096, 20)
        assert np.all(np.diff(caps) > 0)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            geometric_capacities(100, 10, 5)
        with pytest.raises(ValueError):
            geometric_capacities(10, 100, 1)


class TestMissCurve:
    def make(self):
        return MissCurve(
            np.array([100, 200, 400]), np.array([90.0, 50.0, 10.0])
        )

    def test_interpolation(self):
        curve = self.make()
        assert curve.misses_at(100) == 90.0
        assert curve.misses_at(150) == 70.0
        assert curve.misses_at(400) == 10.0

    def test_clamps_outside_range(self):
        curve = self.make()
        assert curve.misses_at(10) == 90.0
        assert curve.misses_at(10_000) == 10.0

    def test_monotone_smoothing(self):
        curve = MissCurve(np.array([1, 2, 3]), np.array([10.0, 12.0, 5.0]))
        mono = curve.monotone()
        assert list(mono.misses) == [10.0, 10.0, 5.0]

    def test_scaled(self):
        curve = self.make().scaled(2.0)
        assert curve.misses_at(100) == 180.0

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            MissCurve(np.array([1, 2]), np.array([1.0]))

    def test_rejects_unsorted_capacities(self):
        with pytest.raises(ValueError):
            MissCurve(np.array([2, 1]), np.array([1.0, 2.0]))

    def test_rejects_negative_misses(self):
        with pytest.raises(ValueError):
            MissCurve(np.array([1, 2]), np.array([1.0, -2.0]))

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            self.make().scaled(0)


class TestSlopeSegment:
    def test_slope(self):
        seg = SlopeSegment(stream_id=1, start_capacity=0, end_capacity=100, gain=50)
        assert seg.size == 100
        assert seg.slope == 0.5


class TestLookahead:
    def test_picks_steepest_stream(self):
        curves = {
            0: MissCurve(np.array([100]), np.array([10.0])),  # 0.9/byte from 100
            1: MissCurve(np.array([100]), np.array([90.0])),
        }
        # Stream 0 saves more misses for the same capacity (from implicit 0
        # allocation at misses_at(0) == first value: both 10 and 90).
        state = LookaheadState(
            {
                0: MissCurve(np.array([10, 100]), np.array([100.0, 10.0])),
                1: MissCurve(np.array([10, 100]), np.array([100.0, 80.0])),
            }
        )
        seg = state.next_steepest_segment()
        assert seg.stream_id == 0

    def test_commit_advances(self):
        state = LookaheadState(
            {0: MissCurve(np.array([10, 100]), np.array([100.0, 10.0]))}
        )
        seg = state.next_steepest_segment()
        state.commit(seg)
        assert state.allocated[0] == seg.end_capacity

    def test_commit_rejects_stale_segment(self):
        state = LookaheadState(
            {0: MissCurve(np.array([10, 100]), np.array([100.0, 10.0]))}
        )
        seg = state.next_steepest_segment()
        state.commit(seg)
        with pytest.raises(ValueError):
            state.commit(seg)

    def test_exhausts(self):
        state = LookaheadState(
            {0: MissCurve(np.array([10, 100]), np.array([100.0, 10.0]))}
        )
        while (seg := state.next_steepest_segment()) is not None:
            state.commit(seg)
        assert state.allocated[0] == 100

    def test_exclude(self):
        state = LookaheadState(
            {
                0: MissCurve(np.array([10]), np.array([100.0])),
                1: MissCurve(np.array([10, 20]), np.array([100.0, 5.0])),
            }
        )
        seg = state.next_steepest_segment(exclude={1})
        assert seg is None or seg.stream_id == 0

    def test_flat_curve_yields_nothing(self):
        state = LookaheadState(
            {0: MissCurve(np.array([10, 100]), np.array([50.0, 50.0]))}
        )
        assert state.next_steepest_segment() is None

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=1000), min_size=2, max_size=6
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_segments_always_have_positive_gain(self, misses_lists):
        curves = {}
        for sid, misses in enumerate(misses_lists):
            misses = sorted(misses, reverse=True)
            caps = np.arange(1, len(misses) + 1) * 100
            curves[sid] = MissCurve(caps, np.array(misses, dtype=float))
        state = LookaheadState(curves)
        for _ in range(50):
            seg = state.next_steepest_segment()
            if seg is None:
                break
            assert seg.gain > 0
            assert seg.size > 0
            state.commit(seg)


class TestLookaheadVectorizedEquivalence:
    """The vectorized next_steepest_segment must replay the scalar loop it
    replaced decision for decision, ties included."""

    @staticmethod
    def _reference(state, exclude=None):
        best = None
        best_slope = -np.inf
        for sid, curve in state.curves.items():
            if exclude and sid in exclude:
                continue
            current = state.allocated[sid]
            current_misses = curve.misses_at(current)
            for cap, misses in zip(curve.capacities, curve.misses):
                if cap <= current:
                    continue
                gain = current_misses - misses
                if gain <= 0:
                    continue
                slope = gain / float(cap - current)
                if slope > best_slope:
                    best = SlopeSegment(sid, current, int(cap), float(gain))
                    best_slope = slope
        return best

    @staticmethod
    def _random_state(rng, n_streams):
        curves = {}
        for sid in range(n_streams):
            n = int(rng.integers(2, 12))
            caps = np.unique(rng.integers(1, 10_000, size=n))
            misses = np.sort(rng.uniform(0, 1000, size=len(caps)))[::-1]
            # Inject plateaus so tie-breaking is actually exercised.
            if len(misses) > 2:
                misses[1] = misses[2]
            curves[sid] = MissCurve(caps, misses.copy())
        return LookaheadState(curves)

    def test_matches_reference_loop_through_full_allocation(self):
        rng = np.random.default_rng(42)
        for trial in range(25):
            state = self._random_state(rng, n_streams=int(rng.integers(1, 6)))
            shadow = LookaheadState(
                {sid: c for sid, c in state.curves.items()},
                allocated=dict(state.allocated),
            )
            while True:
                got = state.next_steepest_segment()
                want = self._reference(shadow)
                assert (got is None) == (want is None)
                if got is None:
                    break
                assert got == want, f"trial {trial}: {got} != {want}"
                state.commit(got)
                shadow.commit(want)

    def test_matches_reference_with_exclusions(self):
        rng = np.random.default_rng(43)
        state = self._random_state(rng, n_streams=5)
        exclude = {0, 3}
        got = state.next_steepest_segment(exclude=exclude)
        want = self._reference(state, exclude=exclude)
        assert got == want

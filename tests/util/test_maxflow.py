"""Tests for the Edmonds-Karp max-flow solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.maxflow import FlowNetwork, solve_bipartite_assignment


class TestFlowNetwork:
    def test_single_edge(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 5)
        assert net.max_flow(0, 1) == 5

    def test_series_takes_bottleneck(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 5)
        net.add_edge(1, 2, 3)
        assert net.max_flow(0, 2) == 3

    def test_parallel_paths_add(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 2)
        net.add_edge(1, 3, 2)
        net.add_edge(0, 2, 3)
        net.add_edge(2, 3, 3)
        assert net.max_flow(0, 3) == 5

    def test_classic_augmenting_case(self):
        """The diamond with a cross edge that requires flow cancellation."""
        net = FlowNetwork()
        net.add_edge(0, 1, 1)
        net.add_edge(0, 2, 1)
        net.add_edge(1, 2, 1)
        net.add_edge(1, 3, 1)
        net.add_edge(2, 3, 1)
        assert net.max_flow(0, 3) == 2

    def test_disconnected_sink(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 5)
        net.add_node(2)
        assert net.max_flow(0, 2) == 0

    def test_repeated_edges_accumulate(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 2)
        net.add_edge(0, 1, 3)
        assert net.max_flow(0, 1) == 5

    def test_flow_on_reports_edge_flow(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 4)
        net.add_edge(1, 2, 3)
        net.max_flow(0, 2)
        assert net.flow_on(0, 1) == 3
        assert net.flow_on(1, 2) == 3

    def test_rejects_self_loop(self):
        net = FlowNetwork()
        with pytest.raises(ValueError):
            net.add_edge(1, 1, 1)

    def test_rejects_negative_capacity(self):
        net = FlowNetwork()
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1)

    def test_rejects_unknown_nodes(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 1)
        with pytest.raises(KeyError):
            net.max_flow(0, 99)

    def test_rejects_same_source_sink(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 1)
        with pytest.raises(ValueError):
            net.max_flow(0, 0)


class TestBipartiteAssignment:
    def test_paper_example(self):
        """Fig. 4(a): 3 units, 4 streams, full coverage is possible."""
        capacities = {0: 4, 1: 4, 2: 4}
        edges = [(0, 0), (1, 0), (1, 1), (1, 2), (2, 2), (2, 3)]
        assignment = solve_bipartite_assignment(capacities, [0, 1, 2, 3], edges)
        assert sorted(assignment) == [0, 1, 2, 3]
        for stream, unit in assignment.items():
            assert (unit, stream) in edges

    def test_capacity_limits_coverage(self):
        capacities = {0: 1}
        edges = [(0, 0), (0, 1), (0, 2)]
        assignment = solve_bipartite_assignment(capacities, [0, 1, 2], edges)
        assert len(assignment) == 1

    def test_empty_streams(self):
        assert solve_bipartite_assignment({0: 4}, [], []) == {}

    def test_unknown_edge_rejected(self):
        with pytest.raises(KeyError):
            solve_bipartite_assignment({0: 1}, [0], [(5, 0)])

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=4),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_assignment_respects_constraints(self, n_units, n_streams, cap, data):
        edges = []
        for s in range(n_streams):
            accessors = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=n_units - 1),
                    min_size=1,
                    max_size=n_units,
                    unique=True,
                )
            )
            edges.extend((u, s) for u in accessors)
        capacities = {u: cap for u in range(n_units)}
        assignment = solve_bipartite_assignment(
            capacities, list(range(n_streams)), edges
        )
        # Every assignment uses a real edge.
        for stream, unit in assignment.items():
            assert (unit, stream) in edges
        # No unit exceeds its sampler capacity.
        for u in range(n_units):
            assert sum(1 for v in assignment.values() if v == u) <= cap
        # Coverage is maximal in the trivial sufficient-capacity case.
        if n_streams <= cap:
            assert len(assignment) == n_streams

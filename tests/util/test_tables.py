"""Tests for table rendering and aggregation helpers."""

import pytest

from repro.util.tables import format_value, geomean, render_table


class TestFormatValue:
    def test_integers_pass_through(self):
        assert format_value(42) == "42"

    def test_small_floats_trimmed(self):
        assert format_value(1.5) == "1.5"
        assert format_value(2.0) == "2"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_large_floats_compact(self):
        assert format_value(123456.0) == "1.23e+05"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) or True for line in lines)
        assert "333" in lines[3]

    def test_title(self):
        text = render_table(["x"], [[1]], title="hello")
        assert text.splitlines()[0] == "hello"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestGeomean:
    def test_basic(self):
        assert abs(geomean([2, 8]) - 4.0) < 1e-12

    def test_single(self):
        assert geomean([3.5]) == 3.5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

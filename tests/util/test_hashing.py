"""Tests for the deterministic hashing utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.hashing import (
    bucket,
    bucket_array,
    mix64,
    mix64_array,
    weighted_bucket,
    weighted_bucket_array,
)


class TestMix64:
    def test_deterministic(self):
        assert mix64(42) == mix64(42)

    def test_different_keys_differ(self):
        assert mix64(1) != mix64(2)

    def test_stays_in_64_bits(self):
        for key in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= mix64(key) < 2**64

    def test_avalanche(self):
        """Flipping one input bit flips roughly half the output bits."""
        flips = bin(mix64(1234) ^ mix64(1235)).count("1")
        assert 16 <= flips <= 48

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_scalar_matches_vector(self, key):
        scalar = mix64(key)
        vector = int(mix64_array(np.array([key], dtype=np.uint64))[0])
        assert scalar == vector


class TestBucket:
    def test_in_range(self):
        for key in range(100):
            assert 0 <= bucket(key, 7) < 7

    def test_rejects_non_positive_buckets(self):
        with pytest.raises(ValueError):
            bucket(1, 0)

    def test_salt_changes_mapping(self):
        mapped_a = [bucket(k, 16, salt=1) for k in range(64)]
        mapped_b = [bucket(k, 16, salt=2) for k in range(64)]
        assert mapped_a != mapped_b

    def test_roughly_uniform(self):
        counts = np.bincount(
            bucket_array(np.arange(10_000, dtype=np.uint64), 10), minlength=10
        )
        assert counts.min() > 800
        assert counts.max() < 1200

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=1, max_value=1000),
    )
    def test_scalar_matches_vector(self, key, buckets):
        scalar = bucket(key, buckets)
        vector = int(bucket_array(np.array([key], dtype=np.uint64), buckets)[0])
        assert scalar == vector


class TestWeightedBucket:
    def test_zero_weight_never_chosen(self):
        weights = [4, 0, 4]
        chosen = {weighted_bucket(k, weights) for k in range(500)}
        assert 1 not in chosen

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            weighted_bucket(1, [0, 0])

    def test_proportional(self):
        weights = np.array([1, 3], dtype=np.int64)
        keys = np.arange(20_000, dtype=np.uint64)
        chosen = weighted_bucket_array(keys, weights)
        fraction = (chosen == 1).mean()
        assert 0.70 < fraction < 0.80

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8).filter(
            lambda w: sum(w) > 0
        ),
    )
    @settings(max_examples=50)
    def test_scalar_matches_vector(self, key, weights):
        scalar = weighted_bucket(key, weights)
        vector = int(
            weighted_bucket_array(
                np.array([key], dtype=np.uint64), np.array(weights, dtype=np.int64)
            )[0]
        )
        assert scalar == vector
        assert weights[scalar] > 0

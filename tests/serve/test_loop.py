"""The resident serving loop: scheduling, backpressure, bit-identity."""

import pytest

from repro.experiments.runner import POLICIES
from repro.obs import Recorder
from repro.serve import (
    REASON_DRAINING,
    REASON_QUOTA,
    REASON_UNKNOWN_TENANT,
    ServeOptions,
    TenantSpec,
)
from repro.sim.engine import SimulationEngine

from tests.serve.conftest import make_batches, make_loop


class TestBitIdentity:
    def test_fault_free_serve_matches_batch_run(self, tiny_config, tiny_workload):
        """A single-tenant serve with no faults is the batch run, fed
        one epoch at a time — every simulated quantity must match."""
        batch_report = SimulationEngine(tiny_config).run(
            tiny_workload, POLICIES["ndpext"]()
        )

        loop = make_loop(
            tiny_config,
            tiny_workload,
            [TenantSpec("solo", max_queued=100)],
        )
        for batch in make_batches(
            tiny_workload, "solo", n=3, accesses=tiny_config.epoch_accesses
        ):
            assert loop.submit(batch)
        assert loop.run_until_idle() == 3
        report = loop.finish("bit-identity").sim

        assert report.hits == batch_report.hits
        assert report.runtime_cycles == batch_report.runtime_cycles
        assert report.breakdown == batch_report.breakdown
        assert report.energy == batch_report.energy
        assert report.reconfig_movements == batch_report.reconfig_movements

    def test_serve_is_replay_deterministic(self, tiny_config, tiny_workload):
        def one_run():
            loop = make_loop(
                tiny_config, tiny_workload, [TenantSpec("solo", max_queued=100)]
            )
            for batch in make_batches(tiny_workload, "solo", n=4, accesses=500):
                loop.submit(batch)
            loop.run_until_idle()
            report = loop.finish("replay")
            return (
                report.sim.runtime_cycles,
                report.latency.to_json(),
                report.tenants["solo"].completed,
            )

        assert one_run() == one_run()


class TestIngress:
    def test_unknown_tenant_rejected(self, tiny_config, tiny_workload):
        loop = make_loop(tiny_config, tiny_workload, [TenantSpec("a")])
        (batch,) = make_batches(tiny_workload, "ghost", n=1)
        decision = loop.submit(batch)
        assert not decision and decision.reason == REASON_UNKNOWN_TENANT

    def test_over_quota_rejected_with_event(self, tiny_config, tiny_workload):
        recorder = Recorder(workload="pr", policy="ndpext")
        loop = make_loop(
            tiny_config,
            tiny_workload,
            [TenantSpec("t", max_queued=2)],
            recorder=recorder,
        )
        decisions = [
            loop.submit(b) for b in make_batches(tiny_workload, "t", n=3)
        ]
        assert [bool(d) for d in decisions] == [True, True, False]
        assert decisions[2].reason == REASON_QUOTA
        stats = loop.stats["t"]
        assert (stats.submitted, stats.admitted, stats.rejected) == (3, 2, 1)
        rejects = recorder.events_of("serve_reject")
        assert len(rejects) == 1 and rejects[0]["batch"] == 2

    def test_draining_rejects_everything(self, tiny_config, tiny_workload):
        loop = make_loop(tiny_config, tiny_workload, [TenantSpec("t")])
        b0, b1 = make_batches(tiny_workload, "t", n=2)
        assert loop.submit(b0)
        assert loop.drain() == 1
        decision = loop.submit(b1)
        assert not decision and decision.reason == REASON_DRAINING


class TestShedding:
    def test_overload_sheds_lowest_priority_newest_first(
        self, tiny_config, tiny_workload
    ):
        recorder = Recorder(workload="pr", policy="ndpext")
        loop = make_loop(
            tiny_config,
            tiny_workload,
            [
                TenantSpec("hi", priority=10, max_queued=8),
                TenantSpec("lo", priority=0, max_queued=8),
            ],
            recorder=recorder,
            options=ServeOptions(max_total_queued=2),
        )
        lo0, lo1 = make_batches(tiny_workload, "lo", n=2)
        (hi0,) = make_batches(tiny_workload, "hi", n=1, first_id=10)
        assert loop.submit(lo0)
        assert loop.submit(lo1)
        assert loop.submit(hi0)  # pushes total to 3 > cap 2

        assert loop.stats["lo"].shed == 1
        assert loop.stats["hi"].shed == 0
        # Newest low-priority batch is the victim; the oldest survives.
        assert [b.batch_id for b in loop.queues["lo"].batches] == [0]
        shed_events = recorder.events_of("serve_shed")
        assert len(shed_events) == 1
        assert shed_events[0]["tenant"] == "lo"
        assert shed_events[0]["batch"] == 1
        assert shed_events[0]["priority"] == 0


class TestSchedulingAndDeadlines:
    def test_higher_priority_served_first(self, tiny_config, tiny_workload):
        loop = make_loop(
            tiny_config,
            tiny_workload,
            [
                TenantSpec("hi", priority=10, max_queued=8),
                TenantSpec("lo", priority=0, max_queued=8),
            ],
        )
        (lo0,) = make_batches(tiny_workload, "lo", n=1)
        (hi0,) = make_batches(tiny_workload, "hi", n=1, first_id=10)
        loop.submit(lo0)
        loop.submit(hi0)
        first = loop.step()
        assert first.tenant == "hi"
        second = loop.step()
        assert second.tenant == "lo"

    def test_expired_deadline_counts_as_timeout(self, tiny_config, tiny_workload):
        recorder = Recorder(workload="pr", policy="ndpext")
        loop = make_loop(
            tiny_config,
            tiny_workload,
            [TenantSpec("t", max_queued=8, deadline_ns=1.0)],
            recorder=recorder,
        )
        b0, b1 = make_batches(tiny_workload, "t", n=2, accesses=500)
        loop.submit(b0)
        loop.submit(b1)
        # First step serves b0 (its deadline hasn't passed at now=0) and
        # advances the simulated clock far beyond b1's 1 ns budget.
        assert loop.step() is b0
        assert loop.now_ns > 1.0
        assert loop.step() is None  # b1 expired, nothing left to serve
        stats = loop.stats["t"]
        assert (stats.completed, stats.timed_out) == (1, 1)
        timeouts = recorder.events_of("serve_timeout")
        assert len(timeouts) == 1
        assert timeouts[0]["batch"] == 1
        assert timeouts[0]["now_ns"] >= timeouts[0]["deadline_ns"]

    def test_finish_is_single_shot(self, tiny_config, tiny_workload):
        loop = make_loop(tiny_config, tiny_workload, [TenantSpec("t")])
        loop.finish("once")
        with pytest.raises(RuntimeError):
            loop.finish("twice")
        with pytest.raises(RuntimeError):
            loop.step()

    def test_duplicate_tenant_names_rejected(self, tiny_config, tiny_workload):
        with pytest.raises(ValueError, match="duplicate"):
            make_loop(
                tiny_config, tiny_workload, [TenantSpec("t"), TenantSpec("t")]
            )

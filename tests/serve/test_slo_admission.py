"""SLO-driven admission: quota-path bit-identity and the storm win.

Two contracts from the SLO PR:

* ``admission="quota"`` (the default) must be *bit-identical* to the
  pre-SLO serving loop — same reports with the recorder on or off, no
  ``slo`` key, no ``slo_*`` events, unchanged journal identity keys.
* Under the seeded two-tenant fault storm, ``admission="slo"`` must let
  the low-priority tenant meet its p99 objective in strictly more
  evaluation windows than fixed quotas do.
"""

import pytest

from repro.obs import Recorder
from repro.obs.slo import SLO_OK, SLO_PAGE, SLO_WARN, SloObjective
from repro.serve import (
    AdmissionController,
    ServeHarness,
    ServeScenario,
    SloAdmissionController,
    TenantSpec,
    two_tenant_scenario,
)
from repro.serve.tenants import TenantQueue

from .conftest import make_batches

STORM = {
    "unit_failures": 1,
    "row_faults": 1,
    "crc_bursts": 1,
    "downtrains": 1,
}

# The committed storm acceptance scenario: low-priority analytics gets a
# p99 objective the SLO controller can actually defend (under fixed
# quotas its queue overflows and half its batches are rejected).
ANALYTICS_P99_NS = 70_000.0


def storm_scenario(admission):
    return two_tenant_scenario(
        name="slo-storm",
        batch_accesses=500,
        wave_size=6,
        steps_per_wave=3,
        faults=STORM,
        admission=admission,
        objectives=(
            SloObjective(
                "analytics", p99_ns=ANALYTICS_P99_NS, max_shed_rate=0.10
            ),
        ),
    )


class _StubSlo:
    """Fixed per-tenant alert states for controller unit tests."""

    def __init__(self, alerts):
        self.alerts = alerts

    def tenant_alert(self, tenant):
        return self.alerts.get(tenant, SLO_OK)


class TestQuotaPathBitIdentity:
    def test_quota_mode_has_no_slo_plane(self):
        harness = ServeHarness(
            two_tenant_scenario(name="plain", batch_accesses=500),
            preset="tiny",
        )
        assert harness.slo is None
        assert harness.loop.slo is None
        assert type(harness.loop.admission) is AdmissionController

    def test_quota_reports_identical_with_recorder_on_and_off(self):
        def run(recorder):
            scenario = two_tenant_scenario(
                name="pin",
                batch_accesses=500,
                wave_size=6,
                steps_per_wave=3,
                faults=STORM,
            )
            return ServeHarness(
                scenario, preset="tiny", recorder=recorder
            ).run()

        recorder = Recorder(workload="pr", policy="ndpext")
        on = run(recorder)
        off = run(None)
        assert on.to_json() == off.to_json()
        assert "slo" not in on.to_json()
        assert on.sim.to_json() == off.sim.to_json()
        assert not [
            e for e in recorder.events if e["kind"].startswith("slo_")
        ]

    def test_identity_key_unchanged_for_quota_scenarios(self):
        """Pre-SLO journals must keep resuming: a default scenario's key
        carries no admission/objectives entries."""
        key = two_tenant_scenario(name="k", seed=3).identity_key("tiny")
        assert '"admission"' not in key
        assert '"objectives"' not in key
        slo_key = two_tenant_scenario(
            name="k", seed=3, admission="slo"
        ).identity_key("tiny")
        assert '"admission"' in slo_key
        assert key != slo_key

    def test_objectives_alone_change_identity(self):
        base = dict(name="k2", seed=1)
        plain = two_tenant_scenario(**base).identity_key("tiny")
        with_obj = two_tenant_scenario(
            **base,
            objectives=(SloObjective("analytics", p99_ns=1000.0),),
        ).identity_key("tiny")
        assert plain != with_obj


class TestScenarioValidation:
    def test_rejects_unknown_admission_mode(self):
        with pytest.raises(ValueError, match="admission"):
            two_tenant_scenario(name="bad", admission="vibes")

    def test_rejects_objective_for_unknown_tenant(self):
        with pytest.raises(ValueError, match="unknown tenant"):
            two_tenant_scenario(
                name="bad",
                objectives=(SloObjective("nobody", p99_ns=1.0),),
            )


class TestSloAdmissionController:
    def _queue(self, name, priority=0, max_queued=4):
        return TenantQueue(
            TenantSpec(name, priority=priority, max_queued=max_queued)
        )

    def test_quota_flexes_with_alert_state(self):
        slo = _StubSlo({"ok": SLO_OK, "warn": SLO_WARN, "page": SLO_PAGE})
        ctrl = SloAdmissionController(8, 32, slo, headroom=2.0, tighten=0.5)
        assert ctrl.quota(self._queue("ok")) == 8  # 4 * headroom
        assert ctrl.quota(self._queue("warn")) == 4  # nominal
        assert ctrl.quota(self._queue("page")) == 2  # 4 * tighten

    def test_page_quota_never_drops_below_one(self):
        ctrl = SloAdmissionController(
            8, 32, _StubSlo({"t": SLO_PAGE}), tighten=0.01
        )
        assert ctrl.quota(self._queue("t", max_queued=1)) == 1

    def test_shed_prefers_burning_tenants_over_priority(self, tiny_workload):
        """A paging tenant is shed first even when a lower-priority
        healthy tenant has a longer queue."""
        slo = _StubSlo({"burning": SLO_PAGE, "healthy": SLO_OK})
        ctrl = SloAdmissionController(8, 4, slo)
        queues = {
            "burning": self._queue("burning", priority=10, max_queued=8),
            "healthy": self._queue("healthy", priority=0, max_queued=8),
        }
        for batch in make_batches(tiny_workload, "burning", 3):
            queues["burning"].batches.append(batch)
        for batch in make_batches(tiny_workload, "healthy", 3):
            queues["healthy"].batches.append(batch)
        shed = ctrl.select_shed(queues)
        assert len(shed) == 2
        assert all(b.tenant == "burning" for b in shed)

    def test_validates_knobs(self):
        with pytest.raises(ValueError, match="headroom"):
            SloAdmissionController(8, 32, _StubSlo({}), headroom=0.5)
        with pytest.raises(ValueError, match="tighten"):
            SloAdmissionController(8, 32, _StubSlo({}), tighten=0.0)


class TestStormAcceptance:
    @pytest.fixture(scope="class")
    def reports(self):
        return {
            mode: ServeHarness(storm_scenario(mode), preset="tiny").run()
            for mode in ("quota", "slo")
        }

    def test_slo_admission_meets_p99_in_strictly_more_windows(self, reports):
        """The acceptance criterion: under the seeded storm, SLO-driven
        admission defends the low-priority tenant's p99 objective in
        strictly more evaluation windows than fixed quotas."""
        met = {}
        for mode, report in reports.items():
            obj = report.slo["tenants"]["analytics"]["objectives"][
                "latency_p99"
            ]
            met[mode] = obj["windows_met"]
        assert met["slo"] > met["quota"]

    def test_quota_storm_burns_the_shed_budget(self, reports):
        """Fixed quotas reject half the analytics batches under the
        storm backlog — its shed-rate budget is overspent, which is the
        signal the SLO controller acts on."""
        quota = reports["quota"]
        assert quota.tenants["analytics"].rejected > 0
        assert quota.slo["tenants"]["analytics"]["budget_remaining"] < 0.0
        slo = reports["slo"]
        assert slo.tenants["analytics"].rejected == 0
        assert slo.slo["tenants"]["analytics"]["budget_remaining"] > 0.0

    def test_slo_report_survives_json_round_trip(self, reports):
        from repro.serve import ServeReport

        report = reports["slo"]
        clone = ServeReport.from_json(report.to_json())
        assert clone.to_json() == report.to_json()
        assert clone.slo["tenants"]["analytics"]["alert"] in (
            "ok",
            "warn",
            "page",
        )

    def test_storm_with_slo_emits_burn_page_and_recovery(self):
        """The CI smoke contract: tightening the high-priority tenant's
        p99 bound makes the storm page and the post-storm drain recover."""
        recorder = Recorder(workload="pr", policy="ndpext")
        scenario = two_tenant_scenario(
            name="ci-storm",
            batch_accesses=500,
            wave_size=6,
            steps_per_wave=3,
            faults=STORM,
            admission="slo",
            objectives=(
                SloObjective(
                    "interactive", p99_ns=12_000.0, max_shed_rate=0.10
                ),
                SloObjective(
                    "analytics", p99_ns=ANALYTICS_P99_NS, max_shed_rate=0.10
                ),
            ),
        )
        ServeHarness(scenario, preset="tiny", recorder=recorder).run()
        burns = recorder.events_of("slo_burn")
        pages = [e for e in burns if e["state"] == "page"]
        assert pages, "storm must escalate to PAGE"
        recoveries = recorder.events_of("slo_recovered")
        assert recoveries, "post-storm drain must recover"
        assert max(e["epoch"] for e in recoveries) > min(
            e["epoch"] for e in pages
        )

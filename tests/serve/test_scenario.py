"""End-to-end scenarios: Zipfian skew, fault storms, drain/resume."""

import numpy as np
import pytest

from repro.obs import Recorder, read_trace
from repro.obs.traceio import serve_event_counts, summarize
from repro.serve import (
    ServeHarness,
    ServeScenario,
    TenantSpec,
    two_tenant_scenario,
)

STORM = {
    "unit_failures": 1,
    "row_faults": 1,
    "crc_bursts": 1,
    "downtrains": 1,
}


class TestScenarioShape:
    def test_zipfian_assignment_is_seeded_and_skewed(self):
        scenario = ServeScenario(
            name="skew",
            tenants=(TenantSpec("hot"), TenantSpec("cold")),
            zipf_s=1.5,
            seed=7,
        )
        a = scenario.tenant_assignment(400)
        assert a == scenario.tenant_assignment(400)  # same seed -> same mix
        counts = {name: a.count(name) for name in ("hot", "cold")}
        assert counts["hot"] > counts["cold"]

    def test_phase_shift_inverts_the_hot_tenant(self):
        scenario = ServeScenario(
            name="shift",
            tenants=(TenantSpec("hot"), TenantSpec("cold")),
            zipf_s=1.5,
            seed=7,
            phase_shift_at=0.5,
        )
        a = scenario.tenant_assignment(400)
        first, second = a[:200], a[200:]
        assert first.count("hot") > first.count("cold")
        assert second.count("cold") > second.count("hot")

    def test_identity_key_ignores_pacing(self):
        base = dict(name="x", tenants=(TenantSpec("t"),), seed=3)
        slow = ServeScenario(**base, wave_size=2, steps_per_wave=1)
        fast = ServeScenario(**base, wave_size=16, drain_after_batches=4)
        assert slow.identity_key("tiny") == fast.identity_key("tiny")
        other = ServeScenario(**{**base, "seed": 4})
        assert other.identity_key("tiny") != slow.identity_key("tiny")

    def test_rejects_empty_tenant_roster(self):
        with pytest.raises(ValueError):
            ServeScenario(name="none", tenants=())


class TestFaultStorm:
    def test_storm_completes_with_degraded_windows(self):
        """The acceptance scenario: injected fault storm, no unhandled
        exception, accounted outcomes, >= 1 health-gated reconfig."""
        recorder = Recorder(workload="pr", policy="ndpext")
        scenario = two_tenant_scenario(
            name="storm",
            batch_accesses=500,
            wave_size=6,
            steps_per_wave=3,
            faults=STORM,
        )
        report = ServeHarness(scenario, preset="tiny", recorder=recorder).run()

        assert report.submitted == 24
        assert report.completed > 0
        # Every submitted batch reached exactly one accounted outcome.
        assert (
            report.completed
            + report.rejected
            + report.shed
            + report.timed_out
            == report.submitted
        )
        assert report.degraded_windows, "storm must open a degraded window"
        assert report.health_reconfig_requests >= 1
        assert report.reconfigs >= 1
        assert report.final_health is not None
        assert report.final_health["dead_units"] >= 1

    def test_storm_trace_events_validate(self, tmp_path):
        recorder = Recorder(workload="pr", policy="ndpext")
        scenario = two_tenant_scenario(
            name="storm-trace",
            batch_accesses=500,
            wave_size=6,
            steps_per_wave=3,
            faults=STORM,
        )
        ServeHarness(scenario, preset="tiny", recorder=recorder).run()
        path = tmp_path / "storm.jsonl"
        recorder.write_jsonl(str(path))
        trace = read_trace(str(path))
        counts = serve_event_counts(trace)
        assert counts["serve_degraded"] >= 1
        summary = summarize(trace)
        assert summary["serve_degraded_transitions"] == counts["serve_degraded"]

    def test_storm_report_round_trips_json(self):
        scenario = two_tenant_scenario(
            name="roundtrip", batch_accesses=500, faults=STORM
        )
        report = ServeHarness(scenario, preset="tiny").run()
        from repro.serve import ServeReport

        clone = ServeReport.from_json(report.to_json())
        assert clone.to_json() == report.to_json()


class TestDrainResume:
    def test_resume_recomputes_nothing_journaled(self, tmp_path):
        journal = tmp_path / "serve.jsonl"
        solo = (TenantSpec("solo", max_queued=100),)
        common = dict(
            name="resume", tenants=solo, batch_accesses=500, seed=0
        )
        # Run 1: submit 10 batches, serve only part of them, drain.
        first = ServeHarness(
            ServeScenario(
                **common, wave_size=4, steps_per_wave=2, drain_after_batches=10
            ),
            preset="tiny",
            journal_path=journal,
        ).run()
        assert first.completed > 0
        assert first.drained_queued > 0
        assert (
            first.completed + first.drained_queued == 10
        )  # nothing lost: served or journaled as pending

        # Run 2: same scenario identity, full pacing, same journal.
        second = ServeHarness(
            ServeScenario(**common),
            preset="tiny",
            journal_path=journal,
        ).run()
        assert second.resumed_skips == first.completed
        assert second.epochs == second.submitted - first.completed
        assert second.completed + second.resumed_skips == second.submitted
        assert second.drained_queued == 0

    def test_resumed_run_leaves_no_pending_batches(self, tmp_path):
        from repro.serve import ServeJournal

        journal = tmp_path / "serve.jsonl"
        solo = (TenantSpec("solo", max_queued=100),)
        common = dict(name="resume2", tenants=solo, batch_accesses=1000)
        scenario = ServeScenario(
            **common, wave_size=3, steps_per_wave=1, drain_after_batches=6
        )
        ServeHarness(scenario, preset="tiny", journal_path=journal).run()
        ServeHarness(
            ServeScenario(**common), preset="tiny", journal_path=journal
        ).run()
        final = ServeJournal(
            journal, scenario_key=ServeScenario(**common).identity_key("tiny")
        )
        assert final.pending() == []


class TestBatchSlicing:
    def test_batches_tile_the_trace_exactly(self):
        scenario = two_tenant_scenario(name="tiles", batch_accesses=700)
        harness = ServeHarness(scenario, preset="tiny")
        batches = harness.batches()
        assert batches[0].start == 0
        assert batches[-1].stop == len(harness.workload.trace)
        starts = np.array([b.start for b in batches])
        stops = np.array([b.stop for b in batches])
        assert (starts[1:] == stops[:-1]).all()

"""The live telemetry plane: /metrics validity, health, and the
ingest-equivalence acceptance contract.

Two load-bearing guarantees from the SLO PR:

* ``GET /metrics`` mid-run or post-run is valid Prometheus text
  (every line parses, histograms stay cumulative) and scraping it
  concurrently never perturbs the replayed result.
* ``POST /ingest`` driving the same batch identities through HTTP
  reproduces the scripted scenario's report bit for bit.
"""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.slo import SloObjective
from repro.serve import LiveServeServer, ServeHarness, parse_listen
from repro.serve.scenario import two_tenant_scenario

# Same grammar the exporter tests pin (tests/obs/test_export.py).
METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (?:[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN))$"
)
COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")

STORM = {
    "unit_failures": 1,
    "row_faults": 1,
    "crc_bursts": 1,
    "downtrains": 1,
}


def storm_scenario(**overrides):
    return two_tenant_scenario(
        name="live-storm",
        batch_accesses=500,
        wave_size=6,
        steps_per_wave=3,
        faults=STORM,
        admission="slo",
        objectives=(
            SloObjective("analytics", p99_ns=70_000.0, max_shed_rate=0.10),
        ),
        **overrides,
    )


def http(server, path, payload=None, method=None):
    """One request against the live server; returns (status, headers,
    parsed-or-raw body). Error statuses come back, not raised."""
    data = None
    if payload is not None:
        data = json.dumps(payload).encode()
    req = urllib.request.Request(
        server.url + path, data=data, method=method
    )
    try:
        resp = urllib.request.urlopen(req, timeout=10)
    except urllib.error.HTTPError as err:
        resp = err
    body = resp.read()
    ctype = resp.headers.get("Content-Type", "")
    if ctype.startswith("application/json"):
        return resp.status, resp.headers, json.loads(body)
    return resp.status, resp.headers, body.decode()


class TestParseListen:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("127.0.0.1:9090", ("127.0.0.1", 9090)),
            ("0.0.0.0:80", ("0.0.0.0", 80)),
            (":9309", ("127.0.0.1", 9309)),
            (":0", ("127.0.0.1", 0)),
        ],
    )
    def test_accepts(self, spec, expected):
        assert parse_listen(spec) == expected

    @pytest.mark.parametrize("spec", ["", "host:", "host:nope", ":70000"])
    def test_rejects(self, spec):
        with pytest.raises(ValueError, match="listen spec"):
            parse_listen(spec)


@pytest.fixture(scope="module")
def finished():
    """A storm run completed with the live endpoint attached; the
    server keeps answering from the frozen final report."""
    harness = ServeHarness(storm_scenario(), preset="tiny")
    server = LiveServeServer(
        harness.loop,
        make_batch=harness.make_batch,
        scenario=harness.scenario.name,
        port=0,
        extra_labels={"preset": "tiny"},
    ).start()
    report = harness.run(lock=server.lock)
    server.set_final(report)
    yield server, report
    server.close()


class TestMetricsEndpoint:
    def test_every_line_is_valid_prometheus(self, finished):
        server, _ = finished
        status, headers, text = http(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        for line in text.strip().splitlines():
            assert METRIC_LINE.match(line) or COMMENT_LINE.match(line), line

    def test_serve_and_slo_series_present(self, finished):
        server, _ = finished
        _, _, text = http(server, "/metrics")
        for needle in (
            "repro_serve_batches_total",
            'preset="tiny"',
            "repro_slo_alert_state",
            "repro_slo_budget_remaining",
            "repro_slo_burn_rate",
            'tenant="analytics"',
        ):
            assert needle in text, needle

    def test_latency_buckets_cumulative_and_capped(self, finished):
        server, report = finished
        _, _, text = http(server, "/metrics")
        rows = re.findall(
            r'repro_serve_batch_latency_ns_bucket\{[^}]*tenant="all"'
            r'[^}]*le="([^"]+)"\} (\d+)',
            text,
        )
        assert rows, "no aggregate latency buckets exported"
        counts = [int(count) for _, count in rows]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert rows[-1][0] == "+Inf"
        assert counts[-1] == report.latency.n


class TestStatusEndpoints:
    def test_healthz_reports_finished_run(self, finished):
        server, report = finished
        status, _, payload = http(server, "/healthz")
        assert status == 200  # HEALTHY/DEGRADED serve 200; FLAPPING 503
        assert payload["finished"] is True
        assert payload["epochs"] == report.epochs
        assert payload["queued"] == 0
        assert isinstance(payload["degraded_windows"], list)

    def test_slo_status_json(self, finished):
        server, report = finished
        status, _, payload = http(server, "/slo")
        assert status == 200
        analytics = payload["tenants"]["analytics"]
        assert analytics["alert"] in ("ok", "warn", "page")
        assert "latency_p99" in analytics["objectives"]
        assert payload == report.slo

    def test_report_endpoint_matches_final_report(self, finished):
        server, report = finished
        status, _, payload = http(server, "/report")
        assert status == 200
        assert payload == json.loads(
            json.dumps(report.to_json(), allow_nan=False)
        )

    def test_unknown_paths_404(self, finished):
        server, _ = finished
        for path, method in (("/nope", None), ("/nope", "POST")):
            status, _, payload = http(server, path, method=method)
            assert status == 404
            assert "unknown path" in payload["error"]

    def test_finished_loop_refuses_mutation(self, finished):
        server, _ = finished
        for path in ("/drain", "/finish"):
            status, _, payload = http(server, path, payload={})
            assert status == 409, path
            assert "finished" in payload["error"]
        status, _, payload = http(
            server,
            "/ingest",
            payload={
                "batches": [
                    {"tenant": "interactive", "batch_id": 0,
                     "start": 0, "stop": 100}
                ]
            },
        )
        assert status == 409


class TestConcurrentScrapes:
    def test_scraping_mid_run_does_not_perturb_the_report(self):
        """The determinism contract: a scripted run hammered by live
        scrapes produces the same report as one with no server at all."""
        reference = ServeHarness(storm_scenario(), preset="tiny").run()

        harness = ServeHarness(storm_scenario(), preset="tiny")
        with LiveServeServer(
            harness.loop, scenario=harness.scenario.name, port=0
        ) as server:
            stop = threading.Event()
            errors = []

            def hammer():
                while not stop.is_set():
                    try:
                        for path in ("/metrics", "/healthz", "/slo"):
                            http(server, path)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return

            scraper = threading.Thread(target=hammer, daemon=True)
            scraper.start()
            try:
                report = harness.run(lock=server.lock)
            finally:
                stop.set()
                scraper.join(timeout=10)
            server.set_final(report)
        assert not errors
        assert report.to_json() == reference.to_json()


class TestIngest:
    def _fresh(self):
        harness = ServeHarness(storm_scenario(), preset="tiny")
        server = LiveServeServer(
            harness.loop,
            make_batch=harness.make_batch,
            scenario=harness.scenario.name,
            port=0,
        ).start()
        return harness, server

    def test_ingest_driven_run_reproduces_scripted_report(self):
        """The acceptance criterion: replaying the scenario's batch
        identities over HTTP — same waves, same step budgets — yields a
        bit-identical ServeReport."""
        scenario = storm_scenario()
        reference = ServeHarness(scenario, preset="tiny").run()

        harness, server = self._fresh()
        try:
            specs = [
                {
                    "tenant": b.tenant,
                    "batch_id": b.batch_id,
                    "start": b.start,
                    "stop": b.stop,
                }
                for b in harness.batches()
            ]
            wave = scenario.wave_size
            for i in range(0, len(specs), wave):
                chunk = specs[i : i + wave]
                body = {"batches": chunk}
                if len(chunk) == wave:  # full wave gets its step budget
                    body["steps"] = scenario.steps_per_wave
                status, _, payload = http(server, "/ingest", payload=body)
                assert status == 200
                assert len(payload["decisions"]) == len(chunk)
            # End of traffic: drain the backlog fully, then finish.
            status, _, _ = http(
                server, "/ingest", payload={"batches": [], "steps": None}
            )
            assert status == 200
            status, _, drained = http(server, "/drain", payload={})
            assert status == 200
            status, _, final = http(
                server, "/finish", payload={"scenario": scenario.name}
            )
            assert status == 200
            # The frozen report keeps serving after /finish.
            status, _, again = http(server, "/report")
            assert again == final
        finally:
            server.close()
        assert final == json.loads(
            json.dumps(reference.to_json(), allow_nan=False)
        )

    def test_ingest_reports_admission_decisions(self):
        harness, server = self._fresh()
        try:
            status, _, payload = http(
                server,
                "/ingest",
                payload={
                    "batches": [
                        {"tenant": "interactive", "batch_id": 7,
                         "start": 0, "stop": 500}
                    ]
                },
            )
            assert status == 200
            (decision,) = payload["decisions"]
            assert decision["tenant"] == "interactive"
            assert decision["batch_id"] == 7
            assert decision["admitted"] is True
            assert payload["queued"] == 1
            assert payload["steps"] == 0  # no "steps" key -> submit-only
        finally:
            server.close()

    @pytest.mark.parametrize(
        "spec",
        [
            {"tenant": "interactive"},  # missing identity fields
            {"tenant": "interactive", "batch_id": 0,
             "start": 500, "stop": 100},  # inverted slice
            {"tenant": "interactive", "batch_id": 0,
             "start": 0, "stop": 10**9},  # past end of trace
        ],
    )
    def test_bad_batch_specs_400(self, spec):
        harness, server = self._fresh()
        try:
            status, _, payload = http(
                server, "/ingest", payload={"batches": [spec]}
            )
            assert status == 400
            assert "bad batch spec" in payload["error"]
        finally:
            server.close()

    def test_malformed_bodies_400(self):
        harness, server = self._fresh()
        try:
            status, _, payload = http(
                server, "/ingest", payload={"batches": "nope"}
            )
            assert status == 400
            req = urllib.request.Request(
                server.url + "/ingest", data=b"not json", method="POST"
            )
            try:
                resp = urllib.request.urlopen(req, timeout=10)
            except urllib.error.HTTPError as err:
                resp = err
            assert resp.status == 400
        finally:
            server.close()

    def test_ingest_without_workload_501(self):
        harness = ServeHarness(storm_scenario(), preset="tiny")
        with LiveServeServer(harness.loop, port=0) as server:
            status, _, payload = http(
                server, "/ingest", payload={"batches": []}
            )
            assert status == 501

"""Admission control and load shedding: pure queue-state decisions."""

from collections import deque

from repro.serve import (
    REASON_QUOTA,
    AdmissionController,
    Batch,
    TenantQueue,
    TenantSpec,
)


def _queue(name, priority=0, max_queued=None, batch_ids=()):
    q = TenantQueue(TenantSpec(name, priority=priority, max_queued=max_queued))
    q.batches = deque(
        Batch(tenant=name, batch_id=i, trace=None) for i in batch_ids
    )
    return q


class TestAdmission:
    def test_over_quota_rejection_is_deterministic(self):
        ctl = AdmissionController(default_max_queued=8, max_total_queued=32)
        for _ in range(3):  # same state -> same answer, every time
            q = _queue("t", max_queued=2, batch_ids=[0, 1])
            decision = ctl.admit(q)
            assert not decision
            assert decision.reason == REASON_QUOTA

    def test_admits_below_quota(self):
        ctl = AdmissionController(default_max_queued=8, max_total_queued=32)
        assert ctl.admit(_queue("t", max_queued=2, batch_ids=[0]))

    def test_default_quota_applies_when_spec_has_none(self):
        ctl = AdmissionController(default_max_queued=1, max_total_queued=32)
        assert not ctl.admit(_queue("t", batch_ids=[0]))


class TestShedding:
    def test_sheds_lowest_priority_first(self):
        ctl = AdmissionController(default_max_queued=8, max_total_queued=4)
        queues = {
            "hi": _queue("hi", priority=10, batch_ids=[0, 1, 2]),
            "lo": _queue("lo", priority=0, batch_ids=[3, 4, 5]),
        }
        shed = ctl.select_shed(queues)
        assert [b.tenant for b in shed] == ["lo", "lo"]
        # Newest first within the victim tenant: the oldest queued work
        # (closest to being served) survives.
        assert [b.batch_id for b in shed] == [5, 4]
        assert [b.batch_id for b in queues["lo"].batches] == [3]
        assert len(queues["hi"]) == 3

    def test_equal_priority_sheds_from_longest_queue(self):
        ctl = AdmissionController(default_max_queued=8, max_total_queued=4)
        queues = {
            "a": _queue("a", batch_ids=[0]),
            "b": _queue("b", batch_ids=[1, 2, 3, 4]),
        }
        shed = ctl.select_shed(queues)
        assert [b.tenant for b in shed] == ["b"]
        assert shed[0].batch_id == 4

    def test_no_shedding_at_or_under_cap(self):
        ctl = AdmissionController(default_max_queued=8, max_total_queued=3)
        queues = {"a": _queue("a", batch_ids=[0, 1, 2])}
        assert ctl.select_shed(queues) == []

    def test_shed_is_deterministic(self):
        ctl = AdmissionController(default_max_queued=8, max_total_queued=2)

        def fresh():
            return {
                "lo1": _queue("lo1", priority=0, batch_ids=[0, 1]),
                "lo2": _queue("lo2", priority=0, batch_ids=[2, 3]),
                "hi": _queue("hi", priority=5, batch_ids=[4]),
            }

        first = [(b.tenant, b.batch_id) for b in ctl.select_shed(fresh())]
        second = [(b.tenant, b.batch_id) for b in ctl.select_shed(fresh())]
        assert first == second
        assert all(tenant != "hi" for tenant, _ in first)

"""HealthMonitor state machine: degraded, flapping, catch-up."""

import pytest

from repro.faults import EpochFaults
from repro.obs import Recorder
from repro.serve import DEGRADED, FLAPPING, HEALTHY, HealthMonitor


class FakePolicy:
    def __init__(self):
        self.forced = 0
        self.enabled_calls = []

    def request_reconfigure(self):
        self.forced += 1

    def set_reconfig_enabled(self, enabled):
        self.enabled_calls.append(enabled)


def _fault(epoch, units=(0,)):
    return EpochFaults(epoch=epoch, unit_failures=list(units))


def _monitor(**kwargs):
    policy = FakePolicy()
    recorder = Recorder(workload="pr", policy="ndpext")
    return policy, recorder, HealthMonitor(policy, recorder, **kwargs)


class TestTransitions:
    def test_starts_healthy_and_stays_without_signals(self):
        policy, _, monitor = _monitor()
        assert monitor.observe(0, EpochFaults(epoch=0), None) == HEALTHY
        assert monitor.observe(1, None, {"degraded": False}) == HEALTHY
        assert policy.forced == 0
        assert monitor.finish() == []

    def test_capacity_fault_degrades_and_forces_reconfig(self):
        policy, recorder, monitor = _monitor()
        assert monitor.observe(2, _fault(2), {"degraded": True}) == DEGRADED
        assert policy.forced == 1
        events = recorder.events_of("serve_degraded")
        assert len(events) == 1
        assert events[0]["state"] == DEGRADED
        assert events[0]["previous"] == HEALTHY

    def test_link_degradation_marks_window_without_forcing(self):
        policy, _, monitor = _monitor()
        # CRC burst / lane downtrain: degraded summary, no capacity event.
        assert monitor.observe(1, None, {"degraded": True}) == DEGRADED
        assert policy.forced == 0
        assert monitor.finish() == [[1, 2]]

    def test_flapping_pauses_reconfiguration(self):
        policy, _, monitor = _monitor(flap_window=8, flap_threshold=3)
        monitor.observe(1, _fault(1), {"degraded": True})
        monitor.observe(2, _fault(2), {"degraded": True})
        assert policy.forced == 2
        assert monitor.observe(3, _fault(3), {"degraded": True}) == FLAPPING
        # Entering FLAPPING disables reconfig; the strike that tipped it
        # over must NOT force another re-placement.
        assert policy.enabled_calls == [False]
        assert policy.forced == 2

    def test_storm_aging_out_reenables_and_catches_up(self):
        policy, _, monitor = _monitor(flap_window=4, flap_threshold=3)
        for epoch in (1, 2, 3):
            monitor.observe(epoch, _fault(epoch), {"degraded": True})
        assert monitor.state == FLAPPING
        # Quiet epochs age the strikes out of the window (still degraded
        # capacity: dead units don't come back).
        state = monitor.observe(6, None, {"degraded": True})
        assert state == DEGRADED
        assert policy.enabled_calls == [False, True]
        assert policy.forced == 3  # 2 pre-flap + 1 catch-up

    def test_windows_close_on_recovery_and_at_finish(self):
        _, _, monitor = _monitor()
        monitor.observe(1, _fault(1), {"degraded": True})
        monitor.observe(2, None, {"degraded": False})  # recovered
        monitor.observe(5, _fault(5), {"degraded": True})
        assert monitor.finish() == [[1, 2], [5, 6]]


class TestValidation:
    def test_rejects_degenerate_thresholds(self):
        policy = FakePolicy()
        recorder = Recorder(workload="pr", policy="ndpext")
        with pytest.raises(ValueError):
            HealthMonitor(policy, recorder, flap_window=0)
        with pytest.raises(ValueError):
            HealthMonitor(policy, recorder, flap_threshold=1)

"""ServeJournal: fsync'd append-only drain/resume bookkeeping."""

import json

from repro.serve import (
    OUTCOME_COMPLETED,
    OUTCOME_SHED,
    ServeJournal,
)


def _journal(path, scenario="s1", stamp="stamp-a"):
    return ServeJournal(path, scenario_key=scenario, stamp=stamp)


class TestRoundTrip:
    def test_pending_is_queued_minus_done(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        j = _journal(path)
        j.journal_queued("a:0", tenant="a", batch=0)
        j.journal_queued("a:1", tenant="a", batch=1)
        j.journal_done("a:0", OUTCOME_COMPLETED)
        j.close()

        reopened = _journal(path)
        assert reopened.is_done("a:0")
        assert reopened.outcome("a:0") == OUTCOME_COMPLETED
        assert not reopened.is_done("a:1")
        assert [r["key"] for r in reopened.pending()] == ["a:1"]
        assert (reopened.queued_count, reopened.done_count) == (2, 1)

    def test_duplicate_appends_are_idempotent(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        j = _journal(path)
        j.journal_queued("a:0", tenant="a", batch=0)
        j.journal_queued("a:0", tenant="a", batch=0)
        j.journal_done("a:0", OUTCOME_SHED)
        j.journal_done("a:0", OUTCOME_COMPLETED)  # first outcome wins
        j.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # header + one queued + one done
        assert _journal(path).outcome("a:0") == OUTCOME_SHED


class TestCrashSafety:
    def test_torn_tail_keeps_prefix(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        j = _journal(path)
        j.journal_queued("a:0", tenant="a", batch=0)
        j.journal_done("a:0")
        j.close()
        with open(path, "a") as f:
            f.write('{"kind": "batch", "status": "que')  # crash mid-append
        reopened = _journal(path)
        assert reopened.is_done("a:0")
        assert reopened.queued_count == 1

    def test_wrong_scenario_rotates_stale(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        j = _journal(path, scenario="s1")
        j.journal_queued("a:0", tenant="a", batch=0)
        j.close()
        other = _journal(path, scenario="s2")
        assert other.queued_count == 0
        stale = path.with_name(path.name + ".stale")
        assert stale.exists()
        header = json.loads(stale.read_text().splitlines()[0])
        assert header["scenario"] == "s1"

    def test_wrong_code_stamp_rotates_stale(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        j = _journal(path, stamp="stamp-a")
        j.journal_queued("a:0", tenant="a", batch=0)
        j.close()
        assert _journal(path, stamp="stamp-b").queued_count == 0
        assert path.with_name(path.name + ".stale").exists()

"""Shared builders for the serving-loop tests.

Everything runs on the ``tiny`` preset (12k accesses, 3 epochs at the
native epoch size) so each test simulates milliseconds of work.
"""

import pytest

from repro.experiments.runner import POLICIES, PRESETS, SCALES
from repro.serve import Batch, ServeLoop, ServeOptions, TenantSpec
from repro.sim.engine import EngineOptions, SimulationEngine
from repro.workloads import build


@pytest.fixture()
def tiny_config():
    return PRESETS["tiny"]()


@pytest.fixture()
def tiny_workload():
    return build("pr", SCALES["tiny"])


def make_loop(
    config,
    workload,
    tenants,
    *,
    faults=None,
    recorder=None,
    options=None,
    journal_path=None,
    scenario_key="",
):
    engine = SimulationEngine(
        config, EngineOptions(), faults=faults, recorder=recorder
    )
    policy = POLICIES["ndpext"]()
    return ServeLoop(
        engine,
        workload,
        policy,
        tenants,
        options=options or ServeOptions(),
        journal_path=journal_path,
        scenario_key=scenario_key,
    )


def make_batches(workload, tenant, n, accesses=100, first_id=0):
    """n small consecutive trace slices attributed to one tenant."""
    return [
        Batch(
            tenant=tenant,
            batch_id=first_id + i,
            trace=workload.trace.slice(i * accesses, (i + 1) * accesses),
            start=i * accesses,
            stop=(i + 1) * accesses,
        )
        for i in range(n)
    ]


__all__ = ["make_loop", "make_batches", "TenantSpec"]

"""Tests for workload construction helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.base import (
    WorkloadBuilder,
    WorkloadScale,
    concat_ranges,
    interleave_pairs,
    partition_range,
)


class TestConcatRanges:
    def test_basic(self):
        out = concat_ranges(np.array([0, 10]), np.array([3, 2]))
        assert list(out) == [0, 1, 2, 10, 11]

    def test_zero_lengths_skipped(self):
        out = concat_ranges(np.array([5, 0, 7]), np.array([0, 2, 0]))
        assert list(out) == [0, 1]

    def test_empty(self):
        assert len(concat_ranges(np.array([]), np.array([]))) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            concat_ranges(np.array([0]), np.array([-1]))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=10),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=50)
    def test_matches_reference(self, pairs):
        starts = np.array([p[0] for p in pairs], dtype=np.int64)
        lengths = np.array([p[1] for p in pairs], dtype=np.int64)
        expected = (
            np.concatenate([np.arange(s, s + l) for s, l in pairs])
            if pairs and lengths.sum()
            else np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(concat_ranges(starts, lengths), expected)


class TestPartitionRange:
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50)
    def test_partitions_cover_exactly(self, n, parts):
        covered = []
        for i in range(parts):
            start, stop = partition_range(n, parts, i)
            covered.extend(range(start, stop))
        assert covered == list(range(n))

    def test_rejects_bad_index(self):
        with pytest.raises(ValueError):
            partition_range(10, 4, 4)


class TestInterleavePairs:
    def test_alternates(self):
        out = interleave_pairs(np.array([1, 3]), np.array([2, 4]))
        assert list(out) == [1, 2, 3, 4]

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            interleave_pairs(np.array([1]), np.array([1, 2]))


class TestWorkloadBuilder:
    def scale(self):
        return WorkloadScale(n_cores=2, accesses_per_core=100, footprint_bytes=1 << 16)

    def test_streams_get_disjoint_addresses(self):
        builder = WorkloadBuilder("t", self.scale())
        a = builder.add_stream("a", "affine", 100, 4)
        b = builder.add_stream("b", "indirect", 100, 4)
        assert a.config.end <= b.config.base

    def test_emit_clipping_respects_budget(self):
        builder = WorkloadBuilder("t", self.scale())
        s = builder.add_stream("a", "affine", 10_000, 4)
        for _ in range(100):
            builder.emit(0, s.addr(np.arange(50)))
        workload = builder.build()
        per_core = np.bincount(workload.trace.core, minlength=2)
        assert per_core[0] <= 100

    def test_full_flag(self):
        builder = WorkloadBuilder("t", self.scale())
        s = builder.add_stream("a", "affine", 10_000, 4)
        assert not builder.full()
        for core in (0, 1):
            builder.emit(core, s.addr(np.arange(200)))
        assert builder.full()

    def test_build_resolves_sids(self):
        builder = WorkloadBuilder("t", self.scale())
        s = builder.add_stream("a", "affine", 100, 4)
        builder.emit(0, s.addr(np.arange(10)))
        workload = builder.build()
        assert (workload.trace.sid == s.sid).all()

    def test_stream_handle_bounds_check(self):
        builder = WorkloadBuilder("t", self.scale())
        s = builder.add_stream("a", "affine", 10, 4)
        with pytest.raises(ValueError):
            s.addr(np.array([10]))

    def test_per_process_scale(self):
        scale = WorkloadScale(n_cores=16, footprint_bytes=1 << 20, processes=4)
        per = scale.per_process(1)
        assert per.n_cores == 4
        assert per.footprint_bytes == 1 << 18
        assert per.processes == 1
        assert per.seed != scale.per_process(2).seed

"""Tests for the microbenchmark workloads — and through them, the
expected first-order cache behaviours of the whole stack."""

import numpy as np
import pytest

from repro.baselines import NdpExtStaticPolicy
from repro.core import NdpExtPolicy
from repro.sim import SimulationEngine
from repro.sim.params import tiny
from repro.workloads import TINY
from repro.workloads.micro import (
    MICRO_FACTORIES,
    ping_pong,
    sequential,
    shared_hot,
    strided,
    uniform_gather,
    zipf_gather,
)


@pytest.fixture(scope="module")
def config():
    return tiny()


class TestConstruction:
    @pytest.mark.parametrize("name", sorted(MICRO_FACTORIES))
    def test_builds(self, name):
        wl = MICRO_FACTORIES[name](TINY)
        assert len(wl.trace) > 0
        resolved = wl.streams.resolve(wl.trace.addr)
        assert (resolved >= 0).all()

    @pytest.mark.parametrize("name", sorted(MICRO_FACTORIES))
    def test_deterministic(self, name):
        a = MICRO_FACTORIES[name](TINY)
        b = MICRO_FACTORIES[name](TINY)
        assert np.array_equal(a.trace.addr, b.trace.addr)


class TestExpectedBehaviours:
    def test_sequential_high_hit_from_blocks(self, config):
        """Streaming scans hit inside 1 kB blocks after each block fill."""
        report = SimulationEngine(config).run(
            sequential(TINY), NdpExtStaticPolicy()
        )
        # L1 + block prefetch absorb almost everything.
        total = report.hits.total_requests
        served_fast = report.hits.l1_hits + report.hits.cache_accesses * report.hits.cache_hit_rate
        assert served_fast / total > 0.8

    def test_strided_defeats_blocks(self, config):
        """2 kB strides touch one element per block: mostly misses."""
        report = SimulationEngine(config).run(
            strided(TINY, stride_elems=256), NdpExtStaticPolicy()
        )
        assert report.hits.miss_rate > 0.5

    def test_zipf_beats_uniform(self, config):
        """Skew concentrates the working set: higher hit rate than uniform
        at the same footprint."""
        engine = SimulationEngine(config)
        zipf = engine.run(zipf_gather(TINY), NdpExtStaticPolicy())
        uniform = engine.run(uniform_gather(TINY), NdpExtStaticPolicy())
        assert zipf.hits.cache_hit_rate > uniform.hits.cache_hit_rate

    def test_uniform_hit_tracks_capacity_ratio(self, config):
        """For uniform gathers, hit rate ~ cache/footprint (steady state)."""
        report = SimulationEngine(config).run(
            uniform_gather(TINY), NdpExtStaticPolicy()
        )
        wl = uniform_gather(TINY)
        ratio = config.total_cache_bytes / wl.footprint_bytes
        assert report.hits.cache_hit_rate < min(1.0, 2.5 * ratio) + 0.2

    def test_shared_hot_served_well_by_dynamic(self, config):
        """The dynamic policy allocates the shared hot block."""
        engine = SimulationEngine(config)
        policy = NdpExtPolicy()
        report = engine.run(shared_hot(TINY), policy)
        wl = shared_hot(TINY)
        hot = wl.stream_by_name("hot")
        alloc = policy.mapper.table.get_or_empty(hot.sid)
        assert alloc.total_rows > 0
        assert report.hits.cache_hit_rate > 0.4

    def test_ping_pong_triggers_write_exception(self, config):
        """The mis-declared read-only stream is demoted on first write."""
        engine = SimulationEngine(config)
        policy = NdpExtPolicy()
        wl = ping_pong(TINY)
        shared = wl.stream_by_name("shared")
        assert shared.read_only  # declared read-only...
        engine.run(wl, policy)
        assert shared.sid in policy.mapper.write_excepted  # ...demoted
        # The demotion is per-run state; the declaration itself survives
        # so the next run of the same workload starts from a clean slate.
        assert shared.read_only

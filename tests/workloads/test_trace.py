"""Tests for trace containers, interleaving, and process merging."""

import numpy as np
import pytest

from repro.core.stream import StreamTable, configure_stream
from repro.workloads.trace import Trace, Workload, interleave, merge_processes


def simple_workload(name="w", n=100, base=4096, n_cores=2, seed=1):
    table = StreamTable()
    stream = configure_stream(table, "affine", base=base, size=4096, elem_size=4)
    rng = np.random.default_rng(seed)
    trace = Trace(
        core=rng.integers(0, n_cores, n).astype(np.int32),
        addr=base + rng.integers(0, 1024, n) * 4,
        write=np.zeros(n, bool),
        sid=np.full(n, stream.sid, np.int32),
    )
    return Workload(name=name, streams=table, trace=trace)


class TestTrace:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            Trace(
                core=np.zeros(2, np.int32),
                addr=np.zeros(3, np.int64),
                write=np.zeros(2, bool),
                sid=np.zeros(2, np.int32),
            )

    def test_epochs_split(self):
        wl = simple_workload(n=250)
        epochs = wl.trace.epochs(100)
        assert [len(e) for e in epochs] == [100, 100, 50]

    def test_epochs_reject_zero(self):
        wl = simple_workload()
        with pytest.raises(ValueError):
            wl.trace.epochs(0)

    def test_select(self):
        wl = simple_workload()
        mask = wl.trace.core == 0
        sub = wl.trace.select(mask)
        assert (sub.core == 0).all()


class TestInterleave:
    def test_preserves_per_core_order(self):
        a = (np.array([1, 2, 3]), np.zeros(3, bool))
        b = (np.array([10, 20]), np.zeros(2, bool))
        trace = interleave([a, b])
        for core in (0, 1):
            addrs = trace.addr[trace.core == core]
            assert list(addrs) == sorted(addrs)

    def test_proportional_progress(self):
        a = (np.arange(100), np.zeros(100, bool))
        b = (np.arange(100) + 1000, np.zeros(100, bool))
        trace = interleave([a, b])
        # In the first half of the merged trace each core contributes
        # roughly half its accesses.
        first_half = trace.core[: len(trace) // 2]
        assert abs((first_half == 0).mean() - 0.5) < 0.1

    def test_empty_core_skipped(self):
        trace = interleave([(np.array([]), np.array([], bool)), (np.array([1]), np.array([False]))])
        assert len(trace) == 1

    def test_all_empty(self):
        assert len(interleave([])) == 0


class TestWorkload:
    def test_auto_resolves_sids(self):
        table = StreamTable()
        stream = configure_stream(table, "affine", base=4096, size=4096, elem_size=4)
        trace = Trace(
            core=np.zeros(3, np.int32),
            addr=np.array([4096, 4100, 99]),
            write=np.zeros(3, bool),
            sid=np.full(3, -1, np.int32),
        )
        wl = Workload(name="w", streams=table, trace=trace)
        assert list(wl.trace.sid) == [stream.sid, stream.sid, -1]

    def test_stream_by_name(self):
        wl = simple_workload()
        stream = next(iter(wl.streams))
        assert wl.stream_by_name(stream.name) is stream
        with pytest.raises(KeyError):
            wl.stream_by_name("nope")

    def test_summary_mentions_footprint(self):
        assert "MB footprint" in simple_workload().summary()


class TestMergeProcesses:
    def test_single_instance_passthrough(self):
        wl = simple_workload()
        assert merge_processes([wl]) is wl

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_processes([])

    def test_address_spaces_disjoint(self):
        merged = merge_processes(
            [simple_workload(seed=1), simple_workload(seed=2)]
        )
        streams = sorted(merged.streams, key=lambda s: s.base)
        assert streams[0].end <= streams[1].base

    def test_cores_renumbered(self):
        merged = merge_processes(
            [simple_workload(n_cores=2, seed=1), simple_workload(n_cores=2, seed=2)]
        )
        assert merged.trace.n_cores == 4

    def test_sids_remapped_and_resolvable(self):
        merged = merge_processes(
            [simple_workload(seed=1), simple_workload(seed=2)]
        )
        assert len(merged.streams) == 2
        resolved = merged.streams.resolve(merged.trace.addr)
        assert np.array_equal(resolved, merged.trace.sid)

    def test_trace_length_is_sum(self):
        merged = merge_processes(
            [simple_workload(n=50, seed=1), simple_workload(n=70, seed=2)]
        )
        assert len(merged.trace) == 120

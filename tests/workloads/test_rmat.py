"""Tests for the R-MAT graph generator."""

import numpy as np
import pytest

from repro.workloads.rmat import build_csr, rmat_edges, rmat_graph


class TestRmatEdges:
    def test_shape_and_range(self):
        edges = rmat_edges(scale=8, edge_factor=4, seed=1)
        assert edges.shape == (256 * 4, 2)
        assert edges.min() >= 0
        assert edges.max() < 256

    def test_deterministic(self):
        a = rmat_edges(scale=6, seed=5)
        b = rmat_edges(scale=6, seed=5)
        assert np.array_equal(a, b)

    def test_seed_changes_edges(self):
        a = rmat_edges(scale=6, seed=1)
        b = rmat_edges(scale=6, seed=2)
        assert not np.array_equal(a, b)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            rmat_edges(scale=0)
        with pytest.raises(ValueError):
            rmat_edges(scale=4, a=0.5, b=0.3, c=0.2)  # no room for d


class TestBuildCsr:
    def test_removes_self_loops(self):
        edges = np.array([[0, 0], [0, 1]])
        graph = build_csr(edges, 2, symmetric=False)
        assert graph.n_edges == 1

    def test_deduplicates(self):
        edges = np.array([[0, 1], [0, 1]])
        graph = build_csr(edges, 2, symmetric=False)
        assert graph.n_edges == 1

    def test_symmetric_adds_reverse(self):
        edges = np.array([[0, 1]])
        graph = build_csr(edges, 3, symmetric=True)
        assert 1 in graph.neighbors(0)
        assert 0 in graph.neighbors(1)

    def test_indptr_consistent(self):
        graph = rmat_graph(scale=8, seed=2)
        assert graph.indptr[0] == 0
        assert graph.indptr[-1] == graph.n_edges
        assert np.all(np.diff(graph.indptr) >= 0)
        assert np.array_equal(graph.degrees(), np.diff(graph.indptr))


class TestGraphShape:
    def test_power_law_skew(self):
        """R-MAT graphs have hub vertices far above the mean degree."""
        graph = rmat_graph(scale=12, seed=1)
        degrees = graph.degrees()
        assert degrees.max() > 8 * degrees.mean()

    def test_permutation_spreads_hubs(self):
        """Vertex relabeling should decorrelate degree from vertex id."""
        graph = rmat_graph(scale=12, seed=1)
        degrees = graph.degrees().astype(float)
        ids = np.arange(len(degrees), dtype=float)
        corr = np.corrcoef(ids, degrees)[0, 1]
        assert abs(corr) < 0.1

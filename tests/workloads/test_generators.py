"""Tests for the 13 workload generators."""

import numpy as np
import pytest

from repro.workloads import SUITE, TINY, WorkloadScale, build


@pytest.fixture(scope="module")
def suite():
    return {name: build(name, TINY) for name in SUITE}


class TestSuiteStructure:
    def test_thirteen_workloads(self):
        assert len(SUITE) == 13
        assert set(SUITE) == {
            "recsys", "mv", "gnn", "backprop", "hotspot", "lavaMD", "lud",
            "pathfinder", "bfs", "pr", "cc", "bc", "tc",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build("doom")

    @pytest.mark.parametrize("name", SUITE)
    def test_builds_nonempty(self, suite, name):
        wl = suite[name]
        assert len(wl.trace) > 0
        assert wl.n_streams >= 2

    @pytest.mark.parametrize("name", SUITE)
    def test_accesses_inside_streams(self, suite, name):
        wl = suite[name]
        resolved = wl.streams.resolve(wl.trace.addr)
        coverage = (resolved >= 0).mean()
        # The paper: >99% of accesses captured by streams.
        assert coverage > 0.99
        assert np.array_equal(resolved, wl.trace.sid)

    @pytest.mark.parametrize("name", SUITE)
    def test_deterministic(self, name):
        a = build(name, TINY)
        b = build(name, TINY)
        assert np.array_equal(a.trace.addr, b.trace.addr)
        assert np.array_equal(a.trace.core, b.trace.core)

    @pytest.mark.parametrize("name", SUITE)
    def test_respects_core_count(self, suite, name):
        wl = suite[name]
        assert wl.trace.n_cores <= TINY.n_cores

    @pytest.mark.parametrize("name", SUITE)
    def test_budget_roughly_respected(self, suite, name):
        wl = suite[name]
        per_core = np.bincount(wl.trace.core)
        assert per_core.max() <= TINY.accesses_per_core


class TestStreamKinds:
    def test_pr_has_indirect_gathers(self, suite):
        wl = suite["pr"]
        kinds = {s.name: s.kind.value for s in wl.streams}
        assert kinds["rank_src"] == "indirect"
        assert kinds["edges"] == "affine"

    def test_pr_mostly_stream_mix(self, suite):
        """PageRank splits between affine and indirect accesses (paper:
        55% affine / 44% indirect)."""
        wl = suite["pr"]
        affine_sids = {s.sid for s in wl.streams if s.is_affine}
        frac_affine = np.isin(wl.trace.sid, list(affine_sids)).mean()
        assert 0.2 < frac_affine < 0.8

    def test_recsys_embedding_tables_indirect(self, suite):
        wl = suite["recsys"]
        emb = [s for s in wl.streams if "emb" in s.name]
        assert emb and all(not s.is_affine for s in emb)
        assert all(s.read_only for s in emb)

    def test_mv_vector_read_only(self, suite):
        wl = suite["mv"]
        assert wl.stream_by_name("x").read_only
        assert not np.any(wl.trace.write & (wl.trace.sid == wl.stream_by_name("x").sid))

    def test_lud_uses_order_annotation(self, suite):
        wl = suite["lud"]
        assert wl.stream_by_name("matrix").order != 0

    def test_backprop_two_phases(self, suite):
        wl = suite["backprop"]
        assert any(name == "adjust_weights" for _, name in wl.phases)
        weights = wl.stream_by_name("weights")
        writes_to_weights = wl.trace.write & (wl.trace.sid == weights.sid)
        assert writes_to_weights.any()
        # The forward phase reads the weights before any write.
        first_write = np.flatnonzero(writes_to_weights)[0]
        reads_before = (~wl.trace.write[:first_write]) & (
            wl.trace.sid[:first_write] == weights.sid
        )
        assert reads_before.any()

    def test_writes_exist_where_expected(self, suite):
        for name in ("hotspot", "pathfinder", "cc", "lud"):
            assert suite[name].trace.write.any(), name


class TestMultiProcess:
    def test_processes_merge(self):
        scale = WorkloadScale(
            n_cores=4, accesses_per_core=2000, footprint_bytes=256 * 1024, processes=2
        )
        wl = build("pr", scale)
        names = {s.name for s in wl.streams}
        assert any(n.startswith("p0:") for n in names)
        assert wl.n_streams >= 8  # two processes' worth

    def test_footprint_scales_with_processes(self):
        single = build("pr", TINY)
        multi = build(
            "pr",
            TINY.scaled(processes=2, footprint_bytes=TINY.footprint_bytes * 2),
        )
        assert multi.n_streams > single.n_streams

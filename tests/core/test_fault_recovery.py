"""Graceful-degradation tests: mapper eviction/quarantine and the
NDPExt runtime's fault recovery."""

import numpy as np
import pytest

from repro.core import NdpExtPolicy
from repro.core.configure import equal_share_allocations
from repro.faults import DramRowFault, FaultSchedule, UnitFailure
from repro.sim import SimulationEngine, tiny
from repro.workloads import TINY, build

from tests.core.test_stream_cache import make_setup, trace_of


class TestEvictUnits:
    def test_dead_unit_loses_shares_and_capacity(self):
        config, stream, mapper = make_setup()
        mapper.process(trace_of(stream, np.arange(200)))
        mapper.evict_units([0])
        alloc = mapper.table.get(stream.sid)
        assert alloc.shares[0] == 0
        assert mapper.table.capacity[0] == 0
        assert alloc.shares[1:].sum() > 0  # survivors keep their rows

    def test_requests_never_served_by_dead_unit(self):
        config, stream, mapper = make_setup()
        mapper.process(trace_of(stream, np.arange(200)))
        mapper.evict_units([0])
        out = mapper.process(trace_of(stream, np.arange(200)))
        assert not (out.serving_unit == 0).any()

    def test_eviction_counts_lost_lines(self):
        config, stream, mapper = make_setup()
        mapper.process(trace_of(stream, np.arange(400)))
        stats = mapper.evict_units([0])
        assert stats.invalidations > 0  # the dead unit held something
        assert stats.movements > 0  # ...but most survivors stayed put

    def test_consistent_placement_preserves_more_than_hash(self):
        preserved = {}
        for placement in ("consistent", "hash"):
            config, stream, mapper = make_setup(placement=placement)
            mapper.process(trace_of(stream, np.arange(400)))
            stats = mapper.evict_units([0])
            preserved[placement] = stats.movements
        # Section V-D's minimal-movement property is what makes recovery
        # cheap: only the dead unit's ring spots vanish.
        assert preserved["consistent"] > preserved["hash"]

    def test_capacity_respected_by_later_allocations(self):
        config, stream, mapper = make_setup()
        mapper.evict_units([0])
        full = equal_share_allocations(
            {stream.sid: stream}, config.n_units, config.rows_per_unit
        )
        with pytest.raises(ValueError):
            mapper.table.set_all(full)  # would put rows on the dead unit


class TestQuarantineRow:
    def test_reduces_capacity_and_victim_share(self):
        config, stream, mapper = make_setup()
        before = mapper.table.get(stream.sid).shares.copy()
        stats = mapper.quarantine_row(1, 0)
        after = mapper.table.get(stream.sid).shares
        assert mapper.table.capacity[1] == config.rows_per_unit - 1
        assert after[1] == before[1] - 1
        assert after.sum() == before.sum() - 1

    def test_unused_row_only_shrinks_capacity(self):
        config, stream, mapper = make_setup()
        alloc = mapper.table.get(stream.sid)
        unused_row = int(alloc.shares[1])  # first row past the allocation
        before = alloc.shares.copy()
        stats = mapper.quarantine_row(1, unused_row)
        assert stats.invalidations == 0 and stats.movements == 0
        assert mapper.table.capacity[1] == config.rows_per_unit - 1
        assert np.array_equal(mapper.table.get(stream.sid).shares, before)


class TestNdpExtRecovery:
    def run_pair(self, schedule):
        config = tiny()
        workload = build("pr", TINY)
        remap = SimulationEngine(config, faults=schedule).run(
            workload, NdpExtPolicy(name="remap")
        )
        failstop = SimulationEngine(config, faults=schedule).run(
            workload, NdpExtPolicy(fault_recovery=False, name="failstop")
        )
        return remap, failstop

    def test_remap_avoids_demotion(self):
        schedule = FaultSchedule((UnitFailure(epoch=1, unit=0),), seed=1)
        remap, failstop = self.run_pair(schedule)
        # Recovery remaps before any request reaches the dead unit; the
        # fail-stop variant keeps sending requests there and the engine
        # demotes every one of them.
        assert remap.faults.demoted_requests == 0
        assert failstop.faults.demoted_requests > 0
        assert remap.faults.units_lost == 1
        assert failstop.faults.units_lost == 1

    def test_remap_is_faster_after_failure(self):
        schedule = FaultSchedule((UnitFailure(epoch=1, unit=0),), seed=1)
        remap, failstop = self.run_pair(schedule)
        post_remap = remap.runtime_cycles - remap.per_epoch_cycles[0]
        post_failstop = failstop.runtime_cycles - failstop.per_epoch_cycles[0]
        assert post_remap < post_failstop

    def test_row_fault_acknowledged_and_absorbed(self):
        schedule = FaultSchedule((DramRowFault(epoch=1, unit=0, row=0),), seed=1)
        config = tiny()
        workload = build("pr", TINY)
        report = SimulationEngine(config, faults=schedule).run(
            workload, NdpExtPolicy()
        )
        # The runtime remaps around the row and acknowledges it: no
        # request is ever demoted on its account.
        assert report.faults.rows_quarantined == 1
        assert report.faults.demoted_requests == 0

    def test_row_fault_demotes_without_recovery(self):
        # Row 1 of unit 0 is served under the deterministic pr trace on
        # the tiny preset; without recovery its accesses must bypass.
        schedule = FaultSchedule((DramRowFault(epoch=1, unit=0, row=1),), seed=1)
        config = tiny()
        workload = build("pr", TINY)
        report = SimulationEngine(config, faults=schedule).run(
            workload, NdpExtPolicy(fault_recovery=False, name="norecover")
        )
        assert report.faults.rows_quarantined == 1
        assert report.faults.demoted_requests > 0


class TestBaselineFailStop:
    def test_baseline_drops_lines_and_demotes(self):
        from repro.baselines import StaticNucaPolicy

        schedule = FaultSchedule((DramRowFault(epoch=1, unit=0, row=0),), seed=1)
        config = tiny()
        workload = build("pr", TINY)
        report = SimulationEngine(config, faults=schedule).run(
            workload, StaticNucaPolicy()
        )
        # The baseline never acknowledges the quarantined row: its lines
        # are dropped once and every later access bypasses.
        assert report.faults.fault_invalidations > 0
        assert report.faults.demoted_requests > 0

    def test_baseline_unit_failure_invalidates_resident(self):
        from repro.baselines import StaticNucaPolicy

        schedule = FaultSchedule((UnitFailure(epoch=1, unit=0),), seed=1)
        config = tiny()
        workload = build("pr", TINY)
        report = SimulationEngine(config, faults=schedule).run(
            workload, StaticNucaPolicy()
        )
        assert report.faults.units_lost == 1
        assert report.faults.fault_invalidations > 0
        assert report.faults.demoted_requests > 0

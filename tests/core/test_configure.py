"""Tests for the cache configuration algorithm (Algorithm 1)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configure import CacheConfigurator, equal_share_allocations
from repro.core.stream import StreamConfig, StreamKind
from repro.sim.params import tiny
from repro.sim.topology import Topology
from repro.util.curves import MissCurve


def make_stream(sid, read_only=True, kind=StreamKind.INDIRECT, size=1 << 20):
    return StreamConfig(
        sid=sid,
        kind=kind,
        base=sid << 24,
        size=size,
        elem_size=64,
        read_only=read_only,
    )


def steep_curve(total_misses=10_000, max_cap=1 << 20):
    caps = np.array([max_cap // 8, max_cap // 4, max_cap // 2, max_cap])
    misses = np.array([total_misses, total_misses / 2, total_misses / 8, 0.0])
    return MissCurve(caps, misses)


def make_configurator(affine_space=None):
    config = tiny()
    return (
        CacheConfigurator(
            topology=Topology(config),
            rows_per_unit=config.rows_per_unit,
            row_bytes=config.ndp_dram.row_bytes,
            affine_space_bytes=affine_space,
        ),
        config,
    )


class TestBasicAllocation:
    def test_allocates_stream_with_demand(self):
        configurator, config = make_configurator()
        streams = {0: make_stream(0)}
        result = configurator.configure(
            streams, {0: steep_curve()}, {0: [0, 1]}
        )
        alloc = result.allocation_of(0)
        assert alloc.total_rows > 0

    def test_never_exceeds_unit_capacity(self):
        configurator, config = make_configurator()
        streams = {i: make_stream(i) for i in range(4)}
        curves = {i: steep_curve(10_000 * (i + 1)) for i in range(4)}
        acc = {i: list(range(config.n_units)) for i in range(4)}
        result = configurator.configure(streams, curves, acc)
        used = np.zeros(config.n_units, dtype=np.int64)
        for alloc in result.allocations:
            used += alloc.shares
        assert np.all(used <= config.rows_per_unit)

    def test_stream_without_accessors_gets_nothing(self):
        configurator, _ = make_configurator()
        streams = {0: make_stream(0)}
        result = configurator.configure(streams, {0: steep_curve()}, {0: []})
        assert result.allocation_of(0).total_rows == 0
        assert 0 in result.exhausted

    def test_higher_utility_stream_gets_more(self):
        configurator, config = make_configurator()
        streams = {0: make_stream(0), 1: make_stream(1)}
        curves = {0: steep_curve(100_000), 1: steep_curve(100)}
        acc = {0: [0], 1: [0]}
        result = configurator.configure(streams, curves, acc)
        assert (
            result.allocation_of(0).total_rows
            >= result.allocation_of(1).total_rows
        )


class TestReplication:
    def test_read_only_starts_replicated(self):
        """With ample space, each accessing unit keeps its own copy."""
        configurator, config = make_configurator()
        streams = {0: make_stream(0, read_only=True)}
        small = steep_curve(1000, max_cap=4 * config.ndp_dram.row_bytes)
        result = configurator.configure(streams, {0: small}, {0: [0, 1, 2, 3]})
        assert result.replication_degree[0] > 1

    def test_read_write_single_copy(self):
        configurator, config = make_configurator()
        streams = {0: make_stream(0, read_only=False)}
        result = configurator.configure(
            streams, {0: steep_curve()}, {0: [0, 1, 2, 3]}
        )
        assert result.replication_degree[0] == 1

    def test_pressure_reduces_replication(self):
        """When demand exceeds space, groups merge (degree drops)."""
        configurator, config = make_configurator()
        streams = {0: make_stream(0, read_only=True)}
        total = config.total_cache_bytes
        big = steep_curve(100_000, max_cap=total)
        result = configurator.configure(streams, {0: big}, {0: [0, 1, 2, 3]})
        assert result.replication_degree[0] < 4

    def test_groups_disjoint_within_stream(self):
        configurator, config = make_configurator()
        streams = {0: make_stream(0, read_only=True)}
        result = configurator.configure(
            streams, {0: steep_curve()}, {0: [0, 1, 2, 3]}
        )
        alloc = result.allocation_of(0)
        # Every allocated unit belongs to exactly one group.
        for unit in range(config.n_units):
            if alloc.shares[unit] > 0:
                assert alloc.groups[unit] >= 0


class TestAffineRestriction:
    def test_affine_capped(self):
        config = tiny()
        cap_bytes = 2 * config.ndp_dram.row_bytes
        configurator, _ = make_configurator(affine_space=cap_bytes)
        streams = {0: make_stream(0, kind=StreamKind.AFFINE)}
        result = configurator.configure(
            streams, {0: steep_curve()}, {0: [0]}
        )
        alloc = result.allocation_of(0)
        cap_rows = cap_bytes // config.ndp_dram.row_bytes
        assert np.all(alloc.shares <= cap_rows)

    def test_indirect_not_capped(self):
        config = tiny()
        cap_bytes = 2 * config.ndp_dram.row_bytes
        configurator, _ = make_configurator(affine_space=cap_bytes)
        streams = {0: make_stream(0, kind=StreamKind.INDIRECT)}
        result = configurator.configure(streams, {0: steep_curve()}, {0: [0]})
        cap_rows = cap_bytes // config.ndp_dram.row_bytes
        assert result.allocation_of(0).shares.max() > cap_rows


class TestEqualShare:
    def test_even_split(self):
        streams = {i: make_stream(i) for i in range(4)}
        allocations = equal_share_allocations(streams, n_units=2, rows_per_unit=8)
        assert len(allocations) == 4
        for alloc in allocations:
            assert alloc.total_rows == 4  # 2 rows x 2 units

    def test_more_streams_than_rows_rotates(self):
        """Every stream gets space somewhere even when rows < streams."""
        streams = {i: make_stream(i) for i in range(8)}
        allocations = equal_share_allocations(streams, n_units=4, rows_per_unit=4)
        used = np.zeros(4, dtype=np.int64)
        for alloc in allocations:
            assert alloc.total_rows > 0
            used += alloc.shares
        assert np.all(used <= 4)

    def test_empty(self):
        assert equal_share_allocations({}, 4, 8) == []


class TestRandomizedInvariants:
    @given(
        st.integers(min_value=1, max_value=5),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_capacity_and_group_invariants(self, n_streams, data):
        configurator, config = make_configurator()
        streams = {}
        curves = {}
        acc = {}
        for sid in range(n_streams):
            read_only = data.draw(st.booleans())
            streams[sid] = make_stream(sid, read_only=read_only)
            misses = data.draw(st.integers(min_value=0, max_value=100_000))
            curves[sid] = steep_curve(misses)
            acc[sid] = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=config.n_units - 1),
                    min_size=0,
                    max_size=config.n_units,
                    unique=True,
                )
            )
        result = configurator.configure(streams, curves, acc)
        used = np.zeros(config.n_units, dtype=np.int64)
        for alloc in result.allocations:
            used += alloc.shares
            # Structural validity is enforced by StreamAllocation itself;
            # additionally read-write streams must have <= 1 group.
            if not streams[alloc.sid].read_only:
                assert alloc.n_groups <= 1
        assert np.all(used <= config.rows_per_unit)

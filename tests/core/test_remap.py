"""Tests for the stream remap table (RShares/RRowBase/RGroups)."""

import numpy as np
import pytest

from repro.core.remap import NO_GROUP, RemapTable, StreamAllocation


def alloc(sid=0, shares=(8, 6, 4, 2), groups=(0, 0, 1, 1)):
    n = len(shares)
    return StreamAllocation(
        sid=sid,
        shares=np.array(shares),
        groups=np.array(groups),
        row_base=np.zeros(n, dtype=np.int64),
    )


class TestStreamAllocation:
    def test_paper_example(self):
        """RShares=(8,6,4,2), RGroups=(0,0,1,1): two copies of 14 and 6 rows."""
        a = alloc()
        assert a.group_ids == [0, 1]
        assert a.group_rows(0) == 14
        assert a.group_rows(1) == 6
        assert a.total_rows == 20
        assert a.replication_degree() == 2

    def test_units_of_group(self):
        a = alloc()
        assert list(a.units_of_group(0)) == [0, 1]
        assert list(a.units_of_group(1)) == [2, 3]

    def test_rows_without_group_rejected(self):
        with pytest.raises(ValueError):
            alloc(groups=(0, 0, 1, NO_GROUP))

    def test_group_without_rows_rejected(self):
        with pytest.raises(ValueError):
            alloc(shares=(8, 6, 4, 0))

    def test_negative_shares_rejected(self):
        with pytest.raises(ValueError):
            alloc(shares=(8, -1, 4, 2))

    def test_share_width_16_bits(self):
        with pytest.raises(ValueError):
            alloc(shares=(1 << 16, 6, 4, 2))

    def test_empty(self):
        a = StreamAllocation.empty(5, 4)
        assert not a.is_allocated()
        assert a.n_groups == 0
        assert a.replication_degree() == 1

    def test_single_group(self):
        a = StreamAllocation.single_group(1, np.array([4, 0, 4, 0]))
        assert a.group_ids == [0]
        assert a.group_of_unit(0) == 0
        assert a.group_of_unit(1) == NO_GROUP


class TestRemapTable:
    def test_capacity_enforced_with_rollback(self):
        table = RemapTable(n_units=4, rows_per_unit=10)
        table.set(alloc(sid=0))
        before = table.get(0)
        with pytest.raises(ValueError):
            table.set(alloc(sid=1, shares=(8, 8, 8, 8), groups=(0, 0, 0, 0)))
        assert 1 not in table
        assert table.get(0) is before

    def test_replace_same_sid(self):
        table = RemapTable(n_units=4, rows_per_unit=10)
        table.set(alloc(sid=0))
        table.set(alloc(sid=0, shares=(1, 1, 1, 1), groups=(0, 0, 0, 0)))
        assert table.get(0).total_rows == 4

    def test_row_bases_pack_contiguously(self):
        table = RemapTable(n_units=2, rows_per_unit=20)
        table.set_all(
            [
                StreamAllocation.single_group(0, np.array([5, 3])),
                StreamAllocation.single_group(1, np.array([2, 4])),
            ]
        )
        assert list(table.get(0).row_base) == [0, 0]
        assert list(table.get(1).row_base) == [5, 3]

    def test_set_all_atomic(self):
        table = RemapTable(n_units=2, rows_per_unit=4)
        with pytest.raises(ValueError):
            table.set_all(
                [
                    StreamAllocation.single_group(0, np.array([3, 3])),
                    StreamAllocation.single_group(1, np.array([3, 3])),
                ]
            )
        assert len(table) == 0

    def test_set_all_rejects_duplicates(self):
        table = RemapTable(n_units=2, rows_per_unit=10)
        with pytest.raises(ValueError):
            table.set_all(
                [
                    StreamAllocation.single_group(0, np.array([1, 1])),
                    StreamAllocation.single_group(0, np.array([1, 1])),
                ]
            )

    def test_rows_free(self):
        table = RemapTable(n_units=4, rows_per_unit=10)
        table.set(alloc())
        assert list(table.rows_free_per_unit()) == [2, 4, 6, 8]

    def test_unit_count_must_match(self):
        table = RemapTable(n_units=8, rows_per_unit=10)
        with pytest.raises(ValueError):
            table.set(alloc())  # 4-unit allocation

    def test_paper_metadata_size(self):
        """512 streams x 64 units x 40 bits = 160 kB."""
        table = RemapTable(n_units=64, rows_per_unit=1024)
        assert table.metadata_bits() == 512 * 64 * 40
        assert table.metadata_bits() / 8 / 1024 == pytest.approx(160.0)

    def test_get_or_empty(self):
        table = RemapTable(n_units=4, rows_per_unit=10)
        empty = table.get_or_empty(9)
        assert empty.total_rows == 0

    def test_clear(self):
        table = RemapTable(n_units=4, rows_per_unit=10)
        table.set(alloc())
        table.clear()
        assert len(table) == 0

"""Tests for sampler-to-stream assignment."""

import numpy as np
import pytest

from repro.core.assignment import SamplerAssigner


def bitvec(n_units, n_streams, pairs):
    vec = np.zeros((n_units, n_streams), dtype=bool)
    for unit, stream in pairs:
        vec[unit, stream] = True
    return vec


class TestAssignment:
    def test_full_coverage_when_capacity_allows(self):
        assigner = SamplerAssigner(samplers_per_unit=4)
        vec = bitvec(3, 4, [(0, 0), (1, 0), (1, 1), (1, 2), (2, 2), (2, 3)])
        result = assigner.assign(vec)
        assert result.covered == [0, 1, 2, 3]
        assert result.uncovered == []

    def test_assignment_uses_accessing_units_only(self):
        assigner = SamplerAssigner(samplers_per_unit=4)
        vec = bitvec(2, 2, [(0, 0), (1, 1)])
        result = assigner.assign(vec)
        assert result.assignment[0] == 0
        assert result.assignment[1] == 1

    def test_capacity_limits(self):
        assigner = SamplerAssigner(samplers_per_unit=1)
        vec = bitvec(1, 3, [(0, 0), (0, 1), (0, 2)])
        result = assigner.assign(vec)
        assert len(result.covered) == 1
        assert len(result.uncovered) == 2

    def test_rotation_covers_all_streams_over_epochs(self):
        """Streams missed in one epoch get priority until all covered."""
        assigner = SamplerAssigner(samplers_per_unit=1)
        vec = bitvec(1, 3, [(0, 0), (0, 1), (0, 2)])
        seen = set()
        for _ in range(3):
            result = assigner.assign(vec)
            seen.update(result.covered)
        assert seen == {0, 1, 2}

    def test_rotation_restarts_after_full_coverage(self):
        assigner = SamplerAssigner(samplers_per_unit=2)
        vec = bitvec(1, 2, [(0, 0), (0, 1)])
        first = assigner.assign(vec)
        second = assigner.assign(vec)
        assert first.covered == second.covered == [0, 1]

    def test_inactive_streams_ignored(self):
        assigner = SamplerAssigner()
        vec = bitvec(2, 4, [(0, 1)])
        result = assigner.assign(vec)
        assert result.covered == [1]
        assert result.uncovered == []

    def test_empty_bitvector(self):
        assigner = SamplerAssigner()
        result = assigner.assign(np.zeros((2, 4), dtype=bool))
        assert result.assignment == {}

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            SamplerAssigner().assign(np.zeros(4, dtype=bool))

    def test_reset(self):
        assigner = SamplerAssigner(samplers_per_unit=1)
        vec = bitvec(1, 2, [(0, 0), (0, 1)])
        first = assigner.assign(vec)
        assigner.reset()
        second = assigner.assign(vec)
        assert first.covered == second.covered

"""Property tests on the stream-cache mapper's structural invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configure import equal_share_allocations
from repro.core.remap import StreamAllocation
from repro.core.stream import StreamTable, configure_stream
from repro.core.stream_cache import StreamCacheMapper, unpack_unit
from repro.sim.params import tiny
from repro.sim.topology import Topology
from repro.workloads.trace import Trace


def build_mapper(n_streams=2, placement="consistent", seed=0):
    config = tiny()
    table = StreamTable()
    streams = []
    for i in range(n_streams):
        kind = "affine" if i % 2 == 0 else "indirect"
        streams.append(
            configure_stream(
                table,
                kind,
                base=(i + 1) << 20,
                size=32 * 1024,
                elem_size=64,
                name=f"s{i}",
            )
        )
    mapper = StreamCacheMapper(config, Topology(config), table, placement=placement)
    mapper.apply(
        equal_share_allocations(
            {s.sid: s for s in streams}, config.n_units, config.rows_per_unit
        )
    )
    return config, streams, mapper


def trace_for(streams, picks, cores):
    addrs = np.array(
        [streams[s].base + (e % streams[s].n_elements) * 64 for s, e in picks],
        dtype=np.int64,
    )
    sids = np.array([streams[s].sid for s, _ in picks], dtype=np.int32)
    return Trace(
        core=np.asarray(cores, np.int32),
        addr=addrs,
        write=np.zeros(len(picks), bool),
        sid=sids,
    )


class TestMappingInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=511),
            ),
            min_size=1,
            max_size=200,
        ),
        st.sampled_from(["hash", "consistent"]),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_served_units_have_allocation(self, picks, placement, data):
        config, streams, mapper = build_mapper(placement=placement)
        cores = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=config.n_units - 1),
                min_size=len(picks),
                max_size=len(picks),
            )
        )
        out = mapper.process(trace_for(streams, picks, cores))
        for i, (s_idx, _) in enumerate(picks):
            unit = out.serving_unit[i]
            assert unit >= 0
            alloc = mapper.table.get(streams[s_idx].sid)
            assert alloc.shares[unit] > 0
            # Rows are within the unit's cache.
            assert 0 <= out.local_row[i] < config.rows_per_unit

    def test_mapping_deterministic_across_calls(self):
        config, streams, mapper = build_mapper()
        picks = [(0, e) for e in range(50)] + [(1, e) for e in range(50)]
        cores = [e % config.n_units for e in range(100)]
        a = mapper.process(trace_for(streams, picks, cores))
        # Fresh mapper, same config: identical placement decisions.
        _, streams2, mapper2 = build_mapper()
        b = mapper2.process(trace_for(streams2, picks, cores))
        assert np.array_equal(a.serving_unit, b.serving_unit)
        assert np.array_equal(a.local_row, b.local_row)

    def test_same_element_same_location(self):
        """Direct-mapped: one element always maps to one physical place
        (per replication group)."""
        config, streams, mapper = build_mapper()
        picks = [(1, 7)] * 20
        cores = [0] * 20  # same requesting unit -> same group
        out = mapper.process(trace_for(streams, picks, cores))
        assert len(np.unique(out.serving_unit)) == 1
        assert len(np.unique(out.local_row)) == 1

    def test_group_routing_respects_replicas(self):
        """With two replication groups, requests from each half of the
        machine are served within their own group's units."""
        config, streams, mapper = build_mapper(n_streams=1)
        stream = streams[0]
        shares = np.full(config.n_units, 2, dtype=np.int64)
        groups = np.array([0, 0, 1, 1])
        mapper.apply(
            [
                StreamAllocation(
                    sid=stream.sid,
                    shares=shares,
                    groups=groups,
                    row_base=np.zeros(config.n_units, np.int64),
                )
            ]
        )
        picks = [(0, e) for e in range(100)]
        out_g0 = mapper.process(trace_for(streams, picks, [0] * 100))
        out_g1 = mapper.process(trace_for(streams, picks, [3] * 100))
        assert set(np.unique(out_g0.serving_unit)) <= {0, 1}
        assert set(np.unique(out_g1.serving_unit)) <= {2, 3}

    def test_unit_outside_groups_uses_nearest(self):
        config, streams, mapper = build_mapper(n_streams=1)
        stream = streams[0]
        shares = np.array([4, 0, 0, 0], dtype=np.int64)
        mapper.apply([StreamAllocation.single_group(stream.sid, shares)])
        picks = [(0, e) for e in range(20)]
        out = mapper.process(trace_for(streams, picks, [3] * 20))
        assert (out.serving_unit == 0).all()

    def test_packed_units_roundtrip_through_outcome(self):
        config, streams, mapper = build_mapper()
        picks = [(0, e) for e in range(64)]
        out = mapper.process(trace_for(streams, picks, [1] * 64))
        sets = mapper._map_to_sets(
            mapper._mappings[streams[0].sid],
            mapper._mappings[streams[0].sid].groups[0],
            np.arange(4),
        )
        assert np.array_equal(
            unpack_unit(sets), unpack_unit(sets)
        )  # stable unpacking

"""Tests for the future-work extensions: adaptive block sizes and
dynamic stream resizing."""

import numpy as np
import pytest

from repro.core import NdpExtPolicy
from repro.core.configure import equal_share_allocations
from repro.core.stream import StreamTable, configure_stream
from repro.core.stream_cache import StreamCacheMapper
from repro.sim import SimulationEngine
from repro.sim.params import tiny
from repro.sim.topology import Topology
from repro.workloads import TINY, build
from repro.workloads.trace import Trace


def make_mapper(kind="affine", elem=64):
    config = tiny()
    table = StreamTable()
    stream = configure_stream(
        table, kind, base=1 << 16, size=64 * 1024, elem_size=elem
    )
    mapper = StreamCacheMapper(config, Topology(config), table)
    mapper.apply(
        equal_share_allocations(
            {stream.sid: stream}, config.n_units, config.rows_per_unit
        )
    )
    return config, table, stream, mapper


def trace_of(stream, elems):
    n = len(elems)
    return Trace(
        core=np.zeros(n, np.int32),
        addr=stream.base + np.asarray(elems, np.int64) * stream.elem_size,
        write=np.zeros(n, bool),
        sid=np.full(n, stream.sid, np.int32),
    )


class TestBlockOverride:
    def test_override_changes_granularity(self):
        _, _, stream, mapper = make_mapper()
        default = mapper.granularity_of(stream)
        assert mapper.set_block_override(stream.sid, default * 2)
        assert mapper.granularity_of(stream) == default * 2

    def test_same_size_is_noop(self):
        _, _, stream, mapper = make_mapper()
        assert not mapper.set_block_override(
            stream.sid, mapper.ata.block_bytes
        )

    def test_override_drops_resident(self):
        _, _, stream, mapper = make_mapper()
        mapper.process(trace_of(stream, [1, 2, 3]))
        mapper.set_block_override(stream.sid, 2048)
        out = mapper.process(trace_of(stream, [1]))
        assert out.rescued_first_touches == 0

    def test_rejects_non_power_of_two(self):
        _, _, stream, mapper = make_mapper()
        with pytest.raises(ValueError):
            mapper.set_block_override(stream.sid, 1000)

    def test_bigger_blocks_prefetch_more(self):
        _, _, stream, mapper = make_mapper()
        mapper.set_block_override(stream.sid, 4096)
        # 64 B elements: 64 per 4 kB block.
        out = mapper.process(trace_of(stream, list(range(64))))
        assert out.hit[1:].all()


class TestAdaptiveBlocksPolicy:
    def test_runs_and_matches_ballpark(self):
        config = tiny()
        workload = build("hotspot", TINY)
        engine = SimulationEngine(config)
        fixed = engine.run(workload, NdpExtPolicy())
        adaptive = engine.run(workload, NdpExtPolicy(adaptive_blocks=True))
        ratio = adaptive.runtime_cycles / fixed.runtime_cycles
        assert 0.5 < ratio < 1.5

    def test_pick_block_size_scales_with_runs(self):
        config = tiny()
        workload = build("pr", TINY)
        policy = NdpExtPolicy(adaptive_blocks=True)
        policy.setup(config, Topology(config), workload)
        stream = next(s for s in workload.streams if s.is_affine)
        sequential = np.arange(1000)
        scattered = np.arange(1000) * 17 % 997
        cores = np.zeros(1000, dtype=np.int32)
        big = policy._pick_block_size(stream, sequential, cores)
        small = policy._pick_block_size(stream, scattered, cores)
        assert big >= small
        assert big <= policy.MAX_BLOCK_BYTES
        assert small >= policy.MIN_BLOCK_BYTES


class TestDynamicResize:
    def test_resize_grows(self):
        _, table, stream, mapper = make_mapper()
        table.resize(stream.sid, 128 * 1024)
        assert stream.size == 128 * 1024
        # New space resolves to the stream.
        addr = np.array([stream.base + 100 * 1024])
        assert table.resolve(addr)[0] == stream.sid

    def test_resize_shrinks_and_unresolves(self):
        _, table, stream, mapper = make_mapper()
        table.resize(stream.sid, 32 * 1024)
        addr = np.array([stream.base + 48 * 1024])
        assert table.resolve(addr)[0] == -1

    def test_resize_rejects_overlap(self):
        config = tiny()
        table = StreamTable()
        a = configure_stream(table, "affine", base=4096, size=4096, elem_size=4)
        configure_stream(table, "affine", base=16384, size=4096, elem_size=4)
        with pytest.raises(ValueError):
            table.resize(a.sid, 1 << 20)

    def test_resize_rejects_bad_size(self):
        _, table, stream, _ = make_mapper()
        with pytest.raises(ValueError):
            table.resize(stream.sid, 100)  # not an element multiple
        with pytest.raises(ValueError):
            table.resize(stream.sid, 0)

    def test_notify_resize_invalidates(self):
        _, table, stream, mapper = make_mapper()
        mapper.process(trace_of(stream, [1, 2, 3]))
        table.resize(stream.sid, 128 * 1024)
        dropped = mapper.notify_resize(stream.sid)
        assert dropped > 0
        out = mapper.process(trace_of(stream, [1]))
        assert out.rescued_first_touches == 0

    def test_resize_then_access_new_space(self):
        _, table, stream, mapper = make_mapper()
        table.resize(stream.sid, 128 * 1024)
        mapper.notify_resize(stream.sid)
        new_elems = [1200, 1200, 1500]  # beyond the original 1024 elements
        out = mapper.process(trace_of(stream, new_elems))
        assert out.hit[1]

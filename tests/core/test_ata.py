"""Tests for the affine tag array sizing."""

import pytest

from repro.core.ata import AffineTagArray


class TestSizing:
    def test_paper_configuration(self):
        """16 MB affine space / 1 kB blocks -> 16k tags -> 64 kB SRAM."""
        ata = AffineTagArray(block_bytes=1024, space_bytes=16 * 1024 * 1024)
        assert ata.n_blocks == 16 * 1024
        assert ata.sram_bytes == 64 * 1024

    def test_blocks_for(self):
        ata = AffineTagArray(block_bytes=1024, space_bytes=1 << 20)
        assert ata.blocks_for(4096) == 4
        assert ata.blocks_for(100) == 0

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            AffineTagArray(block_bytes=1000, space_bytes=1 << 20)

    def test_rejects_space_below_block(self):
        with pytest.raises(ValueError):
            AffineTagArray(block_bytes=1024, space_bytes=512)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            AffineTagArray(ways=0)


class TestClamp:
    def test_clamps_to_remaining_space(self):
        ata = AffineTagArray(block_bytes=1024, space_bytes=16 * 1024)
        # 8 rows of 2 kB fit the 16 kB affine space.
        assert ata.clamp_affine_rows(10, already_used_rows=0, row_bytes=2048) == 8
        assert ata.clamp_affine_rows(10, already_used_rows=6, row_bytes=2048) == 2
        assert ata.clamp_affine_rows(10, already_used_rows=8, row_bytes=2048) == 0

    def test_no_clamp_when_within_cap(self):
        ata = AffineTagArray(block_bytes=1024, space_bytes=1 << 20)
        assert ata.clamp_affine_rows(3, already_used_rows=0, row_bytes=2048) == 3

"""Tests for the consistent-hashing ring (Section V-D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistent import ConsistentRing, preserved_mask, spots_of_group


def spots(n_units=4, rows=8):
    return [(u, r) for u in range(n_units) for r in range(rows)]


class TestRing:
    def test_deterministic(self):
        tags = np.arange(100)
        a = ConsistentRing(spots(), salt=1).lookup(tags)
        b = ConsistentRing(spots(), salt=1).lookup(tags)
        assert np.array_equal(a, b)

    def test_salt_decorrelates(self):
        tags = np.arange(100)
        a = ConsistentRing(spots(), salt=1).lookup(tags)
        b = ConsistentRing(spots(), salt=2).lookup(tags)
        assert not np.array_equal(a, b)

    def test_load_roughly_balanced(self):
        ring = ConsistentRing(spots(4, 8), salt=0)
        owners = ring.lookup(np.arange(32_000))
        counts = np.bincount(owners, minlength=32)
        assert counts.min() > 0
        assert counts.max() < 5 * counts.mean()

    def test_units_and_rows_of(self):
        ring = ConsistentRing([(3, 7), (5, 1)], salt=0)
        idx = ring.lookup(np.arange(10))
        units = ring.units_of(idx)
        rows = ring.rows_of(idx)
        assert set(units) <= {3, 5}
        assert set(rows) <= {7, 1}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ConsistentRing([])


class TestConsistency:
    def test_growing_preserves_most(self):
        """The defining property: adding spots only moves the tags owned
        by the new spots."""
        tags = np.arange(20_000)
        old_ring = ConsistentRing(spots(4, 8), salt=3)
        new_ring = ConsistentRing(spots(4, 8) + [(4, r) for r in range(8)], salt=3)
        preserved = preserved_mask(old_ring, new_ring, tags)
        # Going from 32 to 40 spots should move ~ 8/40 of tags.
        assert preserved.mean() > 0.7

    def test_rehash_comparison(self):
        """Plain mod-rehashing (simulated by a different salt) moves almost
        everything, unlike consistent growth."""
        tags = np.arange(20_000)
        old_ring = ConsistentRing(spots(4, 8), salt=3)
        grown = ConsistentRing(spots(4, 8) + [(4, 0)], salt=3)
        rehashed = ConsistentRing(spots(4, 8), salt=99)
        assert (
            preserved_mask(old_ring, grown, tags).mean()
            > preserved_mask(old_ring, rehashed, tags).mean()
        )

    def test_identical_rings_preserve_all(self):
        tags = np.arange(1000)
        a = ConsistentRing(spots(), salt=5)
        b = ConsistentRing(spots(), salt=5)
        assert preserved_mask(a, b, tags).all()

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_shrink_only_moves_removed_spots(self, keep_units, rows):
        all_spots = spots(keep_units + 1, rows)
        kept = spots(keep_units, rows)
        tags = np.arange(5000)
        big = ConsistentRing(all_spots, salt=1)
        small_ring = ConsistentRing(kept, salt=1)
        owners_big = big.lookup(tags)
        on_kept = np.array(
            [all_spots[i] in set(kept) for i in owners_big]
        )
        preserved = preserved_mask(big, small_ring, tags)
        # Tags on removed spots must move; tags on kept spots must stay.
        assert not preserved[~on_kept].any()
        assert preserved[on_kept].all()


class TestSpotsOfGroup:
    def test_enumeration(self):
        result = spots_of_group(np.array([2, 5]), np.array([2, 1]))
        assert result == [(2, 0), (2, 1), (5, 0)]

    def test_empty_shares(self):
        assert spots_of_group(np.array([1]), np.array([0])) == []

"""Tests for the stream cache mapper (Section IV hardware)."""

import numpy as np
import pytest

from repro.core.configure import equal_share_allocations
from repro.core.remap import StreamAllocation
from repro.core.stream import StreamTable, configure_stream
from repro.core.stream_cache import (
    StreamCacheMapper,
    pack_set_id,
    unpack_set_idx,
    unpack_unit,
)
from repro.sim.params import tiny
from repro.sim.topology import Topology
from repro.workloads.trace import Trace


def make_setup(read_only=True, kind="indirect", placement="consistent"):
    config = tiny()
    table = StreamTable()
    stream = configure_stream(
        table,
        kind,
        base=1 << 16,
        size=64 * 1024,
        elem_size=64,
        read_only=read_only,
        name="data",
    )
    mapper = StreamCacheMapper(
        config, Topology(config), table, placement=placement
    )
    mapper.apply(
        equal_share_allocations({stream.sid: stream}, config.n_units, config.rows_per_unit)
    )
    return config, stream, mapper


def trace_of(stream, elem_ids, cores=None, writes=None):
    n = len(elem_ids)
    return Trace(
        core=np.zeros(n, np.int32) if cores is None else np.asarray(cores, np.int32),
        addr=stream.base + np.asarray(elem_ids, np.int64) * stream.elem_size,
        write=np.zeros(n, bool) if writes is None else np.asarray(writes, bool),
        sid=np.full(n, stream.sid, np.int32),
    )


class TestPacking:
    def test_roundtrip(self):
        sids = np.array([1, 511])
        units = np.array([0, 63])
        set_idx = np.array([5, (1 << 33) - 1])
        packed = pack_set_id(sids, units, set_idx)
        assert np.array_equal(unpack_unit(packed), units)
        assert np.array_equal(unpack_set_idx(packed), set_idx)


class TestHitMiss:
    def test_repeat_access_hits(self):
        _, stream, mapper = make_setup()
        out = mapper.process(trace_of(stream, [5, 5, 5]))
        assert list(out.hit) == [False, True, True]

    def test_unallocated_stream_bypasses(self):
        config, stream, mapper = make_setup()
        mapper.apply([])  # no allocations
        out = mapper.process(trace_of(stream, [1, 1]))
        assert not out.hit.any()
        assert (out.serving_unit == -1).all()

    def test_indirect_miss_probes_dram(self):
        _, stream, mapper = make_setup(kind="indirect")
        out = mapper.process(trace_of(stream, [1, 2, 1]))
        # Misses on an indirect stream touch DRAM to read the in-line tag.
        assert out.miss_probe_dram[0]
        assert not out.miss_probe_dram[2]  # hit, charged as a hit

    def test_affine_miss_does_not_probe(self):
        _, stream, mapper = make_setup(kind="affine")
        out = mapper.process(trace_of(stream, [1, 600]))
        assert not out.miss_probe_dram.any()

    def test_affine_block_prefetch(self):
        """Elements in the same 1 kB block hit after the first touch."""
        _, stream, mapper = make_setup(kind="affine")
        # 64 B elements: 16 per 1 kB block.
        out = mapper.process(trace_of(stream, list(range(16))))
        assert not out.hit[0]
        assert out.hit[1:].all()

    def test_metadata_slb_costs(self):
        config, stream, mapper = make_setup()
        out = mapper.process(trace_of(stream, [1, 2, 3]))
        hit_ns = config.stream.slb_hit_ns
        # First access refills the SLB; the rest are SLB hits.
        assert out.metadata_ns[0] == pytest.approx(
            hit_ns + config.stream.slb_refill_ns
        )
        assert out.metadata_ns[1] == pytest.approx(hit_ns)

    def test_serving_unit_has_rows(self):
        config, stream, mapper = make_setup()
        out = mapper.process(trace_of(stream, np.arange(500) % 100))
        alloc = mapper.table.get(stream.sid)
        for unit in np.unique(out.serving_unit):
            assert alloc.shares[unit] > 0


class TestWarmState:
    def test_rescue_across_epochs_when_unchanged(self):
        _, stream, mapper = make_setup()
        mapper.process(trace_of(stream, [1, 2, 3]))
        out = mapper.process(trace_of(stream, [1, 2, 3]))
        assert out.hit.all()
        assert out.rescued_first_touches == 3

    def test_reconfiguration_stats(self):
        config, stream, mapper = make_setup()
        mapper.process(trace_of(stream, np.arange(200)))
        # Shrink the allocation to half the units: some content must move
        # or be invalidated.
        shares = np.zeros(config.n_units, dtype=np.int64)
        shares[:2] = config.rows_per_unit // 2
        stats = mapper.apply([StreamAllocation.single_group(stream.sid, shares)])
        assert stats.invalidations + stats.movements > 0

    def test_consistent_preserves_more_than_hash(self):
        preserved = {}
        for placement in ("consistent", "hash"):
            config, stream, mapper = make_setup(placement=placement)
            mapper.process(trace_of(stream, np.arange(400)))
            shares = np.full(config.n_units, config.rows_per_unit // 2, np.int64)
            stats = mapper.apply(
                [StreamAllocation.single_group(stream.sid, shares)]
            )
            preserved[placement] = stats.movements
        assert preserved["consistent"] > preserved["hash"]

    def test_unchanged_allocation_keeps_everything(self):
        config, stream, mapper = make_setup()
        mapper.process(trace_of(stream, np.arange(100)))
        same = equal_share_allocations(
            {stream.sid: stream}, config.n_units, config.rows_per_unit
        )
        stats = mapper.apply(same)
        assert stats.invalidations == 0
        assert stats.movements == 0


class TestWriteException:
    def test_write_demotes_replicated_stream(self):
        config = tiny()
        table = StreamTable()
        stream = configure_stream(
            table, "indirect", base=1 << 16, size=64 * 1024, elem_size=64,
            read_only=True,
        )
        mapper = StreamCacheMapper(config, Topology(config), table)
        # Two replication groups over the four units.
        shares = np.full(config.n_units, 4, dtype=np.int64)
        groups = np.array([0, 0, 1, 1])
        mapper.apply(
            [
                StreamAllocation(
                    sid=stream.sid,
                    shares=shares,
                    groups=groups,
                    row_base=np.zeros(config.n_units, np.int64),
                )
            ]
        )
        writes = np.zeros(4, bool)
        writes[2] = True
        out = mapper.process(trace_of(stream, [1, 2, 3, 4], writes=writes))
        assert stream.sid in mapper.write_excepted
        # The shared StreamConfig stays pristine so reruns of the same
        # workload are not contaminated by this run's write exception.
        assert stream.read_only
        mapping = mapper._mappings[stream.sid]
        assert len(mapping.groups) == 1  # collapsed to a single copy
        # The exception latency lands on the first write.
        assert out.metadata_ns[2] > out.metadata_ns[1]

    def test_exception_fires_once(self):
        config = tiny()
        table = StreamTable()
        stream = configure_stream(
            table, "indirect", base=1 << 16, size=64 * 1024, elem_size=64
        )
        mapper = StreamCacheMapper(config, Topology(config), table)
        mapper.apply(
            equal_share_allocations({stream.sid: stream}, config.n_units, config.rows_per_unit)
        )
        first = mapper.process(trace_of(stream, [1], writes=[True]))
        second = mapper.process(trace_of(stream, [2], writes=[True]))
        assert second.metadata_ns[0] < first.metadata_ns[0]


class TestAccounting:
    def test_sram_budget(self):
        config, _, mapper = make_setup()
        per_unit = mapper.sram_bytes_per_unit()
        assert per_unit > 0
        # SLB is 4544 B at 32 entries regardless of scale.
        assert mapper.slbs[0].sram_bytes == 4544

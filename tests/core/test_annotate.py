"""Tests for automatic stream annotation."""

import numpy as np
import pytest

from repro.core.annotate import (
    annotate_workload,
    annotation_report,
    detect_streams,
)
from repro.core.stream import StreamKind
from repro.workloads import TINY, build
from repro.workloads.trace import Trace


def raw_trace(addrs, writes=None):
    n = len(addrs)
    return Trace(
        core=np.zeros(n, np.int32),
        addr=np.asarray(addrs, np.int64),
        write=np.zeros(n, bool) if writes is None else np.asarray(writes, bool),
        sid=np.full(n, -1, np.int32),
    )


class TestDetection:
    def test_sequential_scan_is_affine(self):
        addrs = 1 << 20 | np.arange(0, 64 * 1024, 8)
        table, regions = detect_streams(raw_trace(addrs))
        assert len(regions) == 1
        assert regions[0].kind is StreamKind.AFFINE
        assert regions[0].elem_size == 8

    def test_random_gathers_are_indirect(self):
        rng = np.random.default_rng(1)
        addrs = (1 << 20) + rng.integers(0, 8192, 2000) * 64
        table, regions = detect_streams(raw_trace(addrs))
        assert len(regions) == 1
        assert regions[0].kind is StreamKind.INDIRECT

    def test_two_regions_split_at_gap(self):
        a = (1 << 20) + np.arange(0, 4096, 4)
        b = (1 << 24) + np.arange(0, 4096, 4)
        mixed = np.empty(2 * len(a), dtype=np.int64)
        mixed[0::2], mixed[1::2] = a, b
        table, regions = detect_streams(raw_trace(mixed))
        assert len(regions) == 2

    def test_small_regions_ignored(self):
        addrs = (1 << 20) + np.arange(0, 64, 4)  # only 16 accesses
        _, regions = detect_streams(raw_trace(addrs))
        assert regions == []

    def test_read_only_inference(self):
        addrs = (1 << 20) + np.tile(np.arange(0, 8192, 8), 2)
        writes = np.zeros(len(addrs), bool)
        _, regions = detect_streams(raw_trace(addrs, writes))
        assert regions[0].read_only
        writes[5] = True
        _, regions = detect_streams(raw_trace(addrs, writes))
        assert not regions[0].read_only

    def test_elem_size_power_of_two(self):
        addrs = (1 << 20) + np.arange(0, 32 * 1024, 48)  # odd stride 48
        _, regions = detect_streams(raw_trace(addrs))
        elem = regions[0].elem_size
        assert elem & (elem - 1) == 0

    def test_coverage_resolves(self):
        addrs = (1 << 20) + np.arange(0, 64 * 1024, 8)
        table, _ = detect_streams(raw_trace(addrs))
        resolved = table.resolve(addrs)
        assert (resolved >= 0).all()

    def test_empty_trace(self):
        table, regions = detect_streams(raw_trace(np.array([], dtype=np.int64)))
        assert regions == []
        assert len(table) == 0


class TestOnGeneratedWorkloads:
    @pytest.mark.parametrize("name", ["pr", "hotspot", "recsys"])
    def test_recovers_manual_annotations(self, name):
        workload = build(name, TINY)
        table, _ = detect_streams(workload.trace)
        report = annotation_report(workload, table)
        assert report["coverage"] > 0.9
        assert report["agreement"] > 0.9
        assert report["kind_accuracy"] >= 0.5

    def test_annotated_workload_runs_end_to_end(self):
        from repro.core import NdpExtPolicy
        from repro.sim import SimulationEngine, tiny

        manual = build("pr", TINY)
        auto = annotate_workload(manual)
        assert auto.n_streams >= 1
        engine = SimulationEngine(tiny())
        manual_report = engine.run(manual, NdpExtPolicy())
        auto_report = engine.run(auto, NdpExtPolicy())
        # Auto-annotation should land in the same performance ballpark.
        ratio = auto_report.runtime_cycles / manual_report.runtime_cycles
        assert 0.5 < ratio < 2.0

"""Tests for the set-based miss-curve samplers."""

import numpy as np
import pytest

from repro.core.sampler import MissCurveSampler, SamplerParams, sample_curve
from repro.core.stream import StreamConfig, StreamKind


def make_stream(elem=64, n_elems=4096):
    return StreamConfig(
        sid=1,
        kind=StreamKind.INDIRECT,
        base=1 << 16,
        size=elem * n_elems,
        elem_size=elem,
    )


def zipf_elems(n, size, seed=0, s=1.2):
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n + 1, dtype=float)
    cdf = np.cumsum(ranks**-s)
    cdf /= cdf[-1]
    return np.searchsorted(cdf, rng.random(size)).astype(np.int64)


class TestSamplerParams:
    def test_paper_storage(self):
        """k=32 sets x c=64 capacities x 4 B = 8 kB per sampler."""
        params = SamplerParams()
        assert params.storage_bytes == 8 * 1024

    def test_capacities_geometric(self):
        caps = SamplerParams().capacities()
        assert caps[0] == 32 * 1024
        assert caps[-1] == 256 * 1024 * 1024
        assert len(caps) == 64


class TestSampleCurve:
    def params(self, k=64):
        return SamplerParams(
            sample_sets=k, capacity_points=8, min_capacity=1024, max_capacity=1 << 20
        )

    def test_misses_decrease_with_capacity_for_reuse(self):
        tags = zipf_elems(4096, 30_000)
        curve = sample_curve(tags, 64, self.params()).monotone()
        assert curve.misses[0] > curve.misses[-1]

    def test_streaming_trace_flat(self):
        """A pure scan has only compulsory misses at every capacity below
        its footprint."""
        tags = np.arange(20_000, dtype=np.int64)
        curve = sample_curve(tags, 64, self.params())
        assert curve.misses.min() > 0.8 * curve.misses.max()

    def test_scaling_matches_exact_roughly(self):
        """K/k set sampling approximates the full simulation (Sec V-A)."""
        stream = make_stream()
        elems = zipf_elems(4096, 40_000, seed=3)
        sampler = MissCurveSampler(stream, self.params(k=256))
        sampled = sampler.observe(elems)
        exact = sampler.exact_curve(elems)
        for cap in sampled.capacities[2:]:
            est, ref = sampled.misses_at(cap), exact.misses_at(cap)
            if ref > 500:
                assert abs(est - ref) / ref < 0.5

    def test_empty_trace(self):
        curve = sample_curve(np.empty(0, dtype=np.int64), 64, self.params())
        assert curve.misses.sum() == 0


class TestMissCurveSampler:
    def test_granularity_groups_elements(self):
        stream = make_stream(elem=4, n_elems=1024)
        sampler = MissCurveSampler(stream, SamplerParams(capacity_points=4, min_capacity=256, max_capacity=4096))
        sampler.set_granularity(64)
        tags = sampler._tags_of(np.array([0, 15, 16, 31, 32]))
        assert list(tags) == [0, 0, 1, 1, 2]

    def test_rejects_bad_granularity(self):
        stream = make_stream()
        sampler = MissCurveSampler(stream, SamplerParams())
        with pytest.raises(ValueError):
            sampler.set_granularity(0)

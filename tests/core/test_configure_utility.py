"""The paper's Section V-C numeric utility example, reproduced exactly.

"an existing replication group may contain 60 and 40 elements in units A
and B ... Its utility is thus 60 + 40 x k_AB = 96 for A and
40 + 60 x k_BA = 94 for B, in total 190.  We assume all attenuation
factors k are 0.9.  To extend the next 20-element space to a nearby unit
C, we calculate the utility of A as 60 + 40 x k_AB + 20 x k_AC = 114.
Similarly the utility of B is 112.  The utility of the extended group is
thus 226. ... we merge the replication group (A, B) with another
qualified replication group containing unit D with the same 100
elements.  After merging, only one copy of the 100 elements are
distributed to the three units in the new group, e.g., 30, 30, 40 for A,
B, D ... the total utility for this stream decreases from 290 to 280
(93 + 93 + 94)."
"""

import numpy as np
import pytest

from repro.core.configure import CacheConfigurator, Group

A, B, C, D = 0, 1, 2, 3


class FixedAttenuationTopology:
    """Stub topology: attenuation 0.9 between distinct units, 1.0 to self."""

    n_units = 4

    def __init__(self):
        self.latency_ns = np.where(np.eye(self.n_units, dtype=bool), 0.0, 5.0)

    def attenuation(self, src, dst):
        return 1.0 if src == dst else 0.9

    def nearest_units(self, src):
        order = np.argsort(self.latency_ns[src], kind="stable")
        return [int(u) for u in order]


@pytest.fixture()
def configurator():
    cfg = CacheConfigurator.__new__(CacheConfigurator)
    cfg.topology = FixedAttenuationTopology()
    cfg.n_units = 4
    cfg.rows_per_unit = 1000
    cfg.row_bytes = 1  # so rows == elements, matching the paper's counts
    cfg.affine_rows_cap = None
    cfg._acc_units = {0: [A, B, D]}
    cfg._acc_counts = {}
    cfg._streams = {}
    return cfg


class TestPaperExample:
    def test_base_group_utility_is_190(self, configurator):
        group = Group(0, {A: 60, B: 40})
        # A: 60 + 40*0.9 = 96; B: 40 + 60*0.9 = 94.
        assert configurator._utility(group) == pytest.approx(190.0)

    def test_extended_group_utility_is_226(self, configurator):
        # Unit C holds the extra 20 elements but does not access the
        # stream, so it contributes no utility of its own.
        group = Group(0, {A: 60, B: 40, C: 20})
        # A: 60 + 40*0.9 + 20*0.9 = 114; B: 112; C not an accessor.
        assert configurator._utility(group) == pytest.approx(226.0)

    def test_two_groups_total_290(self, configurator):
        ab = Group(0, {A: 60, B: 40})
        d = Group(0, {D: 100})
        total = configurator._utility(ab) + configurator._utility(d)
        assert total == pytest.approx(290.0)

    def test_merged_group_utility_is_280(self, configurator):
        # The paper's post-merge distribution: 30, 30, 40 on A, B, D.
        merged = Group(0, {A: 30, B: 30, D: 40})
        # A: 30 + (30+40)*0.9 = 93; B: 93; D: 40 + (30+30)*0.9 = 94.
        assert configurator._utility(merged) == pytest.approx(280.0)

"""Tests for the stream abstraction (Table I)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stream import (
    MAX_STREAMS,
    ORDER_PERMUTATIONS,
    StreamConfig,
    StreamKind,
    StreamTable,
    configure_stream,
)


def affine(sid=0, base=4096, size=4096, elem=4, **kw):
    return StreamConfig(
        sid=sid, kind=StreamKind.AFFINE, base=base, size=size, elem_size=elem, **kw
    )


class TestTableIValidation:
    def test_sid_fits_9_bits(self):
        with pytest.raises(ValueError):
            affine(sid=512)
        assert affine(sid=511).sid == 511

    def test_base_fits_48_bits(self):
        with pytest.raises(ValueError):
            affine(base=1 << 48)

    def test_size_must_divide_into_elements(self):
        with pytest.raises(ValueError):
            affine(size=100, elem=64)

    def test_positive_sizes(self):
        with pytest.raises(ValueError):
            affine(size=0)
        with pytest.raises(ValueError):
            affine(elem=0)

    def test_max_streams_is_512(self):
        assert MAX_STREAMS == 512

    def test_dims_product_must_match(self):
        with pytest.raises(ValueError):
            affine(size=4096, elem=4, dims=(100, 3))
        ok = affine(size=4096, elem=4, dims=(32, 32))
        assert ok.dims == (32, 32)

    def test_at_most_three_dims(self):
        with pytest.raises(ValueError):
            affine(size=4096, elem=4, dims=(2, 2, 2, 128))

    def test_order_only_for_affine(self):
        with pytest.raises(ValueError):
            StreamConfig(
                sid=0,
                kind=StreamKind.INDIRECT,
                base=0,
                size=64,
                elem_size=4,
                order=1,
            )

    def test_order_fits_3_bits(self):
        with pytest.raises(ValueError):
            affine(order=8)

    def test_metadata_bits_affine_larger(self):
        a = affine()
        i = StreamConfig(sid=1, kind=StreamKind.INDIRECT, base=1 << 20, size=64, elem_size=4)
        assert a.metadata_bits() > i.metadata_bits()
        # Affine adds 3 strides (48b), 2 lengths (48b), and the order field.
        assert a.metadata_bits() - i.metadata_bits() == 48 * 3 + 48 * 2 + 3


class TestElementIds:
    def test_linear_stream(self):
        s = affine()
        addrs = np.array([4096, 4100, 4096 + 4 * 100])
        assert list(s.element_ids(addrs)) == [0, 1, 100]

    def test_out_of_bounds_rejected(self):
        s = affine()
        with pytest.raises(ValueError):
            s.element_ids(np.array([0]))

    def test_order_zero_is_storage_order(self):
        s = affine(size=4096, elem=4, dims=(32, 32), order=0)
        addr = 4096 + 4 * (5 + 32 * 7)  # (x=5, y=7)
        assert s.element_ids(np.array([addr]))[0] == 5 + 32 * 7

    def test_column_major_reorder(self):
        """Permutation (1,0,2) (order=2) iterates the second dim innermost:
        column-major access over row-major storage."""
        s = affine(size=4096, elem=4, dims=(32, 32), order=2)
        addr = 4096 + 4 * (5 + 32 * 7)  # storage (x=5, y=7)
        # Access order: y innermost -> id = y + 32 * x.
        assert s.element_ids(np.array([addr]))[0] == 7 + 32 * 5

    def test_reorder_is_a_bijection(self):
        s = affine(size=4096, elem=4, dims=(16, 64), order=2)
        ids = s.element_ids(s.base + 4 * np.arange(s.n_elements))
        assert sorted(ids) == list(range(s.n_elements))

    @given(st.integers(min_value=0, max_value=len(ORDER_PERMUTATIONS) - 1))
    @settings(max_examples=len(ORDER_PERMUTATIONS))
    def test_addresses_of_inverts_element_ids(self, order):
        s = affine(size=4 * 8 * 4 * 2, elem=4, dims=(8, 4, 2), order=order)
        all_addrs = s.base + 4 * np.arange(s.n_elements)
        ids = s.element_ids(all_addrs)
        assert np.array_equal(s.addresses_of(ids), all_addrs)


class TestStreamTable:
    def test_resolve(self):
        table = StreamTable()
        a = configure_stream(table, "affine", base=4096, size=4096, elem_size=4)
        b = configure_stream(table, "indirect", base=16384, size=4096, elem_size=4)
        addrs = np.array([4096, 16384, 100, 8192 + 4095])
        assert list(table.resolve(addrs)) == [a.sid, b.sid, -1, -1]

    def test_overlap_rejected(self):
        table = StreamTable()
        configure_stream(table, "affine", base=4096, size=4096, elem_size=4)
        with pytest.raises(ValueError):
            configure_stream(table, "affine", base=8000, size=4096, elem_size=4)

    def test_duplicate_sid_rejected(self):
        table = StreamTable()
        configure_stream(table, "affine", base=4096, size=64, elem_size=4, sid=3)
        with pytest.raises(ValueError):
            configure_stream(table, "affine", base=1 << 20, size=64, elem_size=4, sid=3)

    def test_auto_sid_assignment(self):
        table = StreamTable()
        a = configure_stream(table, "affine", base=4096, size=64, elem_size=4)
        b = configure_stream(table, "affine", base=1 << 20, size=64, elem_size=4)
        assert a.sid != b.sid

    def test_resolve_empty_table(self):
        table = StreamTable()
        assert list(table.resolve(np.array([1, 2]))) == [-1, -1]

    def test_iteration_and_lookup(self):
        table = StreamTable()
        s = configure_stream(table, "affine", base=4096, size=64, elem_size=4, name="x")
        assert s.sid in table
        assert table.get(s.sid).name == "x"
        assert len(table) == 1

    def test_total_metadata_bits(self):
        table = StreamTable()
        configure_stream(table, "affine", base=4096, size=64, elem_size=4)
        assert table.total_metadata_bits() > 0

"""Tests for the stream lookahead buffer."""

import numpy as np
import pytest

from repro.core.slb import SLB_ENTRY_BYTES, StreamLookaheadBuffer


class TestSlb:
    def test_cold_miss_then_hits(self):
        slb = StreamLookaheadBuffer(entries=4, hit_ns=1.0, refill_ns=100.0)
        result = slb.process(np.array([7, 7, 7]))
        assert result.misses == 1
        assert result.hits == 2
        assert result.latency_ns[0] == pytest.approx(101.0)
        assert result.latency_ns[1] == pytest.approx(1.0)

    def test_state_persists_across_calls(self):
        slb = StreamLookaheadBuffer(entries=4)
        slb.process(np.array([1]))
        result = slb.process(np.array([1]))
        assert result.misses == 0

    def test_lru_eviction(self):
        slb = StreamLookaheadBuffer(entries=2)
        slb.process(np.array([1, 2, 3]))  # evicts 1
        result = slb.process(np.array([1]))
        assert result.misses == 1
        result = slb.process(np.array([3]))
        assert result.misses == 0

    def test_run_compression_only_first_of_run_misses(self):
        slb = StreamLookaheadBuffer(entries=1)
        result = slb.process(np.array([1, 1, 2, 2, 1, 1]))
        assert result.misses == 3

    def test_invalidate(self):
        slb = StreamLookaheadBuffer(entries=4)
        slb.process(np.array([1]))
        slb.invalidate()
        assert slb.process(np.array([1])).misses == 1

    def test_empty_sequence(self):
        slb = StreamLookaheadBuffer()
        result = slb.process(np.array([], dtype=np.int64))
        assert result.hits == 0
        assert result.misses == 0
        assert result.hit_rate == 0.0

    def test_paper_sram_cost(self):
        """32 entries at 142 B each = 4544 B (Section VI)."""
        slb = StreamLookaheadBuffer(entries=32)
        assert slb.sram_bytes == 4544
        assert SLB_ENTRY_BYTES == 142

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            StreamLookaheadBuffer(entries=0)

    def test_typical_workload_stays_resident(self):
        """Fewer streams than entries: only compulsory misses."""
        slb = StreamLookaheadBuffer(entries=32)
        rng = np.random.default_rng(1)
        sids = rng.integers(0, 16, size=5000)
        result = slb.process(sids)
        assert result.misses == 16

"""End-to-end tests for the NDPExt runtime policy."""

import pytest

from repro.core.runtime import NdpExtPolicy
from repro.sim import SimulationEngine
from repro.sim.params import tiny
from repro.workloads import TINY, build


@pytest.fixture(scope="module")
def config():
    return tiny()


@pytest.fixture(scope="module")
def workload():
    return build("pr", TINY)


class TestModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            NdpExtPolicy(mode="sometimes")

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            NdpExtPolicy(reconfig_interval=0)

    def test_names(self):
        assert NdpExtPolicy().name == "ndpext"
        assert NdpExtPolicy(mode="static").name == "ndpext-static"
        assert NdpExtPolicy(mode="partial").name == "ndpext-partial"

    def test_static_never_reconfigures(self, config, workload):
        report = SimulationEngine(config).run(workload, NdpExtPolicy(mode="static"))
        assert report.reconfig_invalidations == 0
        assert report.reconfig_movements == 0

    def test_runs_all_modes(self, config, workload):
        for mode in ("static", "partial", "full"):
            report = SimulationEngine(config).run(workload, NdpExtPolicy(mode=mode))
            assert report.runtime_cycles > 0
            assert report.hits.cache_hit_rate > 0


class TestDynamicBehavior:
    def test_profile_builds_curves(self, config, workload):
        from repro.sim.topology import Topology

        policy = NdpExtPolicy()
        policy.setup(config, Topology(config), workload)
        epoch = workload.trace.epochs(config.epoch_accesses)[0]
        policy.end_epoch(0, epoch, None)
        assert policy._curves
        assert policy._acc_units

    def test_reconfiguration_changes_allocation_under_skew(self, config):
        """recsys's skewed gathers should pull space toward hot streams."""
        workload = build("recsys", TINY)
        policy = NdpExtPolicy()
        report = SimulationEngine(config).run(workload, policy)
        rows = {
            s.name: policy.mapper.table.get_or_empty(s.sid).total_rows
            for s in workload.streams
        }
        assert report.runtime_cycles > 0
        assert any(r > 0 for r in rows.values())

    def test_fallback_curve_shape(self, config, workload):
        from repro.sim.topology import Topology

        policy = NdpExtPolicy()
        policy.setup(config, Topology(config), workload)
        sid = next(iter(policy._streams))
        curve = policy._fallback_curve(sid, accesses=1000)
        assert curve.misses[0] >= curve.misses[-1]
        assert curve.misses.max() <= 1000

    def test_hysteresis_blocks_noise_reconfigs(self, config, workload):
        """With an enormous gain threshold nothing ever reconfigures."""
        policy = NdpExtPolicy()
        policy.RECONFIG_GAIN_THRESHOLD = 1.0
        report = SimulationEngine(config).run(workload, policy)
        assert report.reconfig_invalidations == 0

    def test_full_not_slower_than_static_on_dynamic_workload(self, config):
        """The headline fig9(e) shape at tiny scale: full reconfiguration
        should never badly lose to static."""
        workload = build("recsys", TINY)
        engine = SimulationEngine(config)
        static = engine.run(workload, NdpExtPolicy(mode="static"))
        full = engine.run(workload, NdpExtPolicy(mode="full"))
        assert full.runtime_cycles <= static.runtime_cycles * 1.1

"""Unit tests for the runtime's internal cost model and scheduling."""

import numpy as np
import pytest

from repro.core.remap import StreamAllocation
from repro.core.runtime import NdpExtPolicy
from repro.sim.params import tiny
from repro.sim.topology import Topology
from repro.util.curves import MissCurve
from repro.workloads import TINY, build


@pytest.fixture()
def policy():
    config = tiny()
    policy = NdpExtPolicy()
    policy.setup(config, Topology(config), build("pr", TINY))
    return policy


def flat_curve(misses, caps=(1024, 4096, 16384)):
    return MissCurve(np.array(caps), np.array(misses, dtype=float))


class TestShouldReconfigure:
    def test_never_at_epoch_zero(self, policy):
        policy._curves = {0: flat_curve([10, 5, 1])}
        assert not policy._should_reconfigure(0)

    def test_never_without_curves(self, policy):
        assert not policy._should_reconfigure(3)

    def test_interval_gates(self):
        config = tiny()
        policy = NdpExtPolicy(reconfig_interval=2)
        policy.setup(config, Topology(config), build("pr", TINY))
        policy._curves = {0: flat_curve([10, 5, 1])}
        assert policy._should_reconfigure(2)
        assert not policy._should_reconfigure(3)

    def test_partial_stops_after_window(self):
        config = tiny()
        policy = NdpExtPolicy(mode="partial", partial_epochs=2)
        policy.setup(config, Topology(config), build("pr", TINY))
        policy._curves = {0: flat_curve([10, 5, 1])}
        assert policy._should_reconfigure(2)
        assert not policy._should_reconfigure(3)


class TestPredictedCost:
    def test_more_capacity_cheaper(self, policy):
        config = policy.config
        sid = next(iter(policy._streams))
        curve = flat_curve([1000, 100, 0])
        policy._epoch_access_totals = {sid: 1000}
        policy._acc_counts = {sid: {0: 1000}}
        policy._acc_units = {sid: [0]}
        small_alloc = StreamAllocation.single_group(
            sid, np.array([1, 0, 0, 0], dtype=np.int64)
        )
        big_alloc = StreamAllocation.single_group(
            sid, np.array([8, 0, 0, 0], dtype=np.int64)
        )
        curves = {sid: curve}
        assert policy._predicted_cost(curves, [big_alloc]) < policy._predicted_cost(
            curves, [small_alloc]
        )

    def test_remote_allocation_costlier_than_local(self, policy):
        sid = next(iter(policy._streams))
        curve = flat_curve([0, 0, 0])  # all hits: only distance matters
        policy._epoch_access_totals = {sid: 1000}
        policy._acc_counts = {sid: {0: 1000}}
        policy._acc_units = {sid: [0]}
        local = StreamAllocation.single_group(
            sid, np.array([4, 0, 0, 0], dtype=np.int64)
        )
        remote = StreamAllocation.single_group(
            sid, np.array([0, 0, 0, 4], dtype=np.int64)
        )
        curves = {sid: curve}
        assert policy._predicted_cost(curves, [local]) < policy._predicted_cost(
            curves, [remote]
        )

    def test_unknown_curve_ignored(self, policy):
        sid = next(iter(policy._streams))
        alloc = StreamAllocation.single_group(
            sid, np.array([1, 0, 0, 0], dtype=np.int64)
        )
        assert policy._predicted_cost({}, [alloc]) == 0.0


class TestMeanHitDistance:
    def test_local_consumer_zero_distance(self, policy):
        sid = next(iter(policy._streams))
        policy._acc_counts = {sid: {0: 100}}
        alloc = StreamAllocation.single_group(
            sid, np.array([4, 0, 0, 0], dtype=np.int64)
        )
        assert policy._mean_hit_distance_ns(alloc) == 0.0

    def test_remote_consumer_positive(self, policy):
        sid = next(iter(policy._streams))
        policy._acc_counts = {sid: {3: 100}}
        alloc = StreamAllocation.single_group(
            sid, np.array([4, 0, 0, 0], dtype=np.int64)
        )
        assert policy._mean_hit_distance_ns(alloc) > 0

    def test_empty_allocation_zero(self, policy):
        sid = next(iter(policy._streams))
        policy._acc_counts = {sid: {0: 100}}
        alloc = StreamAllocation.empty(sid, policy.config.n_units)
        assert policy._mean_hit_distance_ns(alloc) == 0.0


class TestFallbackCurve:
    def test_bounded_by_accesses(self, policy):
        sid = next(iter(policy._streams))
        curve = policy._fallback_curve(sid, accesses=500)
        assert curve.misses.max() <= 500
        assert curve.misses.min() >= 0

    def test_decreasing(self, policy):
        sid = next(iter(policy._streams))
        curve = policy._fallback_curve(sid, accesses=500)
        assert (np.diff(curve.misses) <= 1e-9).all()

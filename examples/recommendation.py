"""Recommendation inference: replication of hot embedding tables.

DLRM-style recommendation is the paper's best case (up to 2.43x over
Nexus): Zipf-skewed embedding gathers concentrate on hot rows that are
read-only and shared by every core — exactly what per-stream replication
exploits.  This example runs recsys under NDPExt with and without the
runtime's replication-capable configuration, and reports per-stream hit
rates and the interconnect latency the replicas save.

Run:  python examples/recommendation.py
"""

import numpy as np

from repro import sim, workloads
from repro.baselines import NexusPolicy
from repro.core import NdpExtPolicy
from repro.sim.engine import SimulationEngine
from repro.util import render_table


def per_stream_hit_rates(config, workload, policy):
    """Re-run the final epoch by hand to expose per-stream outcomes."""
    engine = SimulationEngine(config)
    engine.run(workload, policy)  # train the policy end to end
    epoch = workload.trace.epochs(config.epoch_accesses)[-1]
    post, _ = engine._l1_filter(epoch)
    outcome = policy.process(post)
    rates = {}
    for stream in workload.streams:
        mask = post.sid == stream.sid
        if mask.sum() >= 50:
            rates[stream.name] = float(outcome.hit[mask].mean())
    return rates


def main() -> None:
    config = sim.small()
    workload = workloads.build("recsys", workloads.SMALL)
    print(f"workload: {workload.summary()}\n")

    engine = sim.SimulationEngine(config)
    ndpext_policy = NdpExtPolicy()
    ndpext = engine.run(workload, ndpext_policy)
    nexus = engine.run(workload, NexusPolicy())

    print(f"NDPExt:  {ndpext.runtime_cycles:.0f} cycles, "
          f"hit {ndpext.hits.cache_hit_rate:.3f}, "
          f"interconnect {ndpext.avg_interconnect_ns:.1f} ns")
    print(f"Nexus:   {nexus.runtime_cycles:.0f} cycles, "
          f"hit {nexus.hits.cache_hit_rate:.3f}, "
          f"interconnect {nexus.avg_interconnect_ns:.1f} ns")
    print(f"speedup: {ndpext.speedup_over(nexus):.2f}x\n")

    # Where did the embedding tables land?
    rows = []
    row_bytes = config.ndp_dram.row_bytes
    for stream in list(workload.streams)[:12]:
        alloc = ndpext_policy.mapper.table.get_or_empty(stream.sid)
        rows.append(
            [
                stream.name,
                "yes" if stream.read_only else "no",
                f"{alloc.total_rows * row_bytes // 1024} kB",
                alloc.replication_degree(),
            ]
        )
    print(
        render_table(
            ["stream", "read-only", "capacity", "copies"],
            rows,
            title="Embedding-table placement under NDPExt (first process)",
        )
    )

    rates = per_stream_hit_rates(config, workload, NdpExtPolicy())
    emb = [v for k, v in rates.items() if "emb" in k]
    if emb:
        print(f"\nmean embedding-gather hit rate in the final epoch: "
              f"{np.mean(emb):.3f}")


if __name__ == "__main__":
    main()

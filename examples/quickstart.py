"""Quickstart: simulate one workload under NDPExt and a baseline.

Builds the scaled-down NDP-with-extended-memory system, generates the
PageRank workload with stream annotations, runs it under the full
NDPExt policy and under Nexus (the strongest NUCA baseline), and prints
the comparison the paper's Fig. 5 reports.

Run:  python examples/quickstart.py
"""

from repro import sim, workloads
from repro.baselines import NexusPolicy
from repro.core import NdpExtPolicy
from repro.util import render_table


def main() -> None:
    config = sim.small()
    print(f"system: {config.n_units} NDP units, "
          f"{config.total_cache_bytes // 1024} kB distributed cache, "
          f"CXL link {config.cxl.link_ns:.0f} ns")

    workload = workloads.build("pr", workloads.SMALL)
    print(f"workload: {workload.summary()}\n")

    engine = sim.SimulationEngine(config)
    ndpext = engine.run(workload, NdpExtPolicy())
    nexus = engine.run(workload, NexusPolicy())

    rows = []
    for report in (nexus, ndpext):
        rows.append(
            [
                report.policy,
                f"{report.runtime_cycles:.0f}",
                f"{report.hits.cache_hit_rate:.3f}",
                f"{report.avg_access_latency_ns:.1f}",
                f"{report.avg_interconnect_ns:.1f}",
                f"{report.energy.total_nj / 1e6:.2f}",
            ]
        )
    print(
        render_table(
            ["policy", "cycles", "hit rate", "avg latency ns", "interconnect ns", "energy mJ"],
            rows,
        )
    )
    print(f"\nNDPExt speedup over Nexus: {ndpext.speedup_over(nexus):.2f}x")


if __name__ == "__main__":
    main()

"""Capacity planning: how much NDP memory, how fast a CXL link?

The architecture question the paper's introduction poses: 3D-stacked NDP
memory is fast but small, CXL memory is large but slow — where is the
balance?  This example sweeps the per-unit NDP cache capacity and the
CXL link latency for a mixed workload set and prints the runtime
surface, so a system designer can see when extra stacks stop paying and
how much a faster link buys.

Run:  python examples/capacity_planning.py
"""

from dataclasses import replace

from repro import sim, workloads
from repro.core import NdpExtPolicy
from repro.util import geomean, render_table

MIX = ("pr", "recsys", "hotspot")
CAPACITY_FACTORS = (0.5, 1.0, 2.0, 4.0)
CXL_LATENCIES = (50.0, 200.0, 400.0)


def runtime_for(config, suite):
    engine = sim.SimulationEngine(config)
    return geomean(
        [engine.run(wl, NdpExtPolicy()).runtime_cycles for wl in suite]
    )


def main() -> None:
    base = sim.small()
    suite = [workloads.build(name, workloads.SMALL) for name in MIX]

    results = {}
    for factor in CAPACITY_FACTORS:
        for latency in CXL_LATENCIES:
            config = base.scaled(
                name=f"cap{factor}-cxl{int(latency)}",
                unit_cache_bytes=int(base.unit_cache_bytes * factor),
                cxl=replace(base.cxl, link_ns=latency),
            )
            results[(factor, latency)] = runtime_for(config, suite)

    baseline = results[(1.0, 200.0)]
    rows = []
    for factor in CAPACITY_FACTORS:
        row = [f"{factor:.1f}x"]
        for latency in CXL_LATENCIES:
            row.append(f"{baseline / results[(factor, latency)]:.2f}")
        rows.append(row)
    print(
        render_table(
            ["NDP capacity"] + [f"CXL {int(l)} ns" for l in CXL_LATENCIES],
            rows,
            title=(
                "Speedup vs the default design point (1.0x capacity, 200 ns "
                f"link) on {'/'.join(MIX)}"
            ),
        )
    )
    print(
        "\nreading the surface: the slower the CXL link, the more NDP\n"
        "capacity is worth — at 400 ns, halving the cache costs ~20%,\n"
        "while at 50 ns misses are nearly as cheap as remote hits and\n"
        "capacity barely matters. That interaction is the paper's sizing\n"
        "argument: modest NDP stacks suffice exactly when the extended\n"
        "memory link is fast, and capacity saturates once the hot working\n"
        "set fits (the 2x-4x rows)."
    )


if __name__ == "__main__":
    main()

"""Automatic stream annotation: running unannotated code on NDPExt.

The paper requires manual ``configure_stream`` hints; automatic
compiler-based annotation is deferred to future work.  This example
demonstrates the trace-level annotator shipped in
:mod:`repro.core.annotate`: it strips the manual annotations from a
workload, recovers streams from the raw address trace (region detection,
stride-vocabulary classification, element-size inference, read-only
inference), and compares NDPExt's performance on the manual vs the
recovered stream maps.

Run:  python examples/auto_annotation.py
"""

from repro import sim, workloads
from repro.core import NdpExtPolicy, annotate_workload, annotation_report, detect_streams
from repro.util import render_table


def main() -> None:
    config = sim.small()
    engine = sim.SimulationEngine(config)

    rows = []
    for name in ("pr", "hotspot", "recsys"):
        manual = workloads.build(name, workloads.SMALL)
        detected, regions = detect_streams(manual.trace)
        report = annotation_report(manual, detected)
        auto = annotate_workload(manual)

        manual_run = engine.run(manual, NdpExtPolicy())
        auto_run = engine.run(auto, NdpExtPolicy())
        rows.append(
            [
                name,
                manual.n_streams,
                len(detected),
                f"{report['coverage']:.2f}",
                f"{report['kind_accuracy']:.2f}",
                f"{manual_run.runtime_cycles / auto_run.runtime_cycles:.2f}",
            ]
        )
    print(
        render_table(
            [
                "workload",
                "manual streams",
                "detected",
                "coverage",
                "kind accuracy",
                "auto/manual perf",
            ],
            rows,
            title="Auto-annotation vs manual stream hints",
        )
    )
    print(
        "\nauto/manual perf ~1.0 means the recovered stream map delivers the\n"
        "same NDPExt performance as hand annotation — the compiler pass the\n"
        "paper defers to future work is feasible from traces alone."
    )


if __name__ == "__main__":
    main()

"""Graph analytics campaign: policy comparison and placement inspection.

Runs the GAP graph kernels (bfs, pr, cc) under every cache-management
policy, then opens up NDPExt's final stream remap table for PageRank to
show where each stream landed: capacity per stream, replication degree,
and which units hold it — the paper's Section V output, made visible.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro import sim, workloads
from repro.baselines import JigsawPolicy, NdpExtStaticPolicy, NexusPolicy, StaticNucaPolicy
from repro.core import NdpExtPolicy
from repro.util import render_table

KERNELS = ("bfs", "pr", "cc")


def compare_policies(config, kernels):
    engine = sim.SimulationEngine(config)
    policies = {
        "static-nuca": StaticNucaPolicy,
        "jigsaw": JigsawPolicy,
        "nexus": NexusPolicy,
        "ndpext-static": NdpExtStaticPolicy,
        "ndpext": NdpExtPolicy,
    }
    rows = []
    for kernel in kernels:
        workload = workloads.build(kernel, workloads.SMALL)
        baseline_cycles = None
        for name, factory in policies.items():
            report = engine.run(workload, factory())
            if baseline_cycles is None:
                baseline_cycles = report.runtime_cycles
            rows.append(
                [
                    kernel,
                    name,
                    f"{report.runtime_cycles:.0f}",
                    f"{baseline_cycles / report.runtime_cycles:.2f}",
                    f"{report.hits.cache_hit_rate:.3f}",
                    f"{report.avg_interconnect_ns:.1f}",
                ]
            )
    print(
        render_table(
            ["kernel", "policy", "cycles", "speedup vs static", "hit rate", "interconnect ns"],
            rows,
            title="Graph kernels across cache-management policies",
        )
    )


def inspect_placement(config):
    workload = workloads.build("pr", workloads.SMALL)
    policy = NdpExtPolicy()
    sim.SimulationEngine(config).run(workload, policy)

    rows = []
    row_bytes = config.ndp_dram.row_bytes
    for stream in workload.streams:
        alloc = policy.mapper.table.get_or_empty(stream.sid)
        if not alloc.is_allocated():
            continue
        units = [int(u) for u in np.flatnonzero(alloc.shares)]
        rows.append(
            [
                stream.name,
                stream.kind.value,
                f"{alloc.total_rows * row_bytes // 1024} kB",
                alloc.replication_degree(),
                ",".join(map(str, units[:8])) + ("..." if len(units) > 8 else ""),
            ]
        )
    print()
    print(
        render_table(
            ["stream", "kind", "capacity", "copies", "units"],
            rows,
            title="NDPExt final placement for PageRank (stream remap table)",
        )
    )


def main() -> None:
    config = sim.small()
    compare_policies(config, KERNELS)
    inspect_placement(config)


if __name__ == "__main__":
    main()

"""Benchmarks for the execution layer itself: cache round-trips and the
grouped L1 filter against the legacy per-core loop.

These complement the figure benchmarks: they time the infrastructure
(``repro.exec``) rather than the experiments that ride on it.
"""

import numpy as np
import pytest

from repro.core import NdpExtPolicy
from repro.exec.bench import _grouped_l1_filter, _legacy_l1_filter
from repro.exec.cache import ReportCache, cell_key
from repro.sim import SimulationEngine, small
from repro.workloads import SMALL, build


@pytest.fixture(scope="module")
def cell():
    config = small()
    workload = build("pr", SMALL)
    report = SimulationEngine(config).run(workload, NdpExtPolicy())
    return config, workload, report


def test_report_cache_round_trip(benchmark, tmp_path, cell):
    config, _workload, report = cell
    cache = ReportCache(tmp_path)
    key = cell_key("pr", "ndpext", config, SMALL)
    cache.put(key, report)

    result = benchmark(cache.get, key)
    assert result is not None
    assert result.runtime_cycles == report.runtime_cycles


def test_l1_filter_grouped(benchmark, cell):
    config, workload, _report = cell
    epochs = workload.trace.epochs(config.epoch_accesses)
    masks = benchmark(
        _grouped_l1_filter, epochs, config.core.l1d, SimulationEngine
    )
    assert sum(int(m.sum()) for m in masks) > 0


def test_l1_filter_legacy_loop(benchmark, cell):
    config, workload, _report = cell
    epochs = workload.trace.epochs(config.epoch_accesses)
    legacy = benchmark(_legacy_l1_filter, epochs, config.core.l1d)
    grouped = _grouped_l1_filter(epochs, config.core.l1d, SimulationEngine)
    for a, b in zip(legacy, grouped):
        assert np.array_equal(a, b)

"""Benchmark: Fig. 8 — NDP scale and CXL-latency sensitivity.

(a) The NDPExt-over-Nexus speedup across stack/unit configurations down
to a single unit.  Asserted shapes: NDPExt wins at every scale point,
and the single-unit win (stream abstraction only, paper 1.16x) is the
smallest of the sweep's maximum.

(b) The speedup across CXL link latencies.  Asserted shape: slower links
never shrink NDPExt's advantage (paper: 1.33x -> 1.50x from 50 to
400 ns).
"""

from conftest import once

from repro.experiments import fig8


def test_fig8a_scaling(benchmark, context):
    result = once(benchmark, fig8.run_scaling, context)
    assert all(x > 1.0 for x in result.values())
    # The single-unit case relies on the stream abstraction alone: it
    # should be the weakest (or near-weakest) speedup.
    assert result["single-unit"] <= max(result.values())


def test_fig8b_cxl_latency(benchmark, context):
    result = once(benchmark, fig8.run_cxl, context)
    latencies = sorted(result)
    assert all(result[l] > 1.0 for l in latencies)
    # Monotone-ish growth: the slowest link shows at least the advantage
    # of the fastest.
    assert result[latencies[-1]] >= result[latencies[0]] * 0.95

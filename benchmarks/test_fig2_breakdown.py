"""Benchmark: Fig. 2(a) — NDP vs NUCA latency breakdown under static
interleaving.

Regenerates the paper's motivating comparison and asserts its shape:
the NDP system's interconnect share and hit rate both exceed the
conventional NUCA chip's, while the NUCA chip spends more of its time in
next-level memory.
"""

from conftest import once

from repro.experiments import fig2


def test_fig2_breakdown(benchmark, context):
    result = once(benchmark, fig2.run, context)
    ndp, nuca = result["ndp"], result["nuca"]
    # Paper shape: NDP 70% vs NUCA 47% hit rate.
    assert ndp["hit_rate"] > nuca["hit_rate"]
    # Paper shape: NDP 32% vs NUCA 13% interconnect share.
    assert ndp["interconnect"] > nuca["interconnect"]
    # Paper shape: the NUCA chip leans far harder on next-level memory.
    assert nuca["next_level"] > ndp["next_level"]

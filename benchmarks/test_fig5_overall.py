"""Benchmark: Fig. 5 — overall performance vs baselines (HBM and HMC).

Regenerates the paper's headline table: speedups over the non-NDP host
for Jigsaw, Whirlpool, Nexus, NDPExt-static, and NDPExt across the full
13-workload suite.  Asserted shapes (absolute factors differ at reduced
scale — see EXPERIMENTS.md):

* NDPExt has the best suite geomean of every policy;
* NDPExt beats the second-best NUCA baseline by a clear factor
  (paper: 1.41x HBM / 1.48x HMC);
* NDPExt beats its static variant (paper: 1.2x);
* all NDP policies beat the host on geomean;
* the HMC-style system shows the same ordering.
"""

from conftest import once

from repro.experiments import fig5


def _check_shape(table):
    geo = table["geomean"]
    best_baseline = max(geo[p] for p in ("jigsaw", "whirlpool", "nexus"))
    assert geo["ndpext"] == max(geo.values())
    assert geo["ndpext"] / best_baseline > 1.2
    assert geo["ndpext"] / geo["ndpext-static"] > 1.05
    assert geo["ndpext"] > 1.0  # beats the host


def test_fig5a_hbm(benchmark, context):
    table = once(benchmark, fig5.run, context)
    _check_shape(table)
    # NDPExt wins on (almost) every individual workload.
    wins = sum(
        1
        for w, row in table.items()
        if w != "geomean" and row["ndpext"] >= max(row.values()) * 0.999
    )
    assert wins >= len(table) - 3


def test_fig5b_hmc(benchmark, context_hmc):
    table = once(benchmark, fig5.run, context_hmc)
    _check_shape(table)

"""Benchmark: Fig. 7 — interconnect latency and miss rate, NDPExt vs
Nexus (plus the Section VII-A metadata observation).

Asserted shapes: NDPExt's average interconnect latency does not exceed
Nexus's on the workload mean; its miss rate is lower on the affine-heavy
workloads (block prefetching); its metadata cost is a small fraction of
the baselines' (coarse stream metadata vs per-line metadata in DRAM).
"""

from conftest import once

from repro.experiments import fig7

AFFINE_HEAVY = ("hotspot", "pathfinder", "mv")


def test_fig7_latency_missrate(benchmark, context):
    result = once(benchmark, fig7.run, context)
    ic_nexus = sum(r["nexus_ic_ns"] for r in result.values())
    ic_ndpext = sum(r["ndpext_ic_ns"] for r in result.values())
    assert ic_ndpext <= ic_nexus * 1.05

    for name in AFFINE_HEAVY:
        assert result[name]["ndpext_miss"] < result[name]["nexus_miss"]

    # Metadata: stream-level metadata stays on-chip, per-line metadata
    # pays DRAM on misses (Sec VII-A).
    meta_nexus = sum(r["nexus_meta_ns"] for r in result.values())
    meta_ndpext = sum(r["ndpext_meta_ns"] for r in result.values())
    assert meta_ndpext < 0.5 * meta_nexus

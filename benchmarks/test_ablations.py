"""Ablation benchmarks for this reproduction's own design decisions.

DESIGN.md calls out the model-level mechanisms the reproduction adds on
top of the paper's algorithms; each gets an on/off comparison here so
their contribution is measurable rather than assumed:

* **warm-start persistence** — carrying cache contents across epoch
  boundaries (the scaled-down stand-in for the paper's epochs being long
  enough to amortize cold starts);
* **reconfiguration hysteresis** — installing a new configuration only
  on predicted gain (suppresses sampling-noise churn, which the paper's
  1000x-longer epochs suppress statistically);
* **adaptive per-stream block sizes** — the paper's Fig. 9(b) future
  work, implemented in this repo;
* **automatic stream annotation** — the paper's future-work compiler
  pass, implemented at trace level: performance on recovered streams
  should track hand annotation.
"""

from conftest import once

from repro.core import NdpExtPolicy, annotate_workload
from repro.sim import SimulationEngine
from repro.util import geomean

WORKLOADS = ("pr", "recsys", "hotspot")


def _runtimes(context, policy_factory, workloads=WORKLOADS, transform=None):
    engine = SimulationEngine(context.config)
    result = {}
    for name in workloads:
        workload = context.workload(name)
        if transform is not None:
            workload = transform(workload)
        result[name] = engine.run(workload, policy_factory()).runtime_cycles
    return result


def test_warm_start_ablation(benchmark, context):
    def run():
        warm = _runtimes(context, lambda: NdpExtPolicy())
        cold = _runtimes(context, lambda: NdpExtPolicy(warm_start=False))
        return {w: cold[w] / warm[w] for w in warm}

    gains = once(benchmark, run)
    # Cross-epoch persistence should never hurt and should clearly help
    # somewhere (hot data survives epoch boundaries).
    assert all(g > 0.95 for g in gains.values())
    assert max(gains.values()) > 1.05


def test_hysteresis_ablation(benchmark, context):
    def make_churny():
        policy = NdpExtPolicy()
        policy.RECONFIG_GAIN_THRESHOLD = -10.0  # always install
        return policy

    def run():
        guarded = _runtimes(context, lambda: NdpExtPolicy())
        churny = _runtimes(context, make_churny)
        return {w: churny[w] / guarded[w] for w in guarded}

    gains = once(benchmark, run)
    # The guard never hurts much and suppresses churn somewhere.
    assert all(g > 0.9 for g in gains.values())
    assert geomean(list(gains.values())) > 0.97


def test_adaptive_blocks_extension(benchmark, context):
    def run():
        fixed = _runtimes(context, lambda: NdpExtPolicy())
        adaptive = _runtimes(
            context, lambda: NdpExtPolicy(adaptive_blocks=True)
        )
        return {w: fixed[w] / adaptive[w] for w in fixed}

    gains = once(benchmark, run)
    # Adapting block sizes is safe (never a large loss) at this scale.
    assert all(g > 0.85 for g in gains.values())


def test_auto_annotation_extension(benchmark, context):
    def run():
        manual = _runtimes(context, lambda: NdpExtPolicy())
        auto = _runtimes(
            context, lambda: NdpExtPolicy(), transform=annotate_workload
        )
        return {w: manual[w] / auto[w] for w in manual}

    ratios = once(benchmark, run)
    # Recovered streams deliver hand-annotation-class performance.
    assert all(0.7 < r < 1.4 for r in ratios.values())

"""Benchmark: Fig. 4(b) — sampler-assignment (max-flow) host runtime.

Regenerates the runtime-vs-stream-count series.  The paper's absolute
number (<0.5 ms for 512 streams) reflects optimized native code; our pure
Python Edmonds-Karp is slower by a constant factor, so the asserted
shape is growth with stream count while remaining a negligible cost
against a 50M-cycle (25 ms) epoch.
"""

from conftest import once

from repro.experiments import fig4b


def test_fig4b_assignment(benchmark):
    result = once(benchmark, fig4b.run, 64)
    times = [result[n]["ms"] for n in sorted(result)]
    # Grows with stream count...
    assert times[-1] > times[0]
    # ...and stays far below one epoch (25 ms at 2 GHz / 50M cycles).
    assert times[-1] < 25.0 * 20
    # Coverage is bounded by total sampler capacity (64 units x 4).
    assert result[512]["covered"] == 256
    assert result[256]["covered"] == 256

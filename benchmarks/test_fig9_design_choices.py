"""Benchmark: Fig. 9 — the six design-choice sweeps.

Asserted shapes per panel:
(a) direct-mapped indirect caching loses little to 64-way;
(b) the 1 kB affine block is within a few percent of the best size;
(c) the affine-space restriction costs little vs unlimited;
(d) performance is insensitive to the sampler set count;
(e) full reconfiguration >= partial >= static is the dominant pattern;
(f) longer reconfiguration intervals do not help.
"""

from conftest import once

from repro.experiments import fig9


def test_fig9a_associativity(benchmark, context):
    result = once(benchmark, fig9.run_associativity, context)
    # Higher associativity helps at most modestly (paper: minor gains,
    # 10-20% only for graph workloads at 64-way).
    assert max(result.values()) < 1.35
    assert result["default"] == 1.0


def test_fig9b_block_size(benchmark, context):
    result = once(benchmark, fig9.run_block_size, context)
    # 1 kB is within 10% of the best block size.
    assert 1.0 >= min(result.values()) > 0.5
    assert max(result.values()) < 1.10 / min(1.0, result["default"]) + 0.2


def test_fig9c_affine_space(benchmark, context):
    result = once(benchmark, fig9.run_affine_space, context)
    # Unlimited affine space gains only a little over the default cap
    # (paper: ~2%).
    assert result["unlimited"] < 1.15
    # Halving the cap costs little; quartering may start to hurt.
    assert result["half"] > 0.85


def test_fig9d_sampler_sets(benchmark, context):
    result = once(benchmark, fig9.run_sampler_sets, context)
    # Insensitive across the sweep (within ~15%).
    assert max(result.values()) / min(result.values()) < 1.2


def test_fig9e_reconfig_method(benchmark, context):
    result = once(benchmark, fig9.run_reconfig_method, context)
    for wname, row in result.items():
        # Full reconfiguration is never beaten badly by partial/static.
        # (On fully stationary traces freezing after warmup can edge out
        # continued reconfiguration — see EXPERIMENTS.md.)
        assert row["full"] >= row["partial"] * 0.85
        assert row["full"] >= row["static"] * 0.90
    # It clearly beats no-reconfiguration on the dynamic workloads...
    assert any(row["full"] > 1.1 * row["static"] for row in result.values())
    # ...and beats partial where the behaviour changes late (backprop's
    # write phase).
    assert any(row["full"] > row["partial"] for row in result.values())


def test_fig9f_reconfig_interval(benchmark, context):
    result = once(benchmark, fig9.run_reconfig_interval, context)
    # Longer intervals never help by more than noise.
    assert all(v < 1.08 for k, v in result.items() if k != "default")

"""Shared fixtures for the benchmark harness.

All figure benchmarks share one :class:`ExperimentContext` per preset so
simulation cells (workload, policy) are computed once per session — the
paper's figures reuse the same underlying runs.
"""

import pytest

from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    """Benchmarks must time real simulations, not a warm user cache.

    Each session gets a fresh private cache directory: cold on entry
    (numbers are comparable across commits), still exercising the cache
    write path, and leaving nothing behind in ``~/.cache``.
    """
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE_DIR", str(cache_dir))
    yield
    mp.undo()


@pytest.fixture(scope="session")
def context():
    """The small HBM-style system, the default for every figure."""
    return ExperimentContext(preset="small")


@pytest.fixture(scope="session")
def context_hmc():
    """The HMC-style variant for Fig. 5(b)."""
    return ExperimentContext(preset="small-hmc")


def once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

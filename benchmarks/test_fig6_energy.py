"""Benchmark: Fig. 6 — energy breakdown, NDPExt vs Nexus.

Regenerates the normalized per-component energy table.  Asserted shapes:
NDPExt uses less total energy than Nexus on the suite average (paper:
-40.3%), and the static component shrinks with the shorter runtime.
"""

from conftest import once

from repro.experiments import fig6


def test_fig6_energy(benchmark, context):
    result = once(benchmark, fig6.run, context)
    totals = [row["ndpext_total"] for row in result.values()]
    mean_total = sum(totals) / len(totals)
    # NDPExt saves energy on average (Nexus total is normalized to 1).
    assert mean_total < 0.95
    # Static energy follows execution time: lower for NDPExt on most
    # workloads.
    static_wins = sum(
        1
        for row in result.values()
        if row["ndpext"]["static_nj"] <= row["nexus"]["static_nj"] * 1.01
    )
    assert static_wins >= len(result) - 2

"""Benchmark: Section V-D — consistent hashing vs bulk invalidation.

Asserted shapes: consistent hashing preserves cached entries across
reconfigurations (movements > 0), reduces total invalidation traffic
versus plain rehashing (paper: -9.4%), and never slows execution
(paper: +3.7%).
"""

from conftest import once

from repro.experiments import sec5d
from repro.util import geomean


def test_sec5d_consistent_hashing(benchmark, context):
    result = once(benchmark, sec5d.run, context)
    reconfiguring = {
        w: r for w, r in result.items() if r["bulk_invalidations"] > 0
    }
    assert reconfiguring, "expected at least one workload to reconfigure"
    fewer = sum(
        1
        for r in reconfiguring.values()
        if r["consistent_invalidations"] <= r["bulk_invalidations"]
    )
    assert fewer >= len(reconfiguring) - 1
    assert any(r["preserved"] > 0 for r in reconfiguring.values())
    speedup = geomean([r["speedup"] for r in result.values()])
    assert speedup > 0.97  # never meaningfully slower

"""Edmonds–Karp maximum flow, implemented from scratch.

Section V-B of the paper assigns hardware miss-curve samplers to streams by
solving a max-flow problem on a bipartite graph (units -> streams) with the
Edmonds–Karp algorithm [19].  This module provides that solver as a small,
dependency-free graph substrate.

The graph is a directed flow network with integer capacities.  Parallel
edges are merged (capacities add).  :meth:`FlowNetwork.max_flow` returns
the maximum flow value; per-edge flows are then available through
:meth:`FlowNetwork.flow_on`.
"""

from __future__ import annotations

from collections import deque


class FlowNetwork:
    """Directed flow network with integer capacities."""

    def __init__(self) -> None:
        # Adjacency: node -> {neighbor: residual capacity}.
        self._residual: dict[int, dict[int, int]] = {}
        self._capacity: dict[tuple[int, int], int] = {}

    def add_node(self, node: int) -> None:
        self._residual.setdefault(node, {})

    def add_edge(self, src: int, dst: int, capacity: int) -> None:
        """Add a directed edge; repeated edges accumulate capacity."""
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        if src == dst:
            raise ValueError("self-loops are not allowed in a flow network")
        self.add_node(src)
        self.add_node(dst)
        self._residual[src][dst] = self._residual[src].get(dst, 0) + capacity
        self._residual[dst].setdefault(src, 0)
        self._capacity[(src, dst)] = self._capacity.get((src, dst), 0) + capacity

    @property
    def nodes(self) -> list[int]:
        return list(self._residual)

    def capacity_of(self, src: int, dst: int) -> int:
        return self._capacity.get((src, dst), 0)

    def _bfs_augmenting_path(self, source: int, sink: int) -> list[int] | None:
        """Shortest (fewest-edge) path with positive residual capacity."""
        parents: dict[int, int] = {source: source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor, residual in self._residual[node].items():
                if residual > 0 and neighbor not in parents:
                    parents[neighbor] = node
                    if neighbor == sink:
                        path = [sink]
                        while path[-1] != source:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    queue.append(neighbor)
        return None

    def max_flow(self, source: int, sink: int) -> int:
        """Run Edmonds–Karp and return the maximum flow from source to sink.

        Residual capacities are updated in place, so :meth:`flow_on` reflects
        the computed flow afterwards.  Calling ``max_flow`` again continues
        from the current residual state (and therefore returns 0).
        """
        if source not in self._residual or sink not in self._residual:
            raise KeyError("source and sink must be nodes of the network")
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0
        while True:
            path = self._bfs_augmenting_path(source, sink)
            if path is None:
                return total
            bottleneck = min(
                self._residual[u][v] for u, v in zip(path, path[1:])
            )
            for u, v in zip(path, path[1:]):
                self._residual[u][v] -= bottleneck
                self._residual[v][u] += bottleneck
            total += bottleneck

    def flow_on(self, src: int, dst: int) -> int:
        """Flow routed through edge (src, dst) after :meth:`max_flow`."""
        capacity = self._capacity.get((src, dst), 0)
        residual = self._residual.get(src, {}).get(dst, 0)
        return max(0, capacity - residual)


def solve_bipartite_assignment(
    left_capacity: dict[int, int],
    right_nodes: list[int],
    edges: list[tuple[int, int]],
) -> dict[int, int]:
    """Assign each right node to at most one left node via max-flow.

    This is the paper's sampler-assignment formulation: ``left_capacity``
    maps each NDP unit to its sampler count (S=4), ``right_nodes`` are the
    stream ids, and ``edges`` are (unit, stream) pairs meaning the unit
    accessed the stream this epoch.  Returns ``{stream: unit}`` for every
    stream that got covered; uncovered streams are absent.
    """
    if not right_nodes:
        return {}
    # Node numbering: source=0, sink=1, left nodes offset by 2, right nodes
    # offset past the left block.
    left_ids = {node: 2 + i for i, node in enumerate(sorted(left_capacity))}
    offset = 2 + len(left_ids)
    right_ids = {node: offset + i for i, node in enumerate(sorted(set(right_nodes)))}

    network = FlowNetwork()
    source, sink = 0, 1
    for node, cap in left_capacity.items():
        network.add_edge(source, left_ids[node], cap)
    for node in right_ids:
        network.add_edge(right_ids[node], sink, 1)
    for left, right in set(edges):
        if left not in left_ids or right not in right_ids:
            raise KeyError(f"edge ({left}, {right}) references unknown node")
        network.add_edge(left_ids[left], right_ids[right], 1)

    network.max_flow(source, sink)

    assignment: dict[int, int] = {}
    for (left, right) in set(edges):
        if network.flow_on(left_ids[left], right_ids[right]) > 0:
            assignment[right] = left
    return assignment

"""Dependency-free utilities: hashing, max-flow, miss curves, tables."""

from repro.util.curves import (
    LookaheadState,
    MissCurve,
    SlopeSegment,
    geometric_capacities,
)
from repro.util.hashing import (
    bucket,
    bucket_array,
    mix64,
    mix64_array,
    weighted_bucket,
    weighted_bucket_array,
)
from repro.util.maxflow import FlowNetwork, solve_bipartite_assignment
from repro.util.tables import format_value, geomean, render_table

__all__ = [
    "LookaheadState",
    "MissCurve",
    "SlopeSegment",
    "geometric_capacities",
    "bucket",
    "bucket_array",
    "mix64",
    "mix64_array",
    "weighted_bucket",
    "weighted_bucket_array",
    "FlowNetwork",
    "solve_bipartite_assignment",
    "format_value",
    "geomean",
    "render_table",
]

"""Miss-curve containers and the lookahead slope primitive.

A *miss curve* maps cache capacity to the number of misses a stream would
incur at that capacity.  The paper's samplers (Section V-A) measure the
curve at 64 geometrically spaced capacities; the configuration algorithm
(Section V-C) repeatedly asks for the *steepest slope segment* — the
capacity increment that removes the most misses per byte — which is the
core primitive of the lookahead allocation family [6], [63].
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def geometric_capacities(lo: int, hi: int, points: int) -> np.ndarray:
    """Geometrically spaced capacities from ``lo`` to ``hi`` inclusive.

    Mirrors the paper's sampler spacing: 64 points from 32 kB to 256 MB
    gives a per-step multiplicative factor of 1.16 = (256M/32k)^(1/63).
    """
    if points < 2:
        raise ValueError(f"need at least 2 points, got {points}")
    if not 0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    caps = np.geomspace(lo, hi, points)
    return np.unique(np.round(caps).astype(np.int64))


@dataclass
class MissCurve:
    """Misses as a function of capacity for one stream.

    ``capacities`` must be strictly increasing; ``misses`` must be the
    miss *count* observed at each capacity (non-increasing curves are the
    common case, but set-sampled curves can be mildly non-monotonic and we
    accept them as measured).
    """

    capacities: np.ndarray
    misses: np.ndarray

    def __post_init__(self) -> None:
        self.capacities = np.asarray(self.capacities, dtype=np.int64)
        self.misses = np.asarray(self.misses, dtype=np.float64)
        if self.capacities.ndim != 1 or self.capacities.shape != self.misses.shape:
            raise ValueError("capacities and misses must be matching 1-D arrays")
        if len(self.capacities) < 1:
            raise ValueError("a miss curve needs at least one point")
        if np.any(np.diff(self.capacities) <= 0):
            raise ValueError("capacities must be strictly increasing")
        if np.any(self.misses < 0):
            raise ValueError("miss counts cannot be negative")

    def misses_at(self, capacity: float) -> float:
        """Linearly interpolated miss count at ``capacity``.

        Below the first measured point the curve is clamped to the first
        value; beyond the last point it is clamped to the last value
        (capacity beyond the measured range cannot add misses).
        """
        return float(np.interp(capacity, self.capacities, self.misses))

    def monotone(self) -> "MissCurve":
        """Return a copy with misses made non-increasing (running minimum).

        Set sampling lacks the stack property, so measured curves can
        wiggle upward; the configuration algorithm wants the convexified
        utility, for which a monotone curve is the first step.
        """
        return MissCurve(self.capacities, np.minimum.accumulate(self.misses))

    def scaled(self, factor: float) -> "MissCurve":
        """Scale miss counts by ``factor`` (the paper's K/k set scaling)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return MissCurve(self.capacities, self.misses * factor)


@dataclass
class SlopeSegment:
    """One candidate allocation step: spend ``size`` bytes, save ``gain`` misses."""

    stream_id: int
    start_capacity: int
    end_capacity: int
    gain: float

    @property
    def size(self) -> int:
        return self.end_capacity - self.start_capacity

    @property
    def slope(self) -> float:
        """Misses saved per byte — the lookahead utility density."""
        return self.gain / self.size if self.size > 0 else 0.0


@dataclass
class LookaheadState:
    """Tracks per-stream allocated capacity during lookahead allocation."""

    curves: dict[int, MissCurve]
    allocated: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for sid in self.curves:
            self.allocated.setdefault(sid, 0)

    def next_steepest_segment(
        self, exclude: set[int] | None = None
    ) -> SlopeSegment | None:
        """The paper's ``NextSteepestSlopeSeg``: across all streams, find the
        capacity extension with maximum misses-saved-per-byte from the
        stream's current allocation.  Returns None when no stream can save
        any further misses.  Streams in ``exclude`` are skipped (the
        configurator uses this for streams that can no longer get space).
        """
        best: SlopeSegment | None = None
        best_slope = -np.inf
        for sid, curve in self.curves.items():
            if exclude and sid in exclude:
                continue
            current = self.allocated[sid]
            current_misses = curve.misses_at(current)
            # Consider extending to each measured capacity beyond current.
            # One vector pass per curve: candidate slopes for every
            # measured point past the allocation, first-max selection
            # (argmax) matching the strict > of the scalar loop it
            # replaced, so ties keep resolving to the earliest capacity.
            caps = curve.capacities
            gains = current_misses - curve.misses
            candidate = (caps > current) & (gains > 0)
            if not candidate.any():
                continue
            cand_caps = caps[candidate]
            cand_gains = gains[candidate]
            slopes = cand_gains / (cand_caps - current).astype(np.float64)
            j = int(np.argmax(slopes))
            if float(slopes[j]) > best_slope:
                best = SlopeSegment(
                    sid, current, int(cand_caps[j]), float(cand_gains[j])
                )
                best_slope = float(slopes[j])
        return best

    def commit(self, segment: SlopeSegment) -> None:
        if segment.start_capacity != self.allocated[segment.stream_id]:
            raise ValueError("segment does not extend the current allocation")
        self.allocated[segment.stream_id] = segment.end_capacity

"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module renders them in aligned monospace columns so
the output is directly readable in a terminal or a log file.
"""

from __future__ import annotations

import math
from typing import Any, Sequence


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    text_rows = [[format_value(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(header), *(len(row[i]) for row in text_rows)) if text_rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, the paper's aggregate for speedups."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))

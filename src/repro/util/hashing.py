"""Deterministic integer hashing used throughout the simulator.

The hardware in the paper uses hash functions to spread stream elements
across the cache space of a replication group (Section IV-B) and to pick
the DRAM set for indirect streams (Section IV-C).  The simulator needs the
same property — a cheap, well-mixing, *stateless* map from an integer key
to a bucket — so that every component (stream cache, samplers, consistent
hashing) agrees on where an element lives.

We use the finalizer from SplitMix64, a standard 64-bit avalanche mix.
All helpers are pure functions of their arguments so results are stable
across runs and processes (no reliance on Python's randomized ``hash``).
"""

from __future__ import annotations

import numpy as np

_MASK64 = (1 << 64) - 1

# SplitMix64 finalizer constants.
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15


def mix64(key: int) -> int:
    """Avalanche-mix a 64-bit integer key (SplitMix64 finalizer)."""
    z = (key + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def bucket(key: int, buckets: int, salt: int = 0) -> int:
    """Map ``key`` to one of ``buckets`` slots, uniformly.

    ``salt`` decorrelates independent uses of the same key space (e.g. the
    unit-selection hash vs. the row-selection hash for the same element).
    """
    if buckets <= 0:
        raise ValueError(f"buckets must be positive, got {buckets}")
    if salt:
        key ^= mix64(salt)
    return mix64(key) % buckets


def mix64_array(keys: np.ndarray, salt: int = 0) -> np.ndarray:
    """Vectorised :func:`mix64` over a uint64 array."""
    z = keys.astype(np.uint64, copy=True)
    if salt:
        z ^= np.uint64(mix64(salt))
    z += np.uint64(_GOLDEN)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
    return z ^ (z >> np.uint64(31))


def bucket_array(keys: np.ndarray, buckets: int, salt: int = 0) -> np.ndarray:
    """Vectorised :func:`bucket`: map each key to one of ``buckets`` slots."""
    if buckets <= 0:
        raise ValueError(f"buckets must be positive, got {buckets}")
    return (mix64_array(keys, salt) % np.uint64(buckets)).astype(np.int64)


def weighted_bucket(key: int, weights: list[int], salt: int = 0) -> int:
    """Pick a bucket with probability proportional to integer ``weights``.

    Used to spread stream elements across the units of a replication group
    in proportion to each unit's allocated share (RShares).  Buckets with
    zero weight are never selected.
    """
    total = sum(weights)
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    point = bucket(key, total, salt)
    for index, weight in enumerate(weights):
        if point < weight:
            return index
        point -= weight
    raise AssertionError("unreachable: point exceeded total weight")


def weighted_bucket_array(
    keys: np.ndarray, weights: np.ndarray, salt: int = 0
) -> np.ndarray:
    """Vectorised :func:`weighted_bucket` over a key array."""
    weights = np.asarray(weights, dtype=np.int64)
    total = int(weights.sum())
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    points = (mix64_array(keys, salt) % np.uint64(total)).astype(np.int64)
    boundaries = np.cumsum(weights)
    return np.searchsorted(boundaries, points, side="right")

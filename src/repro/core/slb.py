"""Stream lookahead buffer (SLB): per-unit metadata cache (Section IV-C).

Each NDP unit holds a 32-entry SLB caching one simplified remap-table
entry per stream (4.6 kB of SRAM).  A post-L1 request first matches its
address against the SLB's TCAM ranges; a hit costs a cycle-scale lookup,
a miss costs a host round trip to refill the entry from the full remap
table — rare, because few workloads touch more than 32 streams per unit.

The simulator replays the per-unit *stream-id sequence* through an exact
LRU of 32 entries.  Consecutive accesses to the same stream are collapsed
first (they can't change LRU state), which keeps the Python-level loop
proportional to stream *transitions*, not accesses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

# Simplified SLB entry: stream config fields + this unit's group shares +
# one RRowBase item.  4544 B / 32 entries = 142 bytes per entry (paper).
SLB_ENTRY_BYTES = 142


@dataclass
class SlbResult:
    """Per-access metadata latency plus hit statistics for one unit."""

    latency_ns: np.ndarray
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class StreamLookaheadBuffer:
    """Exact LRU over stream entries, replayed per epoch."""

    def __init__(self, entries: int = 32, hit_ns: float = 1.0, refill_ns: float = 300.0):
        if entries < 1:
            raise ValueError("SLB needs at least one entry")
        self.entries = entries
        self.hit_ns = hit_ns
        self.refill_ns = refill_ns
        self._resident: OrderedDict[int, None] = OrderedDict()

    def invalidate(self) -> None:
        """Drop all entries (remap-table reconfiguration)."""
        self._resident.clear()

    def process(self, sids: np.ndarray) -> SlbResult:
        """Replay a unit's stream-id sequence; returns per-access latency."""
        sids = np.asarray(sids, dtype=np.int64)
        n = len(sids)
        latency = np.full(n, self.hit_ns)
        if n == 0:
            return SlbResult(latency_ns=latency, hits=0, misses=0)

        # Run-length compress: only the first access of each run can miss.
        change = np.empty(n, dtype=bool)
        change[0] = True
        change[1:] = sids[1:] != sids[:-1]
        run_starts = np.flatnonzero(change)
        run_sids = sids[run_starts]

        misses = 0
        miss_positions = []
        resident = self._resident
        for pos, sid in zip(run_starts, run_sids):
            key = int(sid)
            if key in resident:
                resident.move_to_end(key)
            else:
                misses += 1
                miss_positions.append(pos)
                resident[key] = None
                if len(resident) > self.entries:
                    resident.popitem(last=False)
        if miss_positions:
            latency[np.array(miss_positions)] += self.refill_ns
        return SlbResult(latency_ns=latency, hits=n - misses, misses=misses)

    @property
    def sram_bytes(self) -> int:
        """SRAM cost of this SLB (paper: 4544 bytes for 32 entries)."""
        return self.entries * SLB_ENTRY_BYTES

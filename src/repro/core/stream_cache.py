"""The stream cache: NDPExt's hardware caching scheme (Section IV).

This module implements the full request path of Fig. 3: a post-L1 request
looks up the local SLB to identify its stream and replication group, is
hashed (or consistent-hashed) to the unit/row of the group that caches its
element, and is then served by the affine tag array (SRAM tags over 1 kB
blocks) or by the direct-mapped in-DRAM-tag layout for indirect streams.

The mapper also carries the cache *contents* across epochs: at each
reconfiguration it keeps the resident (location, tag) pairs, and requests
in the next epoch whose first touch finds its tag still resident at the
same physical location are served as warm hits.  Under plain hashing a
resized stream reshuffles nearly everything (bulk invalidation); under
consistent hashing most pairs stay put — exactly the Section V-D effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ata import AffineTagArray
from repro.core.consistent import ConsistentRing, spots_of_group
from repro.core.remap import NO_GROUP, RemapTable, StreamAllocation
from repro.core.slb import StreamLookaheadBuffer
from repro.core.stream import StreamConfig, StreamTable
from repro.sim.cachesim import _prev_in_group, set_assoc_hits
from repro.sim.engine import ReconfigStats, RequestOutcome
from repro.sim.params import SystemConfig
from repro.sim.topology import Topology
from repro.util.hashing import bucket_array, mix64_array, weighted_bucket_array

# Minimum DRAM transfer: one burst.
BURST_BYTES = 64

# Latency charged when a write hits a replicated read-only stream: the
# exception traps to the host, which updates the remap table and sends
# invalidates (Section IV-B).  Happens at most once per stream.
WRITE_EXCEPTION_NS = 1000.0

_SET_SID_SHIFT = 45
_SET_UNIT_SHIFT = 33
_SET_UNIT_MASK = (1 << 12) - 1
_SET_IDX_MASK = (1 << 33) - 1


def pack_set_id(sid: np.ndarray, unit: np.ndarray, set_idx: np.ndarray) -> np.ndarray:
    """Physical set identity: (stream, unit, set index within the stream's
    allocation in that unit).  Stable across epochs for unchanged shares."""
    return (
        (np.asarray(sid, dtype=np.int64) << _SET_SID_SHIFT)
        | (np.asarray(unit, dtype=np.int64) << _SET_UNIT_SHIFT)
        | np.asarray(set_idx, dtype=np.int64)
    )


def unpack_unit(set_ids: np.ndarray) -> np.ndarray:
    return (np.asarray(set_ids, dtype=np.int64) >> _SET_UNIT_SHIFT) & _SET_UNIT_MASK


def unpack_set_idx(set_ids: np.ndarray) -> np.ndarray:
    return np.asarray(set_ids, dtype=np.int64) & _SET_IDX_MASK


def _pair_keys(set_ids: np.ndarray, tags: np.ndarray) -> np.ndarray:
    """Collision-resistant key for a (set, tag) pair (membership tests)."""
    return mix64_array(
        np.asarray(set_ids, dtype=np.uint64) ^ mix64_array(np.asarray(tags, dtype=np.uint64)),
        salt=29,
    ).astype(np.int64)


@dataclass
class GroupMapping:
    """Precomputed mapping state for one replication group of one stream."""

    gid: int
    units: np.ndarray  # units with rows, ascending
    shares: np.ndarray  # rows per unit (parallel to units)
    row_base: np.ndarray  # starting row per unit (parallel to units)
    sets_per_unit: np.ndarray  # cache sets per unit for this stream
    ring: ConsistentRing | None = None

    @property
    def total_sets(self) -> int:
        return int(self.sets_per_unit.sum())


@dataclass
class StreamMapping:
    """Everything needed to map one stream's requests to cache locations."""

    stream: StreamConfig
    granularity: int  # caching granularity: block for affine, element for indirect
    entries_per_row: int
    ways: int
    groups: list[GroupMapping] = field(default_factory=list)
    group_of_unit: np.ndarray | None = None  # unit -> index into groups (or -1)

    @property
    def allocated(self) -> bool:
        return any(g.total_sets > 0 for g in self.groups)


@dataclass
class ResidentState:
    """Cache contents at the end of an epoch, per stream."""

    set_ids: np.ndarray
    tags: np.ndarray

    def pair_keys(self) -> np.ndarray:
        return np.sort(_pair_keys(self.set_ids, self.tags))


class StreamCacheMapper:
    """Maps requests to cache locations and simulates hits/misses."""

    def __init__(
        self,
        config: SystemConfig,
        topology: Topology,
        streams: StreamTable,
        placement: str = "consistent",
        indirect_ways: int | None = None,
        affine_block_bytes: int | None = None,
        affine_ways: int = 4,
        warm_start: bool = True,
    ) -> None:
        if placement not in ("hash", "consistent"):
            raise ValueError(f"unknown placement mode {placement!r}")
        # Ablation knob: disable cross-epoch content persistence entirely
        # (every epoch starts cold, as if every boundary bulk-invalidated).
        self.warm_start = warm_start
        self.config = config
        self.topology = topology
        self.streams = streams
        self.placement = placement
        self.row_bytes = config.ndp_dram.row_bytes
        self.indirect_ways = (
            indirect_ways if indirect_ways is not None else config.stream.indirect_ways
        )
        self.affine_ways = affine_ways
        self.ata = AffineTagArray(
            block_bytes=affine_block_bytes or config.stream.affine_block_bytes,
            space_bytes=config.stream.affine_space_bytes,
        )
        self.slbs = [
            StreamLookaheadBuffer(
                entries=config.stream.slb_entries,
                hit_ns=config.stream.slb_hit_ns,
                refill_ns=config.stream.slb_refill_ns,
            )
            for _ in range(config.n_units)
        ]
        self._mappings: dict[int, StreamMapping] = {}
        self._resident: dict[int, ResidentState] = {}
        self._write_excepted: set[int] = set()
        self._block_override: dict[int, int] = {}
        self.table = RemapTable(config.n_units, config.rows_per_unit)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def granularity_of(self, stream: StreamConfig) -> int:
        if stream.is_affine:
            block = self._block_override.get(stream.sid, self.ata.block_bytes)
            return max(block, stream.elem_size)
        # Indirect elements are cached individually (tag with data), but
        # never below the DRAM burst size: fetching a 4 B element moves a
        # full burst anyway, so the burst is the natural caching unit.
        return max(stream.elem_size, BURST_BYTES)

    def set_block_override(self, sid: int, block_bytes: int) -> bool:
        """Per-stream affine block size (the paper's "reconfigurable block
        sizes" future work).  Changing a stream's block size reinterprets
        its tags, so its cached contents are dropped.  Returns True if the
        size actually changed."""
        if block_bytes <= 0 or block_bytes & (block_bytes - 1):
            raise ValueError("block size must be a positive power of two")
        current = self._block_override.get(sid, self.ata.block_bytes)
        if block_bytes == current:
            return False
        self._block_override[sid] = block_bytes
        self._resident.pop(sid, None)
        stream = self.streams.get(sid) if sid in self.streams else None
        if stream is not None and sid in self._mappings:
            self._mappings[sid] = self._build_mapping(
                stream, self.table.get_or_empty(sid)
            )
        return True

    def _build_mapping(self, stream: StreamConfig, alloc: StreamAllocation) -> StreamMapping:
        granularity = self.granularity_of(stream)
        entries_per_row = max(1, self.row_bytes // granularity)
        ways = self.affine_ways if stream.is_affine else self.indirect_ways
        # A unit granted fewer entries than the associativity still forms
        # one (narrower) set — small allocations must stay usable.
        min_entries = int(
            min(
                (
                    alloc.shares[u] * entries_per_row
                    for u in range(len(alloc.shares))
                    if alloc.shares[u] > 0
                ),
                default=ways,
            )
        )
        ways = max(1, min(ways, min_entries))
        mapping = StreamMapping(
            stream=stream,
            granularity=granularity,
            entries_per_row=entries_per_row,
            ways=ways,
        )
        n_units = self.config.n_units
        group_of_unit = np.full(n_units, -1, dtype=np.int64)
        for g_index, gid in enumerate(alloc.group_ids):
            unit_sel = np.flatnonzero(alloc.groups == gid)
            shares = alloc.shares[unit_sel]
            row_base = alloc.row_base[unit_sel]
            entries = shares * entries_per_row
            sets_per_unit = np.maximum(entries // max(1, ways), 0)
            ring = None
            if self.placement == "consistent":
                spots = spots_of_group(unit_sel, shares)
                if spots:
                    ring = ConsistentRing(spots, salt=stream.sid)
            mapping.groups.append(
                GroupMapping(
                    gid=gid,
                    units=unit_sel,
                    shares=shares,
                    row_base=row_base,
                    sets_per_unit=sets_per_unit,
                    ring=ring,
                )
            )
            group_of_unit[unit_sel] = g_index
        # Units outside every group are served by the nearest group.
        if mapping.groups:
            for unit in np.flatnonzero(group_of_unit == -1):
                best = min(
                    range(len(mapping.groups)),
                    key=lambda gi: self.topology.mean_latency_from(
                        int(unit), [int(u) for u in mapping.groups[gi].units]
                    ),
                )
                group_of_unit[unit] = best
        mapping.group_of_unit = group_of_unit
        return mapping

    def apply(self, allocations: list[StreamAllocation]) -> ReconfigStats:
        """Install a new configuration; returns movement/invalidation stats."""
        self.table.set_all(allocations)
        stats = ReconfigStats()
        new_mappings: dict[int, StreamMapping] = {}
        for stream in self.streams:
            alloc = self.table.get_or_empty(stream.sid)
            new_mappings[stream.sid] = self._build_mapping(stream, alloc)
        for sid, resident in list(self._resident.items()):
            old = self._mappings.get(sid)
            new = new_mappings.get(sid)
            if old is None or new is None:
                stats.invalidations += len(resident.set_ids)
                del self._resident[sid]
                continue
            if self._same_layout(old, new):
                continue  # everything stays put
            preserved = self._still_resident(resident, new)
            kept = int(preserved.sum())
            dropped = len(preserved) - kept
            stats.invalidations += dropped
            stats.movements += kept
            self._resident[sid] = ResidentState(
                set_ids=resident.set_ids[preserved], tags=resident.tags[preserved]
            )
        self._mappings = new_mappings
        for slb in self.slbs:
            slb.invalidate()
        return stats

    @staticmethod
    def _same_layout(old: StreamMapping, new: StreamMapping) -> bool:
        if len(old.groups) != len(new.groups):
            return False
        for a, b in zip(old.groups, new.groups):
            if not (
                np.array_equal(a.units, b.units)
                and np.array_equal(a.shares, b.shares)
                and np.array_equal(a.row_base, b.row_base)
            ):
                return False
        return True

    def _still_resident(
        self, resident: ResidentState, new: StreamMapping
    ) -> np.ndarray:
        """Which resident (set, tag) pairs remain valid under ``new``.

        A pair survives iff the new mapping sends its tag to the same
        physical set.  Under consistent hashing the ring keeps most tags
        on their old (unit, row); under plain hashing a resize remaps
        nearly all of them — the Section V-D contrast.
        """
        if not new.allocated:
            return np.zeros(len(resident.set_ids), dtype=bool)
        old_units = unpack_unit(resident.set_ids)
        # Remap each resident tag within the new group that contains (or
        # is nearest to) its old unit.
        group_idx = new.group_of_unit[old_units]
        new_sets = np.full(len(resident.tags), -1, dtype=np.int64)
        for gi in np.unique(group_idx):
            sel = group_idx == gi
            group = new.groups[int(gi)]
            if group.total_sets == 0:
                continue
            new_sets[sel] = self._map_to_sets(new, group, resident.tags[sel])
        return new_sets == resident.set_ids

    # ------------------------------------------------------------------
    # Request mapping
    # ------------------------------------------------------------------

    def _map_to_sets(
        self, mapping: StreamMapping, group: GroupMapping, tags: np.ndarray
    ) -> np.ndarray:
        """Map tags to packed physical set ids within one group."""
        tags = np.asarray(tags, dtype=np.int64)
        sid = mapping.stream.sid
        if group.ring is not None:
            spot = group.ring.lookup(tags)
            units = group.ring.units_of(spot)
            rows = group.ring.rows_of(spot)
            sets_in_row = max(1, mapping.entries_per_row // max(1, mapping.ways))
            col = bucket_array(tags.astype(np.uint64), sets_in_row, salt=sid * 7 + 3)
            set_idx = rows * sets_in_row + col
            return pack_set_id(np.full_like(tags, sid), units, set_idx)
        # Plain hashing: unit proportional to shares, then set within unit.
        unit_choice = weighted_bucket_array(
            tags.astype(np.uint64), group.shares, salt=sid * 13 + 1
        )
        units = group.units[unit_choice]
        sets_per_unit = group.sets_per_unit[unit_choice]
        sets_per_unit = np.maximum(sets_per_unit, 1)
        set_idx = (
            mix64_array(tags.astype(np.uint64), salt=sid * 31 + 5)
            % sets_per_unit.astype(np.uint64)
        ).astype(np.int64)
        return pack_set_id(np.full_like(tags, sid), units, set_idx)

    def _local_rows(self, mapping: StreamMapping, group: GroupMapping, set_ids: np.ndarray) -> np.ndarray:
        """Physical DRAM row (unit-local) of each set."""
        units = unpack_unit(set_ids)
        set_idx = unpack_set_idx(set_ids)
        sets_in_row = max(1, mapping.entries_per_row // max(1, mapping.ways))
        row_in_alloc = set_idx // sets_in_row
        # Translate via the group's row base for each unit.
        base = np.zeros(len(set_ids), dtype=np.int64)
        for unit, row_base in zip(group.units, group.row_base):
            base[units == unit] = row_base
        return base + row_in_alloc

    # ------------------------------------------------------------------
    # Epoch processing
    # ------------------------------------------------------------------

    def process(self, epoch) -> RequestOutcome:
        n = len(epoch)
        serving_unit = np.full(n, -1, dtype=np.int64)
        local_row = np.full(n, -1, dtype=np.int64)
        hit = np.zeros(n, dtype=bool)
        probe = np.zeros(n, dtype=bool)
        metadata_ns = np.zeros(n, dtype=np.float64)
        req_unit = epoch.core.astype(np.int64) % self.config.n_units

        # --- SLB lookups, per unit (exact LRU over stream transitions). ---
        for unit in np.unique(req_unit):
            sel = req_unit == unit
            result = self.slbs[int(unit)].process(epoch.sid[sel])
            metadata_ns[sel] = result.latency_ns

        # --- Write exceptions: replicated read-only stream gets written. ---
        extra_exception_ns = self._handle_write_exceptions(epoch, metadata_ns)
        metadata_ns += extra_exception_ns

        set_ids = np.full(n, -1, dtype=np.int64)
        tags = np.full(n, -1, dtype=np.int64)
        ways = np.ones(n, dtype=np.int64)

        for sid in np.unique(epoch.sid):
            if sid < 0:
                continue  # bypass: not a stream element
            mapping = self._mappings.get(int(sid))
            if mapping is None or not mapping.allocated:
                continue  # no cache space: stream goes to extended memory
            mask = epoch.sid == sid
            stream = mapping.stream
            elems = stream.element_ids(epoch.addr[mask])
            elems_per_tag = max(1, mapping.granularity // stream.elem_size)
            stream_tags = elems // elems_per_tag
            group_idx = mapping.group_of_unit[req_unit[mask]]
            sid_sets = np.full(int(mask.sum()), -1, dtype=np.int64)
            sid_rows = np.full(int(mask.sum()), -1, dtype=np.int64)
            sid_units = np.full(int(mask.sum()), -1, dtype=np.int64)
            for gi in np.unique(group_idx):
                group = mapping.groups[int(gi)]
                gsel = group_idx == gi
                if group.total_sets == 0:
                    continue
                gsets = self._map_to_sets(mapping, group, stream_tags[gsel])
                sid_sets[gsel] = gsets
                sid_rows[gsel] = self._local_rows(mapping, group, gsets)
                sid_units[gsel] = unpack_unit(gsets)
            placed = sid_sets >= 0
            idx = np.flatnonzero(mask)
            set_ids[idx[placed]] = sid_sets[placed]
            tags[idx[placed]] = stream_tags[placed]
            local_row[idx[placed]] = sid_rows[placed]
            serving_unit[idx[placed]] = sid_units[placed]
            ways[idx[placed]] = mapping.ways
            probe[idx[placed]] = not stream.is_affine

        cached = set_ids >= 0

        # --- Hit/miss simulation, split by associativity. ---
        for w in np.unique(ways[cached]):
            wsel = cached & (ways == w)
            hit[wsel] = set_assoc_hits(set_ids[wsel], tags[wsel], int(w))

        # --- Warm-start rescue from the previous epoch's contents. ---
        rescued = self._rescue(epoch, set_ids, tags, cached, hit)

        # --- Indirect streams probe DRAM even on a miss (in-DRAM tags). ---
        probe = probe & cached & ~hit

        self._record_resident(epoch, set_ids, tags, cached, ways)

        return RequestOutcome(
            hit=hit,
            serving_unit=serving_unit,
            local_row=local_row,
            miss_probe_dram=probe,
            metadata_ns=metadata_ns,
            metadata_dram_accesses=0,
            rescued_first_touches=rescued,
        )

    @property
    def write_excepted(self) -> set[int]:
        """Streams demoted from read-only by the write exception."""
        return set(self._write_excepted)

    def _handle_write_exceptions(self, epoch, metadata_ns: np.ndarray) -> np.ndarray:
        extra = np.zeros(len(epoch), dtype=np.float64)
        written = np.unique(epoch.sid[epoch.write & (epoch.sid >= 0)])
        for sid in written:
            sid = int(sid)
            if sid in self._write_excepted:
                continue
            mapping = self._mappings.get(sid)
            if mapping is None:
                continue
            stream = mapping.stream
            if not stream.read_only:
                continue
            # Tracked per-mapper (not written into the shared StreamConfig,
            # which outlives this run): the configurator is told via
            # ``write_excepted`` to stop replicating the stream.
            self._write_excepted.add(sid)
            if len(mapping.groups) > 1:
                # Collapse to a single copy: invalidate the replicas and
                # charge the exception on the first write.
                self._resident.pop(sid, None)
                self._collapse_groups(mapping)
            first_write = int(
                np.flatnonzero(epoch.write & (epoch.sid == sid))[0]
            )
            extra[first_write] += WRITE_EXCEPTION_NS
        return extra

    def _collapse_groups(self, mapping: StreamMapping) -> None:
        """Merge all replication groups into one (single coherent copy)."""
        units = np.concatenate([g.units for g in mapping.groups])
        shares = np.concatenate([g.shares for g in mapping.groups])
        row_base = np.concatenate([g.row_base for g in mapping.groups])
        order = np.argsort(units, kind="stable")
        entries_per_row = mapping.entries_per_row
        merged = GroupMapping(
            gid=0,
            units=units[order],
            shares=shares[order],
            row_base=row_base[order],
            sets_per_unit=np.maximum(
                shares[order] * entries_per_row // max(1, mapping.ways), 0
            ),
            ring=(
                ConsistentRing(
                    spots_of_group(units[order], shares[order]),
                    salt=mapping.stream.sid,
                )
                if self.placement == "consistent" and shares.sum() > 0
                else None
            ),
        )
        mapping.groups = [merged]
        mapping.group_of_unit = np.zeros(self.config.n_units, dtype=np.int64)

    def _rescue(
        self,
        epoch,
        set_ids: np.ndarray,
        tags: np.ndarray,
        cached: np.ndarray,
        hit: np.ndarray,
    ) -> int:
        """Convert first-touch misses whose tag is still resident at the
        same physical set into warm hits."""
        rescued_total = 0
        if not self.warm_start or not self._resident:
            return 0
        pair = _pair_keys(set_ids, tags)
        prev_idx, _ = _prev_in_group(pair, pair)
        first_touch = cached & (prev_idx < 0) & ~hit
        if not first_touch.any():
            return 0
        for sid in np.unique(epoch.sid[first_touch]):
            resident = self._resident.get(int(sid))
            if resident is None or len(resident.set_ids) == 0:
                continue
            sel = first_touch & (epoch.sid == sid)
            keys = pair[sel]
            resident_keys = resident.pair_keys()
            pos = np.searchsorted(resident_keys, keys)
            pos = np.clip(pos, 0, len(resident_keys) - 1)
            found = resident_keys[pos] == keys
            hit_idx = np.flatnonzero(sel)[found]
            hit[hit_idx] = True
            rescued_total += len(hit_idx)
        return rescued_total

    def _record_resident(
        self,
        epoch,
        set_ids: np.ndarray,
        tags: np.ndarray,
        cached: np.ndarray,
        ways: np.ndarray,
    ) -> None:
        """Remember what each stream's sets hold at the end of this epoch.

        For each set we keep the last ``ways`` distinct tags touched —
        exactly the contents for a direct-mapped cache, and the recency
        approximation used by :func:`set_assoc_hits` for W > 1.
        """
        if not cached.any():
            return
        sids = epoch.sid[cached]
        c_sets = set_ids[cached]
        c_tags = tags[cached]
        c_ways = ways[cached]
        seq = np.arange(len(c_sets), dtype=np.int64)
        # Last occurrence of each (set, tag) pair; stable argsort is the
        # radix-sorted equivalent of lexsort((seq, pair)).
        pair = _pair_keys(c_sets, c_tags)
        order = np.argsort(pair, kind="stable")
        last_of_pair = np.ones(len(order), dtype=bool)
        last_of_pair[:-1] = pair[order][1:] != pair[order][:-1]
        keep = order[last_of_pair]
        k_sets, k_tags, k_seq = c_sets[keep], c_tags[keep], seq[keep]
        k_sids, k_ways = sids[keep], c_ways[keep]
        # Rank pairs within each set by recency; keep rank < ways.
        order2 = np.lexsort((-k_seq, k_sets))
        s_sets = k_sets[order2]
        new_set = np.ones(len(order2), dtype=bool)
        new_set[1:] = s_sets[1:] != s_sets[:-1]
        rank = np.arange(len(order2)) - np.maximum.accumulate(
            np.where(new_set, np.arange(len(order2)), 0)
        )
        resident_mask = rank < k_ways[order2]
        r_idx = order2[resident_mask]
        for sid in np.unique(k_sids[r_idx]):
            ssel = k_sids[r_idx] == sid
            self._resident[int(sid)] = ResidentState(
                set_ids=k_sets[r_idx][ssel], tags=k_tags[r_idx][ssel]
            )

    # ------------------------------------------------------------------
    # Graceful degradation (fault handling)
    # ------------------------------------------------------------------

    def _degraded_allocations(
        self, adjust
    ) -> list[StreamAllocation]:
        """Rebuild every stream's allocation with ``adjust(sid, shares)``
        applied; units that lose all rows leave their replication group."""
        allocations = []
        for stream in self.streams:
            alloc = self.table.get_or_empty(stream.sid)
            shares = alloc.shares.copy()
            adjust(stream.sid, shares)
            groups = np.where(shares > 0, alloc.groups, NO_GROUP)
            allocations.append(
                StreamAllocation(
                    sid=stream.sid,
                    shares=shares,
                    groups=groups,
                    row_base=np.zeros_like(shares),
                )
            )
        return allocations

    def evict_units(self, units: list[int]) -> ReconfigStats:
        """Remove failed units from every stream's allocation.

        The dead units' spots leave the consistent-hash rings, so tags
        cached on surviving units mostly stay put (the Section V-D
        minimal-movement property, now used for recovery); the lines the
        failed units held are counted as invalidations.
        """
        dead = [int(u) for u in units]
        for unit in dead:
            self.table.disable_unit(unit)

        def drop_dead(sid: int, shares: np.ndarray) -> None:
            shares[dead] = 0

        return self.apply(self._degraded_allocations(drop_dead))

    def quarantine_row(self, unit: int, row: int) -> ReconfigStats:
        """Retire one bad DRAM row of one unit.

        The stream whose allocation covers the absolute ``row`` gives up
        one row there (its ring loses one spot); the unit's capacity
        shrinks so future configurations never reuse the bad row.
        """
        unit, row = int(unit), int(row)
        victim = None
        for sid in self.table.sids:
            alloc = self.table.get(sid)
            base = int(alloc.row_base[unit])
            share = int(alloc.shares[unit])
            if share > 0 and base <= row < base + share:
                victim = sid
                break
        self.table.reduce_capacity(unit, 1)
        if victim is None:
            return ReconfigStats()

        def shrink_victim(sid: int, shares: np.ndarray) -> None:
            if sid == victim:
                shares[unit] -= 1

        return self.apply(self._degraded_allocations(shrink_victim))

    def notify_resize(self, sid: int) -> int:
        """Handle a stream reallocation (Section IV-C oversubscription).

        The host updates the stream configuration and invalidates the
        stream's cached data; untouched (over-allocated) space was never
        cached, so only the previously resident entries are dropped.
        Returns the number of invalidated entries.
        """
        resident = self._resident.pop(sid, None)
        stream = self.streams.get(sid)
        if sid in self._mappings:
            self._mappings[sid] = self._build_mapping(
                stream, self.table.get_or_empty(sid)
            )
        for slb in self.slbs:
            slb.invalidate()
        return len(resident.set_ids) if resident is not None else 0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def sram_bytes_per_unit(self) -> int:
        """On-chip SRAM added per NDP unit (Section VI accounting)."""
        sampler_bytes = (
            self.config.stream.samplers_per_unit
            * self.config.stream.sampler_sets
            * self.config.stream.sampler_points
            * 4
        )
        bitvector_bytes = self.config.stream.max_streams // 8
        return (
            self.slbs[0].sram_bytes
            + self.ata.sram_bytes
            + sampler_bytes
            + bitvector_bytes
        )

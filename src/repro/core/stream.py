"""Software-defined streams: the paper's Table I metadata and stream API.

A stream describes one data structure's address range and expected access
pattern (Section II-C).  NDPExt distinguishes *affine* streams — addresses
follow an affine function of up to three loop indices, optionally accessed
in a different dimension order than stored — and *indirect* streams, whose
addresses are data-dependent (``addr = s[i]``).

Streams are configured with :func:`configure_stream` after allocation and
before access, mirroring the paper's API::

    configure_stream(type, base, size, elemSize, [stride, length, order])

The hardware-facing metadata widths (9-bit sid, 48-bit base/size, ...) are
enforced so the model honours Table I's storage accounting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum

import numpy as np


class StreamKind(Enum):
    AFFINE = "affine"
    INDIRECT = "indirect"


# Table I field widths (bits).
SID_BITS = 9
BASE_BITS = 48
SIZE_BITS = 48
ELEM_SIZE_BITS = 16
ORDER_BITS = 3
MAX_STREAMS = 1 << SID_BITS
MAX_DIMS = 3

# The 3-bit `order` argument encodes one of the 6 permutations of up to
# three dimensions; index into this table (paper: "The order is given in
# the 3-bit order argument").
ORDER_PERMUTATIONS: tuple[tuple[int, ...], ...] = tuple(
    itertools.permutations(range(MAX_DIMS))
)


def _check_width(name: str, value: int, bits: int) -> None:
    if not 0 <= value < (1 << bits):
        raise ValueError(f"{name}={value} does not fit in {bits} bits (Table I)")


@dataclass
class StreamConfig:
    """One stream's metadata (Table I).

    ``dims`` is the element count along each dimension (innermost first);
    a plain 1-D stream leaves ``dims`` empty and spans ``size // elem_size``
    elements.  ``order`` selects the access-order permutation of the
    dimensions; 0 is storage order.
    """

    sid: int
    kind: StreamKind
    base: int
    size: int
    elem_size: int
    read_only: bool = True
    dims: tuple[int, ...] = ()
    order: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        _check_width("sid", self.sid, SID_BITS)
        _check_width("base", self.base, BASE_BITS)
        _check_width("size", self.size, SIZE_BITS)
        if self.elem_size <= 0:
            raise ValueError("elem_size must be positive")
        _check_width("elem_size", self.elem_size, ELEM_SIZE_BITS)
        if self.size <= 0:
            raise ValueError("size must be positive")
        if self.size % self.elem_size != 0:
            raise ValueError("size must be a whole number of elements")
        _check_width("order", self.order, ORDER_BITS)
        if len(self.dims) > MAX_DIMS:
            raise ValueError(f"at most {MAX_DIMS} dimensions are supported")
        if self.dims:
            n = 1
            for d in self.dims:
                if d <= 0:
                    raise ValueError("dimension lengths must be positive")
                n *= d
            if n != self.size // self.elem_size:
                raise ValueError(
                    "product of dims must equal the stream's element count"
                )
        if self.order != 0 and self.kind is not StreamKind.AFFINE:
            raise ValueError("only affine streams support access reordering")
        if self.order >= len(ORDER_PERMUTATIONS):
            raise ValueError(f"order must be < {len(ORDER_PERMUTATIONS)}")
        if not self.name:
            self.name = f"stream{self.sid}"

    @property
    def n_elements(self) -> int:
        return self.size // self.elem_size

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def is_affine(self) -> bool:
        return self.kind is StreamKind.AFFINE

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def _storage_dims(self) -> tuple[int, ...]:
        return self.dims if self.dims else (self.n_elements,)

    def element_ids(self, addrs: np.ndarray) -> np.ndarray:
        """Map byte addresses to element IDs *in access order*.

        For ``order == 0`` the element ID is simply the storage index.
        For reordered affine streams the hardware caches elements in their
        access order (Section III/IV: "the hardware would cache the
        elements following their access order"), so the element ID is the
        position in the permuted iteration — this is what gives reordered
        column-major scans their spatial locality in the cache.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        storage_idx = (addrs - self.base) // self.elem_size
        if np.any((storage_idx < 0) | (storage_idx >= self.n_elements)):
            raise ValueError("address outside stream bounds")
        if self.order == 0 or len(self._storage_dims()) == 1:
            return storage_idx
        return self._permuted_index(storage_idx)

    def _permuted_index(self, storage_idx: np.ndarray) -> np.ndarray:
        """Storage index -> access-order index under the order permutation."""
        dims = list(self._storage_dims())
        while len(dims) < MAX_DIMS:
            dims.append(1)
        perm = ORDER_PERMUTATIONS[self.order]
        # Storage coordinates (innermost dimension first).
        coords = []
        rest = storage_idx
        for d in dims:
            coords.append(rest % d)
            rest = rest // d
        # Access order iterates perm[0] innermost.
        access_idx = np.zeros_like(storage_idx)
        multiplier = 1
        for axis in perm:
            access_idx += coords[axis] * multiplier
            multiplier *= dims[axis]
        return access_idx

    def addresses_of(self, element_ids: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`element_ids` (used by tests and generators)."""
        element_ids = np.asarray(element_ids, dtype=np.int64)
        if self.order == 0 or len(self._storage_dims()) == 1:
            storage_idx = element_ids
        else:
            dims = list(self._storage_dims())
            while len(dims) < MAX_DIMS:
                dims.append(1)
            perm = ORDER_PERMUTATIONS[self.order]
            coords_by_axis: dict[int, np.ndarray] = {}
            rest = element_ids
            for axis in perm:
                coords_by_axis[axis] = rest % dims[axis]
                rest = rest // dims[axis]
            storage_idx = np.zeros_like(element_ids)
            multiplier = 1
            for axis in range(MAX_DIMS):
                storage_idx += coords_by_axis[axis] * multiplier
                multiplier *= dims[axis]
        return self.base + storage_idx * self.elem_size

    def metadata_bits(self) -> int:
        """Table I storage cost of this stream's metadata entry."""
        common = SID_BITS + BASE_BITS + SIZE_BITS + ELEM_SIZE_BITS + 1
        if self.is_affine:
            return common + 48 * 3 + 48 * 2 + ORDER_BITS
        return common


class StreamTable:
    """The set of configured streams, with vectorised address resolution.

    Mirrors the host-side stream configuration store: streams occupy
    disjoint address ranges (the paper associates one address with at most
    one stream), and lookup maps an address to its stream id or -1.
    """

    def __init__(self) -> None:
        self._streams: dict[int, StreamConfig] = {}
        self._sorted_bases: np.ndarray | None = None
        self._sorted_ends: np.ndarray | None = None
        self._sorted_sids: np.ndarray | None = None

    def configure(self, stream: StreamConfig) -> StreamConfig:
        if stream.sid in self._streams:
            raise ValueError(f"stream id {stream.sid} already configured")
        if len(self._streams) >= MAX_STREAMS:
            raise ValueError(f"at most {MAX_STREAMS} streams are supported")
        for other in self._streams.values():
            if stream.base < other.end and other.base < stream.end:
                raise ValueError(
                    f"stream {stream.sid} overlaps stream {other.sid}; one "
                    "address may belong to at most one stream"
                )
        self._streams[stream.sid] = stream
        self._sorted_bases = None
        return stream

    def __len__(self) -> int:
        return len(self._streams)

    def __iter__(self):
        return iter(self._streams.values())

    def __contains__(self, sid: int) -> bool:
        return sid in self._streams

    def get(self, sid: int) -> StreamConfig:
        return self._streams[sid]

    @property
    def sids(self) -> list[int]:
        return sorted(self._streams)

    def _build_index(self) -> None:
        streams = sorted(self._streams.values(), key=lambda s: s.base)
        self._sorted_bases = np.array([s.base for s in streams], dtype=np.int64)
        self._sorted_ends = np.array([s.end for s in streams], dtype=np.int64)
        self._sorted_sids = np.array([s.sid for s in streams], dtype=np.int64)

    def resize(self, sid: int, new_size: int) -> StreamConfig:
        """Grow or shrink a stream in place (Section IV-C oversubscription).

        Dynamic data structures over-allocate and update their stream
        configuration on reallocation; the caller must invalidate the
        stream's cached data afterwards (see
        ``StreamCacheMapper.notify_resize``).  The resized range must not
        collide with any other stream.
        """
        stream = self._streams[sid]
        if new_size <= 0 or new_size % stream.elem_size != 0:
            raise ValueError("new size must be a positive element multiple")
        _check_width("size", new_size, SIZE_BITS)
        if stream.dims:
            raise ValueError("multi-dimensional streams cannot be resized")
        new_end = stream.base + new_size
        for other in self._streams.values():
            if other.sid == sid:
                continue
            if stream.base < other.end and other.base < new_end:
                raise ValueError(
                    f"resizing stream {sid} would overlap stream {other.sid}"
                )
        stream.size = new_size
        self._sorted_bases = None
        return stream

    def resolve(self, addrs: np.ndarray) -> np.ndarray:
        """Map addresses to stream ids; -1 for addresses in no stream."""
        if self._sorted_bases is None:
            self._build_index()
        addrs = np.asarray(addrs, dtype=np.int64)
        if len(self._streams) == 0:
            return np.full(len(addrs), -1, dtype=np.int64)
        pos = np.searchsorted(self._sorted_bases, addrs, side="right") - 1
        valid = pos >= 0
        pos_clip = np.clip(pos, 0, None)
        inside = valid & (addrs < self._sorted_ends[pos_clip])
        return np.where(inside, self._sorted_sids[pos_clip], -1)

    def total_metadata_bits(self) -> int:
        return sum(s.metadata_bits() for s in self._streams.values())


def configure_stream(
    table: StreamTable,
    kind: str | StreamKind,
    base: int,
    size: int,
    elem_size: int,
    *,
    dims: tuple[int, ...] = (),
    order: int = 0,
    sid: int | None = None,
    read_only: bool = True,
    name: str = "",
) -> StreamConfig:
    """The paper's ``configure_stream`` API, registering into ``table``.

    ``sid`` is assigned automatically (next free id) when omitted.
    """
    if sid is None:
        used = set(table.sids)
        sid = next(i for i in range(MAX_STREAMS) if i not in used)
    stream = StreamConfig(
        sid=sid,
        kind=StreamKind(kind) if isinstance(kind, str) else kind,
        base=base,
        size=size,
        elem_size=elem_size,
        dims=dims,
        order=order,
        read_only=read_only,
        name=name,
    )
    return table.configure(stream)

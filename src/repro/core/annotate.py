"""Automatic stream annotation from raw address traces.

The paper requires manual ``configure_stream`` hints and "defers automatic
compiler-based methods to future work" (Section IV-A).  This module
implements that future work at the trace level: given a raw address trace
with no stream information, it recovers the stream map —

1. **Region detection** — touched addresses are clustered into contiguous
   allocation-like regions (split at gaps larger than ``gap_bytes``),
   which correspond to the data structures a compiler would see as
   distinct allocations.
2. **Pattern classification** — each region's access sequence is
   classified by its stride behaviour: regions dominated by small,
   regular strides are *affine* (sequential/strided scans); regions with
   large, irregular jumps are *indirect* (data-dependent gathers).
3. **Element-size inference** — the element size is the most common
   positive stride (clamped to a power of two), matching what the
   ``elemSize`` argument would have carried.
4. **Read-only inference** — a region never written in the trace is
   marked read-only, enabling replication, exactly as NDPExt's dynamic
   write-exception detection would eventually conclude.

The result is a ready :class:`~repro.core.stream.StreamTable`;
:func:`annotate_workload` re-annotates an existing workload in place so
any policy can run on auto-detected streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stream import MAX_STREAMS, StreamConfig, StreamKind, StreamTable
from repro.workloads.trace import Trace, Workload

PAGE = 4096


@dataclass(frozen=True)
class AnnotatorParams:
    """Knobs for stream detection."""

    gap_bytes: int = PAGE  # split regions at untouched gaps this large
    min_accesses: int = 32  # ignore regions touched fewer times
    top_strides: int = 4  # stride vocabulary size for "regular" patterns
    affine_fraction: float = 0.6  # regularity needed to call affine
    max_elem_bytes: int = 4096


@dataclass
class DetectedRegion:
    """One recovered data structure."""

    base: int
    end: int
    accesses: int
    kind: StreamKind
    elem_size: int
    read_only: bool

    @property
    def size(self) -> int:
        return self.end - self.base


def _split_regions(addrs: np.ndarray, gap_bytes: int) -> list[tuple[int, int]]:
    """Contiguous touched regions: [base, end) pairs, page aligned."""
    if len(addrs) == 0:
        return []
    pages = np.unique(addrs // PAGE)
    breaks = np.flatnonzero(np.diff(pages) > max(1, gap_bytes // PAGE))
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks, [len(pages) - 1]])
    return [
        (int(pages[s]) * PAGE, (int(pages[e]) + 1) * PAGE)
        for s, e in zip(starts, ends)
    ]


def _classify(region_addrs: np.ndarray, params: AnnotatorParams) -> StreamKind:
    """Affine iff a few stride values dominate the access sequence.

    An affine pattern ``addr = a*i + b`` (including large strides like a
    stencil's row hops) produces a tiny stride vocabulary; data-dependent
    gathers produce an essentially unbounded one.
    """
    if len(region_addrs) < 2:
        return StreamKind.AFFINE
    strides = np.diff(region_addrs)
    strides = strides[strides != 0]  # re-references say nothing
    if len(strides) == 0:
        return StreamKind.AFFINE
    _, counts = np.unique(strides, return_counts=True)
    counts = np.sort(counts)[::-1]
    regularity = counts[: params.top_strides].sum() / len(strides)
    if regularity >= params.affine_fraction:
        return StreamKind.AFFINE
    return StreamKind.INDIRECT


def _infer_elem_size(region_addrs: np.ndarray, params: AnnotatorParams) -> int:
    """Most common positive stride, rounded down to a power of two."""
    strides = np.diff(region_addrs)
    positive = strides[(strides > 0) & (strides <= params.max_elem_bytes)]
    if len(positive) == 0:
        return 64  # gather-only region: assume a cacheline-ish element
    values, counts = np.unique(positive, return_counts=True)
    mode = int(values[np.argmax(counts)])
    power = 1 << max(0, mode.bit_length() - 1)
    return int(min(max(power, 1), params.max_elem_bytes))


def detect_streams(
    trace: Trace, params: AnnotatorParams | None = None
) -> tuple[StreamTable, list[DetectedRegion]]:
    """Recover a stream table from a raw (unannotated) trace."""
    params = params or AnnotatorParams()
    table = StreamTable()
    regions: list[DetectedRegion] = []
    for base, end in _split_regions(trace.addr, params.gap_bytes):
        mask = (trace.addr >= base) & (trace.addr < end)
        count = int(mask.sum())
        if count < params.min_accesses:
            continue
        region_addrs = trace.addr[mask]
        kind = _classify(region_addrs, params)
        elem = _infer_elem_size(region_addrs, params)
        size = end - base
        size -= size % elem  # whole number of elements
        if size < elem:
            continue
        read_only = not bool(trace.write[mask].any())
        regions.append(
            DetectedRegion(
                base=base,
                end=base + size,
                accesses=count,
                kind=kind,
                elem_size=elem,
                read_only=read_only,
            )
        )
    # Largest regions get stream ids first (they matter most if we ever
    # exceed the 512-stream hardware limit).
    regions.sort(key=lambda r: -r.accesses)
    for sid, region in enumerate(regions[:MAX_STREAMS]):
        table.configure(
            StreamConfig(
                sid=sid,
                kind=region.kind,
                base=region.base,
                size=region.size,
                elem_size=region.elem_size,
                read_only=region.read_only,
                name=f"auto{sid}",
            )
        )
    return table, regions


def annotate_workload(
    workload: Workload, params: AnnotatorParams | None = None
) -> Workload:
    """A copy of ``workload`` whose streams were recovered automatically.

    The trace's manual stream ids are discarded and re-resolved against
    the detected table — the auto-annotated equivalent of running an
    unmodified binary through the compiler pass.
    """
    table, _ = detect_streams(workload.trace, params)
    trace = Trace(
        core=workload.trace.core.copy(),
        addr=workload.trace.addr.copy(),
        write=workload.trace.write.copy(),
        sid=np.full(len(workload.trace), -1, dtype=np.int32),
    )
    return Workload(
        name=f"{workload.name}-auto",
        streams=table,
        trace=trace,
        compute_cycles_per_access=workload.compute_cycles_per_access,
        description=f"{workload.description} (auto-annotated)",
        phases=list(workload.phases),
    )


def annotation_report(
    workload: Workload, detected: StreamTable
) -> dict[str, float]:
    """How well the detected table matches the manual annotations."""
    manual = workload.trace.sid
    auto = detected.resolve(workload.trace.addr)
    covered = auto >= 0
    both = covered & (manual >= 0)
    kind_match = 0
    total = 0
    for manual_stream in workload.streams:
        mask = manual == manual_stream.sid
        if not mask.any():
            continue
        auto_ids = auto[mask]
        auto_ids = auto_ids[auto_ids >= 0]
        if len(auto_ids) == 0:
            continue
        dominant = int(np.bincount(auto_ids).argmax())
        total += 1
        if detected.get(dominant).kind == manual_stream.kind:
            kind_match += 1
    return {
        "coverage": float(covered.mean()),
        "agreement": float(both.mean()),
        "kind_accuracy": kind_match / total if total else 0.0,
    }

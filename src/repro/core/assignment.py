"""Sampler-to-stream assignment via max-flow (Section V-B).

Each NDP unit has S = 4 miss-curve samplers, and a sampler can only watch
a stream its own unit accesses.  At each epoch boundary the per-unit
access bitvectors are shipped to the host, which solves a max-flow
problem: source -> units (capacity S) -> streams (capacity 1) -> sink.
Each saturated unit->stream edge becomes one sampler assignment.

When there are more streams than total sampler slots, the assignment
rotates: streams sampled in earlier epochs of a rotation are deprioritized
until every stream has been covered, after which the rotation restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.maxflow import solve_bipartite_assignment


@dataclass
class AssignmentResult:
    """One epoch's sampler placement."""

    assignment: dict[int, int]  # stream id -> unit id that samples it
    uncovered: list[int]  # streams no sampler could watch this epoch

    @property
    def covered(self) -> list[int]:
        return sorted(self.assignment)


@dataclass
class SamplerAssigner:
    """Stateful assigner implementing the rotation described in the paper."""

    samplers_per_unit: int = 4
    _sampled_this_rotation: set[int] = field(default_factory=set)

    def assign(self, bitvectors: np.ndarray) -> AssignmentResult:
        """Assign samplers given the access bitvectors of one epoch.

        ``bitvectors[u, s]`` is True when unit ``u`` accessed stream ``s``
        during the epoch.  Streams never accessed are ignored.
        """
        bitvectors = np.asarray(bitvectors, dtype=bool)
        if bitvectors.ndim != 2:
            raise ValueError("bitvectors must be a (units x streams) matrix")
        n_units, n_streams = bitvectors.shape
        active = [s for s in range(n_streams) if bitvectors[:, s].any()]
        if not active:
            return AssignmentResult(assignment={}, uncovered=[])

        # Rotation: drop streams already sampled this rotation unless every
        # active stream has been, in which case a new rotation starts.
        pending = [s for s in active if s not in self._sampled_this_rotation]
        if not pending:
            self._sampled_this_rotation.clear()
            pending = list(active)

        assignment = self._solve(bitvectors, pending)
        if len(assignment) < len(active):
            # Capacity left over after covering pending streams can watch
            # already-sampled streams again (fresh data never hurts).
            spare = {
                u: self.samplers_per_unit
                - sum(1 for unit in assignment.values() if unit == u)
                for u in range(n_units)
            }
            rest = [s for s in active if s not in assignment]
            extra = self._solve(bitvectors, rest, capacity_override=spare)
            assignment.update(extra)

        self._sampled_this_rotation.update(assignment)
        uncovered = [s for s in active if s not in assignment]
        return AssignmentResult(assignment=assignment, uncovered=uncovered)

    def _solve(
        self,
        bitvectors: np.ndarray,
        streams: list[int],
        capacity_override: dict[int, int] | None = None,
    ) -> dict[int, int]:
        n_units = bitvectors.shape[0]
        capacities = capacity_override or {
            u: self.samplers_per_unit for u in range(n_units)
        }
        capacities = {u: c for u, c in capacities.items() if c > 0}
        edges = [
            (u, s)
            for s in streams
            for u in capacities
            if bitvectors[u, s]
        ]
        if not edges:
            return {}
        return solve_bipartite_assignment(capacities, streams, edges)

    def reset(self) -> None:
        self._sampled_this_rotation.clear()

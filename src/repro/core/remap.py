"""The stream remap table: RShares, RRowBase, RGroups (Section IV-B).

The remap table is the global metadata that defines the distributed
stream cache: for every stream, how many DRAM rows each NDP unit
contributes (RShares), where those rows start (RRowBase), and which
replication group each unit belongs to (RGroups).  Units in the same
replication group jointly cache *one copy* of the stream; different
groups hold independent copies.

The table is kept by the host runtime and distilled into per-unit SLB
entries by :mod:`repro.core.slb`.  Bit-width accounting follows the
paper: 16-bit shares, 18-bit row bases, 6-bit group ids, 9-bit stream
ids, for 512 x 64 x 40 bits = 160 kB at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

RSHARES_BITS = 16
RROWBASE_BITS = 18
RGROUPS_BITS = 6
MAX_GROUPS = 1 << RGROUPS_BITS
NO_GROUP = -1


@dataclass
class StreamAllocation:
    """One stream's row in the remap table.

    ``shares[u]`` is the number of DRAM rows unit ``u`` contributes;
    ``groups[u]`` is the replication-group id of unit ``u`` (or
    ``NO_GROUP`` when the unit holds nothing for this stream);
    ``row_base[u]`` is where the allocated rows start in unit ``u``.
    """

    sid: int
    shares: np.ndarray
    groups: np.ndarray
    row_base: np.ndarray

    def __post_init__(self) -> None:
        self.shares = np.asarray(self.shares, dtype=np.int64)
        self.groups = np.asarray(self.groups, dtype=np.int64)
        self.row_base = np.asarray(self.row_base, dtype=np.int64)
        n = len(self.shares)
        if len(self.groups) != n or len(self.row_base) != n:
            raise ValueError("shares/groups/row_base must have equal length")
        if np.any(self.shares < 0):
            raise ValueError("shares cannot be negative")
        if np.any((self.shares > 0) & (self.groups == NO_GROUP)):
            raise ValueError("units with allocated rows must belong to a group")
        if np.any((self.shares == 0) & (self.groups != NO_GROUP)):
            raise ValueError("units without rows cannot belong to a group")
        if np.any(self.shares >= (1 << RSHARES_BITS)):
            raise ValueError("a share exceeds the 16-bit RShares field")
        used = self.group_ids
        if len(used) > MAX_GROUPS:
            raise ValueError(f"at most {MAX_GROUPS} replication groups")

    @classmethod
    def empty(cls, sid: int, n_units: int) -> "StreamAllocation":
        return cls(
            sid=sid,
            shares=np.zeros(n_units, dtype=np.int64),
            groups=np.full(n_units, NO_GROUP, dtype=np.int64),
            row_base=np.zeros(n_units, dtype=np.int64),
        )

    @classmethod
    def single_group(
        cls, sid: int, shares: np.ndarray, row_base: np.ndarray | None = None
    ) -> "StreamAllocation":
        """All allocated units form one replication group (one copy)."""
        shares = np.asarray(shares, dtype=np.int64)
        groups = np.where(shares > 0, 0, NO_GROUP)
        if row_base is None:
            row_base = np.zeros(len(shares), dtype=np.int64)
        return cls(sid=sid, shares=shares, groups=groups, row_base=row_base)

    @property
    def n_units(self) -> int:
        return len(self.shares)

    @property
    def group_ids(self) -> list[int]:
        return sorted(int(g) for g in np.unique(self.groups) if g != NO_GROUP)

    @property
    def n_groups(self) -> int:
        return len(self.group_ids)

    @property
    def total_rows(self) -> int:
        return int(self.shares.sum())

    def units_of_group(self, group_id: int) -> np.ndarray:
        return np.flatnonzero(self.groups == group_id)

    def group_rows(self, group_id: int) -> int:
        """Rows of one copy: total rows contributed by the group's units."""
        return int(self.shares[self.groups == group_id].sum())

    def group_of_unit(self, unit: int) -> int:
        return int(self.groups[unit])

    def is_allocated(self) -> bool:
        return self.total_rows > 0

    def replication_degree(self) -> int:
        """Number of independent copies (groups)."""
        return max(1, self.n_groups)


class RemapTable:
    """The centralized stream remap table kept by the host runtime."""

    def __init__(self, n_units: int, rows_per_unit: int) -> None:
        if n_units <= 0 or rows_per_unit <= 0:
            raise ValueError("n_units and rows_per_unit must be positive")
        self.n_units = n_units
        self.rows_per_unit = rows_per_unit
        # Usable rows per unit; shrinks when hardware is lost (a failed
        # unit drops to zero, a quarantined DRAM row subtracts one).
        self.capacity = np.full(n_units, rows_per_unit, dtype=np.int64)
        self._allocations: dict[int, StreamAllocation] = {}

    def __contains__(self, sid: int) -> bool:
        return sid in self._allocations

    def __len__(self) -> int:
        return len(self._allocations)

    def get(self, sid: int) -> StreamAllocation:
        return self._allocations[sid]

    def get_or_empty(self, sid: int) -> StreamAllocation:
        if sid in self._allocations:
            return self._allocations[sid]
        return StreamAllocation.empty(sid, self.n_units)

    @property
    def sids(self) -> list[int]:
        return sorted(self._allocations)

    def set(self, allocation: StreamAllocation) -> None:
        """Install/replace a stream's allocation, checking unit capacity."""
        if allocation.n_units != self.n_units:
            raise ValueError("allocation does not match the system's unit count")
        previous = self._allocations.get(allocation.sid)
        self._allocations[allocation.sid] = allocation
        used = self.rows_used_per_unit()
        if np.any(used > self.capacity):
            # Roll back so the table stays consistent.
            if previous is None:
                del self._allocations[allocation.sid]
            else:
                self._allocations[allocation.sid] = previous
            over = int(np.argmax(used - self.capacity))
            raise ValueError(
                f"allocation overflows unit {over}: {int(used[over])} rows "
                f"> capacity {int(self.capacity[over])}"
            )
        self._assign_row_bases()

    def set_all(self, allocations: list[StreamAllocation]) -> None:
        """Replace the whole table atomically (one reconfiguration)."""
        table = {a.sid: a for a in allocations}
        if len(table) != len(allocations):
            raise ValueError("duplicate stream ids in allocation set")
        for a in allocations:
            if a.n_units != self.n_units:
                raise ValueError("allocation does not match the system's unit count")
        used = np.zeros(self.n_units, dtype=np.int64)
        for a in allocations:
            used += a.shares
        if np.any(used > self.capacity):
            over = int(np.argmax(used - self.capacity))
            raise ValueError(
                f"allocations overflow unit {over}: {int(used[over])} rows "
                f"> capacity {int(self.capacity[over])}"
            )
        self._allocations = table
        self._assign_row_bases()

    def _assign_row_bases(self) -> None:
        """Pack each unit's allocated rows contiguously (RRowBase)."""
        next_row = np.zeros(self.n_units, dtype=np.int64)
        for sid in sorted(self._allocations):
            alloc = self._allocations[sid]
            alloc.row_base = next_row.copy()
            next_row += alloc.shares

    def rows_used_per_unit(self) -> np.ndarray:
        used = np.zeros(self.n_units, dtype=np.int64)
        for alloc in self._allocations.values():
            used += alloc.shares
        return used

    def rows_free_per_unit(self) -> np.ndarray:
        return self.capacity - self.rows_used_per_unit()

    def disable_unit(self, unit: int) -> None:
        """Fail-stop: the unit's memory contributes no capacity anymore."""
        self.capacity[unit] = 0

    def reduce_capacity(self, unit: int, rows: int = 1) -> None:
        """Quarantine ``rows`` bad DRAM rows of one unit."""
        self.capacity[unit] = max(0, int(self.capacity[unit]) - rows)

    def metadata_bits(self, max_streams: int = 512) -> int:
        """Table I/Section IV-B accounting: streams x units x 40 bits."""
        per_entry = RSHARES_BITS + RROWBASE_BITS + RGROUPS_BITS
        return max_streams * self.n_units * per_entry

    def clear(self) -> None:
        self._allocations = {}

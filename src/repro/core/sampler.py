"""Set-based miss-curve samplers (Section V-A).

NDPExt's DRAM cache is direct-mapped/low-associativity and partitioned
along *sets*, so way-based utility monitors don't apply: set partitioning
lacks the stack property.  Instead, each hardware sampler watches one
stream and simultaneously simulates ``c`` capacity cases (geometrically
spaced, 32 kB..256 MB at paper scale with step 1.16); for each case it
tracks only ``k = 32`` sample sets chosen by static interleaving, and the
measured misses scale by the sampled fraction (the K/k scaling of [6],
[63]).

The simulator reproduces this exactly: for each capacity case it hashes
elements to that case's set space, keeps only the statically interleaved
sample sets, runs a direct-mapped simulation on them, and scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stream import StreamConfig
from repro.sim.cachesim import direct_mapped_hits
from repro.util.curves import MissCurve, geometric_capacities
from repro.util.hashing import mix64_array

SAMPLER_SET_BYTES = 4  # stored address per sample set


@dataclass(frozen=True)
class SamplerParams:
    """Hardware sampler configuration."""

    sample_sets: int = 32  # k
    capacity_points: int = 64  # c
    min_capacity: int = 32 * 1024
    max_capacity: int = 256 * 1024 * 1024

    @property
    def storage_bytes(self) -> int:
        """Per-sampler SRAM: k x c x 4 B (8 kB at paper scale)."""
        return self.sample_sets * self.capacity_points * SAMPLER_SET_BYTES

    def capacities(self) -> np.ndarray:
        return geometric_capacities(
            self.min_capacity, self.max_capacity, self.capacity_points
        )


def sample_curve(
    tags: np.ndarray, granularity: int, params: SamplerParams
) -> MissCurve:
    """Set-sampled direct-mapped miss curve over an arbitrary tag trace.

    The generic primitive behind :class:`MissCurveSampler`; the NUCA
    baselines use it at cacheline granularity for their utility monitors.

    All capacity cases are simulated in a single fused direct-mapped
    pass: each case's sampled accesses keep their trace order and get a
    disjoint slot range (a per-case cumulative offset), so one keyed
    scan over the concatenation is exactly the per-case loop it
    replaced, and one bincount recovers the per-case miss counts.  The
    SplitMix64 hash of the tags is computed once and remapped per case
    (``bucket_array`` is hash-then-modulo, so only the modulo differs).
    """
    tags = np.asarray(tags, dtype=np.int64)
    capacities = params.capacities()
    k = params.sample_sets
    n_cases = len(capacities)
    n = len(tags)
    misses = np.zeros(n_cases)
    if n:
        hashed = mix64_array(tags.astype(np.uint64), salt=1)
        n_sets = np.maximum(1, capacities // granularity)
        steps = np.maximum(1, n_sets // k)
        n_sampled_sets = (n_sets + steps - 1) // steps
        scales = n_sets / n_sampled_sets
        offsets = np.concatenate(([0], np.cumsum(n_sets)[:-1]))
        slot_blocks: list[np.ndarray] = []
        tag_blocks: list[np.ndarray] = []
        case_blocks: list[np.ndarray] = []
        # Broadcast all capacity cases at once (rows = cases): one modulo
        # maps the shared hash into every case's set space, one compares
        # against the per-case sampling stride.  Row-major boolean
        # selection keeps case-major, trace-ordered layout — exactly the
        # per-case concatenation.  Chunk the rows so the 2-D temporaries
        # stay bounded on paper-scale epochs.
        chunk = max(1, 4_000_000 // n)
        for lo in range(0, n_cases, chunk):
            hi = min(n_cases, lo + chunk)
            sets2d = (
                hashed[None, :] % n_sets[lo:hi, None].astype(np.uint64)
            ).astype(np.int64)
            sampled2d = sets2d % steps[lo:hi, None] == 0
            slot_blocks.append((sets2d + offsets[lo:hi, None])[sampled2d])
            tag_blocks.append(
                np.broadcast_to(tags, sets2d.shape)[sampled2d]
            )
            case_blocks.append(
                np.broadcast_to(
                    np.arange(lo, hi, dtype=np.int64)[:, None], sets2d.shape
                )[sampled2d]
            )
        slots = np.concatenate(slot_blocks)
        if len(slots):
            hits = direct_mapped_hits(slots, np.concatenate(tag_blocks))
            case = np.concatenate(case_blocks)
            counts = np.bincount(case[~hits], minlength=n_cases)
            misses = counts * scales
    # Anchor the curve at (no capacity -> every access misses).  Without
    # this, interpolation below the first measured point would make an
    # unallocated stream look as cheap as a small cache, and the
    # lookahead would starve streams whose first measured point is
    # already low (high block locality).
    if capacities[0] > 1:
        capacities = np.concatenate([[1], capacities])
        misses = np.concatenate([[float(len(tags))], misses])
    return MissCurve(capacities, np.maximum.accumulate(misses[::-1])[::-1])


class MissCurveSampler:
    """Derives the miss curve of one stream from its epoch accesses."""

    def __init__(self, stream: StreamConfig, params: SamplerParams) -> None:
        self.stream = stream
        self.params = params
        # Affine streams are cached in blocks, indirect per element; the
        # sampler tracks sets at the caching granularity.
        self.granularity = stream.elem_size

    def set_granularity(self, granularity_bytes: int) -> None:
        if granularity_bytes <= 0:
            raise ValueError("granularity must be positive")
        self.granularity = granularity_bytes

    def _tags_of(self, element_ids: np.ndarray) -> np.ndarray:
        """Caching-granularity tag for each access."""
        bytes_per_elem = self.stream.elem_size
        if self.granularity <= bytes_per_elem:
            return np.asarray(element_ids, dtype=np.int64)
        elems_per_tag = self.granularity // bytes_per_elem
        return np.asarray(element_ids, dtype=np.int64) // elems_per_tag

    def observe(self, element_ids: np.ndarray) -> MissCurve:
        """Sample one epoch's accesses and return the scaled miss curve."""
        return sample_curve(self._tags_of(element_ids), self.granularity, self.params)

    def exact_curve(self, element_ids: np.ndarray) -> MissCurve:
        """Reference: full (unsampled) direct-mapped miss curve."""
        tags = self._tags_of(element_ids)
        capacities = self.params.capacities()
        misses = np.zeros(len(capacities))
        hashed = mix64_array(tags.astype(np.uint64), salt=1)
        for i, capacity in enumerate(capacities):
            n_sets = max(1, int(capacity) // self.granularity)
            sets = (hashed % np.uint64(n_sets)).astype(np.int64)
            hits = direct_mapped_hits(sets, tags)
            misses[i] = int((~hits).sum())
        return MissCurve(capacities, misses)

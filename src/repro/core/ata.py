"""Affine tag array (ATA): SRAM tags for affine-stream blocks (Section IV-C).

Affine streams are cached in 1 kB blocks whose tags live in on-chip SRAM —
a 4-byte tag per block.  To keep the tag SRAM bounded, the total DRAM
cache space usable by *all* affine streams in a unit is capped (16 MB in
the paper, yielding 64 kB of tags); allocations beyond the cap simply
don't happen, and the overflowing accesses stream from extended memory.

The ATA itself is a set-associative structure; the simulator models its
hit/miss behaviour through the shared cache primitives, so this module
carries the sizing math, the affine-space cap, and the per-unit tag-cost
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

TAG_BYTES = 4


@dataclass(frozen=True)
class AffineTagArray:
    """Sizing/accounting for one unit's affine tag array."""

    block_bytes: int = 1024
    space_bytes: int = 16 * 1024 * 1024
    ways: int = 4

    def __post_init__(self) -> None:
        if self.block_bytes <= 0 or self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block_bytes must be a positive power of two")
        if self.space_bytes < self.block_bytes:
            raise ValueError("affine space must hold at least one block")
        if self.ways < 1:
            raise ValueError("associativity must be at least 1")

    @property
    def n_blocks(self) -> int:
        return self.space_bytes // self.block_bytes

    @property
    def sram_bytes(self) -> int:
        """Tag SRAM cost: 4 bytes per block (64 kB at paper scale)."""
        return self.n_blocks * TAG_BYTES

    def blocks_for(self, capacity_bytes: int) -> int:
        return max(0, capacity_bytes // self.block_bytes)

    def clamp_affine_rows(
        self, requested_rows: int, already_used_rows: int, row_bytes: int
    ) -> int:
        """Clamp an affine allocation to the remaining affine space.

        ``already_used_rows`` counts rows other affine streams already
        hold in this unit.  Returns how many of ``requested_rows`` fit.
        """
        cap_rows = self.space_bytes // row_bytes
        free = max(0, cap_rows - already_used_rows)
        return min(requested_rows, free)

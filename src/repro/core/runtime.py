"""The NDPExt host runtime: the full dynamic policy (Section V).

At the end of every epoch the runtime collects each unit's stream-access
bitvector, assigns the per-unit miss-curve samplers to streams with the
max-flow formulation (Section V-B), measures the sampled streams' miss
curves (Section V-A), and at the next epoch boundary runs the
configuration algorithm (Section V-C) to produce a new stream remap
table, which the stream-cache mapper installs — with consistent hashing
keeping resident data in place (Section V-D).

Three reconfiguration modes reproduce Fig. 9(e):

* ``full``    — reconfigure every ``reconfig_interval`` epochs (NDPExt),
* ``partial`` — reconfigure only during the first ``partial_epochs``,
* ``static``  — never reconfigure (equal allocation; NDPExt-static).
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import SamplerAssigner
from repro.core.configure import CacheConfigurator, equal_share_allocations
from repro.core.sampler import MissCurveSampler, SamplerParams
from repro.core.stream import StreamConfig
from repro.core.stream_cache import StreamCacheMapper
from repro.faults import EpochFaults, FaultState
from repro.sim.engine import DramCachePolicy, ReconfigStats, RequestOutcome
from repro.sim.params import SystemConfig
from repro.sim.topology import Topology
from repro.util.curves import MissCurve
from repro.workloads.trace import Trace, Workload


class NdpExtPolicy(DramCachePolicy):
    """NDPExt: stream cache + periodic runtime reconfiguration."""

    def __init__(
        self,
        mode: str = "full",
        placement: str = "consistent",
        reconfig_interval: int = 1,
        partial_epochs: int = 4,
        indirect_ways: int | None = None,
        affine_block_bytes: int | None = None,
        sampler_sets: int | None = None,
        adaptive_blocks: bool = False,
        warm_start: bool = True,
        fault_recovery: bool = True,
        name: str | None = None,
    ) -> None:
        if mode not in ("full", "partial", "static"):
            raise ValueError(f"unknown reconfiguration mode {mode!r}")
        if reconfig_interval < 1:
            raise ValueError("reconfig_interval must be >= 1")
        self.mode = mode
        self.placement = placement
        self.reconfig_interval = reconfig_interval
        self.partial_epochs = partial_epochs
        self.indirect_ways = indirect_ways
        self.affine_block_bytes = affine_block_bytes
        self.sampler_sets = sampler_sets
        # Extension of the paper's Fig. 9(b) future work: pick each affine
        # stream's block size from its profiled spatial run length instead
        # of one global 1 kB.
        self.adaptive_blocks = adaptive_blocks
        self.warm_start = warm_start
        # When False the runtime ignores fault events: requests to lost
        # hardware fall through to extended memory (fail-stop baseline).
        self.fault_recovery = fault_recovery
        self.name = name or ("ndpext" if mode == "full" else f"ndpext-{mode}")
        # Serving-loop hooks: a health monitor may force the next epoch
        # boundary to reconfigure (bypassing the churn damper) or pause
        # periodic reconfiguration entirely while a unit is flapping.
        self._forced_reconfig = False
        self._reconfig_enabled = True
        self.applied_reconfigs = 0

    # ------------------------------------------------------------------

    def setup(
        self, config: SystemConfig, topology: Topology, workload: Workload
    ) -> None:
        self.workload = workload
        self.setup_streams(config, topology, workload.streams)

    def setup_streams(
        self,
        config: SystemConfig,
        topology: Topology,
        streams: list[StreamConfig],
    ) -> None:
        """Bind to a system and a stream table without a whole trace.

        The serving loop sets the runtime up from the tenant stream
        namespace alone — request batches arrive incrementally, so no
        trace exists up front.  ``setup`` (the batch path) delegates
        here.
        """
        self.config = config
        self.topology = topology
        self.mapper = StreamCacheMapper(
            config,
            topology,
            streams,
            placement=self.placement,
            indirect_ways=self.indirect_ways,
            affine_block_bytes=self.affine_block_bytes,
            warm_start=self.warm_start,
        )
        self.assigner = SamplerAssigner(
            samplers_per_unit=config.stream.samplers_per_unit
        )
        self.sampler_params = SamplerParams(
            sample_sets=self.sampler_sets or config.stream.sampler_sets,
            capacity_points=config.stream.sampler_points,
            min_capacity=config.stream.sampler_min_bytes,
            # A stream (or one replication-group copy) can grow up to the
            # whole distributed cache, so the curve must span that range.
            max_capacity=max(
                config.stream.sampler_min_bytes * 2, config.total_cache_bytes
            ),
        )
        self.configurator = CacheConfigurator(
            topology=topology,
            rows_per_unit=config.rows_per_unit,
            row_bytes=config.ndp_dram.row_bytes,
            affine_space_bytes=config.stream.affine_space_bytes,
        )
        self._streams: dict[int, StreamConfig] = {s.sid: s for s in streams}
        self._curves: dict[int, MissCurve] = {}
        # sid -> hit rate the miss-curve model promised for the currently
        # installed configuration; compared against realized rates at the
        # end of each epoch when a recorder is attached.
        self._predicted_hit_rate: dict[int, float] = {}
        self._acc_units: dict[int, list[int]] = {}
        self._acc_counts: dict[int, dict[int, int]] = {}
        self._epoch_access_totals: dict[int, int] = {}
        self._dead_units: set[int] = set()
        # Epoch 0 starts from the static equal split; the first measured
        # configuration lands at the epoch-1 boundary.
        initial = equal_share_allocations(
            self._streams, config.n_units, config.rows_per_unit
        )
        self.mapper.apply(initial)

    # ------------------------------------------------------------------

    def on_faults(
        self, epoch_idx: int, events: EpochFaults, state: FaultState
    ) -> ReconfigStats:
        """Graceful degradation: remap around the hardware that was lost.

        Failed units leave every stream's consistent-hash ring, so
        surviving units keep most of their resident lines (Section V-D's
        minimal-movement property, reused for recovery).  Quarantined
        DRAM rows are given up by the stream covering them and then
        acknowledged, so the engine stops demoting accesses to them.
        """
        if not self.fault_recovery:
            return ReconfigStats()
        total = ReconfigStats()
        if events.unit_failures:
            self._dead_units.update(events.unit_failures)
            stats = self.mapper.evict_units(events.unit_failures)
            total.movements += stats.movements
            total.invalidations += stats.invalidations
        for unit, row in events.row_faults:
            if unit in self._dead_units:
                continue  # the whole unit is already gone
            stats = self.mapper.quarantine_row(unit, row)
            total.movements += stats.movements
            total.invalidations += stats.invalidations
            state.acknowledge_row(unit, row)
        return total

    def _should_reconfigure(self, epoch_idx: int) -> bool:
        if self.mode == "static" or epoch_idx == 0 or not self._curves:
            return False
        if self.mode == "partial" and epoch_idx > self.partial_epochs:
            return False
        return epoch_idx % self.reconfig_interval == 0

    def request_reconfigure(self) -> None:
        """Force the next reconfigurable epoch boundary to reconfigure.

        The serving health monitor calls this when hardware degrades:
        the churn damper (:data:`RECONFIG_GAIN_THRESHOLD`) is bypassed
        for that one boundary so capacity-aware re-placement always
        lands, even when the predicted gain is marginal.  The request
        stays pending while reconfiguration is disabled or no curves
        exist yet.
        """
        self._forced_reconfig = True

    def set_reconfig_enabled(self, enabled: bool) -> None:
        """Pause/resume reconfiguration (flap damping for the serve loop).

        While disabled, ``begin_epoch`` installs nothing — a flapping
        unit would otherwise trigger a re-placement storm whose
        invalidations cost more than any placement gain.  Pending forced
        requests survive the pause and fire on the first enabled
        boundary.
        """
        self._reconfig_enabled = bool(enabled)

    # Install a new configuration only when it promises at least this
    # relative miss reduction over the one already in place.  Residual
    # sampling noise otherwise causes reconfiguration churn whose
    # invalidations cost more than the marginal gain.
    RECONFIG_GAIN_THRESHOLD = 0.03

    def begin_epoch(self, epoch_idx: int) -> ReconfigStats:
        if not self._reconfig_enabled:
            return ReconfigStats()
        forced = (
            self._forced_reconfig
            and self.mode != "static"
            and epoch_idx > 0
            and bool(self._curves or self._epoch_access_totals)
        )
        if not forced and not self._should_reconfigure(epoch_idx):
            return ReconfigStats()
        if forced:
            self._forced_reconfig = False
        curves = dict(self._curves)
        # Streams the samplers have not covered yet keep a synthetic
        # linear curve so they retain some allocation until measured.
        for sid, total in self._epoch_access_totals.items():
            if sid not in curves and total > 0:
                curves[sid] = self._fallback_curve(sid, total)
        with self.recorder.span("configure.solve"):
            result = self.configurator.configure(
                streams=self._streams,
                curves=curves,
                acc_units=self._acc_units,
                acc_counts=self._acc_counts,
                unit_capacity=self.mapper.table.capacity,
                write_excepted=self.mapper.write_excepted,
            )
        old_cost = self._predicted_cost(curves, self._current_allocations())
        new_cost = self._predicted_cost(curves, result.allocations)
        skipped = (
            not forced
            and old_cost > 0
            and new_cost > old_cost * (1.0 - self.RECONFIG_GAIN_THRESHOLD)
        )
        if skipped:
            chosen = self._current_allocations()
            stats = ReconfigStats()
        else:
            chosen = result.allocations
            stats = self.mapper.apply(result.allocations)
            self.applied_reconfigs += 1
        if self.recorder.enabled:
            self._predicted_hit_rate = self._predict_hit_rates(curves, chosen)
            alloc_by_sid = {alloc.sid: alloc for alloc in chosen}
            # Per-unit rows the chosen configuration allocates — the
            # placement's spatial footprint, next to the spatial
            # accumulator's per-unit *served* counts.
            unit_rows = np.zeros(self.config.n_units, dtype=np.int64)
            for alloc in chosen:
                unit_rows += alloc.shares
            self.recorder.event(
                "reconfig",
                epoch=epoch_idx,
                applied=not skipped,
                forced=forced,
                unit_rows=[int(v) for v in unit_rows],
                predicted_cost_old=old_cost,
                predicted_cost_new=new_cost,
                movements=stats.movements,
                invalidations=stats.invalidations,
                config=result.summary(),
                streams=[
                    {
                        "sid": int(sid),
                        "predicted_hit_rate": rate,
                        "rows": int(alloc_by_sid[sid].total_rows),
                        "n_groups": int(alloc_by_sid[sid].n_groups),
                    }
                    for sid, rate in sorted(self._predicted_hit_rate.items())
                    if sid in alloc_by_sid
                ],
            )
        return stats

    def _predict_hit_rates(
        self, curves: dict[int, MissCurve], allocations
    ) -> dict[int, float]:
        """Per-stream hit rate the miss-curve model promises for
        ``allocations``, on the post-L1 request stream."""
        row_bytes = self.config.ndp_dram.row_bytes
        rates: dict[int, float] = {}
        for alloc in allocations:
            curve = curves.get(alloc.sid)
            accesses = self._epoch_access_totals.get(alloc.sid, 0)
            if curve is None or accesses <= 0:
                continue
            copies = max(1, alloc.n_groups)
            per_copy = alloc.total_rows * row_bytes / copies
            misses = curve.monotone().misses_at(per_copy)
            rates[alloc.sid] = float(
                np.clip(1.0 - misses / accesses, 0.0, 1.0)
            )
        return rates

    def _current_allocations(self) -> list:
        return [
            self.mapper.table.get_or_empty(sid) for sid in sorted(self._streams)
        ]

    def _predicted_cost(self, curves: dict[int, MissCurve], allocations) -> float:
        """Expected memory time (ns) if ``allocations`` served the curves.

        Misses pay the extended-memory penalty; hits pay the round trip to
        wherever the accessing units' replication group lives — so a
        configuration that replicates a hot stream near its consumers is
        credited for the shorter hops, not only for miss counts.
        """
        row_bytes = self.config.ndp_dram.row_bytes
        miss_penalty = self.config.cxl.link_ns + self.config.ext_dram.row_miss_ns
        total = 0.0
        for alloc in allocations:
            sid = alloc.sid
            curve = curves.get(sid)
            if curve is None:
                continue
            copies = max(1, alloc.n_groups)
            per_copy = alloc.total_rows * row_bytes / copies
            misses = curve.monotone().misses_at(per_copy)
            accesses = self._epoch_access_totals.get(sid, 0)
            hits = max(0.0, accesses - misses)
            total += misses * miss_penalty
            total += hits * self._mean_hit_distance_ns(alloc)
        return total

    def _mean_hit_distance_ns(self, alloc) -> float:
        """Access-weighted mean round trip from consumers to their copy."""
        counts = self._acc_counts.get(alloc.sid, {})
        if not counts or alloc.total_rows == 0:
            return 0.0
        latency = self.topology.latency_ns
        num = 0.0
        den = 0
        for unit, weight in counts.items():
            gid = alloc.group_of_unit(unit)
            if gid < 0:
                # Served by the nearest group.
                gid = min(
                    alloc.group_ids,
                    key=lambda g: latency[unit, alloc.units_of_group(g)].mean(),
                )
            units = alloc.units_of_group(gid)
            shares = alloc.shares[units]
            mean_one_way = float(
                (latency[unit, units] * shares).sum() / max(1, shares.sum())
            )
            num += weight * 2.0 * mean_one_way
            den += weight
        return num / den if den else 0.0

    MIN_BLOCK_BYTES = 256
    MAX_BLOCK_BYTES = 4096

    def _pick_block_size(
        self, stream, elems: np.ndarray, cores: np.ndarray
    ) -> int:
        """Block size from the profiled spatial run length.

        The mean run of +1 element strides on the stream's busiest core
        estimates how much contiguous data one visit consumes; the block
        should cover a run (prefetch pays off) but not much more
        (overfetch wastes capacity).
        """
        if len(elems) < 8:
            return self.mapper.ata.block_bytes
        dominant = np.bincount(cores).argmax()
        mine = elems[cores == dominant]
        if len(mine) < 8:
            mine = elems
        sequential = (np.diff(mine) == 1).mean()
        run_elems = 1.0 / max(1e-3, 1.0 - min(0.999, float(sequential)))
        target = stream.elem_size * run_elems
        block = self.MIN_BLOCK_BYTES
        while block < target and block < self.MAX_BLOCK_BYTES:
            block *= 2
        return block

    def _fallback_curve(self, sid: int, accesses: int) -> MissCurve:
        """Linear miss decay from footprint: a neutral prior for streams
        the rotation has not sampled yet."""
        stream = self._streams[sid]
        capacities = self.sampler_params.capacities()
        fraction = np.clip(capacities / max(1, stream.size), 0.0, 1.0)
        return MissCurve(capacities, accesses * (1.0 - fraction))

    def process(self, epoch: Trace) -> RequestOutcome:
        return self.mapper.process(epoch)

    def end_epoch(
        self, epoch_idx: int, epoch: Trace, outcome: RequestOutcome
    ) -> None:
        if self.recorder.enabled and self._predicted_hit_rate:
            self._record_hit_accuracy(epoch_idx, epoch, outcome)
        if self.mode == "static":
            return
        if self.mode == "partial" and epoch_idx >= self.partial_epochs:
            return
        self._profile(epoch, epoch_idx)

    def _record_hit_accuracy(
        self, epoch_idx: int, epoch: Trace, outcome: RequestOutcome
    ) -> None:
        """Emit predicted-vs-realized hit rate per stream for this epoch."""
        streams = []
        for sid, predicted in sorted(self._predicted_hit_rate.items()):
            mask = epoch.sid == sid
            accesses = int(mask.sum())
            if accesses == 0:
                continue
            streams.append(
                {
                    "sid": int(sid),
                    "predicted": predicted,
                    "realized": float(outcome.hit[mask].mean()),
                    "accesses": accesses,
                }
            )
        if streams:
            self.recorder.event("hit_accuracy", epoch=epoch_idx, streams=streams)

    # ------------------------------------------------------------------

    def _profile(self, epoch: Trace, epoch_idx: int = -1) -> None:
        """One epoch's hardware profiling: bitvectors + sampled curves."""
        n_units = self.config.n_units
        max_sid = max(self._streams) if self._streams else 0
        req_unit = epoch.core.astype(np.int64) % n_units
        valid = epoch.sid >= 0
        bitvec = np.zeros((n_units, max_sid + 1), dtype=bool)
        counts = np.zeros((n_units, max_sid + 1), dtype=np.int64)
        np.add.at(counts, (req_unit[valid], epoch.sid[valid]), 1)
        bitvec = counts > 0

        self._acc_units = {}
        self._acc_counts = {}
        self._epoch_access_totals = {}
        for sid in range(max_sid + 1):
            units = np.flatnonzero(bitvec[:, sid])
            if len(units) == 0:
                continue
            self._acc_units[sid] = [int(u) for u in units]
            self._acc_counts[sid] = {
                int(u): int(counts[u, sid]) for u in units
            }
            self._epoch_access_totals[sid] = int(counts[:, sid].sum())

        assignment = self.assigner.assign(bitvec)
        for sid in assignment.assignment:
            stream = self._streams.get(sid)
            if stream is None:
                continue
            mask = epoch.sid == sid
            elems = stream.element_ids(epoch.addr[mask])
            if self.adaptive_blocks and stream.is_affine:
                block = self._pick_block_size(stream, elems, epoch.core[mask])
                if self.mapper.set_block_override(sid, block):
                    self._curves.pop(sid, None)  # granularity changed
            sampler = MissCurveSampler(stream, self.sampler_params)
            sampler.set_granularity(self.mapper.granularity_of(stream))
            fresh = sampler.observe(elems)
            previous = self._curves.get(sid)
            if previous is not None and np.array_equal(
                previous.capacities, fresh.capacities
            ):
                # Exponential smoothing damps epoch-to-epoch sampling
                # noise; without it the lookahead order flips between
                # epochs and the resulting allocation churn costs more
                # than the reconfiguration gains.
                fresh = MissCurve(
                    fresh.capacities, 0.5 * previous.misses + 0.5 * fresh.misses
                )
            self._curves[sid] = fresh
            if self.recorder.enabled:
                self.recorder.event(
                    "miss_curve",
                    epoch=epoch_idx,
                    sid=int(sid),
                    accesses=int(self._epoch_access_totals.get(sid, 0)),
                    capacities=[float(c) for c in fresh.capacities],
                    misses=[float(m) for m in fresh.misses],
                )

"""The cache configuration algorithm (Section V-C, Algorithm 1).

Given the per-stream miss curves and the set of units that accessed each
stream, the configurator co-optimizes — in one iterative loop — how much
capacity each stream gets (*sizing*), which units provide it
(*placement*), and how many independent copies exist (*replication*).

The loop repeatedly takes the steepest miss-curve slope (the classic
lookahead step) and grants that capacity increment to *every replication
group* of the chosen stream.  Read-only streams start maximally
replicated — every accessing unit is its own group, so all accesses are
local — and when space runs out the algorithm either

* **extends** a group onto the nearest unit with free space (a copy
  spreads out; remote rows contribute utility attenuated by the
  interconnect-vs-DRAM latency ratio), or
* **merges** the lowest-utility group that owns space in the contended
  unit with its nearest sibling group (replication degree drops by one,
  freeing a whole copy's worth of rows),

choosing whichever yields the higher utility.  Read-write streams always
form a single global group, keeping the cache coherent with one copy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.remap import NO_GROUP, StreamAllocation
from repro.core.stream import StreamConfig
from repro.sim.topology import Topology
from repro.util.curves import LookaheadState, MissCurve


@dataclass
class Group:
    """One replication group of one stream during configuration."""

    sid: int
    rows: dict[int, int] = field(default_factory=dict)  # unit -> rows

    @property
    def units(self) -> list[int]:
        return [u for u, r in self.rows.items() if r > 0]

    @property
    def total_rows(self) -> int:
        return sum(self.rows.values())

    def add(self, unit: int, rows: int) -> None:
        self.rows[unit] = self.rows.get(unit, 0) + rows

    def remove_empty(self) -> None:
        self.rows = {u: r for u, r in self.rows.items() if r > 0}


@dataclass
class ConfigResult:
    """Output of one configuration run."""

    allocations: list[StreamAllocation]
    iterations: int
    exhausted: set[int]
    replication_degree: dict[int, int]

    def allocation_of(self, sid: int) -> StreamAllocation:
        for alloc in self.allocations:
            if alloc.sid == sid:
                return alloc
        raise KeyError(f"no allocation for stream {sid}")

    def summary(self) -> dict:
        """JSON-able description of the chosen configuration, used by the
        observability layer to trace each reconfiguration decision."""
        return {
            "iterations": self.iterations,
            "exhausted": sorted(int(s) for s in self.exhausted),
            "streams": [
                {
                    "sid": int(alloc.sid),
                    "rows": int(alloc.total_rows),
                    "n_groups": int(alloc.n_groups),
                    "units": [int(u) for u in np.flatnonzero(alloc.shares > 0)],
                }
                for alloc in self.allocations
            ],
        }


class CacheConfigurator:
    """Runs Algorithm 1 for one reconfiguration."""

    def __init__(
        self,
        topology: Topology,
        rows_per_unit: int,
        row_bytes: int,
        affine_space_bytes: int | None = None,
        max_iterations: int = 100_000,
    ) -> None:
        self.topology = topology
        self.n_units = topology.n_units
        self.rows_per_unit = rows_per_unit
        self.row_bytes = row_bytes
        self.affine_rows_cap = (
            affine_space_bytes // row_bytes if affine_space_bytes else None
        )
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def configure(
        self,
        streams: dict[int, StreamConfig],
        curves: dict[int, MissCurve],
        acc_units: dict[int, list[int]],
        acc_counts: dict[int, dict[int, int]] | None = None,
        unit_capacity: np.ndarray | None = None,
        write_excepted: set[int] | None = None,
    ) -> ConfigResult:
        """Derive allocations for all streams with miss curves.

        ``curves`` capacities are *per-copy* bytes.  ``acc_units[sid]``
        lists the units whose cores accessed the stream last epoch;
        ``acc_counts`` optionally weights them.  ``unit_capacity``
        overrides the per-unit row budget — after hardware faults the
        surviving capacities are passed here so the configuration
        re-optimizes around the degraded machine.  ``write_excepted``
        names streams annotated read-only that have been written (the
        mapper's write exception): they are placed as a single copy.
        """
        self._streams = streams
        self._write_excepted = write_excepted or set()
        self._acc_units = {
            sid: sorted(set(units)) for sid, units in acc_units.items()
        }
        self._acc_counts = acc_counts or {}
        if unit_capacity is not None:
            self._free = np.asarray(unit_capacity, dtype=np.int64).copy()
            if len(self._free) != self.n_units:
                raise ValueError("unit_capacity must have one entry per unit")
        else:
            self._free = np.full(self.n_units, self.rows_per_unit, dtype=np.int64)
        self._affine_used = np.zeros(self.n_units, dtype=np.int64)
        self._groups: dict[int, list[Group]] = {}
        exhausted: set[int] = set()

        usable = {
            sid: curve.monotone()
            for sid, curve in curves.items()
            if self._acc_units.get(sid)
        }
        state = LookaheadState(usable)
        for sid in curves:
            if not self._acc_units.get(sid):
                exhausted.add(sid)

        iterations = 0
        while iterations < self.max_iterations:
            segment = state.next_steepest_segment(exclude=exhausted)
            if segment is None:
                break
            iterations += 1
            sid = segment.stream_id
            need_rows = max(1, math.ceil(segment.size / self.row_bytes))
            if sid not in self._groups:
                self._create_groups(sid)
            fully_placed = True
            for group in list(self._groups[sid]):
                if group not in self._groups[sid]:
                    continue  # consumed by a merge triggered this iteration
                remaining = self._place_in_group(group, need_rows)
                if remaining > 0:
                    remaining = self._extend_or_merge(group, remaining)
                if remaining > 0:
                    fully_placed = False
            if fully_placed and self._groups[sid]:
                state.commit(segment)
            else:
                exhausted.add(sid)

        allocations = self._finalize(streams, curves)
        replication = {
            sid: max(1, len(groups)) for sid, groups in self._groups.items()
        }
        return ConfigResult(
            allocations=allocations,
            iterations=iterations,
            exhausted=exhausted,
            replication_degree=replication,
        )

    # ------------------------------------------------------------------
    # Group creation and placement
    # ------------------------------------------------------------------

    def _create_groups(self, sid: int) -> None:
        """Initial replication: each accessing unit its own group for
        read-only streams (maximum replication); one global group for
        read-write streams (single copy, coherence)."""
        stream = self._streams[sid]
        units = self._acc_units[sid]
        if stream.read_only and sid not in self._write_excepted:
            self._groups[sid] = [Group(sid, {u: 0}) for u in units]
        else:
            self._groups[sid] = [Group(sid, {u: 0 for u in units})]

    def _unit_free_rows(self, unit: int, sid: int) -> int:
        """Free rows available to this stream in this unit, honouring the
        affine-space restriction (Section IV-C)."""
        free = int(self._free[unit])
        if self.affine_rows_cap is not None and self._streams[sid].is_affine:
            affine_free = self.affine_rows_cap - int(self._affine_used[unit])
            free = min(free, max(0, affine_free))
        return max(0, free)

    def _take_rows(self, unit: int, sid: int, rows: int) -> None:
        self._free[unit] -= rows
        if self._streams[sid].is_affine:
            self._affine_used[unit] += rows

    def _release_rows(self, unit: int, sid: int, rows: int) -> None:
        self._free[unit] += rows
        if self._streams[sid].is_affine:
            self._affine_used[unit] -= rows

    def _anchor_of(self, group: Group) -> int:
        """The group's centre: its hottest accessing unit."""
        acc = [u for u in self._acc_units[group.sid] if u in group.rows]
        candidates = acc or list(group.rows)
        counts = self._acc_counts.get(group.sid, {})
        return max(candidates, key=lambda u: (counts.get(u, 0), -u))

    def _place_in_group(self, group: Group, rows: int) -> int:
        """Fill ``rows`` into the group's existing units; returns leftover."""
        anchor = self._anchor_of(group)
        order = sorted(
            group.rows, key=lambda u: self.topology.latency_ns[anchor, u]
        )
        remaining = rows
        for unit in order:
            if remaining == 0:
                break
            take = min(remaining, self._unit_free_rows(unit, group.sid))
            if take > 0:
                group.add(unit, take)
                self._take_rows(unit, group.sid, take)
                remaining -= take
        return remaining

    # ------------------------------------------------------------------
    # Extend vs merge (the core of Algorithm 1)
    # ------------------------------------------------------------------

    def _extend_or_merge(self, group: Group, rows: int) -> int:
        """Get ``rows`` more rows for ``group`` by extending or merging.

        Returns the rows still unplaced (0 on success).
        """
        remaining = rows
        guard = 0
        while remaining > 0 and guard < 4 * self.n_units:
            guard += 1
            extend = self._best_extension(group, remaining)
            merge = self._best_merge(group, remaining)
            if extend is None and merge is None:
                break
            if merge is None or (
                extend is not None and extend[1] >= merge[2]
            ):
                unit, _gain = extend  # type: ignore[misc]
                take = min(remaining, self._unit_free_rows(unit, group.sid))
                group.add(unit, take)
                self._take_rows(unit, group.sid, take)
                remaining -= take
            else:
                group_a, group_b, _gain = merge
                self._merge_groups(group_a, group_b)
                if group is group_b and group_a.sid == group.sid:
                    group = group_a  # our group was absorbed
                remaining = self._place_in_group(group, remaining)
        return remaining

    def _utility(self, group: Group) -> float:
        """Group utility: allocated bytes reachable by each accessing unit,
        attenuated by interconnect distance (Section V-C example)."""
        acc = [u for u in self._acc_units.get(group.sid, []) if u in group.rows]
        util = 0.0
        for u in acc:
            for v, r in group.rows.items():
                if r > 0:
                    util += r * self.row_bytes * self.topology.attenuation(u, v)
        return util

    def _best_extension(
        self, group: Group, rows: int
    ) -> tuple[int, float] | None:
        """Nearest unit outside the group with free space; returns
        (unit, utility gain) or None."""
        anchor = self._anchor_of(group)
        acc = [u for u in self._acc_units[group.sid] if u in group.rows]
        # A unit may hold at most one replication group per stream, so an
        # extension must avoid every sibling group's units too.
        taken = {
            u for g in self._groups[group.sid] for u in g.rows
        }
        for unit in self.topology.nearest_units(anchor):
            if unit in taken:
                continue
            avail = self._unit_free_rows(unit, group.sid)
            if avail <= 0:
                continue
            placed = min(rows, avail)
            gain = sum(
                placed * self.row_bytes * self.topology.attenuation(u, unit)
                for u in acc
            )
            return unit, gain
        return None

    def _best_merge(
        self, group: Group, rows: int
    ) -> tuple[Group, Group, float] | None:
        """FindMergeGroup + NearestGroup: among all groups holding rows in
        the contended unit whose stream still has >= 2 groups, pick the
        lowest-utility one (groupA) and its nearest same-stream sibling
        (groupB).  Returns (groupA, groupB, utility delta) or None."""
        anchor = self._anchor_of(group)
        candidates: list[Group] = []
        for sid, groups in self._groups.items():
            if len(groups) < 2:
                continue
            for g in groups:
                if g.rows.get(anchor, 0) > 0:
                    candidates.append(g)
        if not candidates:
            return None
        group_a = min(candidates, key=self._utility)
        siblings = [g for g in self._groups[group_a.sid] if g is not group_a]
        if not siblings:
            return None
        group_b = min(
            siblings, key=lambda g: self._group_distance(group_a, g)
        )
        before = self._utility(group_a) + self._utility(group_b)
        after = self._merged_utility(group_a, group_b)
        # The merge frees one copy's worth of rows; credit the rows we can
        # then place locally at full utility.
        freed_here = (group_a.rows.get(anchor, 0) + group_b.rows.get(anchor, 0)) // 2
        acc = [u for u in self._acc_units[group.sid] if u in group.rows]
        local_gain = min(rows, freed_here) * self.row_bytes * max(
            (self.topology.attenuation(u, anchor) for u in acc), default=0.0
        )
        return group_a, group_b, (after - before) + local_gain

    def _group_distance(self, a: Group, b: Group) -> float:
        return min(
            self.topology.latency_ns[u, v]
            for u in (a.units or list(a.rows))
            for v in (b.units or list(b.rows))
        )

    def _merged_utility(self, a: Group, b: Group) -> float:
        merged = Group(a.sid, dict(a.rows))
        for u, r in b.rows.items():
            merged.add(u, r)
        # One copy over the union: halve the capacity.
        merged.rows = {u: r // 2 for u, r in merged.rows.items()}
        return self._utility(merged)

    def _merge_groups(self, group_a: Group, group_b: Group) -> None:
        """Merge two groups of the same stream into group_a, freeing the
        duplicate copy's rows (replication degree drops by one)."""
        if group_a.sid != group_b.sid:
            raise ValueError("can only merge groups of the same stream")
        sid = group_a.sid
        copy_rows = max(group_a.total_rows, group_b.total_rows)
        combined: dict[int, int] = dict(group_a.rows)
        for u, r in group_b.rows.items():
            combined[u] = combined.get(u, 0) + r
        total_combined = sum(combined.values())
        # Redistribute one copy proportionally over the union.
        new_rows: dict[int, int] = {}
        if total_combined > 0:
            for u, r in combined.items():
                new_rows[u] = (r * copy_rows) // total_combined
            shortfall = copy_rows - sum(new_rows.values())
            # Spread the rounding shortfall over units with headroom,
            # largest first, never exceeding what each already held.
            for u in sorted(combined, key=lambda u: -combined[u]):
                if shortfall <= 0:
                    break
                headroom = combined[u] - new_rows[u]
                grant = min(headroom, shortfall)
                new_rows[u] += grant
                shortfall -= grant
        # Release the difference.
        for u in combined:
            delta = combined.get(u, 0) - new_rows.get(u, 0)
            if delta > 0:
                self._release_rows(u, sid, delta)
            elif delta < 0:
                raise AssertionError("merge must never grow a unit's rows")
        group_a.rows = {u: r for u, r in new_rows.items() if r > 0} or {
            self._anchor_of(group_a): 0
        }
        self._groups[sid].remove(group_b)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def _finalize(
        self,
        streams: dict[int, StreamConfig],
        curves: dict[int, MissCurve],
    ) -> list[StreamAllocation]:
        allocations = []
        for sid in sorted(curves):
            shares = np.zeros(self.n_units, dtype=np.int64)
            groups_arr = np.full(self.n_units, NO_GROUP, dtype=np.int64)
            for gid, group in enumerate(self._groups.get(sid, [])):
                group.remove_empty()
                for unit, rows in group.rows.items():
                    if rows > 0:
                        shares[unit] += rows
                        groups_arr[unit] = gid
            allocations.append(
                StreamAllocation(
                    sid=sid,
                    shares=shares,
                    groups=groups_arr,
                    row_base=np.zeros(self.n_units, dtype=np.int64),
                )
            )
        return allocations


def equal_share_allocations(
    streams: dict[int, StreamConfig],
    n_units: int,
    rows_per_unit: int,
) -> list[StreamAllocation]:
    """NDPExt-static: split every unit's rows equally among all streams,
    one global replication group per stream (no replication).

    When there are more streams than rows per unit, the remainder rows
    rotate across units so every stream still receives cache space
    somewhere in the system.
    """
    if not streams:
        return []
    sids = sorted(streams)
    n = len(sids)
    base, rem = divmod(rows_per_unit, n)
    allocations = []
    for index, sid in enumerate(sids):
        shares = np.full(n_units, base, dtype=np.int64)
        if rem:
            # Unit u grants its `rem` leftover rows to streams
            # (u*rem) .. (u*rem + rem - 1) modulo the stream count.
            for unit in range(n_units):
                offset = (index - unit * rem) % n
                if offset < rem:
                    shares[unit] += 1
        if shares.sum() == 0:
            continue
        allocations.append(StreamAllocation.single_group(sid, shares))
    return allocations

"""NDPExt core: streams, remap table, stream cache, samplers, runtime."""

from repro.core.annotate import (
    AnnotatorParams,
    annotate_workload,
    annotation_report,
    detect_streams,
)
from repro.core.assignment import AssignmentResult, SamplerAssigner
from repro.core.ata import AffineTagArray
from repro.core.configure import (
    CacheConfigurator,
    ConfigResult,
    equal_share_allocations,
)
from repro.core.consistent import ConsistentRing, preserved_mask, spots_of_group
from repro.core.remap import RemapTable, StreamAllocation
from repro.core.runtime import NdpExtPolicy
from repro.core.sampler import MissCurveSampler, SamplerParams
from repro.core.slb import StreamLookaheadBuffer
from repro.core.stream import (
    StreamConfig,
    StreamKind,
    StreamTable,
    configure_stream,
)
from repro.core.stream_cache import StreamCacheMapper

__all__ = [
    "AnnotatorParams",
    "annotate_workload",
    "annotation_report",
    "detect_streams",
    "AssignmentResult",
    "SamplerAssigner",
    "AffineTagArray",
    "CacheConfigurator",
    "ConfigResult",
    "equal_share_allocations",
    "ConsistentRing",
    "preserved_mask",
    "spots_of_group",
    "RemapTable",
    "StreamAllocation",
    "NdpExtPolicy",
    "MissCurveSampler",
    "SamplerParams",
    "StreamLookaheadBuffer",
    "StreamConfig",
    "StreamKind",
    "StreamTable",
    "configure_stream",
    "StreamCacheMapper",
]

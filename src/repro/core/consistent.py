"""Consistent hashing for low-movement reconfiguration (Section V-D).

When the runtime installs a new cache configuration, the naive approach
(bulk invalidation, as in Jigsaw/CDCS) drops every cached element of every
resized stream.  NDPExt instead treats every allocated (unit, DRAM row)
as a spot on a consistent-hash ring; elements map to the nearest spot
clockwise, so resizing a stream's allocation only remaps the elements
whose nearest spot changed — the classic consistent-hashing guarantee.

:class:`ConsistentRing` provides the vectorised tag -> spot lookup, and
:func:`preserved_mask` compares two rings to find which tags keep their
physical location across a reconfiguration.
"""

from __future__ import annotations

import numpy as np

from repro.util.hashing import mix64, mix64_array

VIRTUAL_NODES = 8


class ConsistentRing:
    """A consistent-hash ring over (unit, row) spots for one stream.

    Each spot is placed at ``VIRTUAL_NODES`` pseudo-random ring positions
    for load balance.  Lookups are fully vectorised.
    """

    def __init__(self, spots: list[tuple[int, int]], salt: int = 0) -> None:
        """``spots`` are (unit, row_index) pairs; ``salt`` decorrelates
        rings of different streams."""
        if not spots:
            raise ValueError("a ring needs at least one spot")
        self.spots = list(spots)
        keys = []
        owners = []
        for index, (unit, row) in enumerate(self.spots):
            base = mix64(((unit + 1) << 32) ^ row ^ mix64(salt))
            for v in range(VIRTUAL_NODES):
                keys.append(mix64(base + v))
                owners.append(index)
        order = np.argsort(np.array(keys, dtype=np.uint64))
        self._positions = np.array(keys, dtype=np.uint64)[order]
        self._owners = np.array(owners, dtype=np.int64)[order]

    def __len__(self) -> int:
        return len(self.spots)

    def lookup(self, tags: np.ndarray) -> np.ndarray:
        """Map each tag to the index (into ``spots``) of its owning spot."""
        hashes = mix64_array(np.asarray(tags, dtype=np.uint64), salt=17)
        idx = np.searchsorted(self._positions, hashes, side="right")
        idx[idx == len(self._positions)] = 0  # wrap around the ring
        return self._owners[idx]

    def units_of(self, spot_indices: np.ndarray) -> np.ndarray:
        units = np.array([u for u, _ in self.spots], dtype=np.int64)
        return units[spot_indices]

    def rows_of(self, spot_indices: np.ndarray) -> np.ndarray:
        rows = np.array([r for _, r in self.spots], dtype=np.int64)
        return rows[spot_indices]


def spots_of_group(units: np.ndarray, shares: np.ndarray) -> list[tuple[int, int]]:
    """Enumerate the (unit, row_index) spots of one replication group."""
    spots: list[tuple[int, int]] = []
    for unit, rows in zip(units, shares):
        spots.extend((int(unit), r) for r in range(int(rows)))
    return spots


def preserved_mask(
    old_ring: ConsistentRing, new_ring: ConsistentRing, tags: np.ndarray
) -> np.ndarray:
    """True for tags whose physical (unit, row) is identical in both rings.

    These are the cached elements a reconfiguration does not need to
    invalidate or move when consistent hashing is enabled.
    """
    tags = np.asarray(tags, dtype=np.int64)
    old_spots = old_ring.lookup(tags)
    new_spots = new_ring.lookup(tags)
    old_units = old_ring.units_of(old_spots)
    new_units = new_ring.units_of(new_spots)
    old_rows = old_ring.rows_of(old_spots)
    new_rows = new_ring.rows_of(new_spots)
    return (old_units == new_units) & (old_rows == new_rows)

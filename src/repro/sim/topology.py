"""System topology: stacks, units, and interconnect distances.

The NDP system (Fig. 1) is a grid of 3D memory stacks connected by
inter-stack links; within each stack, 16 NDP units sit on a 4x4 logic-die
mesh (HMC-style) or behind a shared crossbar (HBM-style, where the whole
stack behaves as one NUCA node).

This module precomputes, for every (source unit, destination unit) pair:

* the number of intra-stack and inter-stack hops,
* the one-way interconnect latency in ns, and
* the interconnect energy per transferred byte,

so the engine can charge network cost with pure array indexing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.params import SystemConfig


@dataclass(frozen=True)
class UnitPosition:
    """Where a unit lives: which stack, and where inside the stack."""

    unit: int
    stack: int
    stack_x: int
    stack_y: int
    mesh_x: int
    mesh_y: int


class Topology:
    """Precomputed distance/latency/energy matrices for a system config."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.n_units = config.n_units
        self.positions = [self._position_of(u) for u in range(self.n_units)]
        # Vectorized unit -> stack map for per-request spatial attribution
        # (the observability layer bins link traffic by stack pair).
        self.unit_stack = np.array(
            [p.stack for p in self.positions], dtype=np.int64
        )
        self.n_stacks = config.stacks_x * config.stacks_y
        self.intra_hops, self.inter_hops = self._hop_matrices()
        noc = config.noc
        self.latency_ns = (
            self.intra_hops * noc.intra_hop_ns + self.inter_hops * noc.inter_hop_ns
        )
        self.energy_pj_per_bit = (
            self.intra_hops * noc.intra_pj_per_bit
            + self.inter_hops * noc.inter_pj_per_bit
        )
        # The configuration algorithm asks for nearest-unit orders and
        # attenuation factors once per candidate placement — tens of
        # thousands of times per run at small scale — so both are
        # precomputed: attenuation as one matrix expression, orders
        # lazily per source (callers iterate; they must not mutate).
        dram_ns = config.ndp_dram.row_miss_ns
        self.attenuation_matrix = dram_ns / (dram_ns + 2.0 * self.latency_ns)
        self._nearest: dict[int, list[int]] = {}

    def _position_of(self, unit: int) -> UnitPosition:
        per_stack = self.config.units_per_stack
        stack, local = divmod(unit, per_stack)
        sy, sx = divmod(stack, self.config.stacks_x)
        my, mx = divmod(local, self.config.mesh_x)
        return UnitPosition(unit, stack, sx, sy, mx, my)

    def _hop_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_units
        intra = np.zeros((n, n), dtype=np.int64)
        inter = np.zeros((n, n), dtype=np.int64)
        hbm_style = self.config.memory_style == "hbm"
        for src in range(n):
            ps = self.positions[src]
            for dst in range(n):
                pd = self.positions[dst]
                if src == dst:
                    continue
                stack_hops = abs(ps.stack_x - pd.stack_x) + abs(
                    ps.stack_y - pd.stack_y
                )
                inter[src, dst] = stack_hops
                if hbm_style:
                    # All units of a stack sit behind one crossbar: one hop
                    # to reach the crossbar (and one more if the request
                    # stays within the stack but targets another unit).
                    intra[src, dst] = 1 if stack_hops == 0 else 2
                else:
                    if stack_hops == 0:
                        intra[src, dst] = abs(ps.mesh_x - pd.mesh_x) + abs(
                            ps.mesh_y - pd.mesh_y
                        )
                    else:
                        # Cross-stack: traverse the source mesh to the edge
                        # router, hop between stacks, traverse the target
                        # mesh.  We charge the average mesh-crossing cost.
                        intra[src, dst] = (
                            ps.mesh_x + ps.mesh_y + pd.mesh_x + pd.mesh_y
                        ) // 2 + 1
        return intra, inter

    def stack_of(self, unit: int) -> int:
        return self.positions[unit].stack

    def units_in_stack(self, stack: int) -> list[int]:
        return [u for u in range(self.n_units) if self.positions[u].stack == stack]

    def distance_ns(self, src: int, dst: int) -> float:
        """One-way interconnect latency between two units."""
        return float(self.latency_ns[src, dst])

    def round_trip_ns(self, src: int, dst: int) -> float:
        return 2.0 * self.distance_ns(src, dst)

    def nearest_units(self, src: int) -> list[int]:
        """All units sorted by distance from ``src`` (closest first, self
        included at distance zero).  The returned list is a shared cached
        object — iterate it, do not mutate it."""
        cached = self._nearest.get(src)
        if cached is None:
            order = np.argsort(self.latency_ns[src], kind="stable")
            cached = [int(u) for u in order]
            self._nearest[src] = cached
        return cached

    def attenuation(self, src: int, dst: int) -> float:
        """The configuration algorithm's attenuation factor k(src, dst).

        Defined in Section V-C as DRAM latency / (DRAM latency +
        interconnect latency): remote units contribute less utility
        because each access pays the interconnect on top of DRAM.
        """
        return float(self.attenuation_matrix[src, dst])

    def mean_latency_from(self, src: int, dsts: list[int]) -> float:
        if not dsts:
            raise ValueError("need at least one destination")
        return float(np.mean([self.latency_ns[src, d] for d in dsts]))

    def centroid_unit(self, units: list[int], weights: list[float] | None = None) -> int:
        """The unit minimizing weighted average distance to ``units``.

        Used by the centre-of-mass placement of the NUCA baselines.
        """
        if not units:
            raise ValueError("need at least one unit")
        w = np.asarray(weights if weights is not None else [1.0] * len(units))
        if len(w) != len(units):
            raise ValueError("weights must match units")
        costs = self.latency_ns[:, units] @ w
        return int(np.argmin(costs))

"""The trace-driven simulation engine.

The engine owns everything policy-independent: epoch splitting, L1
filtering, interconnect and DRAM timing, extended-memory misses, energy
accounting, and the in-order-core runtime model.  A *DRAM-cache policy*
(NDPExt's stream cache, or one of the NUCA baselines) plugs in through
:class:`DramCachePolicy` and decides, for each post-L1 request: whether it
hits, which unit serves it, which local DRAM row it touches, and what
metadata cost it pays.

Per epoch the flow is::

    trace epoch -> L1 filter (per core) -> policy.process() ->
    engine charges NoC + DRAM + CXL latency/energy -> policy.end_epoch()

Runtime follows the paper's in-order cores: a core's time is its compute
cycles plus the sum of its memory latencies; the workload finishes when
the slowest core does.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace

import numpy as np

from repro.faults import EpochFaults, FaultSchedule, FaultState
from repro.obs.histogram import TIERS, TierHistogramSet
from repro.obs.recorder import NullRecorder
from repro.obs.spatial import SpatialAccumulator
from repro.obs.timeline import EpochRecord, Timeline
from repro.obs.tracing import NULL_TRACER, current
from repro.sim.kernels import BACKENDS, resolve_backend, use_backend
from repro.sim.cxl import ExtendedMemory
from repro.sim.dram import DramModel
from repro.sim.metrics import (
    EnergyBreakdown,
    HitStats,
    LatencyBreakdown,
    SimulationReport,
)
from repro.sim.params import CACHELINE_BYTES, SystemConfig
from repro.sim.sram_cache import filter_cores_through_l1, filter_through_l1
from repro.sim.topology import Topology
from repro.workloads.trace import Trace, Workload

# Interconnect message sizes: a request carries a header, a response
# carries the data plus a header.
HEADER_BYTES = 16

# Static power per NDP unit (core + logic-die periphery).  The paper's
# Fig. 6 shows static energy tracking execution time; the absolute value
# only scales that component.
STATIC_W_PER_UNIT = 0.2

# Affine (sequential/strided) accesses are prefetchable — the stream
# literature the paper builds on ([74]-[76]) exists precisely to overlap
# them — so an in-order core hides most of their latency.  Indirect
# accesses are data-dependent and serialize.  The same factor applies to
# the host (hardware stride prefetchers achieve the equivalent).
AFFINE_MLP = 4.0

# Serving-tier indices into repro.obs.histogram.TIERS.
TIER_LOCAL, TIER_INTRA, TIER_INTER, TIER_EXTENDED = range(len(TIERS))


@dataclass
class RequestOutcome:
    """Per-request decisions returned by a policy for one epoch.

    All arrays are parallel to the post-L1 epoch trace.

    * ``hit`` — served by the NDP DRAM cache.
    * ``serving_unit`` — unit whose DRAM serves a hit / receives the fill
      on a miss; -1 means the request bypasses the cache entirely.
    * ``local_row`` — DRAM row (unit-local) the access touches; used for
      row-buffer simulation.  Ignored where ``serving_unit`` is -1.
    * ``miss_probe_dram`` — True when discovering the miss itself required
      a DRAM touch at the home unit (in-DRAM tags for indirect streams and
      for the cacheline baselines' tag-with-data layout).
    * ``metadata_ns`` — per-request metadata latency on the critical path
      (SLB hit/refill for NDPExt; metadata-cache hit/miss for baselines).
    * ``metadata_dram_accesses`` — count of extra in-DRAM metadata
      accesses (energy accounting).
    """

    hit: np.ndarray
    serving_unit: np.ndarray
    local_row: np.ndarray
    miss_probe_dram: np.ndarray
    metadata_ns: np.ndarray
    metadata_dram_accesses: int = 0
    rescued_first_touches: int = 0

    def __post_init__(self) -> None:
        n = len(self.hit)
        for name in ("serving_unit", "local_row", "miss_probe_dram", "metadata_ns"):
            if len(getattr(self, name)) != n:
                raise ValueError(
                    f"RequestOutcome.{name} has length "
                    f"{len(getattr(self, name))}, expected {n}"
                )
        if bool(np.any(self.hit & (self.serving_unit < 0))):
            raise ValueError("a hit must name the unit that served it")


@dataclass
class ReconfigStats:
    """What a reconfiguration did at an epoch boundary."""

    movements: int = 0
    invalidations: int = 0


class DramCachePolicy(ABC):
    """Interface every DRAM-cache management scheme implements."""

    name: str = "abstract"

    # Observability hook: the engine rebinds this before ``setup`` so a
    # policy can emit decision events and profiling spans.  The shared
    # null default keeps standalone policy use (tests, notebooks) free.
    recorder: NullRecorder = NullRecorder()

    def bind_recorder(self, recorder: NullRecorder) -> None:
        """Attach the run's recorder (called by the engine)."""
        self.recorder = recorder

    @abstractmethod
    def setup(
        self, config: SystemConfig, topology: Topology, workload: Workload
    ) -> None:
        """Bind to a system and workload before the first epoch."""

    def begin_epoch(self, epoch_idx: int) -> ReconfigStats:
        """Reconfigure for the coming epoch; default: nothing changes."""
        return ReconfigStats()

    def on_faults(
        self, epoch_idx: int, events: EpochFaults, state: FaultState
    ) -> ReconfigStats:
        """React to newly injected hardware faults (graceful degradation).

        Default: no reaction — a policy that ignores faults degrades
        fail-stop, because the engine demotes every request it still
        sends to a dead unit or a quarantined DRAM row into an
        extended-memory bypass.
        """
        return ReconfigStats()

    @abstractmethod
    def process(self, epoch: Trace) -> RequestOutcome:
        """Decide hit/miss and serving location for each request."""

    def end_epoch(self, epoch_idx: int, epoch: Trace, outcome: RequestOutcome) -> None:
        """Observe the finished epoch (profiling input for reconfiguration)."""


@dataclass
class EngineOptions:
    """Engine knobs that are not part of the system description.

    ``backend`` picks the kernel implementation for the exact hot-loop
    scans (see :mod:`repro.sim.kernels`): ``numpy`` (default), ``python``
    (the slow reference the benchmark's ``kernel_speedup`` is measured
    against), or ``numba`` (optional JIT; falls back to numpy with a
    recorded warning when numba is not installed).  Reports are
    bit-identical across backends.
    """

    exact_l1: bool = False
    max_epochs: int | None = None
    cxl_port_unit: int = 0
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown engine backend {self.backend!r}; "
                f"choose from {BACKENDS}"
            )


class SimulationEngine:
    """Runs one workload under one policy on one system configuration."""

    def __init__(
        self,
        config: SystemConfig,
        options: EngineOptions | None = None,
        faults: FaultSchedule | None = None,
        recorder: NullRecorder | None = None,
    ) -> None:
        self.config = config
        self.options = options or EngineOptions()
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.kernels, fallback = resolve_backend(self.options.backend)
        if fallback is not None:
            warnings.warn(fallback, RuntimeWarning, stacklevel=2)
            self.recorder.event(
                "backend_fallback",
                requested=self.options.backend,
                resolved=self.kernels.name,
                message=fallback,
            )
        self.fault_schedule = faults
        self.fault_state: FaultState | None = None
        self.topology = Topology(config)
        self.ndp_dram = DramModel(config.ndp_dram)
        self.extended = ExtendedMemory(config.cxl, config.ext_dram)
        self._ext_accesses = 0
        self._ext_lane_accesses: dict[int, int] = {}
        self._inter_stack_bytes = 0
        self._tracer = NULL_TRACER
        # Distributional/spatial observers; only constructed (in run) when
        # a live recorder is attached, so the null-recorder path performs
        # no tier classification or scatter-adds at all.
        self._obs_hist: TierHistogramSet | None = None
        self._obs_spatial: SpatialAccumulator | None = None

    def _resolve_tracer(self):
        """Phase attribution target: the ambient perf tracer when one is
        active (`profile` verb, traced bench), else the recorder's
        profiler tracer so legacy `trace` output keeps its span table,
        else the shared no-op.  Spans never touch simulation state, so
        outputs are bit-identical whichever target is live."""
        tracer = current()
        if not tracer.enabled and self.recorder.enabled:
            tracer = self.recorder.profiler.tracer
        return tracer

    def run(self, workload: Workload, policy: DramCachePolicy) -> SimulationReport:
        tracer = self._resolve_tracer()
        with tracer.span("engine.run"):
            session = EngineSession(self, workload, policy, tracer)
            epochs = workload.trace.epochs(self.config.epoch_accesses)
            if self.options.max_epochs is not None:
                epochs = epochs[: self.options.max_epochs]
            # One trace-wide sort yields every epoch's stable-by-core
            # permutation (the L1 filter's grouping), instead of one sort
            # — previously one boolean scan per core — per epoch.
            core_orders = self._epoch_core_orders(epochs)
            for epoch, order in zip(epochs, core_orders):
                session.step(epoch, order=order)
            return session.finish()

    def begin_session(
        self, workload: Workload, policy: DramCachePolicy
    ) -> "EngineSession":
        """Open an incremental session: the serving-loop entry point.

        Epoch traces are then fed one at a time through
        :meth:`EngineSession.step` — the engine does not need the whole
        trace up front — and :meth:`EngineSession.finish` produces the
        same :class:`SimulationReport` the batch :meth:`run` would.
        ``workload`` supplies the stream table, thread count, and
        compute cost; its trace is only consulted for ``n_cores``, so a
        serving caller may slice request batches from it at any
        granularity (or from elsewhere entirely).
        """
        return EngineSession(self, workload, policy, self._resolve_tracer())

    def _append_epoch_record(
        self,
        timeline,
        recorder,
        *,
        epoch_idx,
        epoch,
        post_l1,
        hits,
        breakdown,
        energy,
        ext_delta,
        inter_delta,
        prev_demoted,
        epoch_movements,
        epoch_invalidations,
        events,
        cycles_total,
    ) -> None:
        """Build and record one epoch's timeline row (recorded runs only)."""
        record = EpochRecord(
            epoch=epoch_idx,
            requests=len(epoch),
            post_l1_requests=len(post_l1),
            hits=hits,
            breakdown=breakdown,
            energy=energy,
            ext_accesses=ext_delta,
            ext_bytes=ext_delta * CACHELINE_BYTES,
            inter_stack_bytes=inter_delta,
            effective_lanes=self.extended.effective_lanes,
            reconfig_movements=epoch_movements,
            reconfig_invalidations=epoch_invalidations,
            fault_units=len(events.unit_failures) if events else 0,
            fault_rows=len(events.row_faults) if events else 0,
            demoted_requests=(
                self.fault_state.report.demoted_requests - prev_demoted
                if self.fault_state is not None
                else 0
            ),
            cycles_total=cycles_total,
        )
        timeline.append(record)
        recorder.event("epoch", **record.to_json())

    def _runtime_cycles(
        self,
        core_stall_ns: np.ndarray,
        core_accesses: np.ndarray,
        workload: Workload,
    ) -> float:
        compute_cycles = core_accesses * workload.compute_cycles_per_access
        thread_cycles = compute_cycles + core_stall_ns / self.config.core.cycle_ns
        unit_cycles = self.kernels.segment_sum(
            self._thread_units, thread_cycles, self.config.n_units
        )
        core_bound = float(np.max(unit_cycles)) if len(unit_cycles) else 0.0
        bw_bound = self._bandwidth_bound_ns() / self.config.core.cycle_ns
        return max(core_bound, bw_bound)

    @staticmethod
    def _epoch_core_orders(epochs: list[Trace]) -> list[np.ndarray]:
        """Stable-by-core sort permutation for every epoch, in one pass.

        A single trace-wide stable sort keyed by (epoch, core) yields
        each epoch's grouping for the L1 filter; the per-epoch slices
        only need their offsets subtracted.  The two keys are packed
        into one int64 so the sort is a single radix pass (numpy's
        stable sort for integer keys) — measurably faster than the
        equivalent ``np.lexsort((pos, cores, epoch_ids))``, and
        identical by stability.
        """
        lengths = np.array([len(e) for e in epochs], dtype=np.int64)
        total = int(lengths.sum())
        if total == 0:
            return [np.empty(0, dtype=np.int64) for _ in epochs]
        cores = np.concatenate([e.core for e in epochs]).astype(np.int64)
        epoch_ids = np.repeat(np.arange(len(epochs), dtype=np.int64), lengths)
        span = int(cores.max()) + 1 if len(cores) else 1
        if cores.min() >= 0 and len(epochs) * span < (1 << 62):
            order = np.argsort(
                epoch_ids * np.int64(span) + cores, kind="stable"
            )
        else:
            pos = np.arange(total, dtype=np.int64)
            order = np.lexsort((pos, cores, epoch_ids))
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        parts = np.split(order, np.cumsum(lengths)[:-1])
        return [part - start for part, start in zip(parts, starts)]

    # Queueing delay is capped at this utilization: beyond it the open
    # M/D/1-style estimate diverges and real systems throttle instead.
    MAX_UTILIZATION = 0.95

    def _ext_service_ns(self) -> float:
        """Time one access occupies an extended-memory channel."""
        ext = self.config.ext_dram
        channel_bytes_per_ns = ext.freq_mhz * 16.0 / 1000.0
        return CACHELINE_BYTES / channel_bytes_per_ns + ext.row_miss_ns / ext.banks

    def _queueing_delay(
        self,
        epoch: Trace,
        epoch_stall: np.ndarray,
        ext_mask: np.ndarray,
        workload: Workload,
        unit: np.ndarray | None = None,
        n_ext: int | None = None,
    ) -> float:
        """Per-miss queueing delay at the shared extended memory.

        The channels behind the CXL device (or the host's DDR bus) are a
        shared server: with many in-order cores missing concurrently,
        waiting time grows as utilization approaches 1 (M/D/1-style
        rho/(2(1-rho)) scaling).  The epoch duration is estimated from
        the already-charged latencies, iterated once so the added delay
        feeds back into the utilization estimate.  ``unit`` and
        ``n_ext`` accept precomputed per-epoch values so the hot loop
        does not repeat the modulo and mask reductions.
        """
        if n_ext is None:
            n_ext = int(ext_mask.sum())
        if n_ext == 0:
            return 0.0
        if unit is None:
            unit = epoch.core.astype(np.int64) % self.config.n_units
        service = self._ext_service_ns() / self.config.cxl.channels
        # Per-unit compute time is stall-independent; add it once.  The
        # per-access cost is constant, so the segment sum is a count
        # times that constant.
        compute = self.kernels.segment_count(unit, self.config.n_units) * (
            workload.compute_cycles_per_access * self.config.core.cycle_ns
        )
        queue_ns = 0.0
        for _ in range(2):
            unit_ns = self.kernels.segment_sum(
                unit, epoch_stall + queue_ns * ext_mask, self.config.n_units
            )
            duration = float(np.max(unit_ns + compute))
            if duration <= 0:
                return 0.0
            rho = min(n_ext * service / duration, self.MAX_UTILIZATION)
            queue_ns = service * rho / (2.0 * max(1e-9, 1.0 - rho))
        return queue_ns

    def _epoch_duration_ns(
        self,
        epoch: Trace,
        epoch_stall: np.ndarray,
        workload: Workload,
        unit: np.ndarray | None = None,
    ) -> float:
        """Wall-clock estimate of one epoch: the busiest unit's time."""
        if unit is None:
            unit = epoch.core.astype(np.int64) % self.config.n_units
        unit_ns = self.kernels.segment_sum(unit, epoch_stall, self.config.n_units)
        compute = self.kernels.segment_count(unit, self.config.n_units) * (
            workload.compute_cycles_per_access * self.config.core.cycle_ns
        )
        return float(np.max(unit_ns + compute))

    def _bandwidth_bound_ns(self) -> float:
        """Roofline bound from shared next-level-memory bandwidth.

        Every cache miss occupies an extended-memory DDR channel (burst
        transfer plus its share of bank-level row cycling) and the CXL
        link.  Many cores hammering few channels makes this the binding
        constraint — the regime that motivates NDP in the first place.
        """
        bounds = [0.0]
        n_ext = self._ext_accesses
        if n_ext:
            ext = self.config.ext_dram
            # Per-channel DDR bandwidth: freq x 2 (DDR) x 8 bytes per beat.
            channel_bytes_per_ns = ext.freq_mhz * 16.0 / 1000.0
            ddr_service_ns = (
                CACHELINE_BYTES / channel_bytes_per_ns + ext.row_miss_ns / ext.banks
            )
            bounds.append(n_ext * ddr_service_ns / self.config.cxl.channels)
            # CXL link: ~4 GB/s usable per lane per direction.  Accesses
            # made while the link was down-trained occupy it longer, so
            # the bound sums per trained width.
            link_ns = 0.0
            for lanes, count in self._ext_lane_accesses.items():
                link_bytes_per_ns = 4.0 * lanes
                link_ns += count * CACHELINE_BYTES / link_bytes_per_ns
            bounds.append(link_ns)
        if self._inter_stack_bytes:
            # Inter-stack links: Table II's 32 GB/s per direction, one
            # bidirectional link per stack-mesh edge.
            cfg = self.config
            links = max(
                1,
                (cfg.stacks_x - 1) * cfg.stacks_y
                + (cfg.stacks_y - 1) * cfg.stacks_x,
            )
            noc_bytes_per_ns = cfg.noc.inter_bw_gbps * links  # GB/s == B/ns
            bounds.append(self._inter_stack_bytes / noc_bytes_per_ns)
        return max(bounds)

    def _l1_filter(self, epoch: Trace, order: np.ndarray | None = None) -> tuple[Trace, dict]:
        """Filter the epoch through each core's L1D; return the miss trace.

        The fast path runs all cores in one grouped window-LRU pass
        (``order`` carries the precomputed stable-by-core permutation);
        the exact reference model keeps the per-core loop, tests only.
        """
        if self.options.exact_l1:
            mask = np.zeros(len(epoch), dtype=bool)
            for core in np.unique(epoch.core):
                sel = epoch.core == core
                result = filter_through_l1(
                    epoch.addr[sel], self.config.core.l1d, exact=True
                )
                mask[sel] = result.hit_mask
        else:
            mask = filter_cores_through_l1(
                epoch.addr, epoch.core, self.config.core.l1d, order=order
            )
        post = epoch.select(~mask)
        return post, {"mask": mask, "hits": int(mask.sum()), "total": len(epoch)}

    def _charge(
        self,
        trace: Trace,
        outcome: RequestOutcome,
        breakdown: LatencyBreakdown,
        energy: EnergyBreakdown,
        hits: HitStats,
        core_unit: np.ndarray | None = None,
        in_stream: np.ndarray | None = None,
        affine: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Charge latency/energy for one epoch.

        Returns ``(stall, goes_ext, n_ext)``: the per-request stall ns
        observed by the issuing cores, the mask of requests served by
        the extended memory (misses plus bypasses), and that mask's
        population count (so callers do not re-reduce it).  The optional
        ``core_unit`` / ``in_stream`` / ``affine`` arrays accept the
        per-epoch invariants the run loop already computed.
        """
        n = len(trace)
        stall = np.array(outcome.metadata_ns, dtype=np.float64, copy=True)
        breakdown.metadata_ns += float(stall.sum())

        if core_unit is None:
            core_unit = trace.core.astype(np.int64) % self.config.n_units
        serving = outcome.serving_unit
        hit = outcome.hit
        cached = serving >= 0
        serving_clip = np.clip(serving, 0, None)

        # One flat gather index serves every topology table (latency,
        # hop counts, energy) instead of four 2-D fancy-index passes.
        flat = core_unit * self.topology.n_units + serving_clip
        one_way = self.topology.latency_ns.ravel()[flat]
        intra_hops = self.topology.intra_hops.ravel()[flat]
        inter_hops = self.topology.inter_hops.ravel()[flat]
        noc_pj = self.topology.energy_pj_per_bit.ravel()[flat]

        # --- Interconnect: request to home unit and response back. ---
        noc_ns = np.zeros(n)
        noc_ns[cached] = 2.0 * one_way[cached]
        intra_part = intra_hops * self.config.noc.intra_hop_ns
        inter_part = inter_hops * self.config.noc.inter_hop_ns
        breakdown.intra_noc_ns += float(2.0 * intra_part[cached].sum())
        breakdown.inter_noc_ns += float(2.0 * inter_part[cached].sum())

        msg_bits = (CACHELINE_BYTES + 2 * HEADER_BYTES) * 8
        energy.noc_nj += float(2.0 * noc_pj[cached].sum()) * msg_bits / 1000.0

        # Inter-stack traffic for the link-bandwidth roofline: every
        # cross-stack round trip moves a request + response.
        crosses = cached & (inter_hops > 0)
        self._inter_stack_bytes += int(crosses.sum()) * (msg_bits // 8) * 2

        # --- NDP DRAM: hits and in-DRAM miss probes, row-buffer aware. ---
        tracer = self._tracer
        with tracer.span("engine.dram_charge"):
            touches = cached & (hit | outcome.miss_probe_dram)
            dram_ns = np.zeros(n)
            if touches.any():
                # Row-buffer state is per unit; build a composite bank id
                # of (unit, bank-of-row) so one vectorised pass covers
                # all units.
                rows = outcome.local_row[touches]
                units = serving[touches]
                banks = units * self.config.ndp_dram.banks + (
                    rows % self.config.ndp_dram.banks
                )
                row_hit = self.kernels.row_hit_mask(banks, rows)
                timing = self.config.ndp_dram
                dram_ns[touches] = np.where(
                    row_hit, timing.row_hit_ns, timing.row_miss_ns
                )
                energy.ndp_dram_nj += self.ndp_dram.energy_nj(row_hit)
            breakdown.dram_ns += float(dram_ns.sum())

        # --- Misses: CXL + DDR5, plus NoC from home unit to the CXL port. ---
        with tracer.span("engine.cxl_charge"):
            miss = cached & ~hit
            bypass = ~cached
            goes_ext = miss | bypass
            n_ext = int(np.count_nonzero(goes_ext))
            ext_ns = np.zeros(n)
            ext_latency_total = 0.0
            origin = None
            if n_ext:
                port = self.options.cxl_port_unit
                ext_result = self.extended.access(trace.addr[goes_ext])
                ext_ns[goes_ext] = ext_result.latency_ns
                ext_latency_total = float(ext_result.latency_ns.sum())
                # Home unit forwards the miss to the CXL port; the
                # response returns to the requesting core.  Bypass
                # requests go directly from the core to the port.
                origin = np.where(miss, serving_clip, core_unit)[goes_ext]
                to_port = self.topology.latency_ns[origin, port]
                from_port = self.topology.latency_ns[port, core_unit[goes_ext]]
                ext_ns[goes_ext] += to_port + from_port
                breakdown.inter_noc_ns += float((to_port + from_port).sum())
                energy.cxl_nj += ext_result.link_energy_nj
                energy.ext_dram_nj += ext_result.dram_energy_nj
                if self.fault_state is not None:
                    fault_ns = self.fault_state.cxl_penalty_ns(
                        n_ext, self.extended
                    )
                    if fault_ns is not None:
                        ext_ns[goes_ext] += fault_ns
                        ext_latency_total += float(fault_ns.sum())
                self._ext_accesses += n_ext
                lanes_now = self.extended.effective_lanes
                self._ext_lane_accesses[lanes_now] = (
                    self._ext_lane_accesses.get(lanes_now, 0) + n_ext
                )
                # Fill energy: the fetched line is written into the home
                # unit.
                fills = int(miss.sum())
                energy.ndp_dram_nj += fills * (
                    self.config.ndp_dram.access_energy_nj(
                        CACHELINE_BYTES, row_miss=True
                    )
                )
            breakdown.extended_ns += ext_latency_total

        # Metadata DRAM accesses consume DRAM energy too.
        energy.ndp_dram_nj += (
            outcome.metadata_dram_accesses
            * self.config.ndp_dram.access_energy_nj(8, row_miss=False)
        )

        stall += noc_ns + dram_ns + ext_ns

        if self._obs_hist is not None:
            # Distributional/spatial observability (recorded runs only).
            # ``stall`` at this point is the request's full service
            # latency (metadata + NoC + DRAM + extended) before the
            # MLP overlap division — the Fig. 2(a) notion of access
            # latency, histogrammed by serving tier.
            with tracer.span("engine.observability"):
                tier = np.full(n, TIER_EXTENDED, dtype=np.int64)
                local = hit & (serving == core_unit)
                remote = hit & ~local
                tier[local] = TIER_LOCAL
                tier[remote & (inter_hops == 0)] = TIER_INTRA
                tier[remote & (inter_hops > 0)] = TIER_INTER
                self._obs_hist.observe(tier, stall)
                self._obs_spatial.observe_epoch(
                    core_unit=core_unit,
                    serving=serving,
                    hit=hit,
                    touches=touches,
                    dram_ns=dram_ns,
                    goes_ext=goes_ext,
                    origin=origin,
                    port_unit=self.options.cxl_port_unit,
                    round_trip_bytes=2 * (CACHELINE_BYTES + 2 * HEADER_BYTES),
                )

        # Prefetch overlap: affine accesses expose memory-level
        # parallelism, so the core observes only 1/AFFINE_MLP of their
        # latency; indirect stream accesses overlap by the system's
        # indirect_mlp (1 on the host, which lacks stream engines).
        # Bandwidth/queueing effects still see the full demand (they are
        # computed from access counts, not stall).
        if in_stream is None:
            in_stream = trace.sid >= 0
        if affine is None:
            affine = (
                self._sid_affine[np.clip(trace.sid, -1, len(self._sid_affine) - 2)]
                & in_stream
            )
        stall[affine] /= AFFINE_MLP
        indirect = in_stream & ~affine
        stall[indirect] /= self.config.indirect_mlp

        hits.cache_hits_local += int((hit & (serving == core_unit)).sum())
        hits.cache_hits_remote += int((hit & cached & (serving != core_unit)).sum())
        hits.cache_misses += n_ext
        return stall, goes_ext, n_ext


@dataclass
class StepStats:
    """What one incremental epoch step did (deltas, not totals).

    Returned by :meth:`EngineSession.step` so a serving loop can account
    per-batch latency and health without waiting for the final report.
    All latency/hit fields are this step's contribution alone.
    """

    epoch: int
    requests: int
    post_l1_requests: int
    hits: HitStats
    movements: int
    invalidations: int
    fault_events: EpochFaults | None
    demoted_requests: int
    cycles_total: float


class EngineSession:
    """One simulation run, advanced one epoch at a time.

    Owns every accumulator the old monolithic run loop kept on its
    stack, so the batch path (``SimulationEngine.run``) and a serving
    loop (``SimulationEngine.begin_session``) share a single code path:
    feeding the same epoch traces in the same order is bit-identical by
    construction.  ``step`` processes one epoch trace; ``finish`` closes
    the run and builds the :class:`SimulationReport`.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        workload: Workload,
        policy: DramCachePolicy,
        tracer=None,
    ) -> None:
        self.engine = engine
        self.workload = workload
        self.policy = policy
        self.tracer = tracer if tracer is not None else engine._resolve_tracer()
        engine._tracer = self.tracer
        recorder = engine.recorder
        self.recorder = recorder
        policy.bind_recorder(recorder)
        # Policy setup (miss-curve sampling, metadata sizing) runs on the
        # engine's kernel backend too: cachesim primitives dispatch to
        # the ambient backend, so one scope covers them all.
        with use_backend(engine.kernels), self.tracer.span("policy.setup"):
            policy.setup(engine.config, engine.topology, workload)
        # Per-sid affine flag for the prefetch-overlap (MLP) model.
        max_sid = max((s.sid for s in workload.streams), default=-1)
        engine._sid_affine = np.zeros(max_sid + 2, dtype=bool)
        for stream in workload.streams:
            engine._sid_affine[stream.sid] = stream.is_affine

        # The trace may carry more logical cores (threads) than the system
        # has physical units; threads are assigned round-robin and a
        # unit's time is the sum of its threads' times (in-order cores).
        n_threads = max(workload.trace.n_cores, 1)
        self.core_stall_ns = np.zeros(n_threads)
        self.core_accesses = np.zeros(n_threads, dtype=np.int64)
        engine._thread_units = (
            np.arange(n_threads, dtype=np.int64) % engine.config.n_units
        )
        engine._ext_accesses = 0
        engine._ext_lane_accesses = {}
        engine._inter_stack_bytes = 0
        engine.fault_state = (
            FaultState(engine.fault_schedule, engine.config, recorder=recorder)
            if engine.fault_schedule is not None
            else None
        )
        engine.extended.effective_lanes = engine.config.cxl.lanes
        self.breakdown = LatencyBreakdown()
        self.energy = EnergyBreakdown()
        self.hits = HitStats()
        self.movements = 0
        self.invalidations = 0
        self.per_epoch_cycles: list[float] = []
        self.timeline = Timeline() if recorder.enabled else None
        if recorder.enabled:
            engine._obs_hist = TierHistogramSet()
            engine._obs_spatial = SpatialAccumulator(
                engine.config.n_units, engine.topology.unit_stack
            )
        else:
            engine._obs_hist = None
            engine._obs_spatial = None
        self.epoch_idx = 0
        self._finished = False

    def step(self, epoch: Trace, order: np.ndarray | None = None) -> StepStats:
        """Run one epoch trace through the full engine pipeline.

        ``order`` accepts the precomputed stable-by-core permutation when
        the caller sorted the whole trace at once (the batch path);
        serving callers leave it ``None`` and the per-epoch sort —
        keyed identically — produces the same permutation.
        """
        if self._finished:
            raise RuntimeError("EngineSession already finished")
        engine = self.engine
        tracer = self.tracer
        recorder = self.recorder
        breakdown = self.breakdown
        energy = self.energy
        hits = self.hits
        epoch_idx = self.epoch_idx
        self.epoch_idx += 1
        if order is None:
            order = engine._epoch_core_orders([epoch])[0]

        with use_backend(engine.kernels), tracer.span("engine.epoch", epoch=epoch_idx):
            events = None
            epoch_movements = 0
            epoch_invalidations = 0
            # Snapshot the accumulators so this step's deltas can be
            # attributed to one timeline record / StepStats.  Pure
            # dataclass copies: they never perturb simulation state.
            prev_hits = replace(hits)
            prev_demoted = (
                engine.fault_state.report.demoted_requests
                if engine.fault_state is not None
                else 0
            )
            if recorder.enabled:
                with tracer.span("engine.observability"):
                    prev_breakdown = replace(breakdown)
                    prev_energy = replace(energy)
                    prev_ext = engine._ext_accesses
                    prev_inter = engine._inter_stack_bytes
            if engine.fault_state is not None:
                with tracer.span("engine.fault_hooks"):
                    events = engine.fault_state.advance(epoch_idx)
                    engine.extended.effective_lanes = (
                        engine.fault_state.effective_lanes
                    )
                    if not events.empty:
                        with tracer.span("policy.on_faults"):
                            fstats = self.policy.on_faults(
                                epoch_idx, events, engine.fault_state
                            )
                        epoch_movements += fstats.movements
                        epoch_invalidations += fstats.invalidations
                        engine.fault_state.report.fault_movements += (
                            fstats.movements
                        )
                        engine.fault_state.report.fault_invalidations += (
                            fstats.invalidations
                        )
            with tracer.span("policy.begin_epoch"):
                stats = self.policy.begin_epoch(epoch_idx)
            epoch_movements += stats.movements
            epoch_invalidations += stats.invalidations
            self.movements += epoch_movements
            self.invalidations += epoch_invalidations

            with tracer.span("engine.l1_filter"):
                post_l1, l1_result = engine._l1_filter(epoch, order=order)
                hits.l1_hits += l1_result["hits"]
                l1_ns = l1_result["hits"] * engine.config.core.l1d.hit_ns
                breakdown.sram_ns += l1_ns
                energy.sram_nj += l1_result["total"] * 0.01  # ~10 pJ / L1 access
                n_threads = len(self.core_accesses)
                kernels = engine.kernels
                self.core_accesses += kernels.segment_count(
                    epoch.core, n_threads
                )
                # All L1 hits cost the same, so the per-thread stall is a
                # hit count times the constant hit latency.
                self.core_stall_ns += kernels.segment_count(
                    epoch.core[l1_result["mask"]], n_threads
                ) * engine.config.core.l1d.hit_ns

            if len(post_l1):
                with tracer.span("policy.process"):
                    outcome = self.policy.process(post_l1)
                if engine.fault_state is not None and engine.fault_state.degraded:
                    engine.fault_state.demote(outcome)
                with tracer.span("engine.charge"):
                    # Per-epoch invariants every charge/queue step needs,
                    # computed once instead of once per consumer.
                    core_unit = (
                        post_l1.core.astype(np.int64) % engine.config.n_units
                    )
                    in_stream = post_l1.sid >= 0
                    affine = (
                        engine._sid_affine[
                            np.clip(
                                post_l1.sid, -1, len(engine._sid_affine) - 2
                            )
                        ]
                        & in_stream
                    )
                    epoch_stall, ext_mask, n_ext = engine._charge(
                        post_l1,
                        outcome,
                        breakdown,
                        energy,
                        hits,
                        core_unit=core_unit,
                        in_stream=in_stream,
                        affine=affine,
                    )
                with tracer.span("engine.queueing"):
                    queue_ns = engine._queueing_delay(
                        post_l1,
                        epoch_stall,
                        ext_mask,
                        self.workload,
                        unit=core_unit,
                        n_ext=n_ext,
                    )
                    if queue_ns > 0:
                        observed = np.full(len(post_l1), queue_ns)
                        observed[affine] /= AFFINE_MLP
                        observed[in_stream & ~affine] /= (
                            engine.config.indirect_mlp
                        )
                        epoch_stall[ext_mask] += observed[ext_mask]
                        breakdown.extended_ns += queue_ns * n_ext
                    self.core_stall_ns += engine.kernels.segment_sum(
                        post_l1.core, epoch_stall, len(self.core_stall_ns)
                    )
            else:
                outcome = None

            if outcome is not None:
                with tracer.span("policy.end_epoch"):
                    self.policy.end_epoch(epoch_idx, post_l1, outcome)
            with tracer.span("engine.runtime_model"):
                self.per_epoch_cycles.append(
                    engine._runtime_cycles(
                        self.core_stall_ns, self.core_accesses, self.workload
                    )
                )

            if recorder.enabled:
                with tracer.span("engine.observability"):
                    engine._append_epoch_record(
                        self.timeline,
                        recorder,
                        epoch_idx=epoch_idx,
                        epoch=epoch,
                        post_l1=post_l1,
                        hits=hits - prev_hits,
                        breakdown=breakdown - prev_breakdown,
                        energy=energy - prev_energy,
                        ext_delta=engine._ext_accesses - prev_ext,
                        inter_delta=engine._inter_stack_bytes - prev_inter,
                        prev_demoted=prev_demoted,
                        epoch_movements=epoch_movements,
                        epoch_invalidations=epoch_invalidations,
                        events=events,
                        cycles_total=self.per_epoch_cycles[-1],
                    )

        return StepStats(
            epoch=epoch_idx,
            requests=len(epoch),
            post_l1_requests=len(post_l1),
            hits=hits - prev_hits,
            movements=epoch_movements,
            invalidations=epoch_invalidations,
            fault_events=events,
            demoted_requests=(
                engine.fault_state.report.demoted_requests - prev_demoted
                if engine.fault_state is not None
                else 0
            ),
            cycles_total=self.per_epoch_cycles[-1],
        )

    @property
    def cycles_total(self) -> float:
        """Simulated cycles elapsed so far (the serving loop's clock)."""
        if self.per_epoch_cycles:
            return self.per_epoch_cycles[-1]
        return 0.0

    def finish(self) -> SimulationReport:
        """Close the run: final runtime model, static energy, report."""
        if self._finished:
            raise RuntimeError("EngineSession already finished")
        self._finished = True
        engine = self.engine
        tracer = self.tracer
        recorder = self.recorder
        energy = self.energy
        with use_backend(engine.kernels), tracer.span("engine.runtime_model"):
            runtime_cycles = engine._runtime_cycles(
                self.core_stall_ns, self.core_accesses, self.workload
            )
        runtime_ns = runtime_cycles * engine.config.core.cycle_ns
        energy.static_nj += (
            STATIC_W_PER_UNIT * engine.config.n_units * runtime_ns
        )
        tier_histograms = None
        spatial = None
        if recorder.enabled:
            with tracer.span("engine.observability"):
                recorder.gauge("engine.runtime_cycles", runtime_cycles)
                recorder.gauge("engine.static_nj", energy.static_nj)
                recorder.counter("engine.epochs", len(self.per_epoch_cycles))
                tier_histograms = engine._obs_hist.histograms()
                spatial = engine._obs_spatial.to_report()
                for tier_name, hist in tier_histograms.items():
                    recorder.event("histogram", tier=tier_name, **hist.to_json())
                recorder.event("spatial", **spatial.to_json())
                recorder.gauge("engine.load_imbalance", spatial.load_imbalance)

        return SimulationReport(
            policy=self.policy.name,
            workload=self.workload.name,
            runtime_cycles=runtime_cycles,
            breakdown=self.breakdown,
            energy=energy,
            hits=self.hits,
            reconfig_movements=self.movements,
            reconfig_invalidations=self.invalidations,
            per_epoch_cycles=self.per_epoch_cycles,
            faults=engine.fault_state.report if engine.fault_state else None,
            timeline=self.timeline,
            tier_histograms=tier_histograms,
            spatial=spatial,
        )

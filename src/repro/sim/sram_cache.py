"""SRAM cache models: an exact set-associative LRU cache, and the fast
vectorised L1 filter the engine uses.

The exact model (:class:`SetAssocLRUCache`) is a straightforward reference
implementation used in unit tests and anywhere trace volume is small.  The
engine-facing :func:`filter_through_l1` uses the vectorised window-LRU
primitive so multi-million-access traces stay fast; the window is sized so
the two agree closely on streaming/reuse mixes (validated in tests).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.sim.cachesim import recency_hits, recency_hits_grouped
from repro.sim.params import SramCacheParams


class SetAssocLRUCache:
    """Exact set-associative LRU cache over line addresses."""

    def __init__(self, params: SramCacheParams) -> None:
        if params.lines % params.ways != 0:
            raise ValueError("line count must be a multiple of associativity")
        self.params = params
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(params.sets)
        ]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Access a byte address; returns True on hit.  Fills on miss."""
        line = addr // self.params.line_bytes
        set_idx = line % self.params.sets
        entries = self._sets[set_idx]
        if line in entries:
            entries.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        entries[line] = None
        if len(entries) > self.params.ways:
            entries.popitem(last=False)
        return False

    def run(self, addrs: np.ndarray) -> np.ndarray:
        """Access a whole trace; returns the per-access hit mask."""
        return np.fromiter(
            (self.access(int(a)) for a in addrs), dtype=bool, count=len(addrs)
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class L1FilterResult:
    """Outcome of filtering one core's trace through its L1."""

    hit_mask: np.ndarray  # per-access, True = served by L1
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# A window-LRU with window = lines * WINDOW_SCALE approximates a true LRU
# of `lines` entries: the window counts *accesses* while LRU capacity
# counts *distinct lines*, and memory-intensive traces re-reference each
# line a few times within its residency.  The scale factor was calibrated
# against SetAssocLRUCache on mixed streaming/reuse traces (see tests).
WINDOW_SCALE = 2


def filter_through_l1(
    addrs: np.ndarray, params: SramCacheParams, exact: bool = False
) -> L1FilterResult:
    """Filter one core's address trace through its L1 data cache.

    With ``exact=True`` the reference LRU model is used (slow, tests only).
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    if exact:
        cache = SetAssocLRUCache(params)
        mask = cache.run(addrs)
    else:
        lines = addrs // params.line_bytes
        mask = recency_hits(lines, params.lines * WINDOW_SCALE)
    hits = int(mask.sum())
    return L1FilterResult(hit_mask=mask, hits=hits, misses=len(addrs) - hits)


def filter_cores_through_l1(
    addrs: np.ndarray,
    cores: np.ndarray,
    params: SramCacheParams,
    order: np.ndarray | None = None,
) -> np.ndarray:
    """Filter a multi-core epoch through per-core private L1Ds at once.

    One grouped window-LRU pass over the whole epoch, bit-identical to
    calling :func:`filter_through_l1` per core and scattering the masks
    (the engine's old hot loop).  ``order`` optionally carries the
    precomputed stable sort of ``cores`` so a caller iterating many
    epochs pays for one trace-wide sort instead of one per epoch.
    Returns the per-access hit mask.
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    lines = addrs // params.line_bytes
    return recency_hits_grouped(
        lines, cores, params.lines * WINDOW_SCALE, order=order
    )

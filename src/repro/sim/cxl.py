"""CXL-attached extended memory model.

The extended memory (Fig. 1) is a CXL Type-3 device backed by DDR5
channels.  A miss in the NDP DRAM cache pays: the CXL link latency (both
directions folded into the configured ``link_ns``, following the paper's
"200 ns link latency (excluding DRAM access)"), serialization of the
cacheline over the link, and the DDR5 access itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.dram import DramModel
from repro.sim.params import CACHELINE_BYTES, CxlParams, DramTiming


@dataclass
class ExtendedAccessResult:
    latency_ns: np.ndarray
    row_hit: np.ndarray
    link_energy_nj: float
    dram_energy_nj: float

    @property
    def total_latency_ns(self) -> float:
        return float(self.latency_ns.sum())


class ExtendedMemory:
    """CXL link + DDR5 backing store."""

    def __init__(self, cxl: CxlParams, dram_timing: DramTiming) -> None:
        self.cxl = cxl
        self.dram = DramModel(dram_timing)
        # Lanes currently trained; the fault layer narrows this when the
        # link down-trains (x16 -> x8 -> x4).
        self.effective_lanes = cxl.lanes

    def serialization_ns(self, bytes_moved: int = CACHELINE_BYTES) -> float:
        """Time to move ``bytes_moved`` over the link at the trained width.

        CXL 2.0 x16 sustains roughly 4 GB/s per lane of usable bandwidth;
        the result is a small constant on top of the dominant link latency.
        """
        bw_gbps = 4.0 * self.effective_lanes
        return bytes_moved / bw_gbps

    def access(
        self, byte_addrs: np.ndarray, bytes_per_access: int = CACHELINE_BYTES
    ) -> ExtendedAccessResult:
        """Access a batch of extended-memory addresses in trace order."""
        byte_addrs = np.asarray(byte_addrs, dtype=np.int64)
        channels = (byte_addrs // self.dram.timing.row_bytes) % self.cxl.channels
        dram_result = self.dram.access(byte_addrs, channel=channels)
        latency = (
            dram_result.latency_ns
            + self.cxl.link_ns
            + self.serialization_ns(bytes_per_access)
        )
        link_energy = (
            len(byte_addrs) * bytes_per_access * 8 * self.cxl.pj_per_bit / 1000.0
        )
        dram_energy = self.dram.energy_nj(dram_result.row_hit, bytes_per_access)
        return ExtendedAccessResult(
            latency_ns=latency,
            row_hit=dram_result.row_hit,
            link_energy_nj=link_energy,
            dram_energy_nj=dram_energy,
        )

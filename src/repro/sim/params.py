"""System configuration parameters (the paper's Table II).

Every timing/energy number the simulator uses lives here, grouped into
small dataclasses mirroring the rows of Table II: the NDP memory devices
(HBM3-style and HMC2-style), the DDR5-backed extended memory, the
intra-/inter-stack interconnect, the CXL link, and the NDP core with its
SRAM caches.

Two preset families are provided:

* ``paper_hbm()`` / ``paper_hmc()`` — the configurations of Table II
  (8 stacks x 16 units, 256 MB per unit, 2 GHz in-order cores).
* ``small()`` / ``tiny()`` — proportionally scaled-down presets used by the
  tests and benchmarks so trace-driven simulation finishes quickly.  The
  *ratios* that drive the paper's conclusions (interconnect vs. DRAM
  latency, NDP cache vs. workload footprint) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

CACHELINE_BYTES = 64


@dataclass(frozen=True)
class DramTiming:
    """DRAM device timing/energy: RCD-CAS-RP cycles at a device frequency."""

    name: str
    freq_mhz: float
    t_rcd: int
    t_cas: int
    t_rp: int
    rd_wr_pj_per_bit: float
    act_pre_nj: float
    row_bytes: int = 2 * KB
    banks: int = 16

    def __post_init__(self) -> None:
        if self.freq_mhz <= 0:
            raise ValueError(f"{self.name}: freq_mhz must be positive")
        if self.t_rcd < 0 or self.t_cas < 0 or self.t_rp < 0:
            raise ValueError(f"{self.name}: DRAM timings cannot be negative")
        if self.row_bytes <= 0 or self.banks <= 0:
            raise ValueError(f"{self.name}: row_bytes and banks must be positive")
        if self.rd_wr_pj_per_bit < 0 or self.act_pre_nj < 0:
            raise ValueError(f"{self.name}: DRAM energies cannot be negative")

    def cycles_to_ns(self, cycles: int) -> float:
        return cycles * 1000.0 / self.freq_mhz

    @property
    def row_hit_ns(self) -> float:
        """Open-row access: CAS only."""
        return self.cycles_to_ns(self.t_cas)

    @property
    def row_miss_ns(self) -> float:
        """Closed/conflicting row: precharge + activate + CAS."""
        return self.cycles_to_ns(self.t_rp + self.t_rcd + self.t_cas)

    def access_energy_nj(self, bytes_moved: int, row_miss: bool) -> float:
        energy = bytes_moved * 8 * self.rd_wr_pj_per_bit / 1000.0
        if row_miss:
            energy += self.act_pre_nj
        return energy


HBM3 = DramTiming(
    name="hbm3",
    freq_mhz=1600.0,
    t_rcd=24,
    t_cas=24,
    t_rp=24,
    rd_wr_pj_per_bit=1.7,
    act_pre_nj=0.6,
)

HMC2 = DramTiming(
    name="hmc2",
    freq_mhz=1250.0,
    t_rcd=14,
    t_cas=14,
    t_rp=14,
    rd_wr_pj_per_bit=1.7,
    act_pre_nj=0.6,
)

DDR5_4800 = DramTiming(
    name="ddr5-4800",
    freq_mhz=2400.0,
    t_rcd=40,
    t_cas=40,
    t_rp=40,
    rd_wr_pj_per_bit=3.2,
    act_pre_nj=3.3,
    row_bytes=8 * KB,
    banks=16,
)


@dataclass(frozen=True)
class NocParams:
    """Intra-stack mesh and inter-stack link parameters (Table II)."""

    intra_hop_ns: float = 1.5
    inter_hop_ns: float = 10.0
    intra_pj_per_bit: float = 0.4
    inter_pj_per_bit: float = 4.0
    inter_bw_gbps: float = 32.0
    link_bits: int = 128

    def __post_init__(self) -> None:
        if self.intra_hop_ns < 0 or self.inter_hop_ns < 0:
            raise ValueError("NoC hop latencies cannot be negative")
        if self.intra_pj_per_bit < 0 or self.inter_pj_per_bit < 0:
            raise ValueError("NoC energies cannot be negative")
        if self.inter_bw_gbps <= 0 or self.link_bits <= 0:
            raise ValueError("NoC bandwidth and link width must be positive")


@dataclass(frozen=True)
class CxlParams:
    """CXL.mem link: 16-lane, 200 ns link latency, 11.4 pJ/bit."""

    link_ns: float = 200.0
    pj_per_bit: float = 11.4
    lanes: int = 16
    channels: int = 4
    ranks: int = 2

    def __post_init__(self) -> None:
        if self.lanes <= 0 or self.channels <= 0 or self.ranks <= 0:
            raise ValueError("CXL lanes/channels/ranks must be positive")
        if self.link_ns < 0 or self.pj_per_bit < 0:
            raise ValueError("CXL latency and energy cannot be negative")


@dataclass(frozen=True)
class SramCacheParams:
    """A set-associative SRAM cache (L1I/L1D of an NDP core)."""

    size_bytes: int
    ways: int
    line_bytes: int = CACHELINE_BYTES
    hit_ns: float = 0.5  # 1 cycle at 2 GHz

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("SRAM cache size/ways/line must be positive")
        if self.hit_ns < 0:
            raise ValueError("SRAM hit latency cannot be negative")
        if self.size_bytes // self.line_bytes < self.ways:
            raise ValueError("SRAM cache needs at least one set (lines >= ways)")

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def sets(self) -> int:
        return self.lines // self.ways


@dataclass(frozen=True)
class CoreParams:
    """NDP core: 2 GHz in-order, with L1I/L1D from Table II."""

    freq_ghz: float = 2.0
    l1i: SramCacheParams = field(
        default_factory=lambda: SramCacheParams(size_bytes=32 * KB, ways=2)
    )
    l1d: SramCacheParams = field(
        default_factory=lambda: SramCacheParams(size_bytes=64 * KB, ways=4)
    )

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError("core frequency must be positive")

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz


@dataclass(frozen=True)
class StreamCacheParams:
    """NDPExt hardware structure parameters (Sections IV and V-A)."""

    slb_entries: int = 32
    slb_hit_ns: float = 1.0
    slb_refill_ns: float = 300.0  # host round-trip over PCIe to refill
    affine_block_bytes: int = 1 * KB
    affine_space_bytes: int = 16 * MB  # per-unit cap so ATA tags fit on-chip
    indirect_ways: int = 1  # direct-mapped in-DRAM tags
    samplers_per_unit: int = 4
    sampler_sets: int = 32  # k
    sampler_points: int = 64  # c, geometric capacity cases
    sampler_min_bytes: int = 32 * KB
    max_streams: int = 512
    max_groups: int = 64


@dataclass(frozen=True)
class SystemConfig:
    """Complete system description used by the trace-driven engine."""

    name: str
    stacks_x: int
    stacks_y: int
    mesh_x: int
    mesh_y: int
    unit_cache_bytes: int
    memory_style: str  # "hbm" (crossbar per stack) or "hmc" (per-vault mesh)
    ndp_dram: DramTiming
    ext_dram: DramTiming = DDR5_4800
    noc: NocParams = field(default_factory=NocParams)
    cxl: CxlParams = field(default_factory=CxlParams)
    core: CoreParams = field(default_factory=CoreParams)
    stream: StreamCacheParams = field(default_factory=StreamCacheParams)
    epoch_accesses: int = 50_000
    metadata_cache_bytes: int = 128 * KB  # for the NUCA baselines
    # Memory-level parallelism exposed by indirect-stream prefetching
    # (addr = s[i] with the index stream known ahead [74]).  NDP systems
    # run stream-annotated code and overlap some gather latency; the
    # non-NDP host baseline has no stream engine and sets this to 1.
    indirect_mlp: float = 2.0

    def __post_init__(self) -> None:
        if self.memory_style not in ("hbm", "hmc"):
            raise ValueError(f"unknown memory style {self.memory_style!r}")
        if self.stacks_x < 1 or self.stacks_y < 1:
            raise ValueError("need at least one stack")
        if self.mesh_x < 1 or self.mesh_y < 1:
            raise ValueError("need at least one unit per stack")

    @property
    def n_stacks(self) -> int:
        return self.stacks_x * self.stacks_y

    @property
    def units_per_stack(self) -> int:
        return self.mesh_x * self.mesh_y

    @property
    def n_units(self) -> int:
        return self.n_stacks * self.units_per_stack

    @property
    def n_cores(self) -> int:
        """One NDP core per unit."""
        return self.n_units

    @property
    def total_cache_bytes(self) -> int:
        return self.n_units * self.unit_cache_bytes

    @property
    def rows_per_unit(self) -> int:
        return self.unit_cache_bytes // self.ndp_dram.row_bytes

    def scaled(self, **overrides) -> "SystemConfig":
        """A copy with selected fields replaced."""
        return replace(self, **overrides)


def paper_hbm() -> SystemConfig:
    """Table II HBM-style system: 4x2 stacks, 16 units each, 256 MB/unit."""
    return SystemConfig(
        name="paper-hbm",
        stacks_x=4,
        stacks_y=2,
        mesh_x=4,
        mesh_y=4,
        unit_cache_bytes=256 * MB,
        memory_style="hbm",
        ndp_dram=HBM3,
        epoch_accesses=1_000_000,
    )


def paper_hmc() -> SystemConfig:
    """Table II HMC-style system (per-vault NUCA nodes)."""
    return SystemConfig(
        name="paper-hmc",
        stacks_x=4,
        stacks_y=2,
        mesh_x=4,
        mesh_y=4,
        unit_cache_bytes=256 * MB,
        memory_style="hmc",
        ndp_dram=HMC2,
        epoch_accesses=1_000_000,
    )


def small(memory_style: str = "hbm") -> SystemConfig:
    """Scaled-down system for fast simulation: 2x2 stacks, 2x2 units.

    Calibrated against the default :data:`repro.workloads.SMALL` workload
    scale (~2 MB footprint, 320k accesses): the 1 MB total cache sits at
    roughly half the footprint — the same pressure regime as the paper's
    16 GB NDP memory against larger footprints — and each data element is
    touched a handful of times so reuse is observable in the trace.
    """
    dram = HBM3 if memory_style == "hbm" else HMC2
    return SystemConfig(
        name=f"small-{memory_style}",
        stacks_x=2,
        stacks_y=2,
        mesh_x=2,
        mesh_y=2,
        unit_cache_bytes=64 * KB,
        memory_style=memory_style,
        ndp_dram=dram,
        core=CoreParams(
            l1i=SramCacheParams(size_bytes=2 * KB, ways=2),
            l1d=SramCacheParams(size_bytes=4 * KB, ways=4),
        ),
        # One DDR channel keeps the paper's cores-per-channel pressure
        # (128 cores / 4 channels) at the scaled-down core count.
        cxl=CxlParams(channels=1),
        stream=StreamCacheParams(
            affine_space_bytes=16 * KB,
            sampler_points=16,
            # Short scaled-down epochs see ~1000x fewer accesses than the
            # paper's 50M-cycle epochs; more sample sets keep the curve
            # noise at a comparable level.
            sampler_sets=256,
            sampler_min_bytes=2 * KB,
        ),
        epoch_accesses=40_000,
        metadata_cache_bytes=2 * KB,
    )


def medium(memory_style: str = "hbm") -> SystemConfig:
    """Between ``small`` and paper scale: 4x2 stacks of 2x2 units
    (32 units), for scalability studies that want paper-like distances
    without paper-like runtimes.  Pair with a WorkloadScale of 32 cores
    and ~2x the SMALL footprint."""
    dram = HBM3 if memory_style == "hbm" else HMC2
    return SystemConfig(
        name=f"medium-{memory_style}",
        stacks_x=4,
        stacks_y=2,
        mesh_x=2,
        mesh_y=2,
        unit_cache_bytes=64 * KB,
        memory_style=memory_style,
        ndp_dram=dram,
        core=CoreParams(
            l1i=SramCacheParams(size_bytes=2 * KB, ways=2),
            l1d=SramCacheParams(size_bytes=4 * KB, ways=4),
        ),
        cxl=CxlParams(channels=1),
        stream=StreamCacheParams(
            affine_space_bytes=16 * KB,
            sampler_points=16,
            sampler_sets=256,
            sampler_min_bytes=2 * KB,
        ),
        epoch_accesses=60_000,
        metadata_cache_bytes=2 * KB,
    )


def tiny(memory_style: str = "hbm") -> SystemConfig:
    """Minimal system for unit tests: one stack of 2x2 units."""
    dram = HBM3 if memory_style == "hbm" else HMC2
    return SystemConfig(
        name=f"tiny-{memory_style}",
        stacks_x=1,
        stacks_y=1,
        mesh_x=2,
        mesh_y=2,
        unit_cache_bytes=16 * KB,
        memory_style=memory_style,
        ndp_dram=dram,
        core=CoreParams(
            l1i=SramCacheParams(size_bytes=1 * KB, ways=2),
            l1d=SramCacheParams(size_bytes=2 * KB, ways=4),
        ),
        cxl=CxlParams(channels=1),
        stream=StreamCacheParams(
            affine_space_bytes=8 * KB,
            sampler_points=8,
            sampler_sets=256,
            sampler_min_bytes=1 * KB,
        ),
        epoch_accesses=4_000,
        metadata_cache_bytes=512,
    )

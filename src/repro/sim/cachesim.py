"""Vectorised cache-simulation primitives.

Trace-driven simulation in Python is only practical if the per-access work
is done in numpy.  This module provides the three primitives every cache
level in the simulator is built from:

* :func:`direct_mapped_hits` — exact direct-mapped hit/miss over a slot/tag
  trace (the NDPExt indirect stream cache, the baselines' DRAM cache, the
  metadata caches, and the miss-curve samplers are all direct-mapped or
  hashed-set structures).
* :func:`set_assoc_hits` — W-way set-associative hit/miss with FIFO-in-set
  replacement (an accurate stand-in for LRU at the DRAM-cache level, used
  for the associativity ablation of Fig. 9(a)).
* :func:`recency_hits` — fully-associative LRU approximated by an access
  window (used to filter traces through the small L1 SRAM caches).

All three are exact functional simulations of their stated policy — the
approximation relative to the paper is only in the choice of policy
(FIFO-in-set vs. true LRU, window vs. true stack distance), which is a
standard low-cost substitution documented in DESIGN.md.

The heavy lifting lives in :mod:`repro.sim.kernels`: this module keeps
the validation and documentation and delegates each scan to the ambient
kernel backend (:func:`repro.sim.kernels.active`), so the engine's
``--backend`` selection covers every policy and cache model without
threading a backend object through them.
"""

from __future__ import annotations

import numpy as np

from .kernels import active


def _prev_in_group(group: np.ndarray, value: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """For each access i, the previous access index (in trace order) that
    belongs to the same ``group`` (slot/set), and that access's ``value``.

    Returns (prev_index, prev_value) where ``prev_index`` is -1 when the
    access is the first to touch its group.
    """
    return active().prev_in_group(np.asarray(group), np.asarray(value))


def direct_mapped_hits(slots: np.ndarray, tags: np.ndarray) -> np.ndarray:
    """Exact direct-mapped cache simulation.

    ``slots[i]`` is the cache slot access i maps to and ``tags[i]`` the tag
    stored there when it is resident.  An access hits iff the most recent
    access to the same slot carried the same tag.  The cache starts cold.
    """
    slots = np.asarray(slots)
    tags = np.asarray(tags)
    if slots.shape != tags.shape:
        raise ValueError("slots and tags must have the same shape")
    return active().direct_mapped_hits(slots, tags)


def set_assoc_hits(sets: np.ndarray, tags: np.ndarray, ways: int) -> np.ndarray:
    """W-way set-associative simulation with run-recency replacement.

    An access hits iff its tag matches one of the last ``ways`` *tag runs*
    in its set (consecutive accesses with the same tag form one run).
    This recency policy is bounded between direct-mapped (ways=1, where it
    is exact) and true LRU: it can only under-report hits relative to LRU
    when more than ``ways`` runs ping-pong between fewer than ``ways``
    distinct tags, and hit counts are monotonically non-decreasing in
    ``ways`` — the property the Fig. 9(a) associativity ablation needs.
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    sets = np.asarray(sets)
    tags = np.asarray(tags)
    if sets.shape != tags.shape:
        raise ValueError("sets and tags must have the same shape")
    n = len(sets)
    if n == 0:
        return np.zeros(0, dtype=bool)
    if ways == 1:
        return direct_mapped_hits(sets, tags)

    order = np.argsort(sets, kind="stable")
    s_set = sets[order]
    s_tag = tags[order]

    same_set = np.empty(n, dtype=bool)
    same_set[0] = False
    same_set[1:] = s_set[1:] == s_set[:-1]

    # An access is an *insertion point* if it differs from the immediately
    # preceding access of the same set (or is the first).  Re-references of
    # the currently-most-recent tag neither insert nor evict under FIFO.
    is_insert = np.empty(n, dtype=bool)
    is_insert[0] = True
    is_insert[1:] = ~same_set[1:] | (s_tag[1:] != s_tag[:-1])

    # Position of each access among the insertions of its set.
    insert_rank = np.cumsum(is_insert) - 1  # global insertion index
    # Hit if tag equals one of the previous `ways` insertions in this set.
    hits_sorted = np.zeros(n, dtype=bool)
    insert_positions = np.flatnonzero(is_insert)
    ins_set = s_set[insert_positions]
    ins_tag = s_tag[insert_positions]
    for back in range(1, ways + 1):
        cand_rank = insert_rank - back + (~is_insert).astype(np.int64)
        # For insertion accesses we look `back` insertions behind; for
        # re-reference accesses, the most recent insertion is their own tag
        # (already matched at back offset adjusted by +1 above).
        valid = cand_rank >= 0
        cand = np.zeros(n, dtype=np.int64)
        cand[valid] = cand_rank[valid]
        match = (
            valid
            & (ins_set[cand] == s_set)
            & (ins_tag[cand] == s_tag)
        )
        hits_sorted |= match

    # The very first insertion into a set can never hit.
    first_of_set = ~same_set
    hits_sorted &= ~(first_of_set & is_insert)

    hits = np.empty(n, dtype=bool)
    hits[order] = hits_sorted
    return hits


def recency_hits(keys: np.ndarray, window: int) -> np.ndarray:
    """Window-LRU: an access hits iff the same key occurred within the last
    ``window`` accesses.

    This approximates a fully-associative LRU cache of ``window / d``
    lines, where ``d`` is the trace's average re-reference multiplicity.
    We use it to filter traces through the L1s; the engine picks the
    window from the cache's line count (see :mod:`repro.sim.sram_cache`).
    """
    if window < 0:
        raise ValueError(f"window must be non-negative, got {window}")
    keys = np.asarray(keys)
    n = len(keys)
    if n == 0 or window == 0:
        return np.zeros(n, dtype=bool)
    # Window-LRU is grouped window-LRU with every access in one group.
    return active().window_hits_grouped(
        keys, np.zeros(n, dtype=np.int64), window
    )


def recency_hits_grouped(
    keys: np.ndarray,
    groups: np.ndarray,
    window: int,
    order: np.ndarray | None = None,
) -> np.ndarray:
    """Per-group window-LRU in one vectorised pass.

    Equivalent to running :func:`recency_hits` independently over each
    group's subsequence (in trace order) and scattering the results back
    — the L1-filter case, where every core owns a private cache and the
    window counts only that core's accesses.  Bit-identical to the
    per-group loop by construction: the stable group sort keeps each
    group's accesses contiguous and in trace order, so positional
    distances inside a segment equal the group-local distances, and the
    (group, key) composite never matches across groups.

    ``order`` optionally supplies the stable sort permutation by
    ``groups`` (``np.argsort(groups, kind="stable")``), letting callers
    that batch many epochs amortise the sort.
    """
    if window < 0:
        raise ValueError(f"window must be non-negative, got {window}")
    keys = np.asarray(keys)
    groups = np.asarray(groups)
    if keys.shape != groups.shape:
        raise ValueError("keys and groups must have the same shape")
    return active().window_hits_grouped(keys, groups, window, order=order)


def cold_miss_count(keys: np.ndarray) -> int:
    """Number of distinct keys (compulsory misses) in a trace."""
    return int(len(np.unique(np.asarray(keys))))

"""Measurement containers: latency breakdowns, hit statistics, energy.

Fig. 2(a) breaks average access latency into core-side SRAM, metadata,
DRAM (cache), intra-stack network, inter-stack network, and next-level
(extended) memory; Fig. 6 breaks energy into static, DRAM, interconnect
and extended memory.  These accumulators collect exactly those series so
every experiment can print the paper's rows directly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.histogram import LatencyHistogram
    from repro.obs.spatial import SpatialReport
    from repro.obs.timeline import Timeline


@dataclass
class LatencyBreakdown:
    """Total nanoseconds spent per component, summed over all requests."""

    sram_ns: float = 0.0
    metadata_ns: float = 0.0
    dram_ns: float = 0.0
    intra_noc_ns: float = 0.0
    inter_noc_ns: float = 0.0
    extended_ns: float = 0.0

    def __add__(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        return LatencyBreakdown(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __sub__(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        return LatencyBreakdown(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    @property
    def total_ns(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))

    @property
    def interconnect_ns(self) -> float:
        return self.intra_noc_ns + self.inter_noc_ns

    def fractions(self) -> dict[str, float]:
        total = self.total_ns
        if total == 0:
            return {f.name: 0.0 for f in fields(self)}
        return {f.name: getattr(self, f.name) / total for f in fields(self)}


@dataclass
class EnergyBreakdown:
    """Nanojoules per component (Fig. 6 categories)."""

    static_nj: float = 0.0
    sram_nj: float = 0.0
    ndp_dram_nj: float = 0.0
    noc_nj: float = 0.0
    cxl_nj: float = 0.0
    ext_dram_nj: float = 0.0

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __sub__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    @property
    def total_nj(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))


@dataclass
class HitStats:
    """Request counts by where they were served."""

    l1_hits: int = 0
    cache_hits_local: int = 0
    cache_hits_remote: int = 0
    cache_misses: int = 0

    def __add__(self, other: "HitStats") -> "HitStats":
        return HitStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __sub__(self, other: "HitStats") -> "HitStats":
        return HitStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    @property
    def cache_accesses(self) -> int:
        return self.cache_hits_local + self.cache_hits_remote + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_accesses
        return (self.cache_hits_local + self.cache_hits_remote) / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        total = self.cache_accesses
        return self.cache_misses / total if total else 0.0

    @property
    def total_requests(self) -> int:
        return self.l1_hits + self.cache_accesses


@dataclass
class FaultReport:
    """What the fault layer did to one run (empty when nothing fired).

    ``penalty_ns`` is the directly attributable latency the faults added
    to the critical path: CRC backoff/re-issue time plus the extra
    serialization of a down-trained link.  Capacity-loss effects (dead
    units, quarantined rows) show up indirectly as extra extended-memory
    traffic and are counted in ``demoted_requests`` /
    ``fault_invalidations`` instead.
    """

    crc_retries: int = 0
    crc_reissues: int = 0
    crc_retry_ns: float = 0.0
    downtrained_epochs: int = 0
    min_lanes: int = 0
    degraded_link_extra_ns: float = 0.0
    units_lost: int = 0
    rows_quarantined: int = 0
    fault_invalidations: int = 0
    fault_movements: int = 0
    demoted_requests: int = 0

    @property
    def penalty_ns(self) -> float:
        return self.crc_retry_ns + self.degraded_link_extra_ns

    def __add__(self, other: "FaultReport") -> "FaultReport":
        merged = FaultReport(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
                if f.name != "min_lanes"
            }
        )
        # 0 means "unset" (a default-constructed report whose run never
        # touched the link); min() over it would claim a full link loss.
        observed = [v for v in (self.min_lanes, other.min_lanes) if v > 0]
        merged.min_lanes = min(observed) if observed else 0
        return merged


@dataclass
class SimulationReport:
    """Everything one simulation run produces."""

    policy: str
    workload: str
    runtime_cycles: float
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    hits: HitStats = field(default_factory=HitStats)
    reconfig_movements: int = 0
    reconfig_invalidations: int = 0
    per_epoch_cycles: list[float] = field(default_factory=list)
    faults: FaultReport | None = None
    # Per-epoch observability series; populated only when the engine ran
    # with a live Recorder (None under the default NullRecorder).
    timeline: "Timeline | None" = None
    # Distributional/spatial observability (repro.obs v2); like the
    # timeline, populated only on recorded runs.  ``tier_histograms``
    # maps each serving tier (local/intra/inter/extended) to its latency
    # histogram; ``spatial`` carries per-unit load and the inter-stack
    # link-traffic matrix.
    tier_histograms: "dict[str, LatencyHistogram] | None" = None
    spatial: "SpatialReport | None" = None

    @property
    def load_imbalance(self) -> float | None:
        """Max/mean served requests across units (None when not recorded)."""
        return self.spatial.load_imbalance if self.spatial is not None else None

    @property
    def avg_access_latency_ns(self) -> float:
        n = self.hits.cache_accesses
        return self.breakdown.total_ns / n if n else 0.0

    @property
    def avg_interconnect_ns(self) -> float:
        n = self.hits.cache_accesses
        return self.breakdown.interconnect_ns / n if n else 0.0

    def speedup_over(self, other: "SimulationReport") -> float:
        if self.runtime_cycles <= 0:
            raise ValueError("runtime must be positive to compute speedup")
        return other.runtime_cycles / self.runtime_cycles

    def to_json(self, include_obs: bool = False) -> dict:
        """A JSON-able dict that round-trips through :meth:`from_json`.

        Python floats serialize via ``repr`` so every finite value
        round-trips exactly — a disk-cached report is bit-identical to
        the freshly simulated one.  The ``timeline`` is deliberately
        dropped: live-recorder runs bypass the result caches (the only
        producers of persisted reports), so a cached report never
        carries one.  ``include_obs=True`` (used by ``run
        --report-out``, never by the caches) additionally serializes
        ``tier_histograms`` and ``spatial`` when present.
        """
        payload = {
            "policy": self.policy,
            "workload": self.workload,
            "runtime_cycles": self.runtime_cycles,
            "breakdown": asdict(self.breakdown),
            "energy": asdict(self.energy),
            "hits": asdict(self.hits),
            "reconfig_movements": self.reconfig_movements,
            "reconfig_invalidations": self.reconfig_invalidations,
            "per_epoch_cycles": list(self.per_epoch_cycles),
            "faults": asdict(self.faults) if self.faults is not None else None,
        }
        if include_obs:
            if self.tier_histograms is not None:
                payload["tier_histograms"] = {
                    tier: hist.to_json()
                    for tier, hist in self.tier_histograms.items()
                }
            if self.spatial is not None:
                payload["spatial"] = self.spatial.to_json()
        return payload

    @classmethod
    def from_json(cls, data: dict) -> "SimulationReport":
        """Rebuild a report previously produced by :meth:`to_json`."""
        tier_histograms = None
        spatial = None
        if data.get("tier_histograms"):
            from repro.obs.histogram import LatencyHistogram

            tier_histograms = {
                tier: LatencyHistogram.from_json(payload)
                for tier, payload in data["tier_histograms"].items()
            }
        if data.get("spatial"):
            from repro.obs.spatial import SpatialReport

            spatial = SpatialReport.from_json(data["spatial"])
        return cls(
            policy=data["policy"],
            workload=data["workload"],
            runtime_cycles=data["runtime_cycles"],
            breakdown=LatencyBreakdown(**data["breakdown"]),
            energy=EnergyBreakdown(**data["energy"]),
            hits=HitStats(**data["hits"]),
            reconfig_movements=data["reconfig_movements"],
            reconfig_invalidations=data["reconfig_invalidations"],
            per_epoch_cycles=list(data["per_epoch_cycles"]),
            faults=FaultReport(**data["faults"]) if data["faults"] else None,
            tier_histograms=tier_histograms,
            spatial=spatial,
        )

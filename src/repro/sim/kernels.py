"""Fused epoch kernels behind a swappable backend.

Everything the engine's per-epoch hot loop does that is *exact* — keyed
previous-occurrence scans (direct-mapped tags, DRAM row buffers, the
grouped window-LRU of the L1 filter) and segment reductions (per-core /
per-unit accumulation) — lives here as a small kernel inventory with
three interchangeable implementations:

* ``python`` — a straight-line pure-Python reference (dicts and loops).
  Slow on purpose: it is the semantic ground truth the fast backends are
  pinned against, and the denominator of ``bench``'s ``kernel_speedup``.
* ``numpy`` — the default.  Keyed scans are one stable ``argsort`` (radix
  sort for integer keys) plus adjacent-element compares; segment sums are
  one ``bincount`` per target array.
* ``numba`` — optional JIT of the same scans as single hash-map passes
  (no sort at all).  Selected with ``EngineOptions.backend="numba"`` /
  ``--backend numba``; when numba is not importable the engine falls
  back to numpy and records a warning instead of failing.

Backends are **bit-identical by construction**: every kernel either
returns integers/booleans computed by an exact scan, or folds float64
addends per segment in input order starting from zero — the same IEEE
operation sequence whichever implementation runs.  All remaining float
arithmetic (latency charging, energy, queueing) stays in shared numpy
code in the engine, so a :class:`~repro.sim.metrics.SimulationReport` is
the same bytes under every backend (pinned by
``tests/sim/test_backend_identity.py``).

The active backend is ambient state scoped with :func:`use_backend`;
:mod:`repro.sim.cachesim` primitives delegate to :func:`active`, so
policies and the DRAM model pick up the engine's backend without being
threaded through.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

BACKENDS = ("numpy", "python", "numba")


class NumpyKernels:
    """Default backend: stable integer sorts + adjacent compares."""

    name = "numpy"

    @staticmethod
    def prev_in_group(
        group: np.ndarray, value: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """For each access i, the index (in trace order) of the previous
        access in the same ``group``, and that access's ``value``;
        prev_index is -1 for the first access of a group."""
        n = len(group)
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        # A stable argsort of the group key equals lexsort((arange, group))
        # and, for integer keys, runs as a radix sort — the reason this
        # backend beats the historical lexsort-based implementation.
        order = np.argsort(group, kind="stable")
        sorted_group = group[order]
        sorted_value = value[order]

        same_group = np.empty(n, dtype=bool)
        same_group[0] = False
        same_group[1:] = sorted_group[1:] == sorted_group[:-1]

        prev_idx_sorted = np.full(n, -1, dtype=np.int64)
        prev_val_sorted = np.zeros(n, dtype=value.dtype)
        prev_idx_sorted[1:][same_group[1:]] = order[:-1][same_group[1:]]
        prev_val_sorted[1:][same_group[1:]] = sorted_value[:-1][same_group[1:]]

        prev_idx = np.empty(n, dtype=np.int64)
        prev_val = np.empty(n, dtype=value.dtype)
        prev_idx[order] = prev_idx_sorted
        prev_val[order] = prev_val_sorted
        return prev_idx, prev_val

    @staticmethod
    def direct_mapped_hits(slots: np.ndarray, tags: np.ndarray) -> np.ndarray:
        """Exact direct-mapped simulation: access i hits iff the most
        recent access to the same slot carried the same tag (cold start).
        Fused: in the stable slot sort, "most recent same-slot access" is
        simply the adjacent element, so no prev-index arrays are built."""
        n = len(slots)
        if n == 0:
            return np.zeros(0, dtype=bool)
        order = np.argsort(slots, kind="stable")
        s_slot = slots[order]
        s_tag = tags[order]
        hits_sorted = np.empty(n, dtype=bool)
        hits_sorted[0] = False
        hits_sorted[1:] = (s_slot[1:] == s_slot[:-1]) & (s_tag[1:] == s_tag[:-1])
        hits = np.empty(n, dtype=bool)
        hits[order] = hits_sorted
        return hits

    # DRAM row-buffer check: the previous access to the same bank left
    # `prev_row` open; a hit is prev_row == row.  Identical scan shape to
    # the direct-mapped tag check with (bank, row) as (slot, tag).
    row_hit_mask = direct_mapped_hits

    @staticmethod
    def window_hits_grouped(
        keys: np.ndarray,
        groups: np.ndarray,
        window: int,
        order: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-group window-LRU: access i hits iff the same key occurred
        within the last ``window`` accesses *of the same group*.

        ``order`` optionally supplies the stable sort permutation of
        ``groups`` so callers batching many epochs amortise that sort
        (the engine precomputes it trace-wide).
        """
        n = len(keys)
        if n == 0 or window == 0:
            return np.zeros(n, dtype=bool)
        if order is None:
            order = np.argsort(groups, kind="stable")
        sorted_keys = np.asarray(keys[order], dtype=np.int64)
        sorted_groups = groups[order].astype(np.int64)
        # Positions in the group-sorted view are group-local indices, so
        # positional distance there equals the group-local distance the
        # window is defined over.  The (key, group) composite must be
        # injective; the cheap path packs it into one int64 (group ids in
        # the low bits) so the inner scan is one radix argsort.  Only when
        # packing would overflow do we pay a dense re-id via np.unique.
        kmin = np.int64(sorted_keys.min())
        gmax = int(sorted_groups.max())
        shift = max(1, gmax.bit_length())
        kspan = int(sorted_keys.max()) - int(kmin)
        if kmin >= 0 and sorted_groups.min() >= 0 and kspan < (1 << (62 - shift)):
            composite = ((sorted_keys - kmin) << np.int64(shift)) | sorted_groups
        else:
            uniques, dense = np.unique(sorted_keys, return_inverse=True)
            composite = sorted_groups * np.int64(len(uniques)) + dense
        corder = np.argsort(composite, kind="stable")
        c = composite[corder]
        same = c[1:] == c[:-1]
        prev_pos = np.full(n, -1, dtype=np.int64)
        prev_pos[corder[1:][same]] = corder[:-1][same]
        idx = np.arange(n, dtype=np.int64)
        hits_sorted = (prev_pos >= 0) & (idx - prev_pos <= window)
        hits = np.empty(n, dtype=bool)
        hits[order] = hits_sorted
        return hits

    @staticmethod
    def segment_sum(index: np.ndarray, weights: np.ndarray, n: int) -> np.ndarray:
        """Sum float64 ``weights`` into ``n`` buckets by ``index``.

        bincount folds addends per bucket in input order starting from
        0.0 — the same operation sequence as the reference Python loop,
        so the result is bitwise identical across backends.
        """
        return np.bincount(index, weights=weights, minlength=n)

    @staticmethod
    def segment_count(index: np.ndarray, n: int) -> np.ndarray:
        """Occurrences of each bucket id in ``index`` (int64, length n)."""
        return np.bincount(index, minlength=n)


class PythonKernels:
    """Pure-Python reference: the semantics, with none of the speed."""

    name = "python"

    @staticmethod
    def prev_in_group(
        group: np.ndarray, value: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        n = len(group)
        prev_idx = np.full(n, -1, dtype=np.int64)
        prev_val = np.zeros(n, dtype=value.dtype)
        last: dict[int, tuple[int, object]] = {}
        for i in range(n):
            g = int(group[i])
            hit = last.get(g)
            if hit is not None:
                prev_idx[i], prev_val[i] = hit
            last[g] = (i, value[i])
        return prev_idx, prev_val

    @staticmethod
    def direct_mapped_hits(slots: np.ndarray, tags: np.ndarray) -> np.ndarray:
        n = len(slots)
        hits = np.zeros(n, dtype=bool)
        resident: dict[int, int] = {}
        for i in range(n):
            slot = int(slots[i])
            tag = int(tags[i])
            hits[i] = resident.get(slot) == tag
            resident[slot] = tag
        return hits

    row_hit_mask = direct_mapped_hits

    @staticmethod
    def window_hits_grouped(
        keys: np.ndarray,
        groups: np.ndarray,
        window: int,
        order: np.ndarray | None = None,
    ) -> np.ndarray:
        n = len(keys)
        hits = np.zeros(n, dtype=bool)
        if n == 0 or window == 0:
            return hits
        position: dict[int, int] = {}
        last_seen: dict[tuple[int, int], int] = {}
        for i in range(n):
            g = int(groups[i])
            k = int(keys[i])
            pos = position.get(g, 0)
            prev = last_seen.get((g, k))
            hits[i] = prev is not None and pos - prev <= window
            last_seen[(g, k)] = pos
            position[g] = pos + 1
        return hits

    @staticmethod
    def segment_sum(index: np.ndarray, weights: np.ndarray, n: int) -> np.ndarray:
        out = [0.0] * n
        for i in range(len(index)):
            out[int(index[i])] += float(weights[i])
        return np.array(out, dtype=np.float64)

    @staticmethod
    def segment_count(index: np.ndarray, n: int) -> np.ndarray:
        out = [0] * n
        for i in range(len(index)):
            out[int(index[i])] += 1
        return np.array(out, dtype=np.int64)


def _build_numba_kernels():
    """Compile the numba backend; raises ImportError when numba is absent.

    The JIT kernels replace the numpy backend's sort-plus-compare scans
    with single hash-map passes — O(n) instead of O(n log n), no
    permutation arrays — while producing the same exact integers and
    booleans.  Segment reductions fold in input order like bincount.
    """
    import numba
    from numba import types
    from numba.typed import Dict

    @numba.njit(cache=True)
    def _prev_in_group(group, value, prev_idx, prev_val):
        last_idx = Dict.empty(types.int64, types.int64)
        for i in range(len(group)):
            g = group[i]
            if g in last_idx:
                j = last_idx[g]
                prev_idx[i] = j
                prev_val[i] = value[j]
            last_idx[g] = i

    @numba.njit(cache=True)
    def _direct_mapped_hits(slots, tags, hits):
        resident = Dict.empty(types.int64, types.int64)
        for i in range(len(slots)):
            s = slots[i]
            t = tags[i]
            hits[i] = s in resident and resident[s] == t
            resident[s] = t

    @numba.njit(cache=True)
    def _window_hits_grouped(keys, groups, window, hits):
        position = Dict.empty(types.int64, types.int64)
        last_seen = Dict.empty(types.UniTuple(types.int64, 2), types.int64)
        for i in range(len(keys)):
            g = groups[i]
            k = keys[i]
            pos = position.get(g, 0)
            pair = (g, k)
            if pair in last_seen and pos - last_seen[pair] <= window:
                hits[i] = True
            last_seen[pair] = pos
            position[g] = pos + 1

    @numba.njit(cache=True)
    def _segment_sum(index, weights, out):
        for i in range(len(index)):
            out[index[i]] += weights[i]

    @numba.njit(cache=True)
    def _segment_count(index, out):
        for i in range(len(index)):
            out[index[i]] += 1

    class NumbaKernels:
        name = "numba"

        @staticmethod
        def prev_in_group(group, value):
            n = len(group)
            prev_idx = np.full(n, -1, dtype=np.int64)
            prev_val = np.zeros(n, dtype=value.dtype)
            if n:
                _prev_in_group(
                    np.ascontiguousarray(group, dtype=np.int64),
                    np.ascontiguousarray(value, dtype=np.int64),
                    prev_idx,
                    prev_val.view(np.int64)
                    if prev_val.dtype == np.int64
                    else prev_val,
                )
            return prev_idx, prev_val

        @staticmethod
        def direct_mapped_hits(slots, tags):
            n = len(slots)
            hits = np.zeros(n, dtype=np.bool_)
            if n:
                _direct_mapped_hits(
                    np.ascontiguousarray(slots, dtype=np.int64),
                    np.ascontiguousarray(tags, dtype=np.int64),
                    hits,
                )
            return hits

        row_hit_mask = direct_mapped_hits

        @staticmethod
        def window_hits_grouped(keys, groups, window, order=None):
            n = len(keys)
            hits = np.zeros(n, dtype=np.bool_)
            if n and window:
                _window_hits_grouped(
                    np.ascontiguousarray(keys, dtype=np.int64),
                    np.ascontiguousarray(groups, dtype=np.int64),
                    np.int64(window),
                    hits,
                )
            return hits

        @staticmethod
        def segment_sum(index, weights, n):
            out = np.zeros(n, dtype=np.float64)
            if len(index):
                _segment_sum(
                    np.ascontiguousarray(index, dtype=np.int64),
                    np.ascontiguousarray(weights, dtype=np.float64),
                    out,
                )
            return out

        @staticmethod
        def segment_count(index, n):
            out = np.zeros(n, dtype=np.int64)
            if len(index):
                _segment_count(
                    np.ascontiguousarray(index, dtype=np.int64), out
                )
            return out

    return NumbaKernels()


NUMPY_KERNELS = NumpyKernels()
PYTHON_KERNELS = PythonKernels()
_NUMBA_KERNELS = None


def numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_backend(name: str = "numpy"):
    """Resolve a backend name to ``(kernels, warning_or_None)``.

    ``numba`` degrades gracefully: when numba is not importable the
    numpy kernels are returned along with a warning message the engine
    records, so a run requested with ``--backend numba`` completes (and,
    by bit-identity, produces the same report it would have JIT-ed).
    """
    if name == "numpy":
        return NUMPY_KERNELS, None
    if name == "python":
        return PYTHON_KERNELS, None
    if name == "numba":
        global _NUMBA_KERNELS
        if _NUMBA_KERNELS is None:
            try:
                _NUMBA_KERNELS = _build_numba_kernels()
            except ImportError:
                return NUMPY_KERNELS, (
                    "backend 'numba' requested but numba is not importable; "
                    "falling back to the numpy kernels (results are "
                    "bit-identical, only slower)"
                )
        return _NUMBA_KERNELS, None
    raise ValueError(
        f"unknown kernel backend {name!r}; choose from {BACKENDS}"
    )


_active = NUMPY_KERNELS


def active():
    """The ambient kernel backend (default: numpy)."""
    return _active


@contextmanager
def use_backend(kernels):
    """Scope the ambient backend: every :mod:`repro.sim.cachesim`
    primitive called inside the block — by the engine, a policy, or the
    DRAM model — runs on ``kernels``."""
    global _active
    previous = _active
    _active = kernels
    try:
        yield kernels
    finally:
        _active = previous

"""DRAM device model: row-buffer behaviour, latency, and energy.

Each NDP unit owns a DRAM region with ``banks`` banks; an access hits the
open row (CAS-only latency) when the most recent access to the same bank
targeted the same row, and otherwise pays precharge + activate + CAS.
Row-hit detection is computed exactly and vectorised: accesses are grouped
by bank in trace order and compared against the previous access to that
bank, which is precisely the open-row state of a one-row-buffer bank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.kernels import active
from repro.sim.params import CACHELINE_BYTES, DramTiming


@dataclass
class DramAccessResult:
    """Vectorised outcome of a batch of DRAM accesses."""

    latency_ns: np.ndarray
    row_hit: np.ndarray

    @property
    def total_latency_ns(self) -> float:
        return float(self.latency_ns.sum())

    @property
    def row_hit_rate(self) -> float:
        n = len(self.row_hit)
        return float(self.row_hit.mean()) if n else 0.0


class DramModel:
    """Row-buffer-aware DRAM timing/energy for one device type."""

    def __init__(self, timing: DramTiming) -> None:
        self.timing = timing

    def rows_of(self, byte_addrs: np.ndarray) -> np.ndarray:
        return np.asarray(byte_addrs, dtype=np.int64) // self.timing.row_bytes

    def banks_of(self, byte_addrs: np.ndarray) -> np.ndarray:
        """Bank interleaving at row granularity."""
        return self.rows_of(byte_addrs) % self.timing.banks

    def access(
        self, byte_addrs: np.ndarray, channel: np.ndarray | None = None
    ) -> DramAccessResult:
        """Simulate a batch of accesses in trace order.

        ``channel`` optionally partitions banks into independent channels
        (used by the DDR5 extended memory); accesses to different channels
        never share a row buffer.
        """
        byte_addrs = np.asarray(byte_addrs, dtype=np.int64)
        rows = self.rows_of(byte_addrs)
        banks = self.banks_of(byte_addrs)
        if channel is not None:
            banks = banks + np.asarray(channel, dtype=np.int64) * self.timing.banks
        # Row hit iff the previous access to the same bank opened the same
        # row — the (bank, row) pair is exactly a direct-mapped (slot, tag)
        # check, fused in the kernel backend into one stable-sort pass.
        row_hit = active().row_hit_mask(banks, rows)
        latency = np.where(row_hit, self.timing.row_hit_ns, self.timing.row_miss_ns)
        return DramAccessResult(latency_ns=latency, row_hit=row_hit)

    def energy_nj(
        self, row_hit: np.ndarray, bytes_per_access: int = CACHELINE_BYTES
    ) -> float:
        """Total energy for a batch given its row-hit mask."""
        row_hit = np.asarray(row_hit, dtype=bool)
        n = len(row_hit)
        misses = int(n - row_hit.sum())
        transfer = n * bytes_per_access * 8 * self.timing.rd_wr_pj_per_bit / 1000.0
        return transfer + misses * self.timing.act_pre_nj

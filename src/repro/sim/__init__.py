"""Simulation substrate: topology, DRAM/CXL timing, caches, the engine."""

from repro.sim.cachesim import (
    cold_miss_count,
    direct_mapped_hits,
    recency_hits,
    set_assoc_hits,
)
from repro.sim.cxl import ExtendedMemory
from repro.sim.dram import DramModel
from repro.sim.engine import (
    DramCachePolicy,
    EngineOptions,
    ReconfigStats,
    RequestOutcome,
    SimulationEngine,
)
from repro.sim.metrics import (
    EnergyBreakdown,
    HitStats,
    LatencyBreakdown,
    SimulationReport,
)
from repro.sim.params import (
    DDR5_4800,
    GB,
    HBM3,
    HMC2,
    KB,
    MB,
    CoreParams,
    CxlParams,
    DramTiming,
    NocParams,
    SramCacheParams,
    StreamCacheParams,
    SystemConfig,
    medium,
    paper_hbm,
    paper_hmc,
    small,
    tiny,
)
from repro.sim.sram_cache import SetAssocLRUCache, filter_through_l1
from repro.sim.topology import Topology

__all__ = [
    "cold_miss_count",
    "direct_mapped_hits",
    "recency_hits",
    "set_assoc_hits",
    "ExtendedMemory",
    "DramModel",
    "DramCachePolicy",
    "EngineOptions",
    "ReconfigStats",
    "RequestOutcome",
    "SimulationEngine",
    "EnergyBreakdown",
    "HitStats",
    "LatencyBreakdown",
    "SimulationReport",
    "DDR5_4800",
    "GB",
    "HBM3",
    "HMC2",
    "KB",
    "MB",
    "CoreParams",
    "CxlParams",
    "DramTiming",
    "NocParams",
    "SramCacheParams",
    "StreamCacheParams",
    "SystemConfig",
    "medium",
    "paper_hbm",
    "paper_hmc",
    "small",
    "tiny",
    "SetAssocLRUCache",
    "filter_through_l1",
    "Topology",
]

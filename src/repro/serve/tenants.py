"""Tenant identity, request batches, and bounded ingress queues.

A *tenant* is a named traffic source with a priority, an ingress-queue
quota, and an optional per-batch deadline.  Tenants share the stream
namespace of the underlying workload — the serving loop multiplexes
*who sent the traffic*, not what data it touches — which mirrors the
multi-tenant NDP framing (M2NDP): many concurrent request streams of
differing priority sharing one pool of near-data capacity.

A :class:`Batch` is the serving unit of work: one contiguous slice of
request trace that the engine processes as one epoch.  The slice is
identified by ``(start, stop)`` offsets into the scenario's source
trace, so a journaled batch can be reconstructed after a restart
without serializing any arrays.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.workloads.trace import Trace


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's contract with the serving loop.

    * ``priority`` — higher is more important: the scheduler serves
      higher-priority queues first and the load shedder drops
      lower-priority batches first.
    * ``max_queued`` — ingress quota; admission rejects a submit that
      would exceed it (``None`` falls back to the loop default).
    * ``deadline_ns`` — simulated-time budget per batch from admission
      to completion; a queued batch whose deadline passes is dropped and
      counted as timed out (``None`` disables deadlines).
    """

    name: str
    priority: int = 0
    max_queued: int | None = None
    deadline_ns: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.max_queued is not None and self.max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise ValueError("deadline_ns must be positive")


@dataclass
class Batch:
    """One tenant-attributed request batch (one engine epoch of work)."""

    tenant: str
    batch_id: int
    trace: Trace
    start: int = 0
    stop: int = 0
    enqueued_ns: float = 0.0
    deadline_ns: float | None = None

    @property
    def key(self) -> str:
        """Journal identity: stable across drain/restart."""
        return f"{self.tenant}:{self.batch_id}"


@dataclass
class TenantQueue:
    """One tenant's bounded FIFO ingress queue plus its spec."""

    spec: TenantSpec
    batches: deque[Batch] = field(default_factory=deque)

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def head(self) -> Batch | None:
        return self.batches[0] if self.batches else None

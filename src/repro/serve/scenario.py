"""Replayable tenant-mix scenarios and the :class:`ServeHarness` driver.

A :class:`ServeScenario` declares everything about a serving run that
must replay deterministically: the source workload, the tenant roster,
how traffic is skewed across tenants (Zipfian by tenant rank, with an
optional mid-run phase shift that inverts the hot/cold order — the
DAMOV-style time-varying mix), the submission cadence (waves of batches
with a bounded processing budget per wave, which is what creates
backlog, shedding, and timeouts), and an optional seeded fault storm
injected through the existing :func:`repro.faults.random_schedule`.

:class:`ServeHarness` materializes the scenario against a preset,
builds the engine + policy, replays the waves through a
:class:`~repro.serve.loop.ServeLoop`, and returns the
:class:`~repro.serve.report.ServeReport`.  Pacing knobs (wave size,
per-wave budget, early drain) are deliberately *excluded* from the
journal's scenario key: a drained run and its resume are the same
scenario served on different schedules.
"""

from __future__ import annotations

import contextlib
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.experiments.runner import POLICIES, PRESETS, SCALES
from repro.faults import random_schedule
from repro.obs.recorder import NullRecorder
from repro.obs.slo import SloEngine, SloObjective, default_objectives
from repro.serve.admission import SloAdmissionController
from repro.serve.loop import ServeLoop, ServeOptions
from repro.serve.report import ServeReport
from repro.serve.tenants import Batch, TenantSpec
from repro.sim.engine import EngineOptions, SimulationEngine
from repro.workloads import SMALL, build

ADMISSION_MODES = ("quota", "slo")


@dataclass(frozen=True)
class ServeScenario:
    """One replayable serving run: tenants, skew, cadence, faults."""

    name: str
    tenants: tuple[TenantSpec, ...]
    workload: str = "pr"
    policy: str = "ndpext"
    seed: int = 0
    batch_accesses: int | None = None  # None -> the preset's epoch size
    zipf_s: float = 1.1
    phase_shift_at: float | None = None  # fraction of batches; None = off
    max_batches: int | None = None
    # Submission cadence (NOT part of the scenario identity):
    wave_size: int = 4
    steps_per_wave: int | None = None  # None -> drain fully each wave
    drain_after_batches: int | None = None  # stop submitting, drain early
    # Seeded fault storm: kwargs for repro.faults.random_schedule
    # (unit_failures / row_faults / crc_bursts / downtrains), or None.
    faults: dict | None = None
    options: ServeOptions = field(default_factory=ServeOptions)
    # SLO plane: per-tenant objectives (evaluated whenever non-empty)
    # and the admission mode — "quota" is the fixed-quota controller,
    # bit-identical to pre-SLO serving; "slo" flexes quotas and shed
    # order by error-budget state.
    admission: str = "quota"
    objectives: tuple[SloObjective, ...] = ()

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("scenario needs at least one tenant")
        if self.wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.admission not in ADMISSION_MODES:
            raise ValueError(f"unknown admission mode {self.admission!r}")
        names = {t.name for t in self.tenants}
        for objective in self.objectives:
            if objective.tenant not in names:
                raise ValueError(
                    f"objective for unknown tenant {objective.tenant!r}"
                )

    def identity_key(self, preset: str) -> str:
        """Stable identity for journal resume: everything that changes
        *which batches exist and what they compute* — not how fast they
        were submitted or when the run was interrupted."""
        ident = {
            "name": self.name,
            "preset": preset,
            "workload": self.workload,
            "policy": self.policy,
            "seed": self.seed,
            "batch_accesses": self.batch_accesses,
            "zipf_s": self.zipf_s,
            "phase_shift_at": self.phase_shift_at,
            "max_batches": self.max_batches,
            "faults": self.faults,
            "tenants": [
                [t.name, t.priority, t.max_queued, t.deadline_ns]
                for t in self.tenants
            ],
        }
        # SLO state changes which batches reach which outcome, so it is
        # part of the identity — but only when active, so pre-SLO
        # journals keep resuming against unchanged keys.
        if self.admission != "quota" or self.objectives:
            ident["admission"] = self.admission
            ident["objectives"] = [
                [o.tenant, o.p99_ns, o.availability, o.max_shed_rate]
                for o in self.objectives
            ]
        return json.dumps(ident, sort_keys=True)

    # ------------------------------------------------------------------

    def tenant_assignment(self, n_batches: int) -> list[str]:
        """Zipfian batch -> tenant map, seeded, with optional phase shift.

        Tenant *rank* follows roster order: the first tenant is hottest
        (probability ~ 1/(rank+1)^s).  After ``phase_shift_at`` of the
        batches the ranking inverts — yesterday's cold tenant becomes
        the hot one — stressing online re-placement under traffic drift.
        """
        names = [t.name for t in self.tenants]
        weights = 1.0 / np.power(np.arange(1, len(names) + 1), self.zipf_s)
        probs = weights / weights.sum()
        rng = np.random.default_rng(self.seed)
        draws = rng.random(n_batches)
        shift_at = (
            int(n_batches * self.phase_shift_at)
            if self.phase_shift_at is not None
            else n_batches
        )
        cum = np.cumsum(probs)
        picks = np.searchsorted(cum, draws, side="right").clip(0, len(names) - 1)
        assignment = []
        for i, pick in enumerate(picks):
            order = names if i < shift_at else names[::-1]
            assignment.append(order[int(pick)])
        return assignment


class ServeHarness:
    """Builds and replays one scenario; the `serve` verb and tests both
    drive this."""

    def __init__(
        self,
        scenario: ServeScenario,
        preset: str = "tiny",
        recorder: NullRecorder | None = None,
        journal_path=None,
        backend: str = "numpy",
    ) -> None:
        self.scenario = scenario
        self.preset = preset
        self.config = PRESETS[preset]()
        self.workload = build(
            scenario.workload, SCALES.get(preset, SMALL)
        )
        self.batch_accesses = (
            scenario.batch_accesses or self.config.epoch_accesses
        )
        n_accesses = len(self.workload.trace)
        n_batches = (n_accesses + self.batch_accesses - 1) // self.batch_accesses
        if scenario.max_batches is not None:
            n_batches = min(n_batches, scenario.max_batches)
        self.n_batches = n_batches
        faults = None
        if scenario.faults is not None:
            faults = random_schedule(
                scenario.seed,
                self.config.n_units,
                max(2, n_batches),
                rows_per_unit=self.config.rows_per_unit,
                full_lanes=self.config.cxl.lanes,
                **scenario.faults,
            )
        self.engine = SimulationEngine(
            self.config,
            EngineOptions(backend=backend),
            faults=faults,
            recorder=recorder,
        )
        self.policy = POLICIES[scenario.policy]()
        # The SLO plane is built only when asked for: a quota scenario
        # with no objectives gets the pre-SLO loop, bit for bit.
        objectives = scenario.objectives
        if scenario.admission == "slo" and not objectives:
            objectives = default_objectives(scenario.tenants)
        self.slo = (
            SloEngine(objectives, recorder=self.engine.recorder)
            if objectives
            else None
        )
        admission = None
        if scenario.admission == "slo":
            admission = SloAdmissionController(
                scenario.options.default_max_queued,
                scenario.options.max_total_queued,
                self.slo,
            )
        self.loop = ServeLoop(
            self.engine,
            self.workload,
            self.policy,
            list(scenario.tenants),
            options=scenario.options,
            journal_path=journal_path,
            scenario_key=scenario.identity_key(preset),
            admission=admission,
            slo=self.slo,
        )

    # ------------------------------------------------------------------

    def make_batch(
        self, tenant: str, batch_id: int, start: int, stop: int
    ) -> Batch:
        """Materialize one batch from its journal-style identity — the
        live ``/ingest`` endpoint reconstructs traffic through this."""
        n = len(self.workload.trace)
        if not 0 <= start < stop <= n:
            raise ValueError(
                f"batch [{start}, {stop}) outside trace of {n} accesses"
            )
        return Batch(
            tenant=tenant,
            batch_id=int(batch_id),
            trace=self.workload.trace.slice(start, stop),
            start=start,
            stop=stop,
        )

    def batches(self) -> list[Batch]:
        """The scenario's full batch list, in submission order."""
        assignment = self.scenario.tenant_assignment(self.n_batches)
        out = []
        for i in range(self.n_batches):
            start = i * self.batch_accesses
            stop = min(start + self.batch_accesses, len(self.workload.trace))
            out.append(
                Batch(
                    tenant=assignment[i],
                    batch_id=i,
                    trace=self.workload.trace.slice(start, stop),
                    start=start,
                    stop=stop,
                )
            )
        return out

    def run(self, pace_s: float = 0.0, lock=None) -> ServeReport:
        """Replay the scenario: submit in waves, serve, drain, report.

        ``pace_s`` sleeps (wall clock) between waves and ``lock`` is
        acquired around every loop interaction — together they let a
        live HTTP endpoint observe a consistent mid-run state while the
        scripted replay progresses.  Neither affects the simulated
        clock, so the report is identical at any pace.
        """
        scenario = self.scenario
        loop = self.loop
        guard = lock if lock is not None else contextlib.nullcontext()
        submitted = 0
        drained_early = False
        for batch in self.batches():
            if (
                scenario.drain_after_batches is not None
                and submitted >= scenario.drain_after_batches
            ):
                drained_early = True
                break
            with guard:
                loop.submit(batch)
            submitted += 1
            if submitted % scenario.wave_size == 0:
                with guard:
                    loop.run_until_idle(max_steps=scenario.steps_per_wave)
                if pace_s > 0:
                    time.sleep(pace_s)
        if not drained_early:
            # End of traffic: serve out the backlog before shutdown.
            with guard:
                loop.run_until_idle()
        with guard:
            loop.drain()
            return loop.finish(scenario.name)


def two_tenant_scenario(
    name: str = "two-tenant",
    workload: str = "pr",
    **overrides,
) -> ServeScenario:
    """The README/CI example: a high-priority interactive tenant and a
    low-priority batch tenant sharing one NDP pool."""
    tenants = (
        TenantSpec("interactive", priority=10, max_queued=8),
        TenantSpec("analytics", priority=0, max_queued=4),
    )
    return ServeScenario(
        name=name, tenants=tenants, workload=workload, **overrides
    )

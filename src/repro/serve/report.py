"""The serving loop's end-of-run accounting.

A :class:`ServeReport` is the serving analogue of
:class:`~repro.sim.metrics.SimulationReport`: per-tenant admission /
shed / timeout / completion counters, batch-latency distributions in
the shared :class:`~repro.obs.histogram.LatencyHistogram` bucket scheme
(simulated nanoseconds from admission to completion, so replays are
deterministic), reconfiguration activity, and the health monitor's
degradation windows.  The underlying engine run's
:class:`SimulationReport` rides along so a fault-free single-tenant
serve can be checked bit-identical against the batch path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.histogram import LatencyHistogram
from repro.sim.metrics import SimulationReport


@dataclass
class TenantStats:
    """One tenant's lifetime counters and latency distribution."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    timed_out: int = 0
    completed: int = 0
    resumed: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def to_json(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "completed": self.completed,
            "resumed": self.resumed,
            "latency": self.latency.to_json(),
            "latency_percentiles": self.latency.percentiles(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "TenantStats":
        return cls(
            submitted=int(data.get("submitted", 0)),
            admitted=int(data.get("admitted", 0)),
            rejected=int(data.get("rejected", 0)),
            shed=int(data.get("shed", 0)),
            timed_out=int(data.get("timed_out", 0)),
            completed=int(data.get("completed", 0)),
            resumed=int(data.get("resumed", 0)),
            latency=LatencyHistogram.from_json(
                data.get("latency", LatencyHistogram().to_json())
            ),
        )


@dataclass
class ServeReport:
    """What one serving run did, per tenant and overall."""

    scenario: str
    tenants: dict[str, TenantStats]
    latency: LatencyHistogram
    epochs: int
    reconfigs: int
    health_reconfig_requests: int
    degraded_windows: list[list[int]]
    final_health: dict | None = None
    drained_queued: int = 0
    resumed_skips: int = 0
    sim: SimulationReport | None = None
    # SloEngine.status() when the run evaluated objectives; None keeps
    # the JSON byte-identical to pre-SLO reports (the key is omitted).
    slo: dict | None = None

    # -- aggregate views ------------------------------------------------

    def _total(self, field_name: str) -> int:
        return sum(getattr(t, field_name) for t in self.tenants.values())

    @property
    def submitted(self) -> int:
        return self._total("submitted")

    @property
    def admitted(self) -> int:
        return self._total("admitted")

    @property
    def rejected(self) -> int:
        return self._total("rejected")

    @property
    def shed(self) -> int:
        return self._total("shed")

    @property
    def timed_out(self) -> int:
        return self._total("timed_out")

    @property
    def completed(self) -> int:
        return self._total("completed")

    # -- serialization --------------------------------------------------

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "tenants": {
                name: stats.to_json()
                for name, stats in sorted(self.tenants.items())
            },
            "latency": self.latency.to_json(),
            "latency_percentiles": self.latency.percentiles(),
            "epochs": self.epochs,
            "reconfigs": self.reconfigs,
            "health_reconfig_requests": self.health_reconfig_requests,
            "degraded_windows": self.degraded_windows,
            "final_health": self.final_health,
            "drained_queued": self.drained_queued,
            "resumed_skips": self.resumed_skips,
            "totals": {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "shed": self.shed,
                "timed_out": self.timed_out,
                "completed": self.completed,
            },
            "sim": self.sim.to_json() if self.sim is not None else None,
            **({"slo": self.slo} if self.slo is not None else {}),
        }

    @classmethod
    def from_json(cls, data: dict) -> "ServeReport":
        sim = data.get("sim")
        return cls(
            scenario=data.get("scenario", ""),
            tenants={
                name: TenantStats.from_json(stats)
                for name, stats in data.get("tenants", {}).items()
            },
            latency=LatencyHistogram.from_json(
                data.get("latency", LatencyHistogram().to_json())
            ),
            epochs=int(data.get("epochs", 0)),
            reconfigs=int(data.get("reconfigs", 0)),
            health_reconfig_requests=int(
                data.get("health_reconfig_requests", 0)
            ),
            degraded_windows=[
                [int(a), int(b)] for a, b in data.get("degraded_windows", [])
            ],
            final_health=data.get("final_health"),
            drained_queued=int(data.get("drained_queued", 0)),
            resumed_skips=int(data.get("resumed_skips", 0)),
            sim=SimulationReport.from_json(sim) if sim else None,
            slo=data.get("slo"),
        )

    def summary(self) -> str:
        """Human-oriented multi-line rollup for the CLI."""
        pct = self.latency.percentiles()
        lines = [
            f"scenario {self.scenario}: {self.epochs} epochs, "
            f"{self.completed}/{self.submitted} batches completed "
            f"({self.rejected} rejected, {self.shed} shed, "
            f"{self.timed_out} timed out, {self.resumed_skips} resumed)",
            f"  batch latency p50 {pct['p50']:.0f} ns, "
            f"p99 {pct['p99']:.0f} ns",
            f"  reconfigs {self.reconfigs} "
            f"({self.health_reconfig_requests} health-forced requests), "
            f"degraded windows {self.degraded_windows}",
        ]
        for name, stats in sorted(self.tenants.items()):
            tp = stats.latency.percentiles()
            lines.append(
                f"  tenant {name}: {stats.completed}/{stats.submitted} ok, "
                f"{stats.rejected} rejected, {stats.shed} shed, "
                f"{stats.timed_out} timed out, p99 {tp['p99']:.0f} ns"
            )
        if self.slo:
            for name, tenant in sorted(self.slo.get("tenants", {}).items()):
                lines.append(
                    f"  slo {name}: {tenant['alert']}, "
                    f"budget remaining {tenant['budget_remaining']:.2f}, "
                    f"worst burn {tenant['worst_burn']:.1f}x"
                )
        return "\n".join(lines)

"""Admission control and load shedding for the serving loop.

Two distinct overload defenses, applied in order:

* **Admission** happens at submit time, per tenant: a batch that would
  push its tenant's ingress queue past the quota is rejected
  synchronously with a machine-readable reason.  The sender learns
  immediately (backpressure), and one tenant's burst can never occupy
  another tenant's queue space.
* **Shedding** happens after admission, globally: when the *total*
  backlog exceeds the loop's capacity the shedder drops already-queued
  batches, lowest priority first and newest first within a tenant —
  preserving the oldest work preserves FIFO fairness for whoever is
  about to be served.  Shedding is recorded per batch (``serve_shed``
  events) so operators can attribute dropped work.

Both decisions are pure functions of queue state, so a replayed
scenario sheds and rejects identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.tenants import Batch, TenantQueue

REASON_QUOTA = "tenant_quota"
REASON_UNKNOWN_TENANT = "unknown_tenant"
REASON_DRAINING = "draining"
REASON_RESUMED = "already_done"


@dataclass(frozen=True)
class AdmissionDecision:
    """The synchronous answer to one submit."""

    admitted: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.admitted


ADMIT = AdmissionDecision(True)


class AdmissionController:
    """Quota admission + priority-aware global shedding."""

    def __init__(self, default_max_queued: int, max_total_queued: int) -> None:
        if default_max_queued < 1:
            raise ValueError("default_max_queued must be >= 1")
        if max_total_queued < 1:
            raise ValueError("max_total_queued must be >= 1")
        self.default_max_queued = default_max_queued
        self.max_total_queued = max_total_queued

    def quota(self, queue: TenantQueue) -> int:
        limit = queue.spec.max_queued
        return limit if limit is not None else self.default_max_queued

    def admit(self, queue: TenantQueue) -> AdmissionDecision:
        """May this tenant enqueue one more batch right now?"""
        if len(queue) >= self.quota(queue):
            return AdmissionDecision(False, REASON_QUOTA)
        return ADMIT

    def _shed_key(self, queue: TenantQueue) -> tuple:
        """Victim ordering (min = shed first); overridable by subclasses."""
        return (queue.spec.priority, -len(queue), queue.spec.name)

    def select_shed(self, queues: dict[str, TenantQueue]) -> list[Batch]:
        """Pick and remove the batches to drop to get back under the
        global cap.  Victim order: lowest priority first; within a
        priority level, the tenant with the longest queue; within a
        tenant, newest first (LIFO — the oldest queued work is closest
        to being served and has the most invested wait).
        """
        total = sum(len(q) for q in queues.values())
        shed: list[Batch] = []
        while total > self.max_total_queued:
            victims = [q for q in queues.values() if len(q)]
            if not victims:
                break
            victim = min(victims, key=self._shed_key)
            shed.append(victim.batches.pop())
            total -= 1
        return shed


class SloAdmissionController(AdmissionController):
    """Error-budget-aware admission: quotas flex with each tenant's SLO.

    Fixed quotas answer the wrong question under load: a tenant deep in
    its error budget is *already* missing its objectives, and letting
    its queue keep growing only adds waiting time to batches that will
    miss anyway, while a tenant comfortably inside budget is being
    rejected for no operational reason.  This controller consults the
    :class:`~repro.obs.slo.SloEngine` per decision:

    * a tenant whose alert state is **OK** may queue up to ``headroom``
      times its nominal quota (it has budget to spend on the extra
      waiting time);
    * a tenant at **WARN** is held to exactly its nominal quota;
    * a tenant at **PAGE** has its quota tightened by ``tighten`` —
      a short queue is the fastest way to bring the waiting-time
      component of its latency back under the objective;
    * under global overload, *burning tenants are shed first* (before
      the priority order): their queued batches are the ones whose
      deadlines and latency bounds are already forfeit.

    Admission stays a pure function of queue + SLO state, so replays
    shed and reject identically.
    """

    def __init__(
        self,
        default_max_queued: int,
        max_total_queued: int,
        slo,
        headroom: float = 2.0,
        tighten: float = 0.5,
    ) -> None:
        super().__init__(default_max_queued, max_total_queued)
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1.0")
        if not 0.0 < tighten <= 1.0:
            raise ValueError("tighten must be in (0, 1]")
        self.slo = slo
        self.headroom = headroom
        self.tighten = tighten

    def quota(self, queue: TenantQueue) -> int:
        from repro.obs.slo import SLO_OK, SLO_PAGE

        nominal = super().quota(queue)
        alert = self.slo.tenant_alert(queue.spec.name)
        if alert == SLO_PAGE:
            return max(1, int(nominal * self.tighten))
        if alert == SLO_OK:
            return int(-(-nominal * self.headroom // 1))  # ceil
        return nominal

    def _shed_key(self, queue: TenantQueue) -> tuple:
        from repro.obs.slo import alert_severity

        burn = alert_severity(self.slo.tenant_alert(queue.spec.name))
        return (-burn, queue.spec.priority, -len(queue), queue.spec.name)

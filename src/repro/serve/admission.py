"""Admission control and load shedding for the serving loop.

Two distinct overload defenses, applied in order:

* **Admission** happens at submit time, per tenant: a batch that would
  push its tenant's ingress queue past the quota is rejected
  synchronously with a machine-readable reason.  The sender learns
  immediately (backpressure), and one tenant's burst can never occupy
  another tenant's queue space.
* **Shedding** happens after admission, globally: when the *total*
  backlog exceeds the loop's capacity the shedder drops already-queued
  batches, lowest priority first and newest first within a tenant —
  preserving the oldest work preserves FIFO fairness for whoever is
  about to be served.  Shedding is recorded per batch (``serve_shed``
  events) so operators can attribute dropped work.

Both decisions are pure functions of queue state, so a replayed
scenario sheds and rejects identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.tenants import Batch, TenantQueue

REASON_QUOTA = "tenant_quota"
REASON_UNKNOWN_TENANT = "unknown_tenant"
REASON_DRAINING = "draining"
REASON_RESUMED = "already_done"


@dataclass(frozen=True)
class AdmissionDecision:
    """The synchronous answer to one submit."""

    admitted: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.admitted


ADMIT = AdmissionDecision(True)


class AdmissionController:
    """Quota admission + priority-aware global shedding."""

    def __init__(self, default_max_queued: int, max_total_queued: int) -> None:
        if default_max_queued < 1:
            raise ValueError("default_max_queued must be >= 1")
        if max_total_queued < 1:
            raise ValueError("max_total_queued must be >= 1")
        self.default_max_queued = default_max_queued
        self.max_total_queued = max_total_queued

    def quota(self, queue: TenantQueue) -> int:
        limit = queue.spec.max_queued
        return limit if limit is not None else self.default_max_queued

    def admit(self, queue: TenantQueue) -> AdmissionDecision:
        """May this tenant enqueue one more batch right now?"""
        if len(queue) >= self.quota(queue):
            return AdmissionDecision(False, REASON_QUOTA)
        return ADMIT

    def select_shed(self, queues: dict[str, TenantQueue]) -> list[Batch]:
        """Pick and remove the batches to drop to get back under the
        global cap.  Victim order: lowest priority first; within a
        priority level, the tenant with the longest queue; within a
        tenant, newest first (LIFO — the oldest queued work is closest
        to being served and has the most invested wait).
        """
        total = sum(len(q) for q in queues.values())
        shed: list[Batch] = []
        while total > self.max_total_queued:
            victims = [q for q in queues.values() if len(q)]
            if not victims:
                break
            victim = min(
                victims,
                key=lambda q: (q.spec.priority, -len(q), q.spec.name),
            )
            shed.append(victim.batches.pop())
            total -= 1
        return shed

"""The resident serving loop.

:class:`ServeLoop` keeps one :class:`~repro.sim.engine.EngineSession`
(and therefore the policy runtime — miss-curve samplers, configurator,
placement tables) alive across epochs and feeds it request batches from
many named tenants:

* ``submit`` is the synchronous ingress edge: admission control per
  tenant (bounded queue quota), then global load shedding if the total
  backlog exceeds capacity — the caller always learns immediately what
  happened to its batch.
* ``step`` pops the highest-priority queued batch (FIFO within a
  tenant, deterministic tie-breaks) and runs it through the engine as
  one epoch; queued batches whose simulated deadline passed are dropped
  and counted as timed out before anything is scheduled.
* The clock is *simulated* time: ``now_ns`` is the engine's cumulative
  runtime converted through the core cycle time, so batch latencies,
  deadlines, and shedding decisions replay bit-identically.
* Every admitted batch is journaled (append-only, fsync'd) the moment
  it is accepted and again at its terminal outcome, so ``drain`` can
  stop serving at any point and a restarted loop resumes exactly the
  batches that never reached an outcome.

A fault schedule on the engine flows through unchanged: the per-step
fault events and :meth:`FaultState.health_summary` feed the
:class:`~repro.serve.health.HealthMonitor`, which forces capacity-aware
re-placement on unit loss and pauses reconfiguration while hardware is
flapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.histogram import LatencyHistogram
from repro.serve.admission import (
    REASON_DRAINING,
    REASON_RESUMED,
    REASON_UNKNOWN_TENANT,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.health import HealthMonitor
from repro.serve.journal import (
    OUTCOME_COMPLETED,
    OUTCOME_SHED,
    OUTCOME_TIMEOUT,
    ServeJournal,
)
from repro.serve.report import ServeReport, TenantStats
from repro.serve.tenants import Batch, TenantQueue, TenantSpec


@dataclass(frozen=True)
class ServeOptions:
    """Loop-wide robustness knobs (tenant specs can override quotas)."""

    default_max_queued: int = 8
    max_total_queued: int = 32
    flap_window: int = 8
    flap_threshold: int = 3


class ServeLoop:
    """One resident engine session serving many tenant queues."""

    def __init__(
        self,
        engine,
        workload,
        policy,
        tenants: list[TenantSpec],
        options: ServeOptions | None = None,
        journal_path=None,
        scenario_key: str = "",
        admission: AdmissionController | None = None,
        slo=None,
    ) -> None:
        if not tenants:
            raise ValueError("at least one tenant is required")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.engine = engine
        self.policy = policy
        self.options = options or ServeOptions()
        self.recorder = engine.recorder
        self.queues: dict[str, TenantQueue] = {
            t.name: TenantQueue(t) for t in tenants
        }
        self.stats: dict[str, TenantStats] = {
            t.name: TenantStats() for t in tenants
        }
        self.latency = LatencyHistogram()
        # Both optional hooks default to the pre-SLO behavior: fixed
        # quota admission and no objective evaluation — a loop built
        # without them is bit-identical to one predating the SLO layer.
        self.slo = slo
        self.admission = admission or AdmissionController(
            self.options.default_max_queued, self.options.max_total_queued
        )
        self.health = HealthMonitor(
            policy,
            self.recorder,
            flap_window=self.options.flap_window,
            flap_threshold=self.options.flap_threshold,
        )
        self.journal = (
            ServeJournal(journal_path, scenario_key=scenario_key)
            if journal_path is not None
            else None
        )
        self.session = engine.begin_session(workload, policy)
        self.resumed_skips = 0
        self.epochs = 0
        self._draining = False
        self._finished = False

    # -- clock ----------------------------------------------------------

    @property
    def now_ns(self) -> float:
        """Simulated time elapsed: cumulative engine cycles in ns."""
        return self.session.cycles_total * self.engine.config.core.cycle_ns

    # -- ingress --------------------------------------------------------

    def submit(self, batch: Batch) -> AdmissionDecision:
        """Offer one batch; returns synchronously what happened to it."""
        stats = self.stats.get(batch.tenant)
        if stats is None:
            return AdmissionDecision(False, REASON_UNKNOWN_TENANT)
        stats.submitted += 1
        if self.journal is not None and self.journal.is_done(batch.key):
            # Already reached a terminal outcome in a previous run of
            # this scenario: resume recomputes nothing journaled.
            stats.resumed += 1
            self.resumed_skips += 1
            return AdmissionDecision(False, REASON_RESUMED)
        if self._draining:
            stats.rejected += 1
            return AdmissionDecision(False, REASON_DRAINING)
        queue = self.queues[batch.tenant]
        decision = self.admission.admit(queue)
        if not decision:
            stats.rejected += 1
            if self.slo is not None:
                self.slo.on_reject(batch.tenant)
            self.recorder.event(
                "serve_reject",
                tenant=batch.tenant,
                batch=batch.batch_id,
                reason=decision.reason,
            )
            return decision
        stats.admitted += 1
        now = self.now_ns
        batch.enqueued_ns = now
        if queue.spec.deadline_ns is not None:
            batch.deadline_ns = now + queue.spec.deadline_ns
        queue.batches.append(batch)
        if self.journal is not None:
            self.journal.journal_queued(
                batch.key,
                tenant=batch.tenant,
                batch=batch.batch_id,
                start=batch.start,
                stop=batch.stop,
                enqueued_ns=batch.enqueued_ns,
                deadline_ns=batch.deadline_ns,
            )
        self._shed_overload()
        return decision

    def _shed_overload(self) -> None:
        now = self.now_ns
        for victim in self.admission.select_shed(self.queues):
            stats = self.stats[victim.tenant]
            stats.shed += 1
            if self.slo is not None:
                self.slo.on_shed(victim.tenant)
            self.recorder.event(
                "serve_shed",
                tenant=victim.tenant,
                batch=victim.batch_id,
                priority=self.queues[victim.tenant].spec.priority,
                queued_ns=now - victim.enqueued_ns,
            )
            if self.journal is not None:
                self.journal.journal_done(victim.key, OUTCOME_SHED)

    # -- serving --------------------------------------------------------

    def _expire_deadlines(self) -> int:
        """Drop queued batches whose simulated deadline already passed."""
        now = self.now_ns
        expired: list[Batch] = []
        for queue in self.queues.values():
            keep = [
                b
                for b in queue.batches
                if b.deadline_ns is None or b.deadline_ns > now
            ]
            if len(keep) != len(queue.batches):
                expired.extend(
                    b
                    for b in queue.batches
                    if b.deadline_ns is not None and b.deadline_ns <= now
                )
                queue.batches.clear()
                queue.batches.extend(keep)
        for batch in sorted(expired, key=lambda b: b.batch_id):
            stats = self.stats[batch.tenant]
            stats.timed_out += 1
            if self.slo is not None:
                self.slo.on_timeout(batch.tenant)
            self.recorder.event(
                "serve_timeout",
                tenant=batch.tenant,
                batch=batch.batch_id,
                deadline_ns=batch.deadline_ns,
                now_ns=now,
            )
            if self.journal is not None:
                self.journal.journal_done(batch.key, OUTCOME_TIMEOUT)
        return len(expired)

    def _next_batch(self) -> Batch | None:
        """Highest priority first; FIFO within a tenant; deterministic
        (enqueue time, batch id) tie-break across equal-priority tenants."""
        candidates = [q for q in self.queues.values() if len(q)]
        if not candidates:
            return None
        queue = min(
            candidates,
            key=lambda q: (
                -q.spec.priority,
                q.head.enqueued_ns,
                q.head.batch_id,
            ),
        )
        return queue.batches.popleft()

    def step(self) -> Batch | None:
        """Serve one queued batch through the engine; None when idle."""
        if self._finished:
            raise RuntimeError("ServeLoop already finished")
        self._expire_deadlines()
        batch = self._next_batch()
        if batch is None:
            return None
        step = self.session.step(batch.trace)
        self.epochs += 1
        latency = self.now_ns - batch.enqueued_ns
        stats = self.stats[batch.tenant]
        stats.completed += 1
        stats.latency.observe([latency])
        self.latency.observe([latency])
        if self.journal is not None:
            self.journal.journal_done(batch.key, OUTCOME_COMPLETED)
        summary = (
            self.engine.fault_state.health_summary()
            if self.engine.fault_state is not None
            else None
        )
        self.health.observe(step.epoch, step.fault_events, summary)
        if self.slo is not None:
            self.slo.on_complete(batch.tenant, latency)
            self.slo.end_epoch(step.epoch)
        return batch

    def run_until_idle(self, max_steps: int | None = None) -> int:
        """Serve queued batches until empty (or ``max_steps``)."""
        steps = 0
        while max_steps is None or steps < max_steps:
            if self.step() is None:
                break
            steps += 1
        return steps

    # -- shutdown -------------------------------------------------------

    @property
    def queued(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def drain(self) -> int:
        """Graceful shutdown: stop admitting, leave the backlog journaled.

        The in-flight batch (if any) already finished — ``step`` is
        synchronous — and every queued batch was journaled ``queued`` at
        admission with no terminal outcome, so a restarted loop resumes
        exactly these.  Returns the number of batches left behind.
        """
        self._draining = True
        return self.queued

    def snapshot_report(self, scenario: str = "") -> ServeReport:
        """A point-in-time :class:`ServeReport` for the live endpoints.

        Unlike :meth:`finish` this closes nothing: the session stays
        resident, the health monitor keeps its open window, and the
        loop continues serving afterwards.  ``sim`` is ``None`` — the
        engine-level report only exists once the session finishes.
        """
        summary = (
            self.engine.fault_state.health_summary()
            if self.engine.fault_state is not None
            else None
        )
        return ServeReport(
            scenario=scenario,
            tenants=self.stats,
            latency=self.latency,
            epochs=self.epochs,
            reconfigs=getattr(self.policy, "applied_reconfigs", 0),
            health_reconfig_requests=self.health.reconfig_requests,
            degraded_windows=self.health.windows_view(),
            final_health=summary,
            drained_queued=self.queued,
            resumed_skips=self.resumed_skips,
            sim=None,
            slo=self.slo.status() if self.slo is not None else None,
        )

    def finish(self, scenario: str = "") -> ServeReport:
        """Close the session and assemble the :class:`ServeReport`."""
        if self._finished:
            raise RuntimeError("ServeLoop already finished")
        self._finished = True
        drained = self.queued
        if self.slo is not None:
            self.slo.emit_status()
        sim = self.session.finish()
        if self.journal is not None:
            self.journal.close()
        final_health = (
            self.engine.fault_state.health_summary()
            if self.engine.fault_state is not None
            else None
        )
        return ServeReport(
            scenario=scenario,
            tenants=self.stats,
            latency=self.latency,
            epochs=self.epochs,
            reconfigs=getattr(self.policy, "applied_reconfigs", 0),
            health_reconfig_requests=self.health.reconfig_requests,
            degraded_windows=self.health.finish(),
            final_health=final_health,
            drained_queued=drained,
            resumed_skips=self.resumed_skips,
            sim=sim,
            slo=self.slo.status() if self.slo is not None else None,
        )

"""The live telemetry plane: an HTTP front door beside the serving loop.

:class:`LiveServeServer` runs a stdlib :class:`ThreadingHTTPServer` on a
daemon thread next to a :class:`~repro.serve.loop.ServeLoop`, turning
the passive exporters into a queryable, drivable ops surface:

* ``GET /metrics`` — the serving Prometheus document for the loop's
  *current* state (:func:`~repro.obs.export.serve_prometheus` over a
  non-destructive snapshot), engine counters when a live recorder is
  attached, and the SLO burn/budget gauges.
* ``GET /healthz`` — mirrors the :class:`HealthMonitor`: 200 while
  HEALTHY or DEGRADED (the loop is still serving), 503 while FLAPPING
  (reconfiguration is paused and a load balancer should back off).
* ``GET /slo`` — the full per-tenant objective status as JSON
  (:meth:`SloEngine.status`).
* ``GET /report`` — the snapshot :class:`ServeReport` as JSON.
* ``POST /ingest`` — submit batches into the tenant queues from
  outside: the body names batches by journal identity
  (``tenant``/``batch_id``/``start``/``stop``) and the server
  materializes trace slices through the harness, so external traffic
  replays *exactly* like a scripted scenario.
* ``POST /drain`` / ``POST /finish`` — graceful shutdown over HTTP;
  ``/finish`` returns the final report and freezes it for later GETs.

Every handler serializes on one lock shared with the scripted replay
(:meth:`ServeHarness.run` accepts it), so a scrape mid-storm sees a
consistent loop state and an ``/ingest``-driven run stays bit-identical
to its scripted equivalent.  The simulated clock never observes HTTP
timing — transport pacing cannot change a replayed result.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export import serve_prometheus
from repro.obs.recorder import sanitize_json
from repro.serve.health import FLAPPING


def parse_listen(spec: str) -> tuple[str, int]:
    """``host:port``, ``:port``, or bare ``port``; a missing host binds
    loopback (the safe default for a dev/CI telemetry endpoint)."""
    host, _, port = spec.rpartition(":")
    if not port:
        raise ValueError(f"listen spec {spec!r} needs a port")
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(f"listen spec {spec!r}: port must be an integer") from None
    if not 0 <= port_num <= 65535:
        raise ValueError(f"listen spec {spec!r}: port out of range")
    return (host or "127.0.0.1", port_num)


class LiveServeServer:
    """One HTTP endpoint bound to one resident serving loop."""

    def __init__(
        self,
        loop,
        make_batch=None,
        scenario: str = "",
        host: str = "127.0.0.1",
        port: int = 0,
        extra_labels: dict | None = None,
    ) -> None:
        self.loop = loop
        self.make_batch = make_batch
        self.scenario = scenario
        self.extra_labels = dict(extra_labels or {})
        self.lock = threading.RLock()
        self._final = None  # ServeReport after /finish (or set_final)
        server = self

        class Handler(BaseHTTPRequestHandler):
            # Telemetry endpoints must not spam the serving process.
            def log_message(self, fmt, *args):
                pass

            def _send(self, status: int, content_type: str, body: bytes):
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _json(self, status: int, payload):
                body = json.dumps(
                    sanitize_json(payload), allow_nan=False
                ).encode()
                self._send(status, "application/json", body)

            def do_GET(self):
                try:
                    server._get(self)
                except BrokenPipeError:
                    pass
                except Exception as exc:  # surface, don't kill the thread
                    self._json(500, {"error": repr(exc)})

            def do_POST(self):
                try:
                    server._post(self)
                except BrokenPipeError:
                    pass
                except Exception as exc:
                    self._json(500, {"error": repr(exc)})

        self.httpd = ThreadingHTTPServer((host, port), Handler)
        self.httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-live", daemon=True
        )

    # -- lifecycle ------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "LiveServeServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "LiveServeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def set_final(self, report) -> None:
        """Freeze the end-of-run report (scripted runs call this after
        ``harness.run``; ``/finish`` does it for ingest-driven runs)."""
        with self.lock:
            self._final = report

    # -- snapshots ------------------------------------------------------

    def _snapshot(self):
        """Current report under the lock: live until finished, then the
        frozen final report."""
        if self._final is not None:
            return self._final
        return self.loop.snapshot_report(self.scenario)

    def metrics_text(self) -> str:
        with self.lock:
            report = self._snapshot()
            text = serve_prometheus(report, self.extra_labels)
            recorder = self.loop.recorder
            if recorder.enabled and recorder.counters:
                lines = [
                    "# HELP repro_engine_counter_total engine-layer counters "
                    "from the live recorder",
                    "# TYPE repro_engine_counter_total counter",
                ]
                for name, value in sorted(recorder.counters.items()):
                    label = name.replace("\\", "\\\\").replace('"', '\\"')
                    lines.append(
                        f'repro_engine_counter_total{{name="{label}"}} {value:g}'
                    )
                text += "\n".join(lines) + "\n"
        return text

    # -- request handling ----------------------------------------------

    def _get(self, handler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/metrics":
            handler._send(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                self.metrics_text().encode(),
            )
        elif path == "/healthz":
            with self.lock:
                state = self.loop.health.state
                payload = {
                    "state": state,
                    "epochs": self.loop.epochs,
                    "queued": self.loop.queued,
                    "finished": self._final is not None,
                    "degraded_windows": self.loop.health.windows_view(),
                }
            handler._json(503 if state == FLAPPING else 200, payload)
        elif path == "/slo":
            with self.lock:
                payload = (
                    self.loop.slo.status()
                    if self.loop.slo is not None
                    else {"tenants": {}}
                )
            handler._json(200, payload)
        elif path == "/report":
            with self.lock:
                payload = self._snapshot().to_json()
            handler._json(200, payload)
        else:
            handler._json(404, {"error": f"unknown path {path!r}"})

    def _read_body(self, handler) -> dict:
        length = int(handler.headers.get("Content-Length") or 0)
        raw = handler.rfile.read(length) if length else b""
        if not raw:
            return {}
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _post(self, handler) -> None:
        path = handler.path.split("?", 1)[0]
        try:
            payload = self._read_body(handler)
        except (ValueError, json.JSONDecodeError) as exc:
            handler._json(400, {"error": str(exc)})
            return
        if path == "/ingest":
            self._ingest(handler, payload)
        elif path == "/drain":
            with self.lock:
                if self._final is not None:
                    handler._json(409, {"error": "loop already finished"})
                    return
                drained = self.loop.drain()
            handler._json(200, {"drained": drained})
        elif path == "/finish":
            with self.lock:
                if self._final is not None:
                    handler._json(409, {"error": "loop already finished"})
                    return
                report = self.loop.finish(
                    str(payload.get("scenario", self.scenario))
                )
                self._final = report
            handler._json(200, report.to_json())
        else:
            handler._json(404, {"error": f"unknown path {path!r}"})

    def _ingest(self, handler, payload: dict) -> None:
        """Submit batches, then optionally serve: ``steps`` absent means
        submit-only, ``null`` drains the backlog fully, an integer is a
        bounded serving burst — the exact vocabulary of a scripted
        wave, so external clients can reproduce any scenario pacing."""
        if self.make_batch is None:
            handler._json(
                501, {"error": "this endpoint has no workload to slice"}
            )
            return
        batches = payload.get("batches", [])
        if not isinstance(batches, list):
            handler._json(400, {"error": "'batches' must be a list"})
            return
        decisions = []
        with self.lock:
            if self._final is not None:
                handler._json(409, {"error": "loop already finished"})
                return
            try:
                materialized = [
                    self.make_batch(
                        str(spec["tenant"]),
                        int(spec["batch_id"]),
                        int(spec["start"]),
                        int(spec["stop"]),
                    )
                    for spec in batches
                ]
            except (KeyError, TypeError, ValueError) as exc:
                handler._json(400, {"error": f"bad batch spec: {exc!r}"})
                return
            for batch in materialized:
                decision = self.loop.submit(batch)
                decisions.append(
                    {
                        "tenant": batch.tenant,
                        "batch_id": batch.batch_id,
                        "admitted": decision.admitted,
                        "reason": decision.reason,
                    }
                )
            steps = 0
            if "steps" in payload:
                limit = payload["steps"]
                steps = self.loop.run_until_idle(
                    max_steps=None if limit is None else int(limit)
                )
            queued = self.loop.queued
            epochs = self.loop.epochs
        handler._json(
            200,
            {
                "decisions": decisions,
                "steps": steps,
                "queued": queued,
                "epochs": epochs,
            },
        )

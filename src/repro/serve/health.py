"""The serving loop's health model: fault signals -> reconfiguration gates.

Consumes the per-step fault signals the engine already produces
(:class:`~repro.faults.state.EpochFaults` deltas and
:meth:`~repro.faults.state.FaultState.health_summary`) and drives the
policy's online-reconfiguration hooks.  Three states::

    HEALTHY ----new fault/degraded capacity----> DEGRADED
    DEGRADED --fault bursts within flap window-> FLAPPING
    FLAPPING --window ages out------------------> DEGRADED/HEALTHY

* Entering **DEGRADED** on a capacity-changing fault (unit fail-stop or
  row quarantine) forces a re-placement at the next epoch boundary via
  :meth:`NdpExtPolicy.request_reconfigure` — the churn damper is
  bypassed because lost capacity must be re-spread even when the
  predicted gain is marginal.  Link-level degradation (lane down-train,
  CRC burst) marks the window but does not force a re-placement:
  placement capacity did not change.
* **FLAPPING** (>= ``flap_threshold`` fault-striking epochs within the
  last ``flap_window`` engine epochs) *pauses* reconfiguration entirely
  (:meth:`NdpExtPolicy.set_reconfig_enabled`): re-placing after every
  strike of a fault storm costs more in movements/invalidations than
  the placements gain.  When the storm ages out of the window the
  monitor re-enables reconfiguration and forces one catch-up
  re-placement for the accumulated damage.

State changes are emitted as ``serve_degraded`` recorder events and the
non-healthy intervals are reported as *degradation windows* —
``[start_epoch, end_epoch)`` pairs — in the :class:`ServeReport`.
"""

from __future__ import annotations

from collections import deque

from repro.faults import EpochFaults

HEALTHY = "healthy"
DEGRADED = "degraded"
FLAPPING = "flapping"


class HealthMonitor:
    """Tracks fault activity and gates the policy's reconfiguration."""

    def __init__(
        self,
        policy,
        recorder,
        flap_window: int = 8,
        flap_threshold: int = 3,
    ) -> None:
        if flap_window < 1 or flap_threshold < 2:
            raise ValueError("flap_window >= 1 and flap_threshold >= 2 required")
        self.policy = policy
        self.recorder = recorder
        self.flap_window = flap_window
        self.flap_threshold = flap_threshold
        self.state = HEALTHY
        self.reconfig_requests = 0
        self.windows: list[list[int | None]] = []
        self._fault_epochs: deque[int] = deque()
        self._last_epoch = -1

    # ------------------------------------------------------------------

    def _force_reconfig(self) -> None:
        request = getattr(self.policy, "request_reconfigure", None)
        if request is not None:
            request()
            self.reconfig_requests += 1

    def _set_enabled(self, enabled: bool) -> None:
        setter = getattr(self.policy, "set_reconfig_enabled", None)
        if setter is not None:
            setter(enabled)

    def observe(
        self,
        epoch: int,
        fault_events: EpochFaults | None,
        summary: dict | None,
    ) -> str:
        """Fold one engine step's fault signals in; returns the state."""
        self._last_epoch = epoch
        capacity_fault = fault_events is not None and not fault_events.empty
        if capacity_fault:
            self._fault_epochs.append(epoch)
        while self._fault_epochs and self._fault_epochs[0] <= epoch - self.flap_window:
            self._fault_epochs.popleft()

        degraded = bool(summary and summary.get("degraded"))
        if len(self._fault_epochs) >= self.flap_threshold:
            target = FLAPPING
        elif degraded or capacity_fault:
            target = DEGRADED
        else:
            target = HEALTHY

        previous = self.state
        if target != previous:
            if previous == FLAPPING:
                # Storm over: resume reconfiguration and re-place once
                # for everything that struck while it was paused.
                self._set_enabled(True)
                self._force_reconfig()
            if target == FLAPPING:
                self._set_enabled(False)
            self.state = target
            if target == HEALTHY:
                self._close_window(epoch)
            elif previous == HEALTHY:
                self.windows.append([epoch, None])
            self.recorder.event(
                "serve_degraded",
                state=target,
                previous=previous,
                epoch=epoch,
                fault_epochs_in_window=len(self._fault_epochs),
                summary=summary,
            )
        if capacity_fault and self.state != FLAPPING:
            self._force_reconfig()
        return self.state

    # ------------------------------------------------------------------

    def _close_window(self, epoch: int) -> None:
        if self.windows and self.windows[-1][1] is None:
            self.windows[-1][1] = epoch

    def windows_view(self) -> list[list[int]]:
        """The degradation windows as closed pairs *without* mutating
        anything — an open window is reported as ending now.  The live
        ``/metrics`` and ``/healthz`` snapshots use this; :meth:`finish`
        remains the end-of-run closer."""
        return [
            [int(a), int(b if b is not None else self._last_epoch + 1)]
            for a, b in self.windows
        ]

    def finish(self) -> list[list[int]]:
        """Close any open degradation window and return them all."""
        if self.windows and self.windows[-1][1] is None:
            self.windows[-1][1] = self._last_epoch + 1
        return [[int(a), int(b)] for a, b in self.windows]

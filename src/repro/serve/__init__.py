"""Multi-tenant serving mode: the configurator as a resident service.

The paper's runtime is a loop — profile, re-derive placements, remap —
and this package productionizes it: a resident engine session serving
streaming request batches from many named tenants, with admission
control, priority load shedding, simulated-time deadlines, health-gated
online reconfiguration, and journaled drain/resume.  See
DESIGN.md's "Serving mode" section for the state machines.
"""

from repro.serve.admission import (
    REASON_DRAINING,
    REASON_QUOTA,
    REASON_RESUMED,
    REASON_UNKNOWN_TENANT,
    AdmissionController,
    AdmissionDecision,
    SloAdmissionController,
)
from repro.serve.health import DEGRADED, FLAPPING, HEALTHY, HealthMonitor
from repro.serve.journal import (
    OUTCOME_COMPLETED,
    OUTCOME_SHED,
    OUTCOME_TIMEOUT,
    ServeJournal,
)
from repro.serve.live import LiveServeServer, parse_listen
from repro.serve.loop import ServeLoop, ServeOptions
from repro.serve.report import ServeReport, TenantStats
from repro.serve.scenario import (
    ADMISSION_MODES,
    ServeHarness,
    ServeScenario,
    two_tenant_scenario,
)
from repro.serve.tenants import Batch, TenantQueue, TenantSpec

__all__ = [
    "ADMISSION_MODES",
    "AdmissionController",
    "AdmissionDecision",
    "Batch",
    "DEGRADED",
    "FLAPPING",
    "HEALTHY",
    "HealthMonitor",
    "LiveServeServer",
    "OUTCOME_COMPLETED",
    "OUTCOME_SHED",
    "OUTCOME_TIMEOUT",
    "REASON_DRAINING",
    "REASON_QUOTA",
    "REASON_RESUMED",
    "REASON_UNKNOWN_TENANT",
    "ServeHarness",
    "ServeJournal",
    "ServeLoop",
    "ServeOptions",
    "ServeReport",
    "ServeScenario",
    "SloAdmissionController",
    "TenantQueue",
    "TenantSpec",
    "TenantStats",
    "parse_listen",
    "two_tenant_scenario",
]

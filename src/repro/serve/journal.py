"""Append-only serve journal: drain a serving loop, resume it later.

Same idiom as :class:`repro.exec.checkpoint.SweepManifest` — one JSONL
file, every line flushed and fsync'd as it is appended, torn final line
tolerated, stale file rotated aside — but journaling *batches* instead
of sweep cells::

    {"kind": "header", "schema": 1, "stamp": "<code stamp>",
     "scenario": "<scenario key>"}
    {"kind": "batch", "status": "queued", "key": "tenant:7",
     "tenant": ..., "batch": 7, "start": ..., "stop": ...,
     "enqueued_ns": ..., "deadline_ns": ...}
    {"kind": "batch", "status": "done", "key": "tenant:7",
     "outcome": "completed"}

A batch is journaled ``queued`` the moment admission accepts it and
``done`` when it reaches *any* terminal outcome — completed, shed, or
timed out — so after a drain (or a crash) the pending set is exactly
``queued - done``: the restart re-submits the scenario, already-done
batches are skipped without recomputation, and only the batches that
were still waiting are processed.

The header pins both the code stamp and a caller-supplied *scenario
key*: a journal written by different simulator code, or for a different
scenario, describes different batches, so it is rotated to
``<path>.stale`` rather than silently resumed against the wrong run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

SERVE_JOURNAL_SCHEMA = 1

OUTCOME_COMPLETED = "completed"
OUTCOME_SHED = "shed"
OUTCOME_TIMEOUT = "timeout"


class ServeJournal:
    """Journal of queued/terminal batches for one resumable serve run."""

    def __init__(
        self,
        path: Path | str,
        scenario_key: str = "",
        stamp: str | None = None,
    ) -> None:
        if stamp is None:
            from repro.exec.cache import code_stamp

            stamp = code_stamp()
        self.path = Path(path)
        self.stamp = stamp
        self.scenario_key = scenario_key
        self._queued: dict[str, dict] = {}
        self._done: dict[str, str] = {}  # key -> outcome
        self._fh = None
        self._load()

    # -- reading -------------------------------------------------------

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return
        stale = False
        records: list[dict] = []
        for i, line in enumerate(text.splitlines()):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail from a crash mid-append; keep the prefix
            if not isinstance(record, dict):
                break
            if i == 0:
                if (
                    record.get("kind") != "header"
                    or record.get("schema") != SERVE_JOURNAL_SCHEMA
                    or record.get("stamp") != self.stamp
                    or record.get("scenario") != self.scenario_key
                ):
                    stale = True
                    break
                continue
            records.append(record)
        if stale:
            try:
                os.replace(
                    self.path, self.path.with_name(self.path.name + ".stale")
                )
            except OSError:
                pass
            return
        for record in records:
            if record.get("kind") != "batch" or "key" not in record:
                continue
            key = record["key"]
            status = record.get("status")
            if status == "queued":
                self._queued[key] = record
            elif status == "done":
                self._done[key] = record.get("outcome", OUTCOME_COMPLETED)

    def is_done(self, key: str) -> bool:
        return key in self._done

    def outcome(self, key: str) -> str | None:
        return self._done.get(key)

    def pending(self) -> list[dict]:
        """Queued records with no terminal outcome, in journal order."""
        return [
            record
            for key, record in self._queued.items()
            if key not in self._done
        ]

    @property
    def done_count(self) -> int:
        return len(self._done)

    @property
    def queued_count(self) -> int:
        return len(self._queued)

    # -- writing -------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = open(self.path, "a", encoding="utf-8")
            if fresh:
                header = {
                    "kind": "header",
                    "schema": SERVE_JOURNAL_SCHEMA,
                    "stamp": self.stamp,
                    "scenario": self.scenario_key,
                }
                self._fh.write(json.dumps(header) + "\n")
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def journal_queued(self, key: str, **meta) -> None:
        if key in self._queued:
            return
        record = {"kind": "batch", "status": "queued", "key": key, **meta}
        self._queued[key] = record
        self._append(record)

    def journal_done(self, key: str, outcome: str = OUTCOME_COMPLETED) -> None:
        if key in self._done:
            return
        self._done[key] = outcome
        self._append(
            {"kind": "batch", "status": "done", "key": key, "outcome": outcome}
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

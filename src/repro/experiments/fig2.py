"""Fig. 2(a): access-latency breakdown, NDP vs conventional NUCA.

The paper motivates NDPExt by running PageRank under a simple static
cacheline-interleaving policy on (1) the NDP system with extended memory
and (2) a conventional NUCA chip (our host model), and showing that the
NDP system spends a far larger latency fraction on the interconnect
(32% vs 13%) while enjoying a much higher cache hit rate (70% vs 47%)
thanks to its larger capacity.

We reproduce both series: the breakdown fractions per component and the
two hit rates.  The shape to check: interconnect fraction NDP >> NUCA;
hit rate NDP >> NUCA; next-level-memory fraction NUCA >> NDP.
"""

from __future__ import annotations

from repro.baselines import StaticNucaPolicy, host_config
from repro.experiments.runner import DEFAULT_CONTEXT, Cell, ExperimentContext
from repro.util import render_table

WORKLOAD = "pr"


def _fig2_nuca_config(context: ExperimentContext):
    """The Fig. 2 comparison chip: a Jigsaw-style NUCA with 512 kB banks
    per core — much more LLC than the Fig. 5 host (32 MB against the
    NDP's 16 GB), so its hit rate is meaningful (paper: 47%) while still
    well below the NDP system's (70%)."""
    config = host_config(context.config)
    return config.scaled(
        name=f"{config.name}-fig2",
        unit_cache_bytes=max(
            config.unit_cache_bytes,
            context.config.total_cache_bytes // (8 * config.n_units),
        ),
    )


def run(context: ExperimentContext | None = None, verbose: bool = True) -> dict:
    context = context or DEFAULT_CONTEXT
    ndp, nuca = context.run_many(
        [
            Cell(WORKLOAD, "static-nuca"),
            Cell(
                WORKLOAD,
                "nuca-fig2-static",
                config=_fig2_nuca_config(context),
                policy_factory=StaticNucaPolicy,
            ),
        ]
    )

    def row(report):
        frac = report.breakdown.fractions()
        interconnect = frac["intra_noc_ns"] + frac["inter_noc_ns"]
        return {
            "sram": frac["sram_ns"],
            "metadata": frac["metadata_ns"],
            "dram": frac["dram_ns"],
            "interconnect": interconnect,
            "next_level": frac["extended_ns"],
            "hit_rate": report.hits.cache_hit_rate,
        }

    result = {"ndp": row(ndp), "nuca": row(nuca)}
    if verbose:
        headers = ["system", "sram", "metadata", "dram", "interconnect", "next-level", "hit-rate"]
        rows = [
            [
                name,
                f"{r['sram']:.2f}",
                f"{r['metadata']:.2f}",
                f"{r['dram']:.2f}",
                f"{r['interconnect']:.2f}",
                f"{r['next_level']:.2f}",
                f"{r['hit_rate']:.2f}",
            ]
            for name, r in result.items()
        ]
        print(render_table(headers, rows, title="Fig 2(a): latency breakdown (fractions), pr under static interleave"))
        print(
            "paper: NDP interconnect 32% vs NUCA 13%; hit rate 70% vs 47%"
        )
    return result

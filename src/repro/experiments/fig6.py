"""Fig. 6: energy breakdown, NDPExt vs Nexus.

The paper reports NDPExt saving 40.3% total energy over Nexus on
average: static energy follows the shorter execution time, DRAM energy
drops 8.3% (no metadata accesses, fewer extended-memory misses), and
interconnect energy falls from 6.6% to 3.2% of the total.

Shapes to check: NDPExt total < Nexus total on (nearly) every workload;
the static component shrinks proportionally to runtime; the interconnect
share falls.
"""

from __future__ import annotations

from repro.experiments.runner import DEFAULT_CONTEXT, Cell, ExperimentContext
from repro.util import render_table
from repro.workloads import SUITE

COMPONENTS = ("static_nj", "sram_nj", "ndp_dram_nj", "noc_nj", "cxl_nj", "ext_dram_nj")


def run(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = SUITE,
    verbose: bool = True,
) -> dict:
    context = context or DEFAULT_CONTEXT
    context.run_many(
        [Cell(w, p) for w in workloads for p in ("nexus", "ndpext")]
    )
    result: dict[str, dict] = {}
    for wname in workloads:
        nexus = context.run(wname, "nexus")
        ndpext = context.run(wname, "ndpext")
        norm = nexus.energy.total_nj or 1.0
        result[wname] = {
            "nexus": {c: getattr(nexus.energy, c) / norm for c in COMPONENTS},
            "ndpext": {c: getattr(ndpext.energy, c) / norm for c in COMPONENTS},
            "ndpext_total": ndpext.energy.total_nj / norm,
        }
    savings = [1.0 - r["ndpext_total"] for r in result.values()]
    if verbose:
        headers = ["workload", "policy"] + [c.replace("_nj", "") for c in COMPONENTS] + ["total"]
        rows = []
        for wname, r in result.items():
            for policy in ("nexus", "ndpext"):
                comps = r[policy]
                rows.append(
                    [wname, policy]
                    + [f"{comps[c]:.3f}" for c in COMPONENTS]
                    + [f"{sum(comps.values()):.3f}"]
                )
        print(render_table(headers, rows, title="Fig 6: energy, normalized to Nexus total"))
        print(
            f"mean energy saving of NDPExt over Nexus: "
            f"{sum(savings) / len(savings):.1%} (paper: 40.3%)"
        )
    return result

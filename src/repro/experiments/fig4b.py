"""Fig. 4(b): host-side sampler-assignment time vs stream count.

The max-flow (Edmonds-Karp) sampler assignment runs on the host at every
epoch boundary; the paper reports under half a millisecond for 512
streams.  We time :class:`SamplerAssigner` on synthetic bitvectors with
growing stream counts and report milliseconds per assignment.

The shape to check: runtime grows with stream count and stays well under
a millisecond at 512 streams (a trivial cost against a 50M-cycle epoch).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.assignment import SamplerAssigner
from repro.util import render_table

STREAM_COUNTS = (32, 64, 128, 256, 512)


def synthetic_bitvectors(
    n_units: int, n_streams: int, accessors_per_stream: int = 4, seed: int = 1
) -> np.ndarray:
    """Each stream is accessed by a few random units (the common case)."""
    rng = np.random.default_rng(seed)
    bitvec = np.zeros((n_units, n_streams), dtype=bool)
    for s in range(n_streams):
        units = rng.choice(n_units, size=min(accessors_per_stream, n_units), replace=False)
        bitvec[units, s] = True
    return bitvec


def run(n_units: int = 64, verbose: bool = True, repeats: int = 3) -> dict[int, dict]:
    result: dict[int, dict] = {}
    for n_streams in STREAM_COUNTS:
        bitvec = synthetic_bitvectors(n_units, n_streams)
        best_ms = float("inf")
        covered = 0
        for _ in range(repeats):
            assigner = SamplerAssigner(samplers_per_unit=4)
            start = time.perf_counter()
            assignment = assigner.assign(bitvec)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            best_ms = min(best_ms, elapsed_ms)
            covered = len(assignment.covered)
        result[n_streams] = {"ms": best_ms, "covered": covered}
    if verbose:
        rows = [
            [n, f"{r['ms']:.3f}", r["covered"]] for n, r in result.items()
        ]
        print(
            render_table(
                ["streams", "assignment ms", "covered"],
                rows,
                title=f"Fig 4(b): sampler assignment time ({n_units} units, 4 samplers each)",
            )
        )
        print("paper: < 0.5 ms at 512 streams")
    return result

"""Fig. 8: sensitivity to NDP scale and CXL link latency.

(a) Speedup of NDPExt over Nexus as the system grows: more stacks (same
total units), fewer/more units, down to a single unit where the design
degenerates to a conventional DRAM cache and the win comes from the
stream abstraction alone (paper: 1.16x).  Shape: the speedup grows with
stack count / core count because interconnect costs — what NDPExt's
placement attacks — grow with distance; the single-unit speedup is the
smallest but still > 1.

(b) Speedup of NDPExt over Nexus vs CXL link latency (50..400 ns).
Shape: monotonically increasing (paper: 1.33x at 50 ns to 1.50x at
400 ns) because expensive misses reward NDPExt's lower miss rate.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.runner import DEFAULT_CONTEXT, Cell, ExperimentContext
from repro.util import geomean, render_table
from repro.workloads import REPRESENTATIVE

# (label, stacks_x, stacks_y, mesh_x, mesh_y) — total units vary like the
# paper's stack/core sweeps, scaled to the small preset.
SCALE_POINTS = (
    ("1x(4x4)", 1, 1, 4, 4),  # one big stack, 16 units
    ("4x(2x2)", 2, 2, 2, 2),  # default: 4 stacks
    ("16x(1x1)", 4, 4, 1, 1),  # many small stacks, 16 units
    ("1x(2x2)", 1, 1, 2, 2),  # scaled-down: 4 units
    ("8x(2x2)", 4, 2, 2, 2),  # scaled-up: 32 units
)

CXL_LATENCIES_NS = (50.0, 100.0, 200.0, 400.0)


def _config_cells(config, workloads) -> list[Cell]:
    """The (ndpext, nexus) cell pair per workload under ``config``."""
    return [
        Cell(wname, policy, config=config)
        for wname in workloads
        for policy in ("ndpext", "nexus")
    ]


def _speedup_for_config(context: ExperimentContext, config, workloads) -> float:
    reports = context.run_many(_config_cells(config, workloads))
    speedups = [
        nexus.runtime_cycles / ndpext.runtime_cycles
        for ndpext, nexus in zip(reports[0::2], reports[1::2])
    ]
    return geomean(speedups)


def run_scaling(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = REPRESENTATIVE,
    verbose: bool = True,
) -> dict[str, float]:
    context = context or DEFAULT_CONTEXT
    base = context.config
    configs: dict[str, object] = {
        label: base.scaled(
            name=f"{base.name}-{label}", stacks_x=sx, stacks_y=sy, mesh_x=mx, mesh_y=my
        )
        for label, sx, sy, mx, my in SCALE_POINTS
    }
    # Single unit: conventional DRAM cache; the static variants isolate
    # the stream abstraction (no configuration algorithm needed).
    configs["single-unit"] = base.scaled(
        name=f"{base.name}-1unit", stacks_x=1, stacks_y=1, mesh_x=1, mesh_y=1
    )
    # One batch over the whole sweep so uncached cells share the fan-out.
    context.run_many(
        [c for config in configs.values() for c in _config_cells(config, workloads)]
    )
    result = {
        label: _speedup_for_config(context, config, workloads)
        for label, config in configs.items()
    }
    if verbose:
        rows = [[label, f"{x:.2f}"] for label, x in result.items()]
        print(
            render_table(
                ["system", "ndpext/nexus"],
                rows,
                title="Fig 8(a): speedup vs NDP scale (stacks x units)",
            )
        )
        print("paper shape: grows with stacks/cores; 1.16x at a single unit")
    return result


def run_cxl(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = REPRESENTATIVE,
    verbose: bool = True,
) -> dict[float, float]:
    context = context or DEFAULT_CONTEXT
    base = context.config
    configs = {
        latency: base.scaled(
            name=f"{base.name}-cxl{int(latency)}",
            cxl=replace(base.cxl, link_ns=latency),
        )
        for latency in CXL_LATENCIES_NS
    }
    context.run_many(
        [c for config in configs.values() for c in _config_cells(config, workloads)]
    )
    result = {
        latency: _speedup_for_config(context, config, workloads)
        for latency, config in configs.items()
    }
    if verbose:
        rows = [[f"{int(l)} ns", f"{x:.2f}"] for l, x in result.items()]
        print(
            render_table(
                ["CXL link latency", "ndpext/nexus"],
                rows,
                title="Fig 8(b): speedup vs CXL link latency",
            )
        )
        print("paper: 1.33x at 50 ns rising to 1.50x at 400 ns")
    return result

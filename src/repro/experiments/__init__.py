"""Experiment drivers: one module per paper figure/table.

Each module exposes ``run(...)`` returning structured results and
printing the paper-comparable rows.  The mapping to the paper:

========  ==========================================================
fig2      Fig. 2(a) latency breakdown, NDP vs NUCA under static
fig4b     Fig. 4(b) sampler-assignment (max-flow) runtime
fig5      Fig. 5 overall speedups (HBM / HMC via context preset)
fig6      Fig. 6 energy breakdown vs Nexus
fig7      Fig. 7 interconnect latency + miss rate (+ Sec VII-A metadata)
fig8      Fig. 8(a) scale sweep, Fig. 8(b) CXL latency sweep
fig9      Fig. 9(a)-(f) design-choice sweeps
sec5d     Sec. V-D consistent hashing vs bulk invalidation
faults    fault injection & graceful degradation (not a paper figure)
========  ==========================================================
"""

from repro.experiments import faults, fig2, fig4b, fig5, fig6, fig7, fig8, fig9, sec5d
from repro.experiments.runner import (
    DEFAULT_CONTEXT,
    POLICIES,
    PRESETS,
    ExperimentContext,
    add_geomean_row,
    speedup_table,
)

__all__ = [
    "faults",
    "fig2",
    "fig4b",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "sec5d",
    "DEFAULT_CONTEXT",
    "POLICIES",
    "PRESETS",
    "ExperimentContext",
    "add_geomean_row",
    "speedup_table",
]

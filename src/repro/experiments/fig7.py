"""Fig. 7: interconnect latency and miss rate, NDPExt vs Nexus.

Two series per workload: the average interconnect latency of a request
(the paper's hotspot example: 113 ns under Nexus falling to 38 ns under
NDPExt thanks to small replication groups), and the DRAM-cache miss rate
(stream-level block prefetching cuts it for spatially-local workloads;
replication may raise it slightly, e.g. mv).

Also covers the Section VII-A metadata observation: the baselines'
128 kB metadata cache hits >95% on regular workloads but degrades
sharply on large-scale graph workloads.

Shapes to check: NDPExt interconnect latency <= Nexus on most
workloads; NDPExt miss rate < Nexus for affine-heavy workloads; the
baseline metadata hit penalty is much larger for graph workloads.
"""

from __future__ import annotations

from repro.experiments.runner import DEFAULT_CONTEXT, Cell, ExperimentContext
from repro.util import render_table

WORKLOADS = ("recsys", "mv", "hotspot", "pathfinder", "pr", "bfs", "cc", "tc")


def run(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = WORKLOADS,
    verbose: bool = True,
) -> dict:
    context = context or DEFAULT_CONTEXT
    context.run_many(
        [Cell(w, p) for w in workloads for p in ("nexus", "ndpext")]
    )
    result: dict[str, dict] = {}
    for wname in workloads:
        nexus = context.run(wname, "nexus")
        ndpext = context.run(wname, "ndpext")
        result[wname] = {
            "nexus_ic_ns": nexus.avg_interconnect_ns,
            "ndpext_ic_ns": ndpext.avg_interconnect_ns,
            "nexus_miss": nexus.hits.miss_rate,
            "ndpext_miss": ndpext.hits.miss_rate,
            "nexus_meta_ns": nexus.breakdown.metadata_ns
            / max(1, nexus.hits.cache_accesses),
            "ndpext_meta_ns": ndpext.breakdown.metadata_ns
            / max(1, ndpext.hits.cache_accesses),
        }
    if verbose:
        headers = [
            "workload",
            "ic ns (nexus)",
            "ic ns (ndpext)",
            "miss (nexus)",
            "miss (ndpext)",
            "meta ns (nexus)",
            "meta ns (ndpext)",
        ]
        rows = [
            [
                w,
                f"{r['nexus_ic_ns']:.1f}",
                f"{r['ndpext_ic_ns']:.1f}",
                f"{r['nexus_miss']:.3f}",
                f"{r['ndpext_miss']:.3f}",
                f"{r['nexus_meta_ns']:.1f}",
                f"{r['ndpext_meta_ns']:.1f}",
            ]
            for w, r in result.items()
        ]
        print(
            render_table(
                headers, rows, title="Fig 7: interconnect latency and miss rate"
            )
        )
    return result

"""Section V-D: consistent hashing vs bulk invalidation at reconfiguration.

NDPExt remaps stream data with consistent hashing so a reconfiguration
only moves the elements whose ring spot changed; the paper measures 9.4%
less invalidation traffic and a 3.7% speedup over bulk invalidation.

We run the dynamic policy in both placement modes and report, per
workload: invalidated entries (cache contents dropped at epoch
boundaries), preserved/moved entries, and the runtime ratio.

Shapes to check: consistent hashing invalidates less and is never
slower; the speedup is a few percent.
"""

from __future__ import annotations

from repro.core import NdpExtPolicy
from repro.experiments.runner import DEFAULT_CONTEXT, Cell, ExperimentContext
from repro.util import geomean, render_table

WORKLOADS = ("pr", "recsys", "bfs", "cc", "gnn")

PLACEMENTS = ("consistent", "hash")


def _cells(workloads) -> list[Cell]:
    return [
        Cell(
            wname,
            "ndpext",
            policy_factory=lambda p=placement: NdpExtPolicy(placement=p),
            cache_key=f"placement:{placement}",
        )
        for wname in workloads
        for placement in PLACEMENTS
    ]


def run(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = WORKLOADS,
    verbose: bool = True,
) -> dict:
    context = context or DEFAULT_CONTEXT
    context.run_many(_cells(workloads))
    result: dict[str, dict] = {}
    for wname in workloads:
        consistent = context.run(
            wname,
            "ndpext",
            policy_factory=lambda: NdpExtPolicy(placement="consistent"),
            cache_key="placement:consistent",
        )
        bulk = context.run(
            wname,
            "ndpext",
            policy_factory=lambda: NdpExtPolicy(placement="hash"),
            cache_key="placement:hash",
        )
        result[wname] = {
            "bulk_invalidations": bulk.reconfig_invalidations,
            "consistent_invalidations": consistent.reconfig_invalidations,
            "preserved": consistent.reconfig_movements,
            "speedup": bulk.runtime_cycles / consistent.runtime_cycles,
        }
    if verbose:
        rows = [
            [
                w,
                r["bulk_invalidations"],
                r["consistent_invalidations"],
                r["preserved"],
                f"{r['speedup']:.3f}",
            ]
            for w, r in result.items()
        ]
        print(
            render_table(
                ["workload", "inval (bulk)", "inval (consistent)", "preserved", "speedup"],
                rows,
                title="Sec V-D: consistent hashing vs bulk invalidation",
            )
        )
        reductions = [
            1.0 - r["consistent_invalidations"] / r["bulk_invalidations"]
            for r in result.values()
            if r["bulk_invalidations"]
        ]
        mean_red = sum(reductions) / len(reductions) if reductions else 0.0
        print(
            f"mean invalidation reduction {mean_red:.1%} (paper 9.4%); "
            f"geomean speedup {geomean([r['speedup'] for r in result.values()]):.3f} (paper 1.037)"
        )
    return result

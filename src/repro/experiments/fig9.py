"""Fig. 9: design-choice studies (six panels).

Each panel sweeps one NDPExt design parameter and reports runtime
normalized to the paper's default:

(a) indirect-stream cache associativity (1 -> 64 ways): direct-mapped is
    acceptable; higher associativity brings only minor gains, largest
    for graph workloads (paper: 10-20% at 64 ways).
(b) affine block size (256 B -> 4 kB): larger blocks help spatial
    workloads slightly; 1 kB is the sweet spot.
(c) affine space restriction: the 16 MB (scaled) cap costs ~2% at most
    vs unrestricted, concentrated on affine-heavy mv/gnn.
(d) sampler set count k: performance is insensitive over a wide range.
(e) reconfiguration method Static / Partial / Full: partial
    reconfiguration loses on stream-rich or dynamic workloads
    (paper: mv 14.7%, pr 20.7% slower than full).
(f) reconfiguration interval: longer intervals degrade (paper: 2x the
    epoch costs 26%).
"""

from __future__ import annotations

from repro.core import NdpExtPolicy
from repro.experiments.runner import DEFAULT_CONTEXT, Cell, ExperimentContext
from repro.util import geomean, render_table
from repro.workloads import REPRESENTATIVE

INDIRECT_WAYS = (1, 4, 16, 64)
BLOCK_BYTES = (256, 512, 1024, 2048, 4096)
AFFINE_SPACES = ("quarter", "half", "default", "unlimited")
SAMPLER_SETS = (8, 32, 256)
INTERVALS = (1, 2, 4)


def _sweep(
    context: ExperimentContext,
    workloads: tuple[str, ...],
    label: str,
    cases: dict[str, dict],
    verbose: bool,
    paper_note: str,
) -> dict[str, float]:
    """Run NdpExtPolicy under parameter overrides; normalize to 'default'."""
    context.run_many(
        [
            Cell(
                wname,
                "ndpext",
                policy_factory=lambda kw=kwargs: NdpExtPolicy(**kw),
                cache_key=f"{label}:{case}",
            )
            for case, kwargs in cases.items()
            for wname in workloads
        ]
    )
    runtimes: dict[str, float] = {}
    for case, kwargs in cases.items():
        per_workload = []
        for wname in workloads:
            report = context.run(
                wname,
                "ndpext",
                policy_factory=lambda kw=kwargs: NdpExtPolicy(**kw),
                cache_key=f"{label}:{case}",
            )
            per_workload.append(report.runtime_cycles)
        runtimes[case] = geomean(per_workload)
    base = runtimes.get("default") or next(iter(runtimes.values()))
    normalized = {case: base / runtime for case, runtime in runtimes.items()}
    if verbose:
        rows = [[case, f"{x:.3f}"] for case, x in normalized.items()]
        print(render_table([label, "speedup vs default"], rows, title=f"Fig 9: {label}"))
        print(f"paper: {paper_note}")
    return normalized


def run_associativity(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = REPRESENTATIVE,
    verbose: bool = True,
) -> dict[str, float]:
    context = context or DEFAULT_CONTEXT
    cases = {
        ("default" if w == 1 else f"{w}-way"): {"indirect_ways": w}
        for w in INDIRECT_WAYS
    }
    return _sweep(
        context, workloads, "indirect associativity", cases, verbose,
        "direct-mapped acceptable; <= 10-20% gain at 64 ways (graphs)",
    )


def run_block_size(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = REPRESENTATIVE,
    verbose: bool = True,
) -> dict[str, float]:
    context = context or DEFAULT_CONTEXT
    cases = {
        ("default" if b == 1024 else f"{b}B"): {"affine_block_bytes": b}
        for b in BLOCK_BYTES
    }
    # This repo's extension of the panel's future-work note: per-stream
    # block sizes picked from profiled run lengths.
    cases["adaptive"] = {"adaptive_blocks": True}
    return _sweep(
        context, workloads, "affine block size", cases, verbose,
        "larger blocks slightly better for spatial locality; 1 kB default"
        " (adaptive = this repo's per-stream extension)",
    )


def run_affine_space(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = ("mv", "gnn", "hotspot", "pr"),
    verbose: bool = True,
) -> dict[str, float]:
    context = context or DEFAULT_CONTEXT
    base_space = context.config.stream.affine_space_bytes
    spaces = {
        "quarter": base_space // 4,
        "half": base_space // 2,
        "default": base_space,
        "unlimited": context.config.unit_cache_bytes,
    }
    # The affine cap lives in the system config; build per-case configs
    # and run them through the cached, batched executor.
    from dataclasses import replace as dreplace

    configs = {
        case: context.config.scaled(
            name=f"{context.config.name}-affine-{case}",
            stream=dreplace(context.config.stream, affine_space_bytes=space),
        )
        for case, space in spaces.items()
    }
    context.run_many(
        [
            Cell(wname, "ndpext", config=config)
            for config in configs.values()
            for wname in workloads
        ]
    )
    runtimes: dict[str, float] = {}
    for case, config in configs.items():
        per_workload = [
            context.run(wname, "ndpext", config=config).runtime_cycles
            for wname in workloads
        ]
        runtimes[case] = geomean(per_workload)
    normalized = {c: runtimes["default"] / r for c, r in runtimes.items()}
    if verbose:
        rows = [[c, f"{x:.3f}"] for c, x in normalized.items()]
        print(render_table(["affine space", "speedup vs default"], rows, title="Fig 9(c): affine space restriction"))
        print("paper: 16 MB cap is negligible; unlimited gains ~2% (mv, gnn)")
    return normalized


def run_sampler_sets(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = REPRESENTATIVE,
    verbose: bool = True,
) -> dict[str, float]:
    context = context or DEFAULT_CONTEXT
    default_k = context.config.stream.sampler_sets
    cases = {
        ("default" if k == default_k else f"k={k}"): {"sampler_sets": k}
        for k in sorted(set(SAMPLER_SETS) | {default_k})
    }
    return _sweep(
        context, workloads, "sampler sets", cases, verbose,
        "insensitive to k over a wide range",
    )


def run_reconfig_method(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = ("mv", "pr", "recsys", "bfs", "backprop", "bc"),
    verbose: bool = True,
) -> dict[str, dict[str, float]]:
    context = context or DEFAULT_CONTEXT
    methods = {
        "static": {"mode": "static"},
        "partial": {"mode": "partial", "partial_epochs": 2},
        "full": {"mode": "full"},
    }
    result: dict[str, dict[str, float]] = {}
    for wname in workloads:
        runtimes = {}
        for method, kwargs in methods.items():
            report = context.run(
                wname,
                "ndpext",
                policy_factory=lambda kw=kwargs: NdpExtPolicy(**kw),
                cache_key=f"method:{method}",
            )
            runtimes[method] = report.runtime_cycles
        result[wname] = {
            m: runtimes["full"] / r for m, r in runtimes.items()
        }
    if verbose:
        rows = [
            [w] + [f"{result[w][m]:.3f}" for m in methods] for w in result
        ]
        print(
            render_table(
                ["workload", "static", "partial", "full"],
                rows,
                title="Fig 9(e): reconfiguration method (speedup vs full)",
            )
        )
        print("paper: partial 14.7% (mv) / 20.7% (pr) slower than full")
    return result


def run_reconfig_interval(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = ("pr", "recsys", "bfs"),
    verbose: bool = True,
) -> dict[str, float]:
    context = context or DEFAULT_CONTEXT
    cases = {
        ("default" if i == 1 else f"x{i}"): {"reconfig_interval": i}
        for i in INTERVALS
    }
    return _sweep(
        context, workloads, "reconfiguration interval", cases, verbose,
        "50M-cycle epochs suffice; 2x interval costs 26%",
    )

"""Shared experiment infrastructure.

Every figure/table reproduction builds on the same three ingredients: a
system preset, a workload scale, and a set of policies.  This module
centralizes policy construction, runs simulations with an in-process
result cache (experiments share many (workload, policy) cells — e.g.
Fig. 5, 6 and 7 all need the Nexus runs), and provides the speedup
arithmetic the paper's figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.baselines import (
    HostJigsawPolicy,
    JigsawPolicy,
    NdpExtStaticPolicy,
    NexusPolicy,
    StaticNucaPolicy,
    WhirlpoolPolicy,
    host_config,
)
from repro.core import NdpExtPolicy
from repro.faults import FaultSchedule
from repro.obs import NullRecorder
from repro.sim import SimulationEngine, SimulationReport, SystemConfig, small, tiny
from repro.sim.params import medium, paper_hbm, paper_hmc
from repro.util import geomean
from repro.workloads import SMALL, TINY, WorkloadScale, build
from repro.workloads.trace import Workload

POLICIES: dict[str, Callable[[], object]] = {
    "jigsaw": JigsawPolicy,
    "whirlpool": WhirlpoolPolicy,
    "nexus": NexusPolicy,
    "ndpext-static": NdpExtStaticPolicy,
    "ndpext": NdpExtPolicy,
    "static-nuca": StaticNucaPolicy,
}

PRESETS: dict[str, Callable[[], SystemConfig]] = {
    "small": small,
    "small-hmc": lambda: small("hmc"),
    "medium": medium,
    "tiny": tiny,
    "paper": paper_hbm,
    "paper-hmc": paper_hmc,
}

MEDIUM_SCALE = SMALL.scaled(
    n_cores=32, footprint_bytes=SMALL.footprint_bytes * 2, processes=8
)

SCALES: dict[str, WorkloadScale] = {
    "small": SMALL,
    "small-hmc": SMALL,
    "medium": MEDIUM_SCALE,
    "tiny": TINY,
}


@dataclass
class ExperimentContext:
    """Caches workloads and simulation reports across experiments."""

    preset: str = "small"
    _workloads: dict[tuple, Workload] = field(default_factory=dict)
    _reports: dict[tuple, SimulationReport] = field(default_factory=dict)

    @property
    def config(self) -> SystemConfig:
        return PRESETS[self.preset]()

    @property
    def scale(self) -> WorkloadScale:
        return SCALES.get(self.preset, SMALL)

    def workload(
        self,
        name: str,
        scale: WorkloadScale | None = None,
        recorder: NullRecorder | None = None,
    ) -> Workload:
        scale = scale or self.scale
        key = (name, scale)
        if key not in self._workloads:
            span = (recorder or NullRecorder()).span("workload.build")
            with span:
                self._workloads[key] = build(name, scale)
        return self._workloads[key]

    def run(
        self,
        workload_name: str,
        policy_name: str,
        config: SystemConfig | None = None,
        policy_factory: Callable[[], object] | None = None,
        scale: WorkloadScale | None = None,
        cache_key: str = "",
        faults: FaultSchedule | None = None,
        recorder: NullRecorder | None = None,
    ) -> SimulationReport:
        """Run (or fetch) one simulation cell.

        A live ``recorder`` bypasses the result cache entirely: the
        caller wants this run's event trace, which a cached report does
        not carry (and the recorded run must not poison the cache for
        trace-free callers either).
        """
        config = config or self.config
        recording = recorder is not None and recorder.enabled
        # Normalize before keying so ``scale=None`` and an explicit
        # default scale land on the same cache entry.
        scale = scale or self.scale
        key = (workload_name, policy_name, config.name, cache_key, scale, faults)
        if not recording and key in self._reports:
            return self._reports[key]
        workload = self.workload(workload_name, scale, recorder=recorder)
        factory = policy_factory or POLICIES[policy_name]
        engine = SimulationEngine(config, faults=faults, recorder=recorder)
        report = engine.run(workload, factory())
        if not recording:
            self._reports[key] = report
        return report

    def run_host(
        self,
        workload_name: str,
        scale: WorkloadScale | None = None,
        recorder: NullRecorder | None = None,
    ) -> SimulationReport:
        """The non-NDP host baseline for the same workload."""
        return self.run(
            workload_name,
            "host",
            config=host_config(self.config),
            policy_factory=HostJigsawPolicy,
            scale=scale,
            recorder=recorder,
        )


# A module-level default context so benchmarks share cached results
# within one pytest session.
DEFAULT_CONTEXT = ExperimentContext()


def speedup_table(
    context: ExperimentContext,
    workload_names: list[str],
    policy_names: list[str],
    baseline: str = "host",
) -> dict[str, dict[str, float]]:
    """Speedups of each policy over the baseline, per workload.

    Mirrors Fig. 5's normalization: every bar is runtime(baseline) /
    runtime(policy).
    """
    table: dict[str, dict[str, float]] = {}
    for wname in workload_names:
        base = (
            context.run_host(wname)
            if baseline == "host"
            else context.run(wname, baseline)
        )
        if base.runtime_cycles <= 0:
            raise ValueError(
                f"baseline {baseline!r} on {wname!r} reported "
                f"non-positive runtime ({base.runtime_cycles}); cannot normalize"
            )
        table[wname] = {}
        for pname in policy_names:
            report = context.run(wname, pname)
            if report.runtime_cycles <= 0:
                raise ValueError(
                    f"policy {pname!r} on {wname!r} reported non-positive "
                    f"runtime ({report.runtime_cycles}); cannot normalize"
                )
            table[wname][pname] = base.runtime_cycles / report.runtime_cycles
    return table


def add_geomean_row(table: dict[str, dict[str, float]]) -> dict[str, dict[str, float]]:
    policies = next(iter(table.values())).keys() if table else []
    table = dict(table)
    table["geomean"] = {
        p: geomean([row[p] for w, row in table.items() if w != "geomean"])
        for p in policies
    }
    return table

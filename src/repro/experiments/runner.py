"""Shared experiment infrastructure.

Every figure/table reproduction builds on the same three ingredients: a
system preset, a workload scale, and a set of policies.  This module
centralizes policy construction, runs simulations behind a two-layer
result cache — a bounded in-process LRU plus the persistent
content-addressed store of :mod:`repro.exec.cache` (experiments share
many (workload, policy) cells: Fig. 5, 6 and 7 all need the Nexus runs,
and repeated invocations reuse whole suites across processes) — fans
batches of cells across cores via :mod:`repro.exec.parallel`, and
provides the speedup arithmetic the paper's figures report.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.baselines import (
    HostJigsawPolicy,
    JigsawPolicy,
    NdpExtStaticPolicy,
    NexusPolicy,
    StaticNucaPolicy,
    WhirlpoolPolicy,
    host_config,
)
from repro.core import NdpExtPolicy
from repro.exec.cache import ReportCache, cache_enabled, cell_key, default_report_cache
from repro.exec.checkpoint import SweepManifest
from repro.exec.parallel import (
    CellExecutionError,
    CellTask,
    PoisonedCell,
    RetryPolicy,
    fork_available,
    run_supervised,
)
from repro.faults import FaultSchedule
from repro.obs import NullRecorder
from repro.obs.tracing import current
from repro.sim import (
    EngineOptions,
    SimulationEngine,
    SimulationReport,
    SystemConfig,
    small,
    tiny,
)
from repro.sim.params import medium, paper_hbm, paper_hmc
from repro.util import geomean
from repro.workloads import SMALL, TINY, WorkloadScale, build
from repro.workloads.trace import Workload

POLICIES: dict[str, Callable[[], object]] = {
    "jigsaw": JigsawPolicy,
    "whirlpool": WhirlpoolPolicy,
    "nexus": NexusPolicy,
    "ndpext-static": NdpExtStaticPolicy,
    "ndpext": NdpExtPolicy,
    "static-nuca": StaticNucaPolicy,
}

PRESETS: dict[str, Callable[[], SystemConfig]] = {
    "small": small,
    "small-hmc": lambda: small("hmc"),
    "medium": medium,
    "tiny": tiny,
    "paper": paper_hbm,
    "paper-hmc": paper_hmc,
}

MEDIUM_SCALE = SMALL.scaled(
    n_cores=32, footprint_bytes=SMALL.footprint_bytes * 2, processes=8
)

SCALES: dict[str, WorkloadScale] = {
    "small": SMALL,
    "small-hmc": SMALL,
    "medium": MEDIUM_SCALE,
    "tiny": TINY,
}


@dataclass
class Cell:
    """One requested simulation cell, before workloads are materialized.

    The declarative counterpart of :meth:`ExperimentContext.run`'s
    keyword arguments — experiments build lists of these and hand them
    to :meth:`ExperimentContext.run_many` for batched (and optionally
    parallel) execution.
    """

    workload: str
    policy: str
    config: SystemConfig | None = None
    policy_factory: Callable[[], object] | None = None
    scale: WorkloadScale | None = None
    cache_key: str = ""
    faults: FaultSchedule | None = None


@dataclass
class ExperimentContext:
    """Caches workloads and simulation reports across experiments.

    Reports live behind two cache layers keyed by the same
    content-addressed cell key (:func:`repro.exec.cache.cell_key`): a
    bounded in-process LRU of ``max_reports`` entries, and — unless
    ``REPRO_DISK_CACHE=0`` — the persistent on-disk store shared by all
    processes.  ``jobs`` sets the default fan-out width for
    :meth:`run_many` (the CLI's ``--jobs``); 1 means serial.
    """

    preset: str = "small"
    jobs: int = 1
    max_reports: int = 512
    max_retries: int = 2
    timeout_s: float | None = None
    manifest_path: str | None = None
    backend: str = "numpy"
    cache_hits_mem: int = 0
    cache_hits_disk: int = 0
    cache_misses: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    quarantined_cells: int = 0
    resumed_cells: int = 0
    _workloads: dict[tuple, Workload] = field(default_factory=dict)
    _reports: "OrderedDict[str, SimulationReport]" = field(
        default_factory=OrderedDict
    )
    _disk: ReportCache | None | str = "unset"
    _manifest: SweepManifest | None | str = "unset"

    @property
    def config(self) -> SystemConfig:
        return PRESETS[self.preset]()

    @property
    def scale(self) -> WorkloadScale:
        return SCALES.get(self.preset, SMALL)

    @property
    def disk_cache(self) -> ReportCache | None:
        """The persistent report cache, or None when disabled by env."""
        if self._disk == "unset":
            self._disk = default_report_cache()
        return self._disk

    @property
    def manifest(self) -> SweepManifest | None:
        """The sweep checkpoint journal, or None when not resuming."""
        if self._manifest == "unset":
            self._manifest = (
                SweepManifest(self.manifest_path)
                if self.manifest_path
                else None
            )
        return self._manifest

    @property
    def retry_policy(self) -> RetryPolicy:
        """Retry/timeout semantics for this context's batches."""
        return RetryPolicy(
            max_attempts=max(1, self.max_retries + 1),
            timeout_s=self.timeout_s,
        )

    def counters(self) -> dict[str, int]:
        """The cache/resilience counters as one dict (exporters, tests)."""
        disk = self.disk_cache
        return {
            "cache_hits_mem": self.cache_hits_mem,
            "cache_hits_disk": self.cache_hits_disk,
            "cache_misses": self.cache_misses,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "quarantined_cells": self.quarantined_cells,
            "resumed_cells": self.resumed_cells,
            "cache_quarantined": disk.quarantined if disk is not None else 0,
        }

    def clear(self) -> None:
        """Drop all in-process cached state and reset the counters.

        The persistent on-disk cache is left alone — delete its
        directory (``repro.exec.cache.cache_root()``) to cold-start.
        """
        self._workloads.clear()
        self._reports.clear()
        self._disk = "unset"
        self._manifest = "unset"
        self.cache_hits_mem = 0
        self.cache_hits_disk = 0
        self.cache_misses = 0
        self.retries = 0
        self.timeouts = 0
        self.worker_deaths = 0
        self.quarantined_cells = 0
        self.resumed_cells = 0

    def workload(
        self,
        name: str,
        scale: WorkloadScale | None = None,
        recorder: NullRecorder | None = None,
    ) -> Workload:
        scale = scale or self.scale
        key = (name, scale)
        if key not in self._workloads:
            # No span here: the registry opens workload.build around
            # actual generation only, so warm TraceCache hits are not
            # double-counted as build time (they show up as the cache's
            # trace_load io span instead).
            self._workloads[key] = build(name, scale)
        return self._workloads[key]

    # ------------------------------------------------------------------
    # Cache plumbing.

    def _cell_key(self, cell: Cell) -> str:
        return cell_key(
            cell.workload,
            cell.policy,
            cell.config if cell.config is not None else self.config,
            cell.scale or self.scale,
            cache_key=cell.cache_key,
            faults=cell.faults,
        )

    def _remember(self, key: str, report: SimulationReport) -> None:
        """Insert into the bounded in-process LRU."""
        self._reports[key] = report
        self._reports.move_to_end(key)
        while len(self._reports) > self.max_reports:
            self._reports.popitem(last=False)

    def _lookup(
        self, key: str, recorder: NullRecorder | None
    ) -> SimulationReport | None:
        """Check memory then disk; counts the outcome on self + recorder."""
        rec = recorder or NullRecorder()
        if key in self._reports:
            self._reports.move_to_end(key)
            self.cache_hits_mem += 1
            rec.counter("runner.cache_hit_mem")
            return self._reports[key]
        disk = self.disk_cache
        if disk is not None:
            report = disk.get(key)
            if report is not None:
                self._remember(key, report)
                self.cache_hits_disk += 1
                rec.counter("runner.cache_hit_disk")
                return report
        self.cache_misses += 1
        rec.counter("runner.cache_miss")
        return None

    def _store(self, key: str, report: SimulationReport) -> None:
        with current().span("runner.cache_write", cat="io"):
            self._remember(key, report)
            disk = self.disk_cache
            if disk is not None:
                disk.put(key, report)

    def _task(self, cell: Cell, prebuild: bool = True) -> CellTask:
        """Turn a cell into a ready-to-run task.

        With ``prebuild=False`` (parallel batches) the workload is left
        lazy unless this context already holds it in memory: the worker
        that draws the task materializes the trace under the trace
        cache's single-builder lock, overlapping generation with
        simulation instead of serializing it all in the parent.
        """
        scale = cell.scale or self.scale
        label = f"{cell.workload}/{cell.policy}"
        config = cell.config if cell.config is not None else self.config
        factory = cell.policy_factory or POLICIES[cell.policy]
        if prebuild or (cell.workload, scale) in self._workloads:
            return CellTask(
                workload=self.workload(cell.workload, scale),
                config=config,
                policy_factory=factory,
                faults=cell.faults,
                label=label,
                backend=self.backend,
            )
        return CellTask(
            workload=None,
            config=config,
            policy_factory=factory,
            faults=cell.faults,
            workload_name=cell.workload,
            scale=scale,
            label=label,
            backend=self.backend,
        )

    # ------------------------------------------------------------------
    # Execution.

    def run(
        self,
        workload_name: str,
        policy_name: str,
        config: SystemConfig | None = None,
        policy_factory: Callable[[], object] | None = None,
        scale: WorkloadScale | None = None,
        cache_key: str = "",
        faults: FaultSchedule | None = None,
        recorder: NullRecorder | None = None,
    ) -> SimulationReport:
        """Run (or fetch) one simulation cell.

        A live ``recorder`` bypasses both result-cache layers entirely:
        the caller wants this run's event trace, which a cached report
        does not carry (and the recorded run must not poison the caches
        for trace-free callers either).
        """
        cell = Cell(
            workload=workload_name,
            policy=policy_name,
            config=config,
            policy_factory=policy_factory,
            scale=scale,
            cache_key=cache_key,
            faults=faults,
        )
        recording = recorder is not None and recorder.enabled
        if recording:
            recorder.counter("runner.recorded_runs")
            workload = self.workload(workload_name, scale, recorder=recorder)
            factory = policy_factory or POLICIES[policy_name]
            engine = SimulationEngine(
                cell.config if cell.config is not None else self.config,
                EngineOptions(backend=self.backend),
                faults=faults,
                recorder=recorder,
            )
            with recorder.span("runner.recorded_run"):
                return engine.run(workload, factory())
        key = self._cell_key(cell)
        report = self._lookup(key, recorder)
        if report is not None:
            return report
        report = self._task(cell).run()
        self._store(key, report)
        return report

    def run_many(
        self,
        cells: list[Cell],
        jobs: int | None = None,
        recorder: NullRecorder | None = None,
        strict: bool = True,
    ) -> list[SimulationReport | None]:
        """Run a batch of cells, fanning cache misses across processes.

        Cached cells (memory or disk) are served without simulation; the
        rest — deduplicated by cell key — fan out over the supervised
        worker pool (:func:`repro.exec.parallel.run_supervised`) with
        ``jobs`` workers (default: the context's ``jobs`` field).
        Reports come back in ``cells`` order and are bit-identical to
        serial execution, including under worker crashes (each failure
        costs a retry, not the batch).

        With a checkpoint manifest installed (``manifest_path`` / the
        CLI's ``--resume``), every completed cell is journaled as it
        finishes, already-journaled cells are skipped on re-runs, and
        previously-poisoned cells are not retried.  Cells that exhaust
        their retry budget are quarantined; the rest of the batch still
        completes, after which a :class:`CellExecutionError` is raised —
        or, with ``strict=False``, ``None`` placeholders are returned.
        """
        jobs = self.jobs if jobs is None else jobs
        rec = recorder or NullRecorder()
        manifest = self.manifest
        keys = [self._cell_key(cell) for cell in cells]
        resolved: dict[str, SimulationReport] = {}
        missing: list[tuple[str, Cell]] = []
        poisoned: list[PoisonedCell] = []
        seen: set[str] = set()
        for key, cell in zip(keys, cells):
            if key in seen:
                continue
            seen.add(key)
            if manifest is not None and manifest.is_poisoned(key):
                record = manifest.poison_record(key) or {}
                poisoned.append(
                    PoisonedCell(
                        index=-1,
                        attempts=record.get("attempts", 0),
                        kind=record.get("failure", "journaled"),
                        error=record.get("error", "poisoned in manifest"),
                        label=f"{cell.workload}/{cell.policy}",
                    )
                )
                self.quarantined_cells += 1
                rec.counter("runner.poisoned_skipped")
                continue
            journaled = manifest is not None and manifest.is_done(key)
            report = self._lookup(key, recorder)
            if report is not None:
                resolved[key] = report
                if journaled:
                    self.resumed_cells += 1
                    rec.counter("runner.resumed")
            else:
                # A journaled cell whose cached report vanished (evicted,
                # quarantined, cache disabled) is re-simulated: the
                # manifest is advisory, the caches stay authoritative.
                if journaled:
                    rec.counter("runner.checkpoint_stale")
                missing.append((key, cell))
        if missing:
            # Serial batches (and cache-less runs) materialize workloads
            # in the parent as before; parallel batches hand workers
            # lazy tasks so trace generation overlaps simulation.
            prebuild = (
                jobs <= 1 or not fork_available() or not cache_enabled()
            )
            tasks = [self._task(cell, prebuild=prebuild) for _, cell in missing]

            def on_result(index: int, report: SimulationReport) -> None:
                key, cell = missing[index]
                self._store(key, report)
                resolved[key] = report
                if manifest is not None:
                    manifest.journal_done(
                        key, workload=cell.workload, policy=cell.policy
                    )

            def on_event(kind: str, **fields) -> None:
                rec.event(kind, **fields)
                rec.counter(f"runner.{kind}")

            outcome = run_supervised(
                tasks,
                jobs=jobs,
                policy=self.retry_policy,
                on_result=on_result,
                on_event=on_event,
            )
            self.retries += outcome.retries
            self.timeouts += outcome.timeouts
            self.worker_deaths += outcome.worker_deaths
            for cell_failure in outcome.poisoned:
                key, cell = missing[cell_failure.index]
                self.quarantined_cells += 1
                if manifest is not None:
                    manifest.journal_poisoned(
                        key,
                        failure=cell_failure.kind,
                        attempts=cell_failure.attempts,
                        error=cell_failure.error,
                        workload=cell.workload,
                        policy=cell.policy,
                    )
                poisoned.append(cell_failure)
        if poisoned and strict:
            raise CellExecutionError(poisoned)
        return [resolved.get(key) for key in keys]

    def host_cell(
        self, workload_name: str, scale: WorkloadScale | None = None
    ) -> Cell:
        """The non-NDP host baseline cell for ``workload_name``."""
        return Cell(
            workload=workload_name,
            policy="host",
            config=host_config(self.config),
            policy_factory=HostJigsawPolicy,
            scale=scale,
        )

    def run_host(
        self,
        workload_name: str,
        scale: WorkloadScale | None = None,
        recorder: NullRecorder | None = None,
    ) -> SimulationReport:
        """The non-NDP host baseline for the same workload."""
        return self.run(
            workload_name,
            "host",
            config=host_config(self.config),
            policy_factory=HostJigsawPolicy,
            scale=scale,
            recorder=recorder,
        )


# A module-level default context so benchmarks share cached results
# within one pytest session.
DEFAULT_CONTEXT = ExperimentContext()


def speedup_table(
    context: ExperimentContext,
    workload_names: list[str],
    policy_names: list[str],
    baseline: str = "host",
) -> dict[str, dict[str, float]]:
    """Speedups of each policy over the baseline, per workload.

    Mirrors Fig. 5's normalization: every bar is runtime(baseline) /
    runtime(policy).
    """
    # Prefetch the whole grid in one batch so uncached cells fan out
    # across the context's `jobs` workers; the loop below then only
    # reads the in-process cache.
    grid = [
        context.host_cell(wname) if baseline == "host" else Cell(wname, baseline)
        for wname in workload_names
    ]
    grid += [
        Cell(wname, pname)
        for wname in workload_names
        for pname in policy_names
    ]
    context.run_many(grid)
    table: dict[str, dict[str, float]] = {}
    for wname in workload_names:
        base = (
            context.run_host(wname)
            if baseline == "host"
            else context.run(wname, baseline)
        )
        if base.runtime_cycles <= 0:
            raise ValueError(
                f"baseline {baseline!r} on {wname!r} reported "
                f"non-positive runtime ({base.runtime_cycles}); cannot normalize"
            )
        table[wname] = {}
        for pname in policy_names:
            report = context.run(wname, pname)
            if report.runtime_cycles <= 0:
                raise ValueError(
                    f"policy {pname!r} on {wname!r} reported non-positive "
                    f"runtime ({report.runtime_cycles}); cannot normalize"
                )
            table[wname][pname] = base.runtime_cycles / report.runtime_cycles
    return table


def add_geomean_row(table: dict[str, dict[str, float]]) -> dict[str, dict[str, float]]:
    policies = next(iter(table.values())).keys() if table else []
    table = dict(table)
    table["geomean"] = {
        p: geomean([row[p] for w, row in table.items() if w != "geomean"])
        for p in policies
    }
    return table

"""Fig. 5: overall performance, NDPExt vs baselines, HBM and HMC styles.

The paper's headline result: all NDP designs beat the non-NDP host
(4.3-7.3x at paper scale), NDPExt is consistently the best NDP design,
outperforming the second-best (Nexus) by 1.41x (HBM) / 1.48x (HMC) on
average and up to 2.43x, and beating its own static-allocation variant
by 1.2x on average.

Shapes to check (absolute factors differ at reduced scale):
* every NDP policy beats the host on the suite geomean;
* NDPExt has the best geomean of all policies and wins on nearly every
  workload;
* ndpext > ndpext-static, with the largest gaps on irregular workloads;
* the HBM and HMC systems show similar orderings.
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT_CONTEXT,
    ExperimentContext,
    add_geomean_row,
    speedup_table,
)
from repro.util import render_table
from repro.workloads import SUITE

POLICIES = ["jigsaw", "whirlpool", "nexus", "ndpext-static", "ndpext"]


def run(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = SUITE,
    verbose: bool = True,
) -> dict:
    context = context or DEFAULT_CONTEXT
    table = speedup_table(context, list(workloads), POLICIES, baseline="host")
    table = add_geomean_row(table)
    if verbose:
        headers = ["workload"] + POLICIES
        rows = [
            [w] + [f"{table[w][p]:.2f}" for p in POLICIES] for w in table
        ]
        style = "HMC" if "hmc" in context.preset else "HBM"
        print(
            render_table(
                headers,
                rows,
                title=f"Fig 5 ({style}): speedup over non-NDP host",
            )
        )
        geo = table["geomean"]
        print(
            f"ndpext over nexus: {geo['ndpext'] / geo['nexus']:.2f}x "
            f"(paper {'1.48' if style == 'HMC' else '1.41'}x); "
            f"over ndpext-static: {geo['ndpext'] / geo['ndpext-static']:.2f}x (paper 1.2x)"
        )
    return table

"""Fault injection & graceful degradation sweeps.

Not a paper figure: a robustness study enabled by the fault layer in
:mod:`repro.faults`.  Two sweeps:

* **unit failure** — an NDP unit's memory vault fail-stops mid-run.
  NDPExt's consistent-hash remap recovery (evict the dead unit's ring
  spots, re-optimize around the survivors) is compared against the
  fail-stop fallback every baseline gets for free (lost lines bypass to
  extended memory) on both NDPExt itself and Nexus.  The remap variant
  must finish the post-failure epochs strictly faster.
* **link degradation** — transient CXL CRC-retry bursts and sustained
  lane down-training (x16 -> x8 -> x4).  Reports the retry/serialization
  penalties and the end-to-end slowdown.

Shapes to check: remap recovery beats fail-stop after the failure;
narrower links cost more only in proportion to extended-memory traffic.
"""

from __future__ import annotations

from repro.baselines import NexusPolicy
from repro.core import NdpExtPolicy
from repro.experiments.runner import DEFAULT_CONTEXT, Cell, ExperimentContext
from repro.faults import CxlCrcBurst, CxlLaneDowntrain, FaultSchedule, UnitFailure
from repro.util import render_table

WORKLOADS = ("pr",)
FAIL_EPOCH = 3

VARIANTS = {
    "ndpext-remap": lambda: NdpExtPolicy(name="ndpext-remap"),
    "ndpext-failstop": lambda: NdpExtPolicy(
        fault_recovery=False, name="ndpext-failstop"
    ),
    "nexus-failstop": NexusPolicy,
}


def _post_failure_cycles(report, fail_epoch: int) -> float:
    """Cycles spent from the failure epoch to the end of the run."""
    cumulative = report.per_epoch_cycles
    before = cumulative[fail_epoch - 1] if fail_epoch >= 1 else 0.0
    return report.runtime_cycles - before


def run_unit_failure(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = WORKLOADS,
    fail_epoch: int = FAIL_EPOCH,
    fail_unit: int = 0,
    verbose: bool = True,
) -> dict:
    context = context or DEFAULT_CONTEXT
    # Batch the clean runs; the faulted runs depend on each clean run's
    # epoch count (to place the failure) so they follow per-variant.
    context.run_many(
        [
            Cell(w, v, policy_factory=f, cache_key=f"faults:{v}")
            for w in workloads
            for v, f in VARIANTS.items()
        ]
    )
    result: dict[str, dict] = {}
    for wname in workloads:
        row: dict[str, dict] = {}
        when = fail_epoch
        for vname, factory in VARIANTS.items():
            clean = context.run(
                wname, vname, policy_factory=factory, cache_key=f"faults:{vname}"
            )
            # Short runs (test scales) have few epochs: strike no later
            # than the final one so the failure always lands.
            when = max(1, min(fail_epoch, len(clean.per_epoch_cycles) - 1))
            schedule = FaultSchedule(
                (UnitFailure(epoch=when, unit=fail_unit),), seed=1
            )
            faulted = context.run(
                wname,
                vname,
                policy_factory=factory,
                cache_key=f"faults:{vname}",
                faults=schedule,
            )
            row[vname] = {
                "clean_cycles": clean.runtime_cycles,
                "faulted_cycles": faulted.runtime_cycles,
                "fail_epoch": when,
                "post_failure_cycles": _post_failure_cycles(faulted, when),
                "slowdown": faulted.runtime_cycles / clean.runtime_cycles,
                "demoted": faulted.faults.demoted_requests,
                "fault_invalidations": faulted.faults.fault_invalidations,
                "fault_movements": faulted.faults.fault_movements,
            }
        result[wname] = row
    if verbose:
        rows = []
        for wname, row in result.items():
            for vname, r in row.items():
                rows.append(
                    [
                        wname,
                        vname,
                        f"{r['slowdown']:.3f}",
                        f"{r['post_failure_cycles']:.3e}",
                        r["demoted"],
                        r["fault_invalidations"],
                        r["fault_movements"],
                    ]
                )
        print(
            render_table(
                [
                    "workload",
                    "variant",
                    "slowdown",
                    "post-fail cycles",
                    "demoted",
                    "inval",
                    "preserved",
                ],
                rows,
                title=f"Degradation: unit {fail_unit} fail-stop",
            )
        )
    return result


def run_link_degradation(
    context: ExperimentContext | None = None,
    workloads: tuple[str, ...] = WORKLOADS,
    verbose: bool = True,
) -> dict:
    context = context or DEFAULT_CONTEXT
    lanes = context.config.cxl.lanes
    scenarios = {
        "crc-burst": FaultSchedule(
            (CxlCrcBurst(epoch=2, duration=2, retry_prob=0.3),), seed=2
        ),
        f"downtrain-x{max(1, lanes // 2)}": FaultSchedule(
            (CxlLaneDowntrain(epoch=2, lanes=max(1, lanes // 2)),), seed=2
        ),
        f"downtrain-x{max(1, lanes // 4)}": FaultSchedule(
            (CxlLaneDowntrain(epoch=2, lanes=max(1, lanes // 4)),), seed=2
        ),
    }
    schedules = [None] + list(scenarios.values())
    context.run_many(
        [Cell(w, "ndpext", faults=s) for w in workloads for s in schedules]
    )
    result: dict[str, dict] = {}
    for wname in workloads:
        clean = context.run(wname, "ndpext")
        row: dict[str, dict] = {}
        for sname, schedule in scenarios.items():
            faulted = context.run(wname, "ndpext", faults=schedule)
            row[sname] = {
                "slowdown": faulted.runtime_cycles / clean.runtime_cycles,
                "crc_retries": faulted.faults.crc_retries,
                "crc_reissues": faulted.faults.crc_reissues,
                "penalty_ns": faulted.faults.penalty_ns,
                "min_lanes": faulted.faults.min_lanes,
            }
        result[wname] = row
    if verbose:
        rows = [
            [
                wname,
                sname,
                f"{r['slowdown']:.3f}",
                r["crc_retries"],
                r["crc_reissues"],
                f"{r['penalty_ns']:.1f}",
                r["min_lanes"],
            ]
            for wname, row in result.items()
            for sname, r in row.items()
        ]
        print(
            render_table(
                [
                    "workload",
                    "scenario",
                    "slowdown",
                    "retries",
                    "reissues",
                    "penalty ns",
                    "min lanes",
                ],
                rows,
                title="Degradation: CXL link faults (ndpext)",
            )
        )
    return result


def run(context: ExperimentContext | None = None, verbose: bool = True) -> dict:
    context = context or DEFAULT_CONTEXT
    return {
        "unit_failure": run_unit_failure(context, verbose=verbose),
        "link_degradation": run_link_degradation(context, verbose=verbose),
    }

"""Seeded, deterministic fault schedules.

A :class:`FaultSchedule` is an immutable list of fault events, each
pinned to the epoch at which it strikes.  The taxonomy covers the three
hardware layers a CXL-attached NDP system can lose (Section V-D's
consistent-hashing placement is exactly what makes minimal-movement
recovery from the first kind possible):

* :class:`UnitFailure` — permanent fail-stop of one NDP unit's memory
  vault: its cache capacity is gone and it can never serve a request
  again.
* :class:`CxlLaneDowntrain` — the CXL link retrains to a narrower width
  (x16 -> x8 -> x4), degrading serialization bandwidth for the rest of
  the run (or until a later event re-trains it wider).
* :class:`CxlCrcBurst` — a transient window of CRC errors on the link:
  affected transfers pay bounded exponential-backoff retransmissions,
  and a transfer that exhausts its retries is re-issued over the
  (possibly degraded) link from scratch.
* :class:`DramRowFault` — a DRAM row in one unit goes bad and is
  quarantined: its contents are lost and the row must never be used
  again.

Schedules are plain frozen dataclasses, so they hash/compare by value
and can key experiment caches.  :func:`random_schedule` derives a
schedule deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np


@dataclass(frozen=True)
class UnitFailure:
    """Permanent fail-stop of one NDP unit's memory at ``epoch``."""

    epoch: int
    unit: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError("fault epoch cannot be negative")
        if self.unit < 0:
            raise ValueError("unit id cannot be negative")


@dataclass(frozen=True)
class CxlLaneDowntrain:
    """The CXL link retrains to ``lanes`` lanes from ``epoch`` onward."""

    epoch: int
    lanes: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError("fault epoch cannot be negative")
        if self.lanes <= 0:
            raise ValueError("a down-trained link still needs >= 1 lane")


@dataclass(frozen=True)
class CxlCrcBurst:
    """CRC-retry burst on the CXL link for ``duration`` epochs.

    While active, each extended-memory transfer independently suffers a
    retry sequence with probability ``retry_prob``.  Retry ``i`` waits
    ``backoff_ns * 2**(i-1)``; after ``max_retries`` failed
    retransmissions the request is re-issued over the (possibly
    down-trained) link, paying the full link latency + serialization
    again.
    """

    epoch: int
    duration: int = 1
    retry_prob: float = 0.2
    max_retries: int = 4
    backoff_ns: float = 25.0

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError("fault epoch cannot be negative")
        if self.duration < 1:
            raise ValueError("a burst lasts at least one epoch")
        if not 0.0 <= self.retry_prob <= 1.0:
            raise ValueError("retry_prob must be a probability")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.backoff_ns < 0:
            raise ValueError("backoff_ns cannot be negative")

    def active_at(self, epoch: int) -> bool:
        return self.epoch <= epoch < self.epoch + self.duration


@dataclass(frozen=True)
class DramRowFault:
    """DRAM row ``row`` of unit ``unit`` goes bad at ``epoch``."""

    epoch: int
    unit: int
    row: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError("fault epoch cannot be negative")
        if self.unit < 0 or self.row < 0:
            raise ValueError("unit and row ids cannot be negative")


FaultEvent = Union[UnitFailure, CxlLaneDowntrain, CxlCrcBurst, DramRowFault]


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, hashable set of fault events plus an RNG seed.

    The ``seed`` decorrelates the deterministic per-request CRC-retry
    draws between otherwise identical schedules.
    """

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept any iterable but store a tuple so the schedule hashes.
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def empty(self) -> bool:
        return not self.events

    def events_of(self, kind: type) -> tuple:
        return tuple(e for e in self.events if isinstance(e, kind))

    def validate_for(self, n_units: int, full_lanes: int) -> None:
        """Reject events naming hardware the system does not have."""
        for event in self.events:
            if isinstance(event, (UnitFailure, DramRowFault)):
                if event.unit >= n_units:
                    raise ValueError(
                        f"fault names unit {event.unit} but the system has "
                        f"only {n_units} units"
                    )
            if isinstance(event, CxlLaneDowntrain) and event.lanes > full_lanes:
                raise ValueError(
                    f"cannot down-train to {event.lanes} lanes on a "
                    f"{full_lanes}-lane link"
                )


def random_schedule(
    seed: int,
    n_units: int,
    n_epochs: int,
    *,
    unit_failures: int = 1,
    row_faults: int = 2,
    crc_bursts: int = 1,
    downtrains: int = 1,
    rows_per_unit: int = 64,
    full_lanes: int = 16,
) -> FaultSchedule:
    """Derive a fault schedule deterministically from ``seed``.

    The same arguments always produce the same schedule; events land in
    the middle half of the run so both the healthy and the degraded
    regime are observable.
    """
    if n_units < 1 or n_epochs < 2:
        raise ValueError("need at least one unit and two epochs")
    rng = np.random.default_rng(seed)
    lo, hi = max(1, n_epochs // 4), max(2, 3 * n_epochs // 4)
    events: list[FaultEvent] = []
    failed = rng.choice(n_units, size=min(unit_failures, n_units), replace=False)
    for unit in failed:
        events.append(UnitFailure(epoch=int(rng.integers(lo, hi)), unit=int(unit)))
    for _ in range(row_faults):
        events.append(
            DramRowFault(
                epoch=int(rng.integers(lo, hi)),
                unit=int(rng.integers(0, n_units)),
                row=int(rng.integers(0, rows_per_unit)),
            )
        )
    for _ in range(crc_bursts):
        events.append(
            CxlCrcBurst(
                epoch=int(rng.integers(lo, hi)),
                duration=int(rng.integers(1, 3)),
                retry_prob=float(rng.uniform(0.1, 0.4)),
            )
        )
    lanes = full_lanes
    for _ in range(downtrains):
        lanes = max(1, lanes // 2)
        events.append(CxlLaneDowntrain(epoch=int(rng.integers(lo, hi)), lanes=lanes))
    return FaultSchedule(events=tuple(events), seed=seed)

"""Per-run fault state the engine consults each epoch.

:class:`FaultState` replays a :class:`~repro.faults.schedule.FaultSchedule`
against one simulation run.  The engine calls :meth:`advance` at every
epoch boundary; newly struck unit/row faults are handed to the policy's
``on_faults`` hook so it can degrade gracefully (NDPExt evicts the unit
from its consistent-hash rings and re-sizes capacities; the NUCA
baselines merely drop the lost lines).  Whatever the policy does *not*
recover from is enforced by the engine through :meth:`demote`: requests
that a policy still maps to a dead unit or an un-remapped quarantined
row are turned into extended-memory bypasses — the fail-stop fallback
that keeps comparisons fair.

All CRC-retry draws are derived from ``mix64`` hashes of (schedule seed,
burst epoch, transfer sequence number), so two runs of the same schedule
charge bit-identical penalties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.schedule import (
    CxlCrcBurst,
    CxlLaneDowntrain,
    DramRowFault,
    FaultSchedule,
    UnitFailure,
)
from repro.obs.recorder import NullRecorder
from repro.sim.cxl import ExtendedMemory
from repro.sim.metrics import FaultReport
from repro.sim.params import CACHELINE_BYTES, SystemConfig
from repro.util.hashing import mix64_array

_TWO64 = float(2**64)


@dataclass
class EpochFaults:
    """The policy-relevant events that struck at one epoch boundary."""

    epoch: int
    unit_failures: list[int] = field(default_factory=list)
    row_faults: list[tuple[int, int]] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.unit_failures or self.row_faults)


class FaultState:
    """Replays one fault schedule against one simulation run."""

    def __init__(
        self,
        schedule: FaultSchedule,
        config: SystemConfig,
        recorder: NullRecorder | None = None,
    ) -> None:
        schedule.validate_for(config.n_units, config.cxl.lanes)
        self.schedule = schedule
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.n_units = config.n_units
        self.full_lanes = config.cxl.lanes
        self.alive = np.ones(config.n_units, dtype=bool)
        self.effective_lanes = config.cxl.lanes
        self.active_crc: CxlCrcBurst | None = None
        self.report = FaultReport(min_lanes=config.cxl.lanes)
        self._crc_seq = 0
        self._epoch = -1
        # (unit, row) -> acknowledged: a policy that remapped around the
        # bad row acknowledges it, ending the engine-side demotion (the
        # row is no longer reachable through the remap table).
        self._quarantined: dict[tuple[int, int], bool] = {}
        self._unacked: list[tuple[int, int]] = []
        self._by_epoch: dict[int, list] = {}
        for event in schedule.events:
            if isinstance(event, (UnitFailure, CxlLaneDowntrain, DramRowFault)):
                self._by_epoch.setdefault(event.epoch, []).append(event)
        self._crc_bursts = schedule.events_of(CxlCrcBurst)

    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when some request may need engine-side demotion."""
        return bool(self._unacked) or not bool(self.alive.all())

    def advance(self, epoch_idx: int) -> EpochFaults:
        """Apply the events striking at ``epoch_idx``; returns the new
        policy-relevant faults (each delivered exactly once)."""
        events = EpochFaults(epoch_idx)
        for event in self._by_epoch.get(epoch_idx, []):
            if isinstance(event, UnitFailure):
                if self.alive[event.unit]:
                    self.alive[event.unit] = False
                    self.report.units_lost += 1
                    events.unit_failures.append(event.unit)
                    self.recorder.event(
                        "fault_unit", epoch=epoch_idx, unit=int(event.unit)
                    )
            elif isinstance(event, CxlLaneDowntrain):
                self.effective_lanes = event.lanes
                self.report.min_lanes = min(self.report.min_lanes, event.lanes)
                self.recorder.event(
                    "fault_lanes",
                    epoch=epoch_idx,
                    lanes=int(event.lanes),
                    full_lanes=int(self.full_lanes),
                )
            elif isinstance(event, DramRowFault):
                key = (event.unit, event.row)
                if key not in self._quarantined and self.alive[event.unit]:
                    self._quarantined[key] = False
                    self.report.rows_quarantined += 1
                    events.row_faults.append(key)
                    self.recorder.event(
                        "fault_row",
                        epoch=epoch_idx,
                        unit=int(event.unit),
                        row=int(event.row),
                    )
        self.active_crc = next(
            (b for b in self._crc_bursts if b.active_at(epoch_idx)), None
        )
        if self.active_crc is not None and self.recorder.enabled:
            self.recorder.event(
                "crc_burst",
                epoch=epoch_idx,
                retry_prob=self.active_crc.retry_prob,
                max_retries=self.active_crc.max_retries,
            )
        self._epoch = epoch_idx
        if self.effective_lanes < self.full_lanes:
            self.report.downtrained_epochs += 1
        self._unacked = [k for k, ack in self._quarantined.items() if not ack]
        return events

    def health_summary(self) -> dict:
        """A point-in-time health snapshot for the serving loop.

        Broader than :attr:`degraded` (which only tracks what needs
        engine-side demotion): a down-trained CXL link or an active CRC
        burst also count as degraded capacity here, because a health
        monitor should shed load and re-place data for those too.
        """
        alive_units = int(self.alive.sum())
        crc_active = self.active_crc is not None
        return {
            "epoch": self._epoch,
            "alive_units": alive_units,
            "dead_units": int(self.n_units - alive_units),
            "effective_lanes": int(self.effective_lanes),
            "full_lanes": int(self.full_lanes),
            "unacked_rows": len(self._unacked),
            "crc_active": crc_active,
            "degraded": (
                alive_units < self.n_units
                or bool(self._unacked)
                or self.effective_lanes < self.full_lanes
                or crc_active
            ),
        }

    def acknowledge_row(self, unit: int, row: int) -> None:
        """A policy remapped around this quarantined row; stop demoting."""
        key = (unit, row)
        if key in self._quarantined:
            self._quarantined[key] = True
            self._unacked = [k for k, ack in self._quarantined.items() if not ack]

    # ------------------------------------------------------------------

    def demote(self, outcome) -> int:
        """Force requests aimed at dead units or un-remapped quarantined
        rows to bypass to extended memory; returns the demoted count."""
        serving = outcome.serving_unit
        bad = (serving >= 0) & ~self.alive[np.clip(serving, 0, None)]
        for unit, row in self._unacked:
            bad |= (serving == unit) & (outcome.local_row == row)
        demoted = int(bad.sum())
        if demoted:
            if self.recorder.enabled:
                # Attribute demotions to the unit they were aimed at
                # (computed before serving_unit is overwritten below) so
                # the spatial view can show *where* degradation lands.
                by_unit = np.bincount(serving[bad], minlength=self.n_units)
                self.recorder.event(
                    "demote",
                    epoch=self._epoch,
                    requests=demoted,
                    by_unit=[int(v) for v in by_unit],
                )
            outcome.hit[bad] = False
            outcome.serving_unit[bad] = -1
            outcome.miss_probe_dram[bad] = False
            self.report.demoted_requests += demoted
        return demoted

    def cxl_penalty_ns(
        self, n_ext: int, extended: ExtendedMemory
    ) -> np.ndarray | None:
        """Per-transfer fault latency for ``n_ext`` extended accesses.

        Returns None when the link is healthy this epoch.  Down-trained
        serialization is already charged inside the extended-memory
        model (it uses the effective lane count); here we only attribute
        that extra time to the fault report, and compute the CRC
        retry/backoff penalties that ride on top.
        """
        if n_ext <= 0:
            return None
        if self.effective_lanes < self.full_lanes:
            extra_ser = CACHELINE_BYTES / (4.0 * self.effective_lanes) - (
                CACHELINE_BYTES / (4.0 * self.full_lanes)
            )
            self.report.degraded_link_extra_ns += n_ext * extra_ser
        burst = self.active_crc
        if burst is None or burst.retry_prob == 0.0:
            return None
        seq = np.arange(self._crc_seq, self._crc_seq + n_ext, dtype=np.uint64)
        self._crc_seq += n_ext
        salt = self.schedule.seed * 1_000_003 + burst.epoch * 97 + 13
        draw = mix64_array(seq, salt=salt).astype(np.float64) / _TWO64
        affected = draw < burst.retry_prob
        retries = (
            mix64_array(seq, salt=salt + 7) % np.uint64(burst.max_retries)
        ).astype(np.int64) + 1
        retries = np.where(affected, retries, 0)
        # Exponential backoff: retry i waits backoff * 2**(i-1), so k
        # retries cost backoff * (2**k - 1).
        penalty = burst.backoff_ns * (np.exp2(retries.astype(np.float64)) - 1.0)
        exhausted = affected & (retries == burst.max_retries)
        if exhausted.any():
            # Bounded retransmissions failed: re-issue the request over
            # the (possibly degraded) link from scratch.
            penalty[exhausted] += extended.cxl.link_ns + extended.serialization_ns()
        self.report.crc_retries += int(retries.sum())
        self.report.crc_reissues += int(exhausted.sum())
        self.report.crc_retry_ns += float(penalty.sum())
        return penalty

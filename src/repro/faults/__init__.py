"""Fault injection and graceful degradation."""

from repro.faults.schedule import (
    CxlCrcBurst,
    CxlLaneDowntrain,
    DramRowFault,
    FaultEvent,
    FaultSchedule,
    UnitFailure,
    random_schedule,
)
from repro.faults.state import EpochFaults, FaultState

__all__ = [
    "CxlCrcBurst",
    "CxlLaneDowntrain",
    "DramRowFault",
    "FaultEvent",
    "FaultSchedule",
    "UnitFailure",
    "random_schedule",
    "EpochFaults",
    "FaultState",
]

"""Spatial observability: per-unit load and inter-stack link pressure.

The placement quality the paper argues about (Fig. 2a, Fig. 7) is
*where* requests are served relative to where they were issued.  The
aggregate :class:`~repro.sim.metrics.HitStats` cannot distinguish a
perfectly balanced cache from one where a single hot unit serves
everything; :class:`SpatialAccumulator` keeps the per-location view:

* ``issued[u]``   — post-L1 requests issued by cores on unit ``u``,
* ``served[u]``   — cache hits served by unit ``u``'s DRAM,
* ``occupancy_ns[u]`` — DRAM service time unit ``u``'s banks spent on
  hits and in-DRAM miss probes (the unit-local queueing pressure), and
* ``link_bytes[s, d]`` — NoC bytes moved from stack ``s`` to stack
  ``d`` by cached round trips (diagonal = intra-stack traffic), plus
* ``ext_requests_by_stack[s]`` — extended-memory requests whose NoC
  legs touched stack ``s`` (origin->CXL-port and port->core legs).

All arrays are accumulated vectorized (``np.bincount`` per epoch) and
only when a live recorder enabled them — the engine never constructs an
accumulator under :class:`~repro.obs.recorder.NullRecorder`.  The
off-diagonal sum of ``link_bytes`` reconciles exactly with the engine's
inter-stack roofline byte counter, and ``issued``/``served`` totals
reconcile exactly with :class:`~repro.sim.metrics.HitStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SpatialReport:
    """JSON-able spatial summary attached to a recorded run's report."""

    n_units: int
    n_stacks: int
    issued: list[int]
    served: list[int]
    occupancy_ns: list[float]
    link_bytes: list[list[int]]
    ext_requests_by_stack: list[int] = field(default_factory=list)

    @property
    def load_imbalance(self) -> float:
        """Max/mean served requests across units (1.0 = perfectly flat).

        Only units that served at least one request could have been
        chosen by the placement, but the denominator spans *all* units —
        an idle unit is imbalance, not a smaller system.
        """
        served = np.asarray(self.served, dtype=np.float64)
        mean = served.mean() if len(served) else 0.0
        return float(served.max() / mean) if mean > 0 else 0.0

    @property
    def total_link_bytes(self) -> int:
        return int(np.asarray(self.link_bytes).sum())

    @property
    def inter_stack_bytes(self) -> int:
        """Off-diagonal link traffic (what the roofline bound sees)."""
        matrix = np.asarray(self.link_bytes, dtype=np.int64)
        return int(matrix.sum() - np.trace(matrix))

    def to_json(self) -> dict:
        return {
            "n_units": self.n_units,
            "n_stacks": self.n_stacks,
            "issued": list(self.issued),
            "served": list(self.served),
            "occupancy_ns": list(self.occupancy_ns),
            "link_bytes": [list(row) for row in self.link_bytes],
            "ext_requests_by_stack": list(self.ext_requests_by_stack),
            "load_imbalance": self.load_imbalance,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SpatialReport":
        return cls(
            n_units=int(data["n_units"]),
            n_stacks=int(data["n_stacks"]),
            issued=[int(v) for v in data["issued"]],
            served=[int(v) for v in data["served"]],
            occupancy_ns=[float(v) for v in data["occupancy_ns"]],
            link_bytes=[[int(v) for v in row] for row in data["link_bytes"]],
            ext_requests_by_stack=[
                int(v) for v in data.get("ext_requests_by_stack", [])
            ],
        )


class SpatialAccumulator:
    """Vectorized per-unit / per-stack accumulators for one run."""

    def __init__(self, n_units: int, unit_stack: np.ndarray) -> None:
        self.n_units = n_units
        self.unit_stack = np.asarray(unit_stack, dtype=np.int64)
        self.n_stacks = int(self.unit_stack.max()) + 1 if n_units else 0
        self.issued = np.zeros(n_units, dtype=np.int64)
        self.served = np.zeros(n_units, dtype=np.int64)
        self.occupancy_ns = np.zeros(n_units)
        self.link_bytes = np.zeros(
            (self.n_stacks, self.n_stacks), dtype=np.int64
        )
        self.ext_requests_by_stack = np.zeros(self.n_stacks, dtype=np.int64)

    def observe_epoch(
        self,
        core_unit: np.ndarray,
        serving: np.ndarray,
        hit: np.ndarray,
        touches: np.ndarray,
        dram_ns: np.ndarray,
        goes_ext: np.ndarray,
        origin: np.ndarray | None,
        port_unit: int,
        round_trip_bytes: int,
    ) -> None:
        """Fold one epoch's request-level arrays in (all vectorized).

        ``origin`` is the unit each extended access's NoC leg starts
        from (home unit for misses, the core's unit for bypasses); None
        when the epoch had no extended accesses.
        """
        self.issued += np.bincount(core_unit, minlength=self.n_units)
        if hit.any():
            self.served += np.bincount(serving[hit], minlength=self.n_units)
        if touches.any():
            self.occupancy_ns += np.bincount(
                serving[touches],
                weights=dram_ns[touches],
                minlength=self.n_units,
            )
        cached = serving >= 0
        if cached.any():
            src = self.unit_stack[core_unit[cached]]
            dst = self.unit_stack[serving[cached]]
            flat = np.bincount(
                src * self.n_stacks + dst,
                minlength=self.n_stacks * self.n_stacks,
            )
            self.link_bytes += round_trip_bytes * flat.reshape(
                self.n_stacks, self.n_stacks
            )
        if origin is not None and goes_ext.any():
            port_stack = int(self.unit_stack[port_unit])
            self.ext_requests_by_stack += np.bincount(
                self.unit_stack[origin], minlength=self.n_stacks
            )
            self.ext_requests_by_stack += np.bincount(
                self.unit_stack[core_unit[goes_ext]], minlength=self.n_stacks
            )
            self.ext_requests_by_stack[port_stack] += int(goes_ext.sum()) * 2

    def to_report(self) -> SpatialReport:
        return SpatialReport(
            n_units=self.n_units,
            n_stacks=self.n_stacks,
            issued=[int(v) for v in self.issued],
            served=[int(v) for v in self.served],
            occupancy_ns=[float(v) for v in self.occupancy_ns],
            link_bytes=[[int(v) for v in row] for row in self.link_bytes],
            ext_requests_by_stack=[
                int(v) for v in self.ext_requests_by_stack
            ],
        )

"""Per-tenant SLO objectives, sliding-window burn rates, and alerting.

The serving loop (PR 7) already *measures* everything an operator cares
about — per-tenant completion latencies, deadline timeouts, shed and
rejected batches — but exposes them only as end-of-run counters.  This
module turns those signals into a live **SLO engine**:

* :class:`SloObjective` declares one tenant's contract: a p99 latency
  bound (at most 1% of completions may exceed it), a deadline-hit
  availability target (fraction of terminal batches that complete
  rather than time out), and a shed-rate ceiling (fraction of outcomes
  that were shed or quota-rejected).  Each objective defines an *error
  budget*: the allowed bad fraction (1% for a p99 bound, ``1 -
  availability`` for availability, the ceiling itself for shed rate).
* :class:`SloEngine` folds the loop's per-batch outcomes into per-epoch
  buckets and evaluates every objective over two sliding windows —
  a **fast** window (default 5 epochs: "is it burning *now*?") and a
  **slow** window (default 60 epochs: "has it burned *enough to
  matter*?").  The *burn rate* of a window is ``bad_fraction /
  error_budget`` — the Google-SRE multi-window construction: a burn
  rate of 1.0 spends the budget exactly at the sustainable pace, 14.4
  exhausts a 30-day budget in 50 hours.
* Alerting is stateful with hysteresis: **PAGE** when *both* windows
  burn at ``page_burn`` or faster, **WARN** when both reach
  ``warn_burn``, and recovery only after ``hysteresis`` consecutive
  clean evaluations — a storm that flickers across the threshold pages
  once, not once per epoch.  Transitions are emitted as ``slo_burn`` /
  ``slo_recovered`` recorder events (trace schema 3).

The engine is deliberately passive — it never touches the loop — so the
same evaluation drives three consumers: the ``/slo`` and ``/metrics``
live endpoints (:mod:`repro.serve.live`), the SLO dashboard panel
(:mod:`repro.obs.dash`), and the error-budget-aware
:class:`~repro.serve.admission.SloAdmissionController`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

# Alert states, ordered by severity.
SLO_OK = "ok"
SLO_WARN = "warn"
SLO_PAGE = "page"
_SEVERITY = {SLO_OK: 0, SLO_WARN: 1, SLO_PAGE: 2}


def alert_severity(state: str) -> int:
    """OK < WARN < PAGE as an orderable integer."""
    return _SEVERITY[state]

# Objective kinds (the ``objective`` label on events and metrics).
OBJ_LATENCY = "latency_p99"
OBJ_AVAILABILITY = "availability"
OBJ_SHED_RATE = "shed_rate"

FAST_WINDOW = 5
SLOW_WINDOW = 60
PAGE_BURN = 14.4
WARN_BURN = 6.0
HYSTERESIS = 3

# Budget-history samples kept per tenant in status payloads (the full
# series is downsampled, never truncated, so the burn-down endpoint is
# always the run's true end state).
_HISTORY_POINTS = 256


@dataclass(frozen=True)
class SloObjective:
    """One tenant's declarative service-level objectives.

    Any subset of the three bounds may be set; each active bound becomes
    an independently-evaluated objective with its own error budget:

    * ``p99_ns`` — window p99 completion latency must stay at or under
      this bound; budget = 1% of completions may exceed it.
    * ``availability`` — fraction of terminal batches (completed +
      timed out) that must complete; budget = ``1 - availability``.
    * ``max_shed_rate`` — ceiling on the fraction of outcomes that were
      shed or quota-rejected; the ceiling is the budget.
    """

    tenant: str
    p99_ns: float | None = None
    availability: float | None = None
    max_shed_rate: float | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("objective needs a tenant name")
        if self.p99_ns is not None and self.p99_ns <= 0:
            raise ValueError("p99_ns must be positive")
        if self.availability is not None and not 0.0 < self.availability < 1.0:
            raise ValueError("availability must be in (0, 1)")
        if self.max_shed_rate is not None and not 0.0 < self.max_shed_rate <= 1.0:
            raise ValueError("max_shed_rate must be in (0, 1]")
        if self.p99_ns is None and self.availability is None and self.max_shed_rate is None:
            raise ValueError(f"objective for {self.tenant!r} sets no bound")

    def budgets(self) -> dict[str, tuple[float, float]]:
        """Active objectives as ``kind -> (target, error_budget)``."""
        out: dict[str, tuple[float, float]] = {}
        if self.p99_ns is not None:
            out[OBJ_LATENCY] = (self.p99_ns, 0.01)
        if self.availability is not None:
            out[OBJ_AVAILABILITY] = (self.availability, 1.0 - self.availability)
        if self.max_shed_rate is not None:
            out[OBJ_SHED_RATE] = (self.max_shed_rate, self.max_shed_rate)
        return out


def default_objectives(tenants) -> tuple[SloObjective, ...]:
    """Reasonable objectives for tenants that declared none explicitly:
    a shed-rate ceiling for everyone, plus availability and a p99 bound
    tied to the deadline for tenants that have one."""
    out = []
    for spec in tenants:
        deadline = getattr(spec, "deadline_ns", None)
        out.append(
            SloObjective(
                spec.name,
                p99_ns=deadline,
                availability=0.999 if deadline is not None else None,
                max_shed_rate=0.10,
            )
        )
    return tuple(out)


class _EpochBucket:
    """One epoch's raw outcome deltas for one tenant."""

    __slots__ = ("latencies", "timed_out", "shed", "rejected")

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.timed_out = 0
        self.shed = 0
        self.rejected = 0


class _ObjectiveState:
    """Alert state machine + cumulative budget for one (tenant, kind)."""

    __slots__ = (
        "target",
        "budget",
        "state",
        "clean_evals",
        "cum_bad",
        "cum_total",
        "burn_fast",
        "burn_slow",
        "windows_total",
        "windows_met",
    )

    def __init__(self, target: float, budget: float) -> None:
        self.target = target
        self.budget = budget
        self.state = SLO_OK
        self.clean_evals = 0
        self.cum_bad = 0
        self.cum_total = 0
        self.burn_fast = 0.0
        self.burn_slow = 0.0
        self.windows_total = 0
        self.windows_met = 0

    @property
    def budget_remaining(self) -> float:
        """1.0 = untouched; 0.0 = spent exactly; negative = over budget."""
        if self.cum_total == 0:
            return 1.0
        return 1.0 - (self.cum_bad / self.cum_total) / self.budget


def _percentile(samples: list[float], q: float) -> float:
    """Linear-interpolated percentile over a small sorted copy (the
    windows hold at most ``slow_window`` completions)."""
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


class _TenantSlo:
    """All sliding-window state for one tenant."""

    def __init__(self, objective: SloObjective, slow_window: int) -> None:
        self.objective = objective
        self.pending = _EpochBucket()
        self.epochs: deque[_EpochBucket] = deque(maxlen=slow_window)
        self.states = {
            kind: _ObjectiveState(target, budget)
            for kind, (target, budget) in objective.budgets().items()
        }
        self.worst_burn = 0.0
        self.budget_history: list[list[float]] = []  # [epoch, remaining]

    def alert(self) -> str:
        if not self.states:
            return SLO_OK
        return max(
            (s.state for s in self.states.values()), key=_SEVERITY.__getitem__
        )

    def budget_remaining(self) -> float:
        if not self.states:
            return 1.0
        return min(s.budget_remaining for s in self.states.values())


def _bad_total(kind: str, state: _ObjectiveState, window) -> tuple[int, int]:
    """(bad events, total events) for one objective kind over a window."""
    if kind == OBJ_LATENCY:
        bad = total = 0
        for bucket in window:
            total += len(bucket.latencies)
            bad += sum(1 for v in bucket.latencies if v > state.target)
        return bad, total
    if kind == OBJ_AVAILABILITY:
        bad = sum(b.timed_out for b in window)
        total = bad + sum(len(b.latencies) for b in window)
        return bad, total
    # OBJ_SHED_RATE: shed + rejected over all terminal outcomes.
    bad = sum(b.shed + b.rejected for b in window)
    total = bad + sum(len(b.latencies) + b.timed_out for b in window)
    return bad, total


class SloEngine:
    """Evaluates every tenant's objectives each epoch and raises alerts.

    Feed it outcomes as the serving loop produces them (``on_complete``
    / ``on_timeout`` / ``on_shed`` / ``on_reject``), then call
    :meth:`end_epoch` once per served epoch.  Alert transitions are
    emitted through ``recorder`` as ``slo_burn`` (escalations) and
    ``slo_recovered`` (de-escalations) events.
    """

    def __init__(
        self,
        objectives,
        recorder=None,
        fast_window: int = FAST_WINDOW,
        slow_window: int = SLOW_WINDOW,
        page_burn: float = PAGE_BURN,
        warn_burn: float = WARN_BURN,
        hysteresis: int = HYSTERESIS,
    ) -> None:
        if fast_window < 1 or slow_window < fast_window:
            raise ValueError("need 1 <= fast_window <= slow_window")
        if warn_burn <= 0 or page_burn < warn_burn:
            raise ValueError("need 0 < warn_burn <= page_burn")
        if hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")
        names = [o.tenant for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective tenants in {names}")
        from repro.obs.recorder import NullRecorder

        self.recorder = recorder if recorder is not None else NullRecorder()
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.page_burn = page_burn
        self.warn_burn = warn_burn
        self.hysteresis = hysteresis
        self.tenants: dict[str, _TenantSlo] = {
            o.tenant: _TenantSlo(o, slow_window) for o in objectives
        }
        self.evaluations = 0

    # -- outcome feed (tenants without objectives are ignored) ----------

    def on_complete(self, tenant: str, latency_ns: float) -> None:
        slo = self.tenants.get(tenant)
        if slo is not None:
            slo.pending.latencies.append(float(latency_ns))

    def on_timeout(self, tenant: str) -> None:
        slo = self.tenants.get(tenant)
        if slo is not None:
            slo.pending.timed_out += 1

    def on_shed(self, tenant: str) -> None:
        slo = self.tenants.get(tenant)
        if slo is not None:
            slo.pending.shed += 1

    def on_reject(self, tenant: str) -> None:
        slo = self.tenants.get(tenant)
        if slo is not None:
            slo.pending.rejected += 1

    # -- evaluation -----------------------------------------------------

    def end_epoch(self, epoch: int) -> None:
        """Close the pending bucket and re-evaluate every objective."""
        self.evaluations += 1
        for name, slo in self.tenants.items():
            slo.epochs.append(slo.pending)
            slo.pending = _EpochBucket()
            window = list(slo.epochs)
            fast = window[-self.fast_window :]
            for kind, state in slo.states.items():
                self._evaluate(name, slo, kind, state, epoch, fast, window)
            slo.budget_history.append([int(epoch), slo.budget_remaining()])

    def _evaluate(
        self, name, slo, kind, state, epoch, fast, slow
    ) -> None:
        bad_f, total_f = _bad_total(kind, state, fast)
        bad_s, total_s = _bad_total(kind, state, slow)
        state.burn_fast = (bad_f / total_f / state.budget) if total_f else 0.0
        state.burn_slow = (bad_s / total_s / state.budget) if total_s else 0.0
        slo.worst_burn = max(slo.worst_burn, state.burn_fast)
        # Cumulative budget: only the newest epoch's events are new.
        bad_new, total_new = _bad_total(kind, state, fast[-1:])
        state.cum_bad += bad_new
        state.cum_total += total_new
        if kind == OBJ_LATENCY:
            samples = [v for b in fast for v in b.latencies]
            if samples:
                state.windows_total += 1
                if _percentile(samples, 99.0) <= state.target:
                    state.windows_met += 1

        if state.burn_fast >= self.page_burn and state.burn_slow >= self.page_burn:
            target = SLO_PAGE
        elif state.burn_fast >= self.warn_burn and state.burn_slow >= self.warn_burn:
            target = SLO_WARN
        else:
            target = SLO_OK

        previous = state.state
        if _SEVERITY[target] > _SEVERITY[previous]:
            # Escalate immediately; a page must never wait on hysteresis.
            state.state = target
            state.clean_evals = 0
            self.recorder.event(
                "slo_burn",
                tenant=name,
                objective=kind,
                epoch=epoch,
                state=target,
                previous=previous,
                burn_fast=state.burn_fast,
                burn_slow=state.burn_slow,
                budget_remaining=state.budget_remaining,
            )
        elif _SEVERITY[target] < _SEVERITY[previous]:
            state.clean_evals += 1
            if state.clean_evals >= self.hysteresis:
                state.state = target
                state.clean_evals = 0
                self.recorder.event(
                    "slo_recovered",
                    tenant=name,
                    objective=kind,
                    epoch=epoch,
                    state=target,
                    previous=previous,
                    budget_remaining=state.budget_remaining,
                )
        else:
            state.clean_evals = 0

    # -- read side ------------------------------------------------------

    def tenant_alert(self, tenant: str) -> str:
        slo = self.tenants.get(tenant)
        return slo.alert() if slo is not None else SLO_OK

    def worst_burn(self, tenant: str) -> float:
        slo = self.tenants.get(tenant)
        return slo.worst_burn if slo is not None else 0.0

    def status(self) -> dict:
        """The full objective status: the ``/slo`` endpoint payload and
        :attr:`ServeReport.slo`."""
        tenants = {}
        for name, slo in sorted(self.tenants.items()):
            history = slo.budget_history
            if len(history) > _HISTORY_POINTS:
                step = len(history) / _HISTORY_POINTS
                idx = sorted({int(i * step) for i in range(_HISTORY_POINTS)} | {len(history) - 1})
                history = [history[i] for i in idx]
            tenants[name] = {
                "alert": slo.alert(),
                "budget_remaining": slo.budget_remaining(),
                "worst_burn": slo.worst_burn,
                "budget_history": history,
                "objectives": {
                    kind: {
                        "target": state.target,
                        "budget": state.budget,
                        "state": state.state,
                        "burn_fast": state.burn_fast,
                        "burn_slow": state.burn_slow,
                        "budget_remaining": state.budget_remaining,
                        **(
                            {
                                "windows_total": state.windows_total,
                                "windows_met": state.windows_met,
                            }
                            if kind == OBJ_LATENCY
                            else {}
                        ),
                    }
                    for kind, state in sorted(slo.states.items())
                },
            }
        return {
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "page_burn": self.page_burn,
            "warn_burn": self.warn_burn,
            "hysteresis": self.hysteresis,
            "evaluations": self.evaluations,
            "tenants": tenants,
        }

    def emit_status(self) -> None:
        """One ``slo_status`` event per tenant (trace schema 3): the
        end-of-run alert state, budget burn-down history, and window
        accounting the ``dash`` SLO panel renders from."""
        if not self.recorder.enabled:
            return
        status = self.status()
        for name, tenant in status["tenants"].items():
            self.recorder.event(
                "slo_status",
                tenant=name,
                alert=tenant["alert"],
                budget_remaining=tenant["budget_remaining"],
                worst_burn=tenant["worst_burn"],
                budget_history=tenant["budget_history"],
                objectives=tenant["objectives"],
            )

"""Perf-trace analysis and export: Perfetto JSON + bottleneck reports.

The write side of :mod:`repro.obs.tracing`.  Three consumers:

* :func:`write_chrome_trace` — Chrome trace-event JSON (the format
  ``ui.perfetto.dev`` and ``chrome://tracing`` load): one ``"X"``
  (complete) event per span with microsecond ``ts``/``dur``, ``pid`` /
  ``tid`` tracks per process/thread, and ``"M"`` metadata events naming
  each process — the supervised pool's workers appear as separate
  tracks, already clock-aligned by :meth:`PerfTracer.merge`.
* :func:`bottleneck_report` — the JSON attribution summary: top phases
  by exclusive time, the engine-coverage check (phase exclusive times
  must reconstruct the simulated wall clock), I/O and pool span tables,
  per-worker utilization, the **pool critical path** (the longest chain
  of dependent task spans — the concrete explanation when N jobs fail
  to beat serial), and a per-phase ``accesses/s`` attribution table.
* :func:`render_bottleneck` — the same report as CLI text tables.

Span taxonomy (by ``cat``): ``phase`` — engine/policy phases nested
under ``engine.run``; ``task`` — one pool task per span (worker side);
``io`` — cache/trace-store operations; ``pool`` — supervisor
scheduling; ``instant`` — zero-duration markers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.obs.tracing import ENGINE_PHASES, PerfTracer, SpanEvent
from repro.util import render_table

# Structural spans: containers whose exclusive time is loop/dispatch
# orchestration rather than an attributable phase.  They are reported
# as one "orchestration" residual instead of as phases.
STRUCTURAL_SPANS = ("engine.run", "engine.epoch")


# ---------------------------------------------------------------------------
# Chrome / Perfetto trace-event export.


def chrome_trace(tracer: PerfTracer, meta: dict | None = None) -> dict:
    """The tracer's events as a Chrome trace-event JSON object.

    Timestamps are exported in microseconds relative to the earliest
    recorded event, sorted ascending (Perfetto tolerates unsorted input
    but the schema check in tests asserts monotonicity).  Thread ids
    are compacted to small per-process integers.
    """
    events = sorted(tracer.events, key=lambda e: (e.ts_ns, e.sid))
    t0 = events[0].ts_ns if events else 0
    tids: dict[tuple[int, int], int] = {}
    out: list[dict] = []
    for pid, label in sorted(tracer.process_labels.items()):
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for ev in events:
        tid = tids.setdefault((ev.pid, ev.tid), len([
            k for k in tids if k[0] == ev.pid
        ]))
        record: dict = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": "i" if ev.dur_ns == 0 and ev.cat == "instant" else "X",
            "ts": (ev.ts_ns - t0) / 1000.0,
            "pid": ev.pid,
            "tid": tid,
        }
        if record["ph"] == "X":
            record["dur"] = ev.dur_ns / 1000.0
        else:
            record["s"] = "t"
        if ev.args:
            record["args"] = dict(ev.args)
        out.append(record)
    payload = {"traceEvents": out, "displayTimeUnit": "ms"}
    if meta:
        payload["otherData"] = dict(meta)
    if tracer.dropped_events:
        payload.setdefault("otherData", {})["dropped_events"] = tracer.dropped_events
    return payload


def write_chrome_trace(tracer: PerfTracer, path: str, meta: dict | None = None) -> int:
    """Write the Perfetto-loadable JSON; returns the event count."""
    payload = chrome_trace(tracer, meta=meta)
    with open(path, "w") as f:
        json.dump(payload, f)
    return len(payload["traceEvents"])


# ---------------------------------------------------------------------------
# Phase attribution.


def phase_summary(tracer: PerfTracer) -> dict:
    """Engine phase breakdown from the exact aggregates.

    Returns ``sim_wall_s`` (inclusive time of ``engine.run``, summed
    over every simulation the tracer observed, across processes),
    per-phase inclusive/exclusive seconds and exclusive *share* of the
    simulated wall clock, the ``orchestration_s`` residual (exclusive
    time of the structural loop spans), and ``coverage`` — the fraction
    of sim wall clock the named phases + residual reconstruct.  By
    construction coverage is exactly 1.0 when every phase nests under
    ``engine.run``; the acceptance bound (>= 0.95) guards against
    phases escaping the hierarchy.
    """
    aggs = tracer.aggregates
    root = aggs.get("engine.run")
    sim_wall_ns = root.total_ns if root else 0
    phases: dict[str, dict] = {}
    phase_excl_ns = 0
    orchestration_ns = 0
    for name, agg in sorted(aggs.items(), key=lambda kv: -kv[1].exclusive_ns):
        if agg.cat != "phase":
            continue
        if name in STRUCTURAL_SPANS:
            orchestration_ns += agg.exclusive_ns
            continue
        phase_excl_ns += agg.exclusive_ns
        phases[name] = {
            "calls": agg.calls,
            "inclusive_s": agg.total_s,
            "exclusive_s": agg.exclusive_s,
            "share": agg.exclusive_ns / sim_wall_ns if sim_wall_ns else 0.0,
        }
    return {
        "sim_wall_s": sim_wall_ns / 1e9,
        "phases": phases,
        "orchestration_s": orchestration_ns / 1e9,
        "coverage": (
            (phase_excl_ns + orchestration_ns) / sim_wall_ns if sim_wall_ns else 0.0
        ),
    }


def missing_engine_phases(tracer: PerfTracer) -> list[str]:
    """Engine phases that never appeared (CI profile-smoke assertion)."""
    return [name for name in ENGINE_PHASES if name not in tracer.aggregates]


# ---------------------------------------------------------------------------
# Pool timeline analysis.


@dataclass
class PathStep:
    """One link of the pool critical path."""

    name: str
    pid: int
    start_s: float  # relative to the chain's first span
    dur_s: float
    gap_s: float  # idle gap between the previous step's end and this start
    label: str = ""


def _task_spans(events: list[SpanEvent]) -> list[SpanEvent]:
    return [e for e in events if e.cat == "task" and e.name == "task"]


def critical_path(events: list[SpanEvent]) -> list[PathStep]:
    """The longest chain of dependent task spans ending at batch finish.

    Dependency model: a task span depends on the latest task span (on
    any worker) that finished before it started — the span whose
    completion freed the worker / supervisor slot it then occupied.
    Walking that predecessor relation back from the last-finishing task
    yields a chain covering the batch makespan; each step's ``gap_s``
    is supervisor wait / dispatch / backoff time nothing was simulating
    on that edge.  Serial execution degenerates to the full task
    sequence — the chain is then simply "everything, in order".
    """
    tasks = sorted(_task_spans(events), key=lambda e: e.end_ns)
    if not tasks:
        return []
    chain = [tasks[-1]]
    while True:
        cur = chain[-1]
        pred = None
        for cand in reversed(tasks):
            if cand.end_ns <= cur.ts_ns:
                pred = cand
                break
        if pred is None:
            break
        chain.append(pred)
    chain.reverse()
    t0 = chain[0].ts_ns
    steps = []
    prev_end = chain[0].ts_ns
    for ev in chain:
        args = ev.args or {}
        steps.append(
            PathStep(
                name=ev.name,
                pid=ev.pid,
                start_s=(ev.ts_ns - t0) / 1e9,
                dur_s=ev.dur_ns / 1e9,
                gap_s=max(0, ev.ts_ns - prev_end) / 1e9,
                label=str(args.get("label", "")),
            )
        )
        prev_end = ev.end_ns
    return steps


def worker_utilization(events: list[SpanEvent], process_labels: dict[int, str]) -> dict:
    """Per-process busy fraction over the batch window.

    Busy time is the sum of task span durations per pid; the window is
    the batch makespan (first task start to last task end across all
    processes).  Utilization below ~1.0 on a worker is time it spent
    idle — waiting on dispatch, the single-builder trace lock, or
    retry backoff.
    """
    tasks = _task_spans(events)
    if not tasks:
        return {}
    window_ns = max(e.end_ns for e in tasks) - min(e.ts_ns for e in tasks)
    busy: dict[int, int] = {}
    counts: dict[int, int] = {}
    for ev in tasks:
        busy[ev.pid] = busy.get(ev.pid, 0) + ev.dur_ns
        counts[ev.pid] = counts.get(ev.pid, 0) + 1
    return {
        str(pid): {
            "label": process_labels.get(pid, str(pid)),
            "tasks": counts[pid],
            "busy_s": ns / 1e9,
            "utilization": ns / window_ns if window_ns else 0.0,
        }
        for pid, ns in sorted(busy.items())
    }


# ---------------------------------------------------------------------------
# The bottleneck report.


def bottleneck_report(tracer: PerfTracer, accesses: int | None = None) -> dict:
    """One JSON summary answering "where did the time go?".

    ``accesses`` (total trace accesses simulated under the tracer)
    enables the per-phase attribution table: for each engine phase, the
    whole-run throughput the suite would reach if *only* that phase
    existed (``accesses / exclusive_s``) — the DAMOV-style ranking of
    which phase to optimize first.
    """
    phases = phase_summary(tracer)
    io_rows = {
        name: {"calls": agg.calls, "total_s": agg.total_s}
        for name, agg in sorted(
            tracer.aggregates.items(), key=lambda kv: -kv[1].total_ns
        )
        if agg.cat == "io"
    }
    pool_rows = {
        name: {"calls": agg.calls, "total_s": agg.total_s}
        for name, agg in sorted(
            tracer.aggregates.items(), key=lambda kv: -kv[1].total_ns
        )
        if agg.cat in ("pool", "task")
    }
    path = critical_path(tracer.events)
    report = {
        "sim_wall_s": phases["sim_wall_s"],
        "coverage": phases["coverage"],
        "orchestration_s": phases["orchestration_s"],
        "top_phases": phases["phases"],
        "io": io_rows,
        "pool": pool_rows,
        "critical_path": [vars(step) for step in path],
        "critical_path_s": sum(s.dur_s + s.gap_s for s in path),
        "critical_path_gap_s": sum(s.gap_s for s in path),
        "worker_utilization": worker_utilization(
            tracer.events, tracer.process_labels
        ),
        "dropped_events": tracer.dropped_events,
    }
    if accesses:
        report["accesses"] = int(accesses)
        report["attribution"] = {
            name: {
                "exclusive_s": row["exclusive_s"],
                "share": row["share"],
                "accesses_per_s": (
                    accesses / row["exclusive_s"] if row["exclusive_s"] else float("inf")
                ),
            }
            for name, row in phases["phases"].items()
        }
    return report


def render_bottleneck(report: dict, top: int = 12) -> str:
    """The bottleneck report as CLI text tables."""
    sections: list[str] = []
    phase_rows = [
        [
            name,
            str(row["calls"]),
            f"{row['exclusive_s']:.3f}",
            f"{row['share']:.1%}",
        ]
        + (
            [f"{report['attribution'][name]['accesses_per_s']:,.0f}"]
            if "attribution" in report and name in report["attribution"]
            else ([""] if "attribution" in report else [])
        )
        for name, row in list(report["top_phases"].items())[:top]
    ]
    headers = ["phase", "calls", "excl s", "share"]
    if "attribution" in report:
        headers.append("accesses/s if alone")
    phase_rows.append(
        ["(orchestration)", "", f"{report['orchestration_s']:.3f}", ""]
        + ([""] if "attribution" in report else [])
    )
    sections.append(
        render_table(
            headers,
            phase_rows,
            title=(
                f"engine phases by exclusive time "
                f"(sim wall {report['sim_wall_s']:.3f} s, "
                f"coverage {report['coverage']:.1%})"
            ),
        )
    )
    if report["io"]:
        sections.append(
            render_table(
                ["operation", "calls", "total s"],
                [
                    [name, str(row["calls"]), f"{row['total_s']:.3f}"]
                    for name, row in report["io"].items()
                ],
                title="cache / trace-store I/O",
            )
        )
    if report["critical_path"]:
        sections.append(
            render_table(
                ["step", "process", "start s", "dur s", "gap s"],
                [
                    [
                        step["label"] or step["name"],
                        str(step["pid"]),
                        f"{step['start_s']:.3f}",
                        f"{step['dur_s']:.3f}",
                        f"{step['gap_s']:.3f}",
                    ]
                    for step in report["critical_path"]
                ],
                title=(
                    f"pool critical path ({report['critical_path_s']:.3f} s, "
                    f"of which {report['critical_path_gap_s']:.3f} s idle gaps)"
                ),
            )
        )
    if report["worker_utilization"]:
        sections.append(
            render_table(
                ["process", "tasks", "busy s", "utilization"],
                [
                    [
                        row["label"],
                        str(row["tasks"]),
                        f"{row['busy_s']:.3f}",
                        f"{row['utilization']:.1%}",
                    ]
                    for row in report["worker_utilization"].values()
                ],
                title="worker utilization over the batch window",
            )
        )
    return "\n".join(sections)

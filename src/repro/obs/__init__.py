"""Observability: event recording, timelines, distributions, exporters.

Layers (DESIGN.md "Observability" and "Distributional observability"):

* :class:`Recorder` / :class:`NullRecorder` — structured counters,
  gauges, events, and wall-clock spans; the null default costs nothing.
* :class:`Timeline` / :class:`EpochRecord` — per-epoch breakdowns of
  every aggregate in :class:`~repro.sim.metrics.SimulationReport`.
* :class:`LatencyHistogram` / :class:`TierHistogramSet` — fixed
  log-bucket latency distributions per serving tier, and
  :class:`SpatialAccumulator` / :class:`SpatialReport` — per-unit load
  and the stack-to-stack link-traffic matrix.
* :class:`SelfProfiler` — perf_counter spans over the simulator's own
  hot paths (trace generation, L1 filter, policy, DRAM, reconfigure),
  now an aggregate view over :class:`PerfTracer` — the hierarchical
  span tracer behind the ``profile`` verb (Perfetto export and the
  bottleneck report live in :mod:`repro.obs.perfreport`, imported
  directly to keep this package import-light).
* Exporters — :func:`prometheus_text` / :func:`json_payload` over a
  report, the ``dash`` HTML renderer, and the bench regression gate in
  :mod:`repro.obs.regress`.

``read_trace`` / ``summarize`` / ``diff_rows`` are the read side used
by ``python -m repro stats``; ``report_from_trace`` rebuilds a full
:class:`~repro.sim.metrics.SimulationReport` from a JSONL trace.
"""

from repro.obs.histogram import (
    BUCKET_SCHEME,
    TIERS,
    LatencyHistogram,
    TierHistogramSet,
)
from repro.obs.profiler import SelfProfiler, SpanStats
from repro.obs.recorder import (
    SCHEMA_VERSION,
    NullRecorder,
    Recorder,
    sanitize_json,
)
from repro.obs.slo import (
    SLO_OK,
    SLO_PAGE,
    SLO_WARN,
    SloEngine,
    SloObjective,
    alert_severity,
    default_objectives,
)
from repro.obs.spatial import SpatialAccumulator, SpatialReport
from repro.obs.timeline import EpochRecord, Timeline
from repro.obs.tracing import (
    ENGINE_PHASES,
    NULL_TRACER,
    NullTracer,
    PerfTracer,
    SpanAgg,
    SpanEvent,
    activate,
    current,
)
from repro.obs.traceio import (
    TraceFile,
    diff_rows,
    read_trace,
    report_from_trace,
    summarize,
    summary_rows,
)

__all__ = [
    "BUCKET_SCHEME",
    "ENGINE_PHASES",
    "NULL_TRACER",
    "SCHEMA_VERSION",
    "TIERS",
    "EpochRecord",
    "LatencyHistogram",
    "NullRecorder",
    "NullTracer",
    "PerfTracer",
    "Recorder",
    "SLO_OK",
    "SLO_PAGE",
    "SLO_WARN",
    "SloEngine",
    "SloObjective",
    "SelfProfiler",
    "SpanAgg",
    "SpanEvent",
    "SpanStats",
    "activate",
    "alert_severity",
    "current",
    "default_objectives",
    "SpatialAccumulator",
    "SpatialReport",
    "TierHistogramSet",
    "Timeline",
    "TraceFile",
    "diff_rows",
    "read_trace",
    "report_from_trace",
    "sanitize_json",
    "summarize",
    "summary_rows",
]

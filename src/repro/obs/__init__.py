"""Observability: event recording, epoch timelines, self-profiling.

Three layers (DESIGN.md "Observability"):

* :class:`Recorder` / :class:`NullRecorder` — structured counters,
  gauges, events, and wall-clock spans; the null default costs nothing.
* :class:`Timeline` / :class:`EpochRecord` — per-epoch breakdowns of
  every aggregate in :class:`~repro.sim.metrics.SimulationReport`.
* :class:`SelfProfiler` — perf_counter spans over the simulator's own
  hot paths (trace generation, L1 filter, policy, DRAM, reconfigure).

``read_trace`` / ``summarize`` / ``diff_rows`` are the read side used
by ``python -m repro stats``.
"""

from repro.obs.profiler import SelfProfiler, SpanStats
from repro.obs.recorder import SCHEMA_VERSION, NullRecorder, Recorder
from repro.obs.timeline import EpochRecord, Timeline
from repro.obs.traceio import (
    TraceFile,
    diff_rows,
    read_trace,
    summarize,
    summary_rows,
)

__all__ = [
    "SCHEMA_VERSION",
    "EpochRecord",
    "NullRecorder",
    "Recorder",
    "SelfProfiler",
    "SpanStats",
    "Timeline",
    "TraceFile",
    "diff_rows",
    "read_trace",
    "summarize",
    "summary_rows",
]

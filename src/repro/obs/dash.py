"""``python -m repro dash``: a self-contained HTML report for one run.

Input is either a JSONL observability trace (``repro run --trace-out`` /
``repro trace``) or a report JSON (``repro run --report-out``).  Output
is a single HTML file with no external assets or scripts: stat tiles,
per-tier latency CDFs, the per-unit served-request heatmap, the
stack-to-stack link-traffic matrix, and the epoch timeline — the
distributional and spatial view behind the run's averages.

Rendering follows a small design system declared once as CSS custom
properties (light and dark values; the dark palette is selected, not a
flip): four fixed categorical hues for the serving tiers, one blue
sequential ramp for magnitude (heatmap and matrix), text always in ink
tokens with colored swatches carrying series identity, and a data table
next to every chart so no value is color-alone.
"""

from __future__ import annotations

import html
import json
import math

from repro.obs.histogram import TIERS, LatencyHistogram
from repro.obs.spatial import SpatialReport
from repro.obs.timeline import Timeline
from repro.sim.metrics import SimulationReport

# Categorical slots (fixed order, one per serving tier) and chart chrome
# from the validated reference palette; dark values are selected steps,
# not an automatic flip.
_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --tier-local: #2a78d6; --tier-intra: #eb6834;
  --tier-inter: #1baf7a; --tier-extended: #eda100;
  --heat-0: #cde2fb; --heat-1: #9ec5f4; --heat-2: #6da7ec;
  --heat-3: #3987e5; --heat-4: #256abf; --heat-5: #1c5cab;
  --heat-6: #104281; --heat-7: #0d366b;
  --heat-ink-strong: #ffffff;
  --slo-ok: var(--tier-inter); --slo-warn: var(--tier-extended);
  --slo-page: var(--tier-intra);
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --tier-local: #3987e5; --tier-intra: #d95926;
    --tier-inter: #199e70; --tier-extended: #c98500;
    --heat-0: #0d366b; --heat-1: #104281; --heat-2: #1c5cab;
    --heat-3: #256abf; --heat-4: #3987e5; --heat-5: #6da7ec;
    --heat-6: #9ec5f4; --heat-7: #cde2fb;
    --heat-ink-strong: #0b0b0b;
  }
}
body { background: var(--page); color: var(--ink); margin: 0;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 1080px; margin: 0 auto; padding: 24px 20px 60px; }
h1 { font-size: 20px; font-weight: 650; margin: 0 0 4px; }
h2 { font-size: 15px; font-weight: 600; margin: 28px 0 10px; }
.sub { color: var(--ink-2); font-size: 13px; margin: 0 0 18px; }
.card { background: var(--surface); border: 1px solid var(--border);
  border-radius: 10px; padding: 14px 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { flex: 1 1 150px; }
.tile .v { font-size: 22px; font-weight: 650; }
.tile .k { font-size: 12px; color: var(--ink-2); margin-top: 2px; }
.legend { display: flex; gap: 16px; font-size: 12px; color: var(--ink-2);
  margin: 0 0 8px; flex-wrap: wrap; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
table { border-collapse: collapse; font-size: 12px; margin-top: 10px; }
th, td { padding: 4px 10px; text-align: right;
  font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; border-bottom: 1px solid var(--axis); }
th:first-child, td:first-child { text-align: left; }
td { border-bottom: 1px solid var(--grid); }
.matrix td.cell { text-align: center; min-width: 46px; border: 2px solid var(--surface);
  border-radius: 4px; }
.matrix td.hs { color: var(--heat-ink-strong); }
.note { color: var(--muted); font-size: 12px; margin-top: 8px; }
svg text { font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
"""

_TIER_VARS = {tier: f"var(--tier-{tier})" for tier in TIERS}


def _fmt_ns(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f} ms"
    if value >= 1e3:
        return f"{value / 1e3:.2f} us"
    return f"{value:.1f} ns"


def _fmt_count(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


def _heat_class(value: float, peak: float) -> int:
    if peak <= 0 or value <= 0:
        return 0
    return min(7, int(round(value / peak * 7)))


def _tiles(report: SimulationReport) -> str:
    tiles = [
        (f"{report.runtime_cycles:,.0f}", "runtime cycles"),
        (f"{report.hits.cache_hit_rate:.1%}", "cache hit rate"),
    ]
    if report.tier_histograms:
        local = report.tier_histograms.get("local")
        ext = report.tier_histograms.get("extended")
        if local is not None and local.n:
            tiles.append((_fmt_ns(local.percentile(99)), "p99 local tier"))
        if ext is not None and ext.n:
            tiles.append((_fmt_ns(ext.percentile(99)), "p99 extended tier"))
    if report.spatial is not None:
        tiles.append((f"{report.spatial.load_imbalance:.2f}x", "load imbalance (max/mean)"))
    cells = "".join(
        f'<div class="card tile"><div class="v">{html.escape(v)}</div>'
        f'<div class="k">{html.escape(k)}</div></div>'
        for v, k in tiles
    )
    return f'<div class="tiles">{cells}</div>'


def _cdf_svg(histograms: dict[str, LatencyHistogram]) -> str:
    """Per-tier latency CDFs on a shared log-x axis."""
    width, height = 640, 260
    pad_l, pad_r, pad_t, pad_b = 46, 80, 10, 28
    populated = {t: h for t, h in histograms.items() if h.n}
    if not populated:
        return '<p class="note">no latency samples recorded</p>'
    lo = max(0.01, min(h.min_ns for h in populated.values()))
    hi = max(h.max_ns for h in populated.values())
    if hi <= lo:
        hi = lo * 10
    log_lo, log_hi = math.log10(lo), math.log10(hi)

    def x_of(v: float) -> float:
        v = max(v, lo)
        return pad_l + (math.log10(v) - log_lo) / (log_hi - log_lo) * (
            width - pad_l - pad_r
        )

    def y_of(frac: float) -> float:
        return pad_t + (1.0 - frac) * (height - pad_t - pad_b)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'role="img" aria-label="latency CDF by serving tier">'
    ]
    # Decade gridlines + tick labels; quarter gridlines on y.
    for exp in range(math.ceil(log_lo), math.floor(log_hi) + 1):
        x = x_of(10.0**exp)
        parts.append(
            f'<line x1="{x:.1f}" y1="{pad_t}" x2="{x:.1f}" '
            f'y2="{height - pad_b}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{height - 10}" font-size="11" '
            f'fill="var(--muted)" text-anchor="middle">'
            f"{_fmt_ns(10.0 ** exp)}</text>"
        )
    for q in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = y_of(q)
        parts.append(
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - pad_r}" y2="{y:.1f}" '
            f'stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{pad_l - 6}" y="{y + 4:.1f}" font-size="11" '
            f'fill="var(--muted)" text-anchor="end">{q:.2f}</text>'
        )
    parts.append(
        f'<line x1="{pad_l}" y1="{height - pad_b}" x2="{width - pad_r}" '
        f'y2="{height - pad_b}" stroke="var(--axis)" stroke-width="1"/>'
    )
    label_slots: list[float] = []
    for tier in TIERS:
        hist = populated.get(tier)
        if hist is None:
            continue
        points = hist.cdf_points()
        coords = [(x_of(lo), y_of(0.0))] + [
            (x_of(v), y_of(frac)) for v, frac in points
        ]
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
        color = _TIER_VARS[tier]
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linejoin="round">'
            f"<title>{tier}: n={hist.n}, p50={_fmt_ns(hist.percentile(50))}, "
            f"p99={_fmt_ns(hist.percentile(99))}</title></polyline>"
        )
        # Direct label at the line's end: ink text with a colored marker.
        end_x, end_y = coords[-1]
        while any(abs(end_y - used) < 14 for used in label_slots):
            end_y -= 14
        label_slots.append(end_y)
        parts.append(
            f'<circle cx="{end_x:.1f}" cy="{coords[-1][1]:.1f}" r="4" '
            f'fill="{color}" stroke="var(--surface)" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{end_x + 8:.1f}" y="{end_y + 4:.1f}" font-size="11" '
            f'fill="var(--ink-2)">{tier}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _percentile_table(histograms: dict[str, LatencyHistogram]) -> str:
    rows = []
    for tier in TIERS:
        hist = histograms.get(tier)
        if hist is None or hist.n == 0:
            continue
        p = hist.percentiles()
        rows.append(
            f'<tr><td><span class="sw legend-sw" style="background:'
            f'{_TIER_VARS[tier]};display:inline-block;width:10px;height:10px;'
            f'border-radius:3px;margin-right:5px;vertical-align:-1px"></span>'
            f"{tier}</td><td>{hist.n:,}</td>"
            f"<td>{_fmt_ns(hist.mean_ns)}</td>"
            f"<td>{_fmt_ns(p['p50'])}</td><td>{_fmt_ns(p['p95'])}</td>"
            f"<td>{_fmt_ns(p['p99'])}</td><td>{_fmt_ns(p['p999'])}</td></tr>"
        )
    return (
        "<table><tr><th>tier</th><th>requests</th><th>mean</th><th>p50</th>"
        "<th>p95</th><th>p99</th><th>p99.9</th></tr>" + "".join(rows) + "</table>"
    )


def _legend(tiers: list[str]) -> str:
    items = "".join(
        f'<span><span class="sw" style="background:{_TIER_VARS[t]}"></span>'
        f"{t}</span>"
        for t in tiers
    )
    return f'<div class="legend">{items}</div>'


def _unit_heatmap_svg(spatial: SpatialReport) -> str:
    """Grid of NDP units colored by served requests (sequential ramp)."""
    n = spatial.n_units
    if n == 0:
        return '<p class="note">no spatial data recorded</p>'
    per_stack = max(1, n // max(1, spatial.n_stacks))
    mesh = max(1, int(math.isqrt(per_stack)))
    stack_cols = max(1, int(math.isqrt(spatial.n_stacks)))
    cell, gap, stack_gap = 26, 2, 14
    stack_w = mesh * (cell + gap)
    rows_per_stack = (per_stack + mesh - 1) // mesh
    stack_h = rows_per_stack * (cell + gap)
    stack_rows = (spatial.n_stacks + stack_cols - 1) // stack_cols
    width = stack_cols * (stack_w + stack_gap) + 4
    height = stack_rows * (stack_h + stack_gap + 16) + 4
    peak = max(spatial.served) if spatial.served else 0
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{min(width, 960)}" '
        f'role="img" aria-label="requests served per NDP unit">'
    ]
    for unit in range(n):
        stack, local = divmod(unit, per_stack)
        sy, sx = divmod(stack, stack_cols)
        my, mx = divmod(local, mesh)
        x = sx * (stack_w + stack_gap) + mx * (cell + gap) + 2
        y = sy * (stack_h + stack_gap + 16) + my * (cell + gap) + 16
        served = spatial.served[unit]
        step = _heat_class(served, peak)
        parts.append(
            f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" rx="4" '
            f'fill="var(--heat-{step})">'
            f"<title>unit {unit} (stack {stack}): served {served:,}, "
            f"issued {spatial.issued[unit]:,}, "
            f"occupancy {_fmt_ns(spatial.occupancy_ns[unit])}</title></rect>"
        )
    for stack in range(spatial.n_stacks):
        sy, sx = divmod(stack, stack_cols)
        x = sx * (stack_w + stack_gap) + 2
        y = sy * (stack_h + stack_gap + 16) + 11
        parts.append(
            f'<text x="{x}" y="{y}" font-size="10" fill="var(--muted)">'
            f"stack {stack}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _top_units_table(spatial: SpatialReport, top: int = 8) -> str:
    order = sorted(
        range(spatial.n_units), key=lambda u: spatial.served[u], reverse=True
    )[:top]
    rows = "".join(
        f"<tr><td>unit {u}</td><td>{spatial.served[u]:,}</td>"
        f"<td>{spatial.issued[u]:,}</td>"
        f"<td>{_fmt_ns(spatial.occupancy_ns[u])}</td></tr>"
        for u in order
    )
    return (
        "<table><tr><th>hottest units</th><th>served</th><th>issued</th>"
        "<th>occupancy</th></tr>" + rows + "</table>"
    )


def _link_matrix(spatial: SpatialReport) -> str:
    n = spatial.n_stacks
    if n == 0:
        return '<p class="note">no spatial data recorded</p>'
    peak = max((max(row) for row in spatial.link_bytes), default=0)
    head = "".join(f"<th>to {d}</th>" for d in range(n))
    body = []
    for src in range(n):
        cells = []
        for dst in range(n):
            value = spatial.link_bytes[src][dst]
            step = _heat_class(value, peak)
            strong = ' hs' if step >= 4 else ""
            cells.append(
                f'<td class="cell{strong}" style="background:var(--heat-{step})" '
                f'title="stack {src} -> stack {dst}: {value:,} bytes">'
                f"{_fmt_count(value)}</td>"
            )
        body.append(f"<tr><td>from {src}</td>{''.join(cells)}</tr>")
    return (
        f'<table class="matrix"><tr><th></th>{head}</tr>'
        + "".join(body)
        + "</table>"
        + '<p class="note">diagonal = intra-stack round trips; '
        "off-diagonal = inter-stack link pressure (the roofline input)</p>"
    )


def _timeline_svg(timeline: Timeline) -> str:
    """Per-epoch duration (delta of cumulative cycles), one line."""
    records = timeline.records
    if len(records) < 2:
        return '<p class="note">timeline too short to plot</p>'
    deltas = []
    prev = 0.0
    for rec in records:
        deltas.append(max(0.0, rec.cycles_total - prev))
        prev = rec.cycles_total
    width, height = 640, 160
    pad_l, pad_r, pad_t, pad_b = 56, 14, 8, 22
    peak = max(deltas) or 1.0
    step = (width - pad_l - pad_r) / max(1, len(deltas) - 1)

    def y_of(v: float) -> float:
        return pad_t + (1.0 - v / peak) * (height - pad_t - pad_b)

    pts = " ".join(
        f"{pad_l + i * step:.1f},{y_of(v):.1f}" for i, v in enumerate(deltas)
    )
    grid = "".join(
        f'<line x1="{pad_l}" y1="{y_of(peak * q):.1f}" x2="{width - pad_r}" '
        f'y2="{y_of(peak * q):.1f}" stroke="var(--grid)" stroke-width="1"/>'
        f'<text x="{pad_l - 6}" y="{y_of(peak * q) + 4:.1f}" font-size="10" '
        f'fill="var(--muted)" text-anchor="end">{_fmt_count(peak * q)}</text>'
        for q in (0.5, 1.0)
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="100%" role="img" '
        f'aria-label="cycles per epoch">{grid}'
        f'<line x1="{pad_l}" y1="{height - pad_b}" x2="{width - pad_r}" '
        f'y2="{height - pad_b}" stroke="var(--axis)" stroke-width="1"/>'
        f'<text x="{width - pad_r}" y="{height - 8}" font-size="10" '
        f'fill="var(--muted)" text-anchor="end">epoch {len(deltas) - 1}</text>'
        f'<polyline points="{pts}" fill="none" stroke="var(--tier-local)" '
        f'stroke-width="2" stroke-linejoin="round">'
        f"<title>cycles per epoch (peak {_fmt_count(peak)})</title>"
        f"</polyline></svg>"
    )


_SLO_VARS = {"ok": "var(--slo-ok)", "warn": "var(--slo-warn)", "page": "var(--slo-page)"}


def _slo_tenant_svg(
    transitions: list[tuple[int, str]],
    history: list[list[float]],
    last_epoch: int,
) -> str:
    """One tenant's SLO view: an alert-state band strip over epochs with
    the error-budget burn-down line beneath it, on a shared x axis."""
    width, height = 640, 150
    pad_l, pad_r, pad_t, pad_b = 56, 14, 8, 22
    band_h = 14
    chart_top = pad_t + band_h + 8
    span = max(1, last_epoch)

    def x_of(epoch: float) -> float:
        return pad_l + min(1.0, epoch / span) * (width - pad_l - pad_r)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" role="img" '
        f'aria-label="SLO alert timeline and budget burn-down">'
    ]
    # Alert-state bands: each transition opens a segment until the next.
    segments = transitions or [(0, "ok")]
    for i, (epoch, state) in enumerate(segments):
        end = segments[i + 1][0] if i + 1 < len(segments) else last_epoch + 1
        x0, x1 = x_of(epoch), x_of(end)
        parts.append(
            f'<rect x="{x0:.1f}" y="{pad_t}" width="{max(1.0, x1 - x0):.1f}" '
            f'height="{band_h}" rx="3" fill="{_SLO_VARS.get(state, _SLO_VARS["ok"])}">'
            f"<title>{state} from epoch {epoch}</title></rect>"
        )
    # Budget burn-down (1.0 at the top, 0.0 line emphasized; the series
    # may go negative once the budget is overspent).
    lo = min([v for _, v in history] + [0.0]) if history else 0.0
    hi = 1.0

    def y_of(v: float) -> float:
        return chart_top + (hi - v) / (hi - lo or 1.0) * (height - chart_top - pad_b)

    for q, label in ((1.0, "1.0"), (0.0, "0.0")):
        y = y_of(q)
        parts.append(
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - pad_r}" y2="{y:.1f}" '
            f'stroke="var(--{"axis" if q == 0.0 else "grid"})" stroke-width="1"/>'
            f'<text x="{pad_l - 6}" y="{y + 4:.1f}" font-size="10" '
            f'fill="var(--muted)" text-anchor="end">{label}</text>'
        )
    if history:
        pts = " ".join(
            f"{x_of(e):.1f},{y_of(v):.1f}" for e, v in history
        )
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="var(--tier-local)" '
            f'stroke-width="2" stroke-linejoin="round">'
            f"<title>error budget remaining (final "
            f"{history[-1][1]:.2f})</title></polyline>"
        )
    parts.append(
        f'<text x="{width - pad_r}" y="{height - 8}" font-size="10" '
        f'fill="var(--muted)" text-anchor="end">epoch {last_epoch}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _slo_panel(slo_events: list[dict]) -> str:
    """The SLO section: per-tenant alert timeline bands, budget
    burn-down, and a rollup table — built from schema-3 ``slo_burn`` /
    ``slo_recovered`` / ``slo_status`` trace events."""
    transitions: dict[str, list[tuple[int, str]]] = {}
    status: dict[str, dict] = {}
    burns: dict[str, int] = {}
    last_epoch = 0
    for event in slo_events:
        kind = event.get("kind")
        tenant = str(event.get("tenant"))
        if kind in ("slo_burn", "slo_recovered"):
            epoch = int(event.get("epoch", 0))
            last_epoch = max(last_epoch, epoch)
            transitions.setdefault(tenant, [(0, "ok")]).append(
                (epoch, str(event.get("state", "ok")))
            )
            if kind == "slo_burn":
                burns[tenant] = burns.get(tenant, 0) + 1
        elif kind == "slo_status":
            status[tenant] = event
            for point in event.get("budget_history") or []:
                last_epoch = max(last_epoch, int(point[0]))
    tenants = sorted(set(transitions) | set(status))
    if not tenants:
        return ""
    sections = ["<h2>SLO error budgets</h2>"]
    legend = "".join(
        f'<span><span class="sw" style="background:{_SLO_VARS[s]}"></span>'
        f"{s}</span>"
        for s in ("ok", "warn", "page")
    )
    rows = []
    for tenant in tenants:
        info = status.get(tenant, {})
        history = [
            [int(p[0]), float(p[1])]
            for p in (info.get("budget_history") or [])
        ]
        sections.append('<div class="card">')
        sections.append(
            f'<div class="legend"><span>{html.escape(tenant)}</span>{legend}</div>'
        )
        sections.append(
            _slo_tenant_svg(transitions.get(tenant, []), history, last_epoch)
        )
        sections.append("</div>")
        rows.append(
            f"<tr><td>{html.escape(tenant)}</td>"
            f"<td>{html.escape(str(info.get('alert', '?')))}</td>"
            f"<td>{float(info.get('budget_remaining', 1.0)):.2f}</td>"
            f"<td>{float(info.get('worst_burn', 0.0)):.1f}x</td>"
            f"<td>{burns.get(tenant, 0)}</td></tr>"
        )
    sections.append('<div class="card">')
    sections.append(
        "<table><tr><th>tenant</th><th>final alert</th>"
        "<th>budget remaining</th><th>worst burn</th><th>escalations</th></tr>"
        + "".join(rows)
        + "</table>"
    )
    sections.append("</div>")
    return "\n".join(sections)


def render_dash(
    report: SimulationReport,
    source: str = "",
    slo_events: list[dict] | None = None,
) -> str:
    """One report (ideally from a recorded trace) -> standalone HTML."""
    title = f"{report.workload} under {report.policy}"
    sections = [f"<h1>{html.escape(title)}</h1>"]
    if source:
        sections.append(f'<p class="sub">rendered from {html.escape(source)}</p>')
    sections.append(_tiles(report))
    if report.tier_histograms:
        populated = [
            t for t in TIERS if report.tier_histograms.get(t, None) and report.tier_histograms[t].n
        ]
        sections.append("<h2>Latency CDF by serving tier</h2>")
        sections.append('<div class="card">')
        sections.append(_legend(populated))
        sections.append(_cdf_svg(report.tier_histograms))
        sections.append(_percentile_table(report.tier_histograms))
        sections.append("</div>")
    else:
        sections.append(
            '<p class="note">no latency histograms in this input — render '
            "from a trace (repro run --trace-out) for the distributional "
            "view</p>"
        )
    if report.spatial is not None:
        sections.append("<h2>Requests served per NDP unit</h2>")
        sections.append('<div class="card">')
        sections.append(_unit_heatmap_svg(report.spatial))
        sections.append(_top_units_table(report.spatial))
        sections.append(
            f'<p class="note">load imbalance (max/mean served): '
            f"{report.spatial.load_imbalance:.2f}x</p>"
        )
        sections.append("</div>")
        sections.append("<h2>Stack-to-stack link traffic</h2>")
        sections.append('<div class="card">')
        sections.append(_link_matrix(report.spatial))
        sections.append("</div>")
    if report.timeline is not None and len(report.timeline):
        sections.append("<h2>Epoch timeline</h2>")
        sections.append('<div class="card">')
        sections.append(_timeline_svg(report.timeline))
        sections.append("</div>")
    if slo_events:
        panel = _slo_panel(slo_events)
        if panel:
            sections.append(panel)
    body = "\n".join(sections)
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\"/>\n"
        f"<title>{html.escape(title)} — repro dash</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n<main>\n{body}\n</main>\n"
        "</body>\n</html>\n"
    )


def load_input(path: str) -> SimulationReport:
    """Read a trace JSONL or a report JSON into a SimulationReport."""
    from repro.obs.traceio import read_trace, report_from_trace

    with open(path) as f:
        first = f.readline().strip()
    try:
        head = json.loads(first) if first else {}
    except json.JSONDecodeError:
        head = {}
    if isinstance(head, dict) and head.get("kind") == "header":
        return report_from_trace(read_trace(path))
    try:
        with open(path) as f:
            payload = json.load(f)
    except json.JSONDecodeError:
        payload = None
    if not isinstance(payload, dict) or "runtime_cycles" not in payload:
        raise ValueError(
            f"{path}: neither a JSONL trace (header line) nor a report JSON"
        )
    return SimulationReport.from_json(payload)


def load_slo_events(path: str) -> list[dict]:
    """The trace's SLO events for the dash panel; [] when the input is
    a report JSON (no event stream) or records no SLO activity."""
    from repro.obs.traceio import read_trace

    with open(path) as f:
        first = f.readline().strip()
    try:
        head = json.loads(first) if first else {}
    except json.JSONDecodeError:
        return []
    if not (isinstance(head, dict) and head.get("kind") == "header"):
        return []
    trace = read_trace(path)
    return [
        e
        for e in trace.events
        if e.get("kind") in ("slo_burn", "slo_recovered", "slo_status")
    ]


def cmd_dash(args) -> None:
    report = load_input(args.input)
    html_text = render_dash(
        report, source=args.input, slo_events=load_slo_events(args.input)
    )
    with open(args.out, "w") as f:
        f.write(html_text)
    print(f"[dash] wrote {args.out}")
    if args.prom:
        from repro.obs.export import prometheus_text

        with open(args.prom, "w") as f:
            f.write(prometheus_text(report))
        print(f"[dash] wrote {args.prom}")
    if args.json:
        from repro.obs.export import json_payload, write_json

        write_json(args.json, json_payload(report))
        print(f"[dash] wrote {args.json}")

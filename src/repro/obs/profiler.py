"""Wall-clock self-profiling: where does *simulator* time go?

The simulator models nanoseconds, but its own runtime is spent in very
different places — trace generation, L1 filtering, ``policy.process``,
DRAM timing, the reconfiguration solve.  :class:`SelfProfiler`
accumulates ``time.perf_counter`` spans per label so a run can report
its own hot paths; ROADMAP perf work starts from this table.

Spans nest: a label's total includes time spent in spans opened inside
it, so the table is read as an inclusive-time profile (the labels are
chosen to be non-overlapping siblings in practice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter


@dataclass
class SpanStats:
    """Accumulated wall-clock time for one span label."""

    calls: int = 0
    total_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


class _Span:
    """One open span; created by :meth:`SelfProfiler.span`."""

    __slots__ = ("_stats", "_t0")

    def __init__(self, stats: SpanStats) -> None:
        self._stats = stats
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._stats.calls += 1
        self._stats.total_s += perf_counter() - self._t0


@dataclass
class SelfProfiler:
    """Accumulates perf_counter spans keyed by label."""

    spans: dict[str, SpanStats] = field(default_factory=dict)

    def span(self, label: str) -> _Span:
        stats = self.spans.get(label)
        if stats is None:
            stats = self.spans[label] = SpanStats()
        return _Span(stats)

    def add(self, label: str, seconds: float, calls: int = 1) -> None:
        """Fold an externally measured duration into the profile."""
        stats = self.spans.setdefault(label, SpanStats())
        stats.calls += calls
        stats.total_s += seconds

    @property
    def total_s(self) -> float:
        return sum(s.total_s for s in self.spans.values())

    def summary(self) -> list[dict]:
        """JSON-able rows, slowest label first."""
        return [
            {
                "label": label,
                "calls": stats.calls,
                "total_s": stats.total_s,
                "mean_us": stats.mean_s * 1e6,
            }
            for label, stats in sorted(
                self.spans.items(), key=lambda kv: -kv[1].total_s
            )
        ]

"""Wall-clock self-profiling: where does *simulator* time go?

The simulator models nanoseconds, but its own runtime is spent in very
different places — trace generation, L1 filtering, ``policy.process``,
DRAM timing, the reconfiguration solve.  :class:`SelfProfiler` is now a
thin *aggregate view* over a :class:`~repro.obs.tracing.PerfTracer`:
the tracer owns all timing (span nesting, exact per-label totals), and
this class keeps the historical ``spans`` / ``add`` / ``summary()``
surface that the recorder, runner, and `trace` verb consume.

Totals remain *inclusive* (a label's total includes child-span time),
matching the pre-tracer behavior; exclusive-time attribution lives in
:mod:`repro.obs.perfreport`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.tracing import PerfTracer


@dataclass
class SpanStats:
    """Accumulated wall-clock time for one span label."""

    calls: int = 0
    total_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


class SelfProfiler:
    """Aggregate profile view over a tracer.

    With no ``tracer`` argument a private aggregates-only
    :class:`PerfTracer` is created (no per-occurrence events — the same
    cost profile as the old accumulator).  Passing a shared tracer
    makes recorder spans land in the same profile as engine phase
    spans, so one `profile` run yields one merged attribution table.
    """

    def __init__(self, tracer: PerfTracer | None = None) -> None:
        self.tracer = tracer if tracer is not None else PerfTracer(keep_events=False)

    def span(self, label: str):
        return self.tracer.span(label)

    def add(self, label: str, seconds: float, calls: int = 1) -> None:
        """Fold an externally measured duration into the profile."""
        self.tracer.add_external(label, int(seconds * 1e9), calls=calls)

    @property
    def spans(self) -> dict[str, SpanStats]:
        """Label → inclusive stats, built from the tracer's aggregates."""
        return {
            name: SpanStats(calls=agg.calls, total_s=agg.total_s)
            for name, agg in self.tracer.aggregates.items()
        }

    @property
    def total_s(self) -> float:
        return self.tracer.total_s

    def summary(self) -> list[dict]:
        """JSON-able rows, slowest label first."""
        return [
            {
                "label": label,
                "calls": stats.calls,
                "total_s": stats.total_s,
                "mean_us": stats.mean_s * 1e6,
            }
            for label, stats in sorted(
                self.spans.items(), key=lambda kv: -kv[1].total_s
            )
        ]

"""Hierarchical wall-clock span tracing with a zero-cost off state.

Where :mod:`repro.obs.recorder` answers *what the simulation did*, this
module answers *where the simulator's own time went* — the attribution
layer every ROADMAP perf item starts from.  A :class:`PerfTracer`
records **spans**: nested wall-clock intervals with parent ids, process
and thread ids, and optional per-span arguments.  Two representations
are kept simultaneously:

* **exact aggregates** — per-name call counts plus inclusive and
  *exclusive* time (inclusive minus time spent in child spans).  These
  are never dropped or sampled, so phase shares are exact even when the
  per-occurrence event buffer saturates.
* **per-occurrence events** — one :class:`SpanEvent` per closed span
  (bounded by ``max_events``), the input to the Chrome/Perfetto export
  and the pool-timeline analysis in :mod:`repro.obs.perfreport`.

**Off state.**  The default everywhere is the module singleton
:data:`NULL_TRACER`, whose ``span`` returns one shared do-nothing
context manager: an uninstrumented run performs no allocation, no
clock reads, and no arithmetic, so simulation outputs stay
bit-identical and wall clock stays within noise (the same contract as
:class:`~repro.obs.recorder.NullRecorder`).

**Clocks and cross-process merge.**  Spans are timed with
``time.perf_counter_ns`` (monotonic, ns resolution).  Monotonic clocks
have an arbitrary per-process origin, so each tracer records an
*anchor* pair ``(time_ns, perf_counter_ns)`` taken at construction;
:meth:`PerfTracer.merge` aligns a worker snapshot's timestamps onto the
parent's timebase through the shared wall clock — the offset-sync that
lets per-worker task timelines land on one coherent Perfetto track set.

**Ambient tracer.**  Layers that cannot thread a tracer argument
through their call chain (cache I/O, workload builders, the engine
inside a forked worker) read the process-ambient tracer via
:func:`current`; :func:`activate` installs one for a ``with`` scope.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

__all__ = [
    "ENGINE_PHASES",
    "NULL_TRACER",
    "NullTracer",
    "PerfTracer",
    "SpanAgg",
    "SpanEvent",
    "activate",
    "current",
]

# Engine phase span names guaranteed to appear in any traced simulation
# (see sim/engine.py).  Fault hooks and observability spans only occur
# when a fault schedule / live recorder is attached, so they are not
# listed.  CI's profile-smoke asserts this exact set is present.
ENGINE_PHASES = (
    "engine.run",
    "engine.epoch",
    "engine.l1_filter",
    "policy.begin_epoch",
    "policy.process",
    "engine.charge",
    "engine.dram_charge",
    "engine.cxl_charge",
    "engine.queueing",
    "engine.runtime_model",
)


class _NullSpan:
    """Reusable do-nothing context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead default: every hook is a no-op constant."""

    enabled = False

    def span(self, name: str, cat: str = "phase", **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "phase", **args) -> None:
        return None


NULL_TRACER = NullTracer()

# Process-ambient tracer.  A plain module global (not thread-local): the
# supervised pool forks one process per worker, and within a process the
# simulator is single-threaded on its hot path.  Thread ids are still
# recorded per span, so multi-threaded callers get correct events —
# they just share one tracer.
_current: NullTracer = NULL_TRACER


def current() -> NullTracer:
    """The process-ambient tracer (:data:`NULL_TRACER` unless activated)."""
    return _current


class _Activation:
    """Context manager installing ``tracer`` as the ambient tracer."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: NullTracer) -> None:
        self._tracer = tracer
        self._previous: NullTracer | None = None

    def __enter__(self):
        global _current
        self._previous = _current
        _current = self._tracer
        return self._tracer

    def __exit__(self, *exc) -> None:
        global _current
        _current = self._previous


def activate(tracer: NullTracer) -> _Activation:
    """``with activate(tracer):`` — scope ``tracer`` as :func:`current`."""
    return _Activation(tracer)


@dataclass
class SpanAgg:
    """Exact accumulated totals for one span name."""

    cat: str = "phase"
    calls: int = 0
    total_ns: int = 0  # inclusive
    child_ns: int = 0  # time inside child spans of this name's spans

    @property
    def exclusive_ns(self) -> int:
        return self.total_ns - self.child_ns

    @property
    def total_s(self) -> float:
        return self.total_ns / 1e9

    @property
    def exclusive_s(self) -> float:
        return self.exclusive_ns / 1e9


@dataclass
class SpanEvent:
    """One closed span occurrence (or an instant, when ``dur_ns`` is 0
    and ``cat`` marks it).  ``ts_ns`` is in the owning tracer's
    ``perf_counter_ns`` timebase; :meth:`PerfTracer.merge` converts."""

    sid: int
    parent: int  # parent span id, -1 at the root
    name: str
    cat: str
    ts_ns: int
    dur_ns: int
    pid: int
    tid: int
    args: dict | None = None

    @property
    def end_ns(self) -> int:
        return self.ts_ns + self.dur_ns


class _TraceSpan:
    """One open span; records itself into the tracer on ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "args", "_t0", "_sid", "_parent", "child_ns")

    def __init__(self, tracer: "PerfTracer", name: str, cat: str, args: dict | None):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.child_ns = 0

    def __enter__(self) -> "_TraceSpan":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent = stack[-1]._sid if stack else -1
        self._sid = tracer._next_sid
        tracer._next_sid += 1
        stack.append(self)
        self._t0 = tracer._clock()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        dur = tracer._clock() - self._t0
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].child_ns += dur
        agg = tracer.aggregates.get(self.name)
        if agg is None:
            agg = tracer.aggregates[self.name] = SpanAgg(cat=self.cat)
        agg.calls += 1
        agg.total_ns += dur
        agg.child_ns += self.child_ns
        tracer._record(
            SpanEvent(
                sid=self._sid,
                parent=self._parent,
                name=self.name,
                cat=self.cat,
                ts_ns=self._t0,
                dur_ns=dur,
                pid=tracer.pid,
                tid=threading.get_ident(),
                args=self.args,
            )
        )


class PerfTracer(NullTracer):
    """Collects hierarchical spans; see the module docstring.

    ``keep_events=False`` keeps only the exact aggregates (the mode the
    :class:`~repro.obs.profiler.SelfProfiler` view uses); per-occurrence
    events are capped at ``max_events`` with a ``dropped_events``
    counter — aggregates stay exact regardless.  ``clock`` / ``wall``
    are injectable for deterministic tests.
    """

    enabled = True

    def __init__(
        self,
        process_label: str = "main",
        keep_events: bool = True,
        max_events: int = 1_000_000,
        clock=None,
        wall=None,
    ) -> None:
        self.process_label = process_label
        self.keep_events = keep_events
        self.max_events = max_events
        self.pid = os.getpid()
        self._clock = clock or time.perf_counter_ns
        self._wall = wall or time.time_ns
        # Anchor pair: maps this process's monotonic timebase onto the
        # machine-wide wall clock, the common frame merges align on.
        self.anchor_perf_ns = self._clock()
        self.anchor_wall_ns = self._wall()
        self.events: list[SpanEvent] = []
        self.aggregates: dict[str, SpanAgg] = {}
        self.process_labels: dict[int, str] = {self.pid: process_label}
        self.dropped_events = 0
        self._next_sid = 0
        self._tls = threading.local()

    # -- span recording ------------------------------------------------

    def _stack(self) -> list[_TraceSpan]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _record(self, event: SpanEvent) -> None:
        if not self.keep_events:
            return
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    def span(self, name: str, cat: str = "phase", **args) -> _TraceSpan:
        return _TraceSpan(self, name, cat, args or None)

    def instant(self, name: str, cat: str = "instant", **args) -> None:
        """A zero-duration marker (dispatch decisions, retries)."""
        self._record(
            SpanEvent(
                sid=self._next_sid,
                parent=self._stack()[-1]._sid if self._stack() else -1,
                name=name,
                cat=cat,
                ts_ns=self._clock(),
                dur_ns=0,
                pid=self.pid,
                tid=threading.get_ident(),
                args=args or None,
            )
        )
        self._next_sid += 1

    def add_external(self, name: str, dur_ns: int, calls: int = 1, cat: str = "phase") -> None:
        """Fold an externally measured duration into the aggregates
        (no event: the measurement carries no timestamps)."""
        agg = self.aggregates.get(name)
        if agg is None:
            agg = self.aggregates[name] = SpanAgg(cat=cat)
        agg.calls += calls
        agg.total_ns += int(dur_ns)

    # -- cross-process shipping ---------------------------------------

    def snapshot(self) -> dict:
        """A picklable copy of everything recorded so far, carrying the
        anchors a receiving :meth:`merge` needs for clock correction."""
        return {
            "process_label": self.process_label,
            "pid": self.pid,
            "anchor_perf_ns": self.anchor_perf_ns,
            "anchor_wall_ns": self.anchor_wall_ns,
            "dropped_events": self.dropped_events,
            "events": [
                (e.sid, e.parent, e.name, e.cat, e.ts_ns, e.dur_ns, e.pid, e.tid, e.args)
                for e in self.events
            ],
            "aggregates": {
                name: (agg.cat, agg.calls, agg.total_ns, agg.child_ns)
                for name, agg in self.aggregates.items()
            },
        }

    def reset(self) -> None:
        """Drop recorded spans but keep identity and anchors — used by
        pool workers to ship per-task snapshot *deltas* whose timestamps
        all share one timebase."""
        self.events = []
        self.aggregates = {}
        self.dropped_events = 0

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another process into this tracer.

        Timestamps are converted from the snapshot's monotonic timebase
        into this tracer's by aligning the two wall-clock anchors:
        ``local_ts = ts - snap_perf + (snap_wall - local_wall) + local_perf``.
        Aggregates fold by name, so phase totals span every process.
        """
        offset = (
            snapshot["anchor_wall_ns"]
            - snapshot["anchor_perf_ns"]
            - self.anchor_wall_ns
            + self.anchor_perf_ns
        )
        self.process_labels[snapshot["pid"]] = snapshot["process_label"]
        self.dropped_events += snapshot.get("dropped_events", 0)
        for sid, parent, name, cat, ts_ns, dur_ns, pid, tid, args in snapshot["events"]:
            self._record(
                SpanEvent(
                    sid=sid,
                    parent=parent,
                    name=name,
                    cat=cat,
                    ts_ns=ts_ns + offset,
                    dur_ns=dur_ns,
                    pid=pid,
                    tid=tid,
                    args=args,
                )
            )
        for name, (cat, calls, total_ns, child_ns) in snapshot["aggregates"].items():
            agg = self.aggregates.get(name)
            if agg is None:
                agg = self.aggregates[name] = SpanAgg(cat=cat)
            agg.calls += calls
            agg.total_ns += total_ns
            agg.child_ns += child_ns

    # -- convenience ---------------------------------------------------

    @property
    def total_s(self) -> float:
        return sum(a.total_ns for a in self.aggregates.values()) / 1e9

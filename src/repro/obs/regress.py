"""Performance-regression gate over ``BENCH_*.json`` runs.

``python -m repro bench --check PREV.json`` compares the run it just
measured against a previous bench file and flags slowdowns beyond a
configurable threshold.  Wall-clock benchmarks are noisy — especially on
shared CI runners — so the gate defaults to *warn-only*; ``--check-strict``
turns regressions into a non-zero exit for repos that pin runners.

Each guarded metric declares its direction (throughput: higher is
better; wall clock: lower is better); the relative change is always
normalized so ``+x%`` means *worse*.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

# (dotted path into the bench JSON, higher_is_better, short description)
GUARDED_METRICS: tuple[tuple[str, bool, str], ...] = (
    ("engine.accesses_per_second", True, "engine throughput"),
    ("kernels.kernel_speedup", True, "numpy kernel speedup over python"),
    ("engine_paper.accesses_per_second", True, "paper-mesh throughput"),
    ("engine.l1_speedup", True, "grouped L1 filter speedup"),
    ("suite.serial_cold_s", False, "suite serial cold wall clock"),
    ("suite.parallel_cold_s", False, "suite parallel cold wall clock"),
    ("suite.warm_s", False, "suite warm-cache wall clock"),
    ("suite.parallel_speedup", True, "parallel speedup over serial"),
)

# Absolute invariants, checked against the *current* run alone — no
# previous bench file needed.  (dotted path, exclusive floor, description)
FLOOR_METRICS: tuple[tuple[str, float, str], ...] = (
    ("suite.parallel_speedup", 1.0, "parallel fan-out must beat serial"),
    # The vectorized kernels must beat the pure-python reference loops
    # by a wide margin on the kernel-bound cell; the published 10x is
    # measured on the full multi-core preset, but even the quick cell
    # must clear 3x or the fused paths have rotted.
    ("kernels.kernel_speedup", 3.0, "numpy kernels over python reference"),
    # Absolute throughput floors: machine-dependent, so deliberately
    # conservative — they catch order-of-magnitude collapses (an O(n^2)
    # slip, an accidental python fallback), not percent-level drift,
    # which the relative gate above handles.
    ("engine.accesses_per_second", 100_000.0, "engine throughput floor"),
    ("engine_paper.accesses_per_second", 20_000.0, "paper-mesh throughput floor"),
)

DEFAULT_THRESHOLD = 0.20

# Per-metric warn thresholds tighter than the global/CLI one (the gate
# applies the *stricter* of the two).  l1_speedup is pinned hard: it
# drifted 1.16x -> 1.01x between PR 3 and PR 5 without tripping the 20%
# default — a 10% leash catches that class of silent decay.
METRIC_THRESHOLDS: dict[str, float] = {
    "engine.l1_speedup": 0.10,
}

# Engine phase *shares* (exclusive time / sim wall clock) are compared
# in percentage points; a shift this large means the simulator's cost
# structure changed and the attribution in past PRs no longer holds.
PHASE_SHARE_WARN_PTS = 10.0


@dataclass
class MetricDelta:
    """One guarded metric's comparison outcome."""

    metric: str
    description: str
    previous: float
    current: float
    regression: float  # relative change, + = worse
    threshold: float

    @property
    def failed(self) -> bool:
        return self.regression > self.threshold

    @property
    def status(self) -> str:
        return "REGRESSED" if self.failed else "ok"


def _lookup(payload: dict, dotted: str) -> float | None:
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def history_best(
    previous: dict, dotted: str, higher_is_better: bool
) -> float | None:
    """The strongest value of one metric across the previous payload and
    the rolling history it carries (see ``repro.exec.bench.roll_history``).

    Comparing against best-of-history makes the gate a ratchet: one slow
    baseline run cannot mask a real regression, because the fresh run is
    held to the best the metric has ever measured within the window.
    """
    candidates = []
    value = _lookup(previous, dotted)
    if value is not None and value > 0:
        candidates.append(value)
    for entry in previous.get("history", []) or []:
        if isinstance(entry, dict) and isinstance(
            entry.get(dotted), (int, float)
        ):
            hist = float(entry[dotted])
            if hist > 0:
                candidates.append(hist)
    if not candidates:
        return None
    return max(candidates) if higher_is_better else min(candidates)


def compare_bench(
    current: dict,
    previous: dict,
    threshold: float = DEFAULT_THRESHOLD,
    metrics: tuple[tuple[str, bool, str], ...] = GUARDED_METRICS,
) -> list[MetricDelta]:
    """Compare two bench payloads; one :class:`MetricDelta` per metric
    present in both (missing metrics are skipped, never failed).  The
    previous side of throughput metrics is the best of the previous run
    and its rolling history."""
    deltas: list[MetricDelta] = []
    for dotted, higher_is_better, description in metrics:
        prev = history_best(previous, dotted, higher_is_better)
        cur = _lookup(current, dotted)
        if prev is None or cur is None or prev <= 0 or cur <= 0:
            continue
        if higher_is_better:
            regression = prev / cur - 1.0
        else:
            regression = cur / prev - 1.0
        deltas.append(
            MetricDelta(
                metric=dotted,
                description=description,
                previous=prev,
                current=cur,
                regression=regression,
                threshold=min(
                    threshold, METRIC_THRESHOLDS.get(dotted, threshold)
                ),
            )
        )
    return deltas


def regressions(deltas: list[MetricDelta]) -> list[MetricDelta]:
    return [d for d in deltas if d.failed]


@dataclass
class PhaseShareDelta:
    """How one engine phase's share of sim wall clock moved."""

    phase: str
    previous_pts: float  # shares as percentage points (0-100)
    current_pts: float
    threshold_pts: float

    @property
    def moved_pts(self) -> float:
        return self.current_pts - self.previous_pts

    @property
    def failed(self) -> bool:
        return abs(self.moved_pts) > self.threshold_pts

    @property
    def status(self) -> str:
        return "SHIFTED" if self.failed else "ok"


def compare_phase_shares(
    current: dict,
    previous: dict,
    threshold_pts: float = PHASE_SHARE_WARN_PTS,
) -> list[PhaseShareDelta]:
    """Diff the engine phase breakdown between two bench payloads.

    Reads ``engine.phases.<name>.share`` from both; a phase present in
    only one payload is compared against 0 (a phase appearing at 15% of
    the wall clock is exactly the kind of shift this exists to flag).
    Always warn-only: a share shift is attribution news, not by itself
    a regression — the wall-clock metrics above gate that.
    """
    cur_phases = (current.get("engine") or {}).get("phases") or {}
    prev_phases = (previous.get("engine") or {}).get("phases") or {}
    if not cur_phases and not prev_phases:
        return []
    deltas = []
    for name in sorted(set(cur_phases) | set(prev_phases)):
        cur_share = float((cur_phases.get(name) or {}).get("share", 0.0))
        prev_share = float((prev_phases.get(name) or {}).get("share", 0.0))
        deltas.append(
            PhaseShareDelta(
                phase=name,
                previous_pts=prev_share * 100.0,
                current_pts=cur_share * 100.0,
                threshold_pts=threshold_pts,
            )
        )
    deltas.sort(key=lambda d: -abs(d.moved_pts))
    return deltas


def phase_share_rows(deltas: list[PhaseShareDelta]) -> list[list[str]]:
    """Render phase-share comparisons as table rows for the CLI."""
    return [
        [
            d.phase,
            f"{d.previous_pts:.1f}",
            f"{d.current_pts:.1f}",
            f"{d.moved_pts:+.1f}",
            d.status,
        ]
        for d in deltas
    ]


@dataclass
class FloorCheck:
    """One absolute-invariant comparison outcome."""

    metric: str
    description: str
    value: float
    floor: float  # exclusive: value must be strictly greater

    @property
    def failed(self) -> bool:
        return self.value <= self.floor

    @property
    def status(self) -> str:
        return "BELOW FLOOR" if self.failed else "ok"


def check_floors(
    current: dict,
    metrics: tuple[tuple[str, float, str], ...] = FLOOR_METRICS,
) -> list[FloorCheck]:
    """Evaluate absolute invariants on one bench payload.

    Unlike :func:`compare_bench` this needs no baseline file: a pool
    slower than serial is wrong on any multi-core machine, first run
    included.  Metrics missing from the payload are skipped, never
    failed — as is the parallel-speedup floor when the payload records
    a single-CPU machine (``cpu_count`` < 2), where beating serial
    with process fan-out is physically impossible.
    """
    cpus = current.get("cpu_count")
    parallelizable = not isinstance(cpus, int) or cpus >= 2
    checks: list[FloorCheck] = []
    for dotted, floor, description in metrics:
        if dotted == "suite.parallel_speedup" and not parallelizable:
            continue
        value = _lookup(current, dotted)
        if value is None:
            continue
        checks.append(
            FloorCheck(
                metric=dotted, description=description, value=value, floor=floor
            )
        )
    return checks


def floor_rows(checks: list[FloorCheck]) -> list[list[str]]:
    """Render floor checks as table rows for the CLI."""
    return [
        [c.metric, f"> {c.floor:g}", f"{c.value:.4g}", c.status] for c in checks
    ]


def delta_rows(deltas: list[MetricDelta]) -> list[list[str]]:
    """Render comparisons as table rows for the CLI."""
    return [
        [
            d.metric,
            f"{d.previous:.4g}",
            f"{d.current:.4g}",
            f"{d.regression:+.1%}",
            d.status,
        ]
        for d in deltas
    ]


def load_bench(path: str) -> dict:
    """Read one ``BENCH_*.json``; raises ValueError with context on
    malformed input rather than a bare decode error."""
    with open(path) as f:
        try:
            payload = json.load(f)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not a valid bench JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return payload


def check_bench(
    current: dict,
    previous_path: str,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[MetricDelta], list[MetricDelta]]:
    """Convenience wrapper: load, compare, split out failures.

    Returns ``(all deltas, failed deltas)``.  Comparing a ``--quick``
    run against a full run (or vice versa) is refused: the workload sets
    differ, so wall-clock comparisons would be meaningless.
    """
    previous = load_bench(previous_path)
    if bool(previous.get("quick")) != bool(current.get("quick")):
        raise ValueError(
            f"{previous_path}: cannot compare a quick bench against a full "
            "bench (different workload sets)"
        )
    deltas = compare_bench(current, previous, threshold=threshold)
    return deltas, regressions(deltas)

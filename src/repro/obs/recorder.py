"""Structured event recording for simulation runs.

A :class:`Recorder` collects three kinds of observations:

* **events** — schema-versioned dicts (one JSONL line each): per-epoch
  timeline rows, reconfiguration decisions, sampled miss curves, fault
  injections, demotions.
* **counters / gauges** — cheap named scalars folded into the trace
  footer (counters accumulate, gauges keep the last value).
* **spans** — wall-clock self-profiling via :class:`SelfProfiler`.

The default everywhere is :class:`NullRecorder`, whose methods are
no-ops and whose ``enabled`` flag lets hot paths skip building payloads
entirely — with it installed, a simulation's outputs are bit-identical
to a build without any observability calls.

Trace layout (``write_jsonl``): a ``header`` line first (schema
version, run metadata), then every event in emission order, then one
``counters`` line, one ``profile`` line per span label, and a final
``footer`` line with the event count (truncation check).
"""

from __future__ import annotations

import json
import math
from typing import Iterator

from repro.obs.profiler import SelfProfiler

# Schema history:
#   1 — initial trace layout (header / events / counters / profile / footer).
#   2 — serving-mode events added (serve_shed / serve_timeout /
#       serve_degraded / serve_reject), each with required fields the
#       summarizer validates.
#   3 — SLO events added (slo_burn / slo_recovered / slo_status).
#       Readers from here on are forward-compatible: a trace with a
#       *newer* integer schema is read with a warning, and unknown
#       serve_*/slo_* kinds are counted but not validated.
SCHEMA_VERSION = 3


def sanitize_json(obj):
    """Recursively replace non-finite floats with ``None``.

    ``json.dumps`` would otherwise emit the bare tokens ``NaN`` /
    ``Infinity``, which strict JSON parsers (and the JSON spec) reject —
    a single undefined gauge would make a whole trace unreadable to
    anything but Python.  Applied at serialization time only; in-memory
    values are left untouched.
    """
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        return {key: sanitize_json(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [sanitize_json(value) for value in obj]
    return obj


class _NullSpan:
    """Reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Zero-overhead default: every hook is a no-op.

    Hot paths guard payload construction on ``enabled``, so a run with
    the null recorder does no extra allocation, hashing, or arithmetic
    — its :class:`~repro.sim.metrics.SimulationReport` is bit-identical
    to one produced before the observability layer existed.
    """

    enabled = False

    def event(self, kind: str, **fields) -> None:
        pass

    def counter(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def span(self, label: str) -> _NullSpan:
        return _NULL_SPAN


class Recorder(NullRecorder):
    """Collects events, counters, gauges, and profiling spans."""

    enabled = True

    def __init__(self, tracer=None, **meta) -> None:
        self.meta = dict(meta)
        self.events: list[dict] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        # Span timing is delegated to a PerfTracer; passing a shared one
        # merges recorder spans into an ambient perf trace (profile verb).
        self.profiler = SelfProfiler(tracer=tracer)
        self._seq = 0

    # ------------------------------------------------------------------

    def event(self, kind: str, **fields) -> None:
        record = {"seq": self._seq, "kind": kind}
        record.update(fields)
        self._seq += 1
        self.events.append(record)

    def counter(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def span(self, label: str):
        return self.profiler.span(label)

    def events_of(self, kind: str) -> list[dict]:
        return [e for e in self.events if e["kind"] == kind]

    # ------------------------------------------------------------------

    def lines(self) -> Iterator[dict]:
        """The trace as an ordered sequence of JSON-able dicts."""
        header = {"kind": "header", "schema": SCHEMA_VERSION}
        header.update(self.meta)
        yield header
        yield from self.events
        if self.counters:
            yield {"kind": "counters", "values": dict(self.counters)}
        if self.gauges:
            yield {"kind": "gauges", "values": dict(self.gauges)}
        for row in self.profiler.summary():
            yield {"kind": "profile", **row}
        yield {"kind": "footer", "events": len(self.events)}

    def write_jsonl(self, path: str) -> int:
        """Write the trace; returns the number of lines written.

        Non-finite floats are mapped to ``null`` (``allow_nan=False``
        guarantees no ``NaN``/``Infinity`` token can slip through).
        """
        n = 0
        with open(path, "w") as f:
            for line in self.lines():
                f.write(
                    json.dumps(sanitize_json(line), sort_keys=False, allow_nan=False)
                    + "\n"
                )
                n += 1
        return n

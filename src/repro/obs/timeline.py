"""The epoch timeline: per-epoch breakdowns behind a run's aggregates.

Fig. 2's latency/energy decomposition and the Section V reconfiguration
story are all *time series*; the aggregates in
:class:`~repro.sim.metrics.SimulationReport` cannot answer "which epoch
saturated the CXL link?" or "what did the reconfiguration in epoch 7
buy?".  :class:`EpochRecord` captures one epoch's deltas of every
accumulator the engine maintains, plus the traffic and
fault/reconfiguration activity of that epoch; :class:`Timeline` is the
ordered list with exporters (JSONL events, CSV) and aggregation
helpers used by the validation tests — the per-epoch series must sum
back to the run's aggregate report.
"""

from __future__ import annotations

import csv
from dataclasses import asdict, dataclass, field, fields

from repro.sim.metrics import EnergyBreakdown, HitStats, LatencyBreakdown


@dataclass
class EpochRecord:
    """One epoch's slice of the run, all values are per-epoch deltas
    except ``cycles_total`` (the runtime estimate after this epoch)."""

    epoch: int
    requests: int = 0
    post_l1_requests: int = 0
    hits: HitStats = field(default_factory=HitStats)
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    ext_accesses: int = 0
    ext_bytes: int = 0
    inter_stack_bytes: int = 0
    effective_lanes: int = 0
    reconfig_movements: int = 0
    reconfig_invalidations: int = 0
    fault_units: int = 0
    fault_rows: int = 0
    demoted_requests: int = 0
    cycles_total: float = 0.0

    def to_json(self) -> dict:
        payload = asdict(self)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "EpochRecord":
        payload = dict(payload)
        payload["hits"] = HitStats(**payload.get("hits", {}))
        payload["breakdown"] = LatencyBreakdown(**payload.get("breakdown", {}))
        payload["energy"] = EnergyBreakdown(**payload.get("energy", {}))
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class Timeline:
    """Ordered per-epoch records for one simulation run."""

    records: list[EpochRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------
    # Aggregation (validation: series must sum to the run's report)
    # ------------------------------------------------------------------

    def aggregate_hits(self) -> HitStats:
        total = HitStats()
        for rec in self.records:
            total = total + rec.hits
        return total

    def aggregate_breakdown(self) -> LatencyBreakdown:
        total = LatencyBreakdown()
        for rec in self.records:
            total = total + rec.breakdown
        return total

    def aggregate_energy(self) -> EnergyBreakdown:
        """Sum of per-epoch energy; excludes the run-level static energy
        charged once from the final runtime."""
        total = EnergyBreakdown()
        for rec in self.records:
            total = total + rec.energy
        return total

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------

    def to_events(self) -> list[dict]:
        return [{"kind": "epoch", **rec.to_json()} for rec in self.records]

    @classmethod
    def from_events(cls, events: list[dict]) -> "Timeline":
        records = [
            EpochRecord.from_json(
                {k: v for k, v in event.items() if k not in ("kind", "seq")}
            )
            for event in events
            if event.get("kind") == "epoch"
        ]
        records.sort(key=lambda r: r.epoch)
        return cls(records)

    def csv_rows(self) -> tuple[list[str], list[list]]:
        """Flat header + rows (nested breakdowns become dotted columns)."""
        header: list[str] = []
        rows: list[list] = []
        for rec in self.records:
            flat = _flatten(rec.to_json())
            if not header:
                header = list(flat)
            rows.append([flat[col] for col in header])
        return header, rows

    def to_csv(self, path: str) -> None:
        header, rows = self.csv_rows()
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(header)
            writer.writerows(rows)


def _flatten(payload: dict, prefix: str = "") -> dict:
    flat: dict = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{name}."))
        else:
            flat[name] = value
    return flat

"""Reading and summarizing JSONL event traces.

A trace file is what :meth:`repro.obs.recorder.Recorder.write_jsonl`
produced: a ``header`` line, events in emission order, then
``counters``/``profile`` lines and a ``footer``.  This module is the
read side used by ``python -m repro stats``: parse, validate the
schema, rebuild the epoch timeline, and render summary/diff tables.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field

from repro.obs.histogram import LatencyHistogram
from repro.obs.recorder import SCHEMA_VERSION
from repro.obs.spatial import SpatialReport
from repro.obs.timeline import Timeline


@dataclass
class TraceFile:
    """One parsed JSONL trace."""

    path: str
    header: dict = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    profile: list[dict] = field(default_factory=list)
    footer: dict = field(default_factory=dict)

    @property
    def timeline(self) -> Timeline:
        return Timeline.from_events(self.events)

    @property
    def histograms(self) -> dict[str, LatencyHistogram]:
        """Per-tier latency histograms rebuilt from ``histogram`` events
        (empty dict for traces recorded before repro.obs v2)."""
        return {
            event["tier"]: LatencyHistogram.from_json(event)
            for event in self.events_of("histogram")
        }

    @property
    def spatial(self) -> SpatialReport | None:
        """The spatial summary from the ``spatial`` event, if recorded."""
        events = self.events_of("spatial")
        return SpatialReport.from_json(events[-1]) if events else None

    def events_of(self, kind: str) -> list[dict]:
        return [e for e in self.events if e.get("kind") == kind]


def read_trace(path: str) -> TraceFile:
    """Parse one trace; raises ValueError on schema problems."""
    trace = TraceFile(path=path)
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            kind = record.get("kind")
            if kind == "header":
                trace.header = record
            elif kind == "counters":
                trace.counters = record.get("values", {})
            elif kind == "gauges":
                trace.gauges = record.get("values", {})
            elif kind == "profile":
                trace.profile.append(record)
            elif kind == "footer":
                trace.footer = record
            else:
                trace.events.append(record)
    if not trace.header:
        raise ValueError(f"{path}: missing header line")
    schema = trace.header.get("schema")
    # Forward compatibility: a trace written by a *newer* recorder keeps
    # its known structure (header/counters/footer framing is stable), so
    # read it with a warning instead of refusing — unknown event kinds
    # are handled downstream.  Anything non-integral is not a trace.
    if not isinstance(schema, int) or isinstance(schema, bool) or schema < 1:
        raise ValueError(
            f"{path}: schema {schema!r} unsupported (expected {SCHEMA_VERSION})"
        )
    if schema > SCHEMA_VERSION:
        warnings.warn(
            f"{path}: trace schema {schema} is newer than this reader "
            f"(schema {SCHEMA_VERSION}); unknown event kinds will be "
            f"counted but not validated",
            stacklevel=2,
        )
    if trace.footer and trace.footer.get("events") != len(trace.events):
        raise ValueError(
            f"{path}: footer says {trace.footer.get('events')} events, "
            f"found {len(trace.events)} (truncated trace?)"
        )
    return trace


def report_from_trace(trace: TraceFile):
    """Reconstruct a :class:`~repro.sim.metrics.SimulationReport` from a
    trace's events: timeline aggregates for hits/latency/energy, the
    final cumulative runtime, plus the tier histograms and the spatial
    summary.  Static energy cannot be recovered (it is charged once,
    after the epoch loop) and stays at the per-epoch sum.
    """
    from repro.sim.metrics import SimulationReport

    timeline = trace.timeline
    last = timeline.records[-1] if len(timeline) else None
    histograms = trace.histograms
    return SimulationReport(
        policy=trace.header.get("policy", "?"),
        workload=trace.header.get("workload", "?"),
        runtime_cycles=last.cycles_total if last else 0.0,
        breakdown=timeline.aggregate_breakdown(),
        energy=timeline.aggregate_energy(),
        hits=timeline.aggregate_hits(),
        reconfig_movements=sum(r.reconfig_movements for r in timeline),
        reconfig_invalidations=sum(r.reconfig_invalidations for r in timeline),
        per_epoch_cycles=[r.cycles_total for r in timeline],
        timeline=timeline,
        tier_histograms=histograms if histograms else None,
        spatial=trace.spatial,
    )


# Serving-mode (schema 2) and SLO (schema 3) events with the fields
# each must carry; the summarizer hard-fails on a malformed one rather
# than silently under-counting dropped work.
_SERVE_REQUIRED: dict[str, tuple[str, ...]] = {
    "serve_shed": ("tenant", "batch"),
    "serve_timeout": ("tenant", "batch"),
    "serve_degraded": ("state",),
    "slo_burn": ("tenant", "state"),
    "slo_recovered": ("tenant", "state"),
}

# Known-but-unvalidated kinds in the serve/slo namespaces (no required
# fields beyond being well-formed JSON).
_SERVE_KNOWN: tuple[str, ...] = ("serve_reject", "slo_status")


def serve_event_counts(trace: TraceFile) -> dict[str, int]:
    """Validated per-kind counts of the serving-mode and SLO events.

    Raises ``ValueError`` when a *known* event is missing a required
    field — a shed/timeout record that cannot be attributed to a tenant
    and batch is corrupt, not merely incomplete.  Events in the
    ``serve_*``/``slo_*`` namespaces that this reader does not know
    (traces from newer schemas) are counted but not validated, with a
    warning — forward compatibility must not turn into a hard failure.
    """
    counts: dict[str, int] = {}
    for kind, required in _SERVE_REQUIRED.items():
        events = trace.events_of(kind)
        for event in events:
            missing = [f for f in required if event.get(f) is None]
            if missing:
                raise ValueError(
                    f"{trace.path}: {kind} event missing required "
                    f"field(s) {missing}: {event}"
                )
        counts[kind] = len(events)
    unknown: dict[str, int] = {}
    for event in trace.events:
        kind = event.get("kind", "")
        if (
            kind.startswith(("serve_", "slo_"))
            and kind not in _SERVE_REQUIRED
            and kind not in _SERVE_KNOWN
        ):
            unknown[kind] = unknown.get(kind, 0) + 1
    if unknown:
        warnings.warn(
            f"{trace.path}: unknown serve/slo event kind(s) "
            f"{sorted(unknown)} counted but not validated "
            f"(newer trace schema?)",
            stacklevel=2,
        )
        counts.update(unknown)
    return counts


def slo_summary(trace: TraceFile) -> dict:
    """Roll the SLO alerting events up for the ``stats`` verb: burn /
    recovery counts and each tenant's worst observed fast-window burn
    rate (from ``slo_burn`` escalations, falling back to the final
    ``slo_status`` snapshot for runs that never alerted)."""
    burns = trace.events_of("slo_burn")
    recoveries = trace.events_of("slo_recovered")
    worst: dict[str, float] = {}
    for event in burns:
        tenant = str(event.get("tenant"))
        rate = float(event.get("burn_fast") or 0.0)
        worst[tenant] = max(worst.get(tenant, 0.0), rate)
    for event in trace.events_of("slo_status"):
        tenant = str(event.get("tenant"))
        rate = float(event.get("worst_burn") or 0.0)
        worst[tenant] = max(worst.get(tenant, 0.0), rate)
    return {
        "slo_burns": len(burns),
        "slo_recoveries": len(recoveries),
        "slo_worst_burn": {t: worst[t] for t in sorted(worst)},
    }


def summarize(trace: TraceFile) -> dict:
    """Aggregate view of one trace for the ``stats`` verb."""
    timeline = trace.timeline
    hits = timeline.aggregate_hits()
    breakdown = timeline.aggregate_breakdown()
    energy = timeline.aggregate_energy()
    reconfigs = trace.events_of("reconfig")
    applied = [e for e in reconfigs if e.get("applied")]
    faults = (
        trace.events_of("fault_unit")
        + trace.events_of("fault_row")
        + trace.events_of("fault_lanes")
    )
    accuracy = trace.events_of("hit_accuracy")
    pred_err = [
        abs(s["predicted"] - s["realized"])
        for e in accuracy
        for s in e.get("streams", [])
        if s.get("predicted") is not None
    ]
    last = timeline.records[-1] if len(timeline) else None
    histograms = trace.histograms
    spatial = trace.spatial
    serve_counts = serve_event_counts(trace)
    slo = slo_summary(trace)
    return {
        "workload": trace.header.get("workload", "?"),
        "policy": trace.header.get("policy", "?"),
        "preset": trace.header.get("preset", "?"),
        "epochs": len(timeline),
        "runtime_cycles": last.cycles_total if last else 0.0,
        "requests": hits.total_requests,
        "cache_hit_rate": hits.cache_hit_rate,
        "latency_ns": breakdown.total_ns,
        "extended_ns": breakdown.extended_ns,
        "energy_nj": energy.total_nj,
        "reconfig_events": len(reconfigs),
        "reconfig_applied": len(applied),
        "fault_events": len(faults),
        "mean_hit_prediction_error": (
            sum(pred_err) / len(pred_err) if pred_err else 0.0
        ),
        "p99_local_ns": (
            histograms["local"].percentile(99.0) if "local" in histograms else 0.0
        ),
        "p99_extended_ns": (
            histograms["extended"].percentile(99.0)
            if "extended" in histograms
            else 0.0
        ),
        "load_imbalance": spatial.load_imbalance if spatial else 0.0,
        "serve_shed": serve_counts["serve_shed"],
        "serve_timeouts": serve_counts["serve_timeout"],
        "serve_degraded_transitions": serve_counts["serve_degraded"],
        "slo_burns": slo["slo_burns"],
        "slo_recoveries": slo["slo_recoveries"],
        **{
            f"slo_worst_burn[{tenant}]": rate
            for tenant, rate in slo["slo_worst_burn"].items()
        },
        "profile_s": sum(row.get("total_s", 0.0) for row in trace.profile),
    }


def summary_rows(summary: dict) -> list[list[str]]:
    """Render a summary dict as table rows."""

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    return [[key, fmt(value)] for key, value in summary.items()]


def diff_rows(a: dict, b: dict) -> list[list[str]]:
    """Side-by-side diff of two summaries with a relative-change column."""
    rows = []
    for key in a:
        va, vb = a[key], b.get(key)
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            delta = f"{(vb - va) / va:+.2%}" if va else "n/a"
            rows.append([key, f"{va:.4g}", f"{vb:.4g}", delta])
        else:
            rows.append([key, str(va), str(vb), "" if va == vb else "differs"])
    return rows

"""Metrics export: Prometheus text format and a JSON payload.

One :class:`~repro.sim.metrics.SimulationReport` (typically rebuilt from
a trace via :func:`repro.obs.traceio.report_from_trace`) becomes either

* a **Prometheus text-format** document — latency histograms as native
  Prometheus histograms (cumulative ``_bucket{le=...}`` series plus
  ``_sum``/``_count``), per-unit and per-stack-pair spatial series, and
  the scalar hit/latency/energy/fault/reconfiguration counters — ready
  for a pushgateway or a textfile collector, or
* a **JSON payload** with the same content, sanitized so no
  ``NaN``/``Infinity`` token can appear (strict parsers reject them).

Every series carries the run's identifying labels (workload, policy,
and whatever extra labels the caller passes).
"""

from __future__ import annotations

import json

import numpy as np

from repro.obs.histogram import EDGES, LatencyHistogram
from repro.obs.recorder import sanitize_json
from repro.sim.metrics import SimulationReport

PREFIX = "repro"


def _fmt(value: float) -> str:
    """Prometheus sample value: repr keeps floats exact, ints compact."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value or value in (float("inf"), float("-inf")):
        return "0"  # a non-finite gauge is meaningless; export zero
    return repr(float(value))


def _labels(labels: dict[str, object]) -> str:
    if not labels:
        return ""
    quoted = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in labels.items()
    )
    return "{" + quoted + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Writer:
    """Accumulates text-format lines with one HELP/TYPE header per metric."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._declared: set[str] = set()

    def declare(self, name: str, kind: str, help_text: str) -> None:
        if name in self._declared:
            return
        self._declared.add(name)
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: dict, value) -> None:
        self.lines.append(f"{name}{_labels(labels)} {_fmt(value)}")


def _histogram_lines(
    writer: _Writer, name: str, hist: LatencyHistogram, base: dict
) -> None:
    """One tier's histogram in native Prometheus histogram layout."""
    writer.declare(name, "histogram", "request service latency (ns) by tier")
    cum = np.cumsum(hist.counts)
    # Emit only the edges that change the cumulative count, plus +Inf —
    # full fidelity at a fraction of the 194 buckets.
    prev = -1
    for idx in range(len(hist.counts) - 1):
        if cum[idx] == prev:
            continue
        prev = int(cum[idx])
        writer.sample(
            f"{name}_bucket",
            {**base, "le": _fmt(float(EDGES[idx]))},
            int(cum[idx]),
        )
    writer.sample(f"{name}_bucket", {**base, "le": "+Inf"}, hist.n)
    writer.sample(f"{name}_sum", base, hist.total_ns)
    writer.sample(f"{name}_count", base, hist.n)


def prometheus_text(
    report: SimulationReport, extra_labels: dict[str, object] | None = None
) -> str:
    """Render one report as a Prometheus text-format document."""
    base = {"workload": report.workload, "policy": report.policy}
    base.update(extra_labels or {})
    w = _Writer()

    w.declare(f"{PREFIX}_runtime_cycles", "gauge", "simulated runtime in core cycles")
    w.sample(f"{PREFIX}_runtime_cycles", base, report.runtime_cycles)

    w.declare(f"{PREFIX}_requests_total", "counter", "requests by serving level")
    for tier, value in (
        ("l1", report.hits.l1_hits),
        ("cache_local", report.hits.cache_hits_local),
        ("cache_remote", report.hits.cache_hits_remote),
        ("extended", report.hits.cache_misses),
    ):
        w.sample(f"{PREFIX}_requests_total", {**base, "level": tier}, value)

    w.declare(
        f"{PREFIX}_latency_ns_total", "counter", "total latency by component"
    )
    for comp in ("sram", "metadata", "dram", "intra_noc", "inter_noc", "extended"):
        w.sample(
            f"{PREFIX}_latency_ns_total",
            {**base, "component": comp},
            getattr(report.breakdown, f"{comp}_ns"),
        )

    w.declare(f"{PREFIX}_energy_nj_total", "counter", "energy by component")
    for comp in ("static", "sram", "ndp_dram", "noc", "cxl", "ext_dram"):
        w.sample(
            f"{PREFIX}_energy_nj_total",
            {**base, "component": comp},
            getattr(report.energy, f"{comp}_nj"),
        )

    w.declare(
        f"{PREFIX}_reconfig_total", "counter", "reconfiguration activity"
    )
    w.sample(
        f"{PREFIX}_reconfig_total",
        {**base, "kind": "movements"},
        report.reconfig_movements,
    )
    w.sample(
        f"{PREFIX}_reconfig_total",
        {**base, "kind": "invalidations"},
        report.reconfig_invalidations,
    )

    if report.faults is not None:
        w.declare(f"{PREFIX}_faults_total", "counter", "fault-layer activity")
        for kind in (
            "crc_retries",
            "crc_reissues",
            "units_lost",
            "rows_quarantined",
            "demoted_requests",
        ):
            w.sample(
                f"{PREFIX}_faults_total",
                {**base, "kind": kind},
                getattr(report.faults, kind),
            )
        w.declare(
            f"{PREFIX}_fault_penalty_ns", "gauge", "latency added by faults"
        )
        w.sample(f"{PREFIX}_fault_penalty_ns", base, report.faults.penalty_ns)

    if report.tier_histograms:
        for tier, hist in report.tier_histograms.items():
            _histogram_lines(
                w, f"{PREFIX}_request_latency_ns", hist, {**base, "tier": tier}
            )

    if report.spatial is not None:
        spatial = report.spatial
        w.declare(
            f"{PREFIX}_unit_issued_requests_total",
            "counter",
            "post-L1 requests issued per NDP unit",
        )
        w.declare(
            f"{PREFIX}_unit_served_requests_total",
            "counter",
            "cache hits served per NDP unit",
        )
        w.declare(
            f"{PREFIX}_unit_occupancy_ns_total",
            "counter",
            "DRAM service time per NDP unit",
        )
        for unit in range(spatial.n_units):
            labels = {**base, "unit": unit}
            w.sample(
                f"{PREFIX}_unit_issued_requests_total", labels, spatial.issued[unit]
            )
            w.sample(
                f"{PREFIX}_unit_served_requests_total", labels, spatial.served[unit]
            )
            w.sample(
                f"{PREFIX}_unit_occupancy_ns_total",
                labels,
                spatial.occupancy_ns[unit],
            )
        w.declare(
            f"{PREFIX}_link_bytes_total",
            "counter",
            "NoC bytes by (source stack, destination stack)",
        )
        for src in range(spatial.n_stacks):
            for dst in range(spatial.n_stacks):
                value = spatial.link_bytes[src][dst]
                if value:
                    w.sample(
                        f"{PREFIX}_link_bytes_total",
                        {**base, "src_stack": src, "dst_stack": dst},
                        value,
                    )
        w.declare(
            f"{PREFIX}_load_imbalance",
            "gauge",
            "max/mean served requests across units",
        )
        w.sample(f"{PREFIX}_load_imbalance", base, spatial.load_imbalance)

    return "\n".join(w.lines) + "\n"


def serve_prometheus(
    report, extra_labels: dict[str, object] | None = None
) -> str:
    """Render a :class:`~repro.serve.report.ServeReport` as Prometheus
    text format: per-tenant admission/shed/timeout counters, batch
    latency as native histograms (overall and per tenant), plus
    reconfiguration and degradation gauges.  Appended after
    :func:`prometheus_text` of the embedded sim report, this is the
    future live ``/metrics`` payload.
    """
    base = {"scenario": report.scenario}
    base.update(extra_labels or {})
    w = _Writer()

    w.declare(
        f"{PREFIX}_serve_batches_total",
        "counter",
        "serving-loop batch outcomes by tenant",
    )
    for name, stats in sorted(report.tenants.items()):
        for outcome in (
            "submitted",
            "admitted",
            "rejected",
            "shed",
            "timed_out",
            "completed",
            "resumed",
        ):
            w.sample(
                f"{PREFIX}_serve_batches_total",
                {**base, "tenant": name, "outcome": outcome},
                getattr(stats, outcome),
            )

    w.declare(
        f"{PREFIX}_serve_batch_latency_ns",
        "histogram",
        "batch latency from admission to completion (simulated ns)",
    )
    _histogram_lines(
        w,
        f"{PREFIX}_serve_batch_latency_ns",
        report.latency,
        {**base, "tenant": "all"},
    )
    for name, stats in sorted(report.tenants.items()):
        if stats.latency.n:
            _histogram_lines(
                w,
                f"{PREFIX}_serve_batch_latency_ns",
                stats.latency,
                {**base, "tenant": name},
            )

    w.declare(
        f"{PREFIX}_serve_reconfigs_total",
        "counter",
        "placements applied while serving",
    )
    w.sample(f"{PREFIX}_serve_reconfigs_total", base, report.reconfigs)
    w.declare(
        f"{PREFIX}_serve_health_reconfig_requests_total",
        "counter",
        "re-placements forced by the health monitor",
    )
    w.sample(
        f"{PREFIX}_serve_health_reconfig_requests_total",
        base,
        report.health_reconfig_requests,
    )
    w.declare(
        f"{PREFIX}_serve_degraded_epochs",
        "gauge",
        "epochs spent in a degradation window",
    )
    w.sample(
        f"{PREFIX}_serve_degraded_epochs",
        base,
        sum(b - a for a, b in report.degraded_windows),
    )
    w.declare(
        f"{PREFIX}_serve_drained_queued",
        "gauge",
        "batches journaled but unserved at drain",
    )
    w.sample(f"{PREFIX}_serve_drained_queued", base, report.drained_queued)
    if report.slo is not None:
        _slo_lines(w, report.slo, base)
    return "\n".join(w.lines) + "\n"


def _slo_lines(w: _Writer, status: dict, base: dict) -> None:
    """SLO gauges from an :meth:`SloEngine.status` payload."""
    from repro.obs.slo import OBJ_LATENCY, alert_severity

    w.declare(
        f"{PREFIX}_slo_alert_state",
        "gauge",
        "per-tenant SLO alert severity (0=ok 1=warn 2=page)",
    )
    w.declare(
        f"{PREFIX}_slo_budget_remaining",
        "gauge",
        "fraction of the error budget left (negative = overspent)",
    )
    w.declare(
        f"{PREFIX}_slo_burn_rate",
        "gauge",
        "error-budget burn rate by objective and window",
    )
    w.declare(
        f"{PREFIX}_slo_latency_windows_total",
        "counter",
        "evaluated fast windows for the latency objective",
    )
    w.declare(
        f"{PREFIX}_slo_latency_windows_met",
        "counter",
        "fast windows whose p99 met the latency objective",
    )
    for name, tenant in sorted(status.get("tenants", {}).items()):
        labels = {**base, "tenant": name}
        w.sample(
            f"{PREFIX}_slo_alert_state", labels, alert_severity(tenant["alert"])
        )
        w.sample(
            f"{PREFIX}_slo_budget_remaining", labels, tenant["budget_remaining"]
        )
        for kind, obj in sorted(tenant.get("objectives", {}).items()):
            for window in ("fast", "slow"):
                w.sample(
                    f"{PREFIX}_slo_burn_rate",
                    {**labels, "objective": kind, "window": window},
                    obj[f"burn_{window}"],
                )
            if kind == OBJ_LATENCY:
                obj_labels = {**labels, "objective": kind}
                w.sample(
                    f"{PREFIX}_slo_latency_windows_total",
                    obj_labels,
                    obj.get("windows_total", 0),
                )
                w.sample(
                    f"{PREFIX}_slo_latency_windows_met",
                    obj_labels,
                    obj.get("windows_met", 0),
                )


def slo_prometheus(
    status: dict, extra_labels: dict[str, object] | None = None
) -> str:
    """Render one :meth:`SloEngine.status` payload standalone (the live
    endpoint embeds the same series through :func:`serve_prometheus`)."""
    w = _Writer()
    _slo_lines(w, status, dict(extra_labels or {}))
    return "\n".join(w.lines) + "\n"


def json_payload(
    report: SimulationReport,
    extra: dict | None = None,
    counters: dict | None = None,
) -> dict:
    """The same content as :func:`prometheus_text` as one JSON object.

    ``counters`` accepts a trace's counters line (cache hit/miss rates
    and engine counters) so exports from traces carry them too.
    """
    payload = report.to_json(include_obs=True)
    if report.tier_histograms:
        payload["percentiles_ns"] = {
            tier: hist.percentiles()
            for tier, hist in report.tier_histograms.items()
        }
    if report.spatial is not None:
        payload["load_imbalance"] = report.spatial.load_imbalance
    if counters:
        payload["counters"] = dict(counters)
    if extra:
        payload.update(extra)
    return sanitize_json(payload)


def write_json(path: str, payload: dict) -> None:
    with open(path, "w") as f:
        json.dump(sanitize_json(payload), f, indent=2, allow_nan=False)

"""Fixed-bucket log-scale latency histograms.

The paper's headline claims are distributional: NDPExt wins because most
requests are served *close* to the issuing unit, which averages hide.
:class:`LatencyHistogram` captures a full latency distribution in fixed
log-spaced buckets so that

* populating it is one ``np.searchsorted`` + one ``np.bincount`` per
  epoch (never per request),
* two histograms are mergeable (``__add__``) without re-observing — the
  bucket edges are a module-level constant, so every histogram in the
  process is bucket-compatible, and
* p50/p95/p99/p99.9 are extracted by interpolating inside the bracketing
  bucket, clamped to the exact observed min/max; the estimate is within
  one bucket's relative width (``10**(1/24) - 1`` ~ 10%) of the true
  order statistic.

:class:`TierHistogramSet` keeps one histogram per *serving tier* —
``local`` (the issuing unit's own SRAM/DRAM), ``intra`` (another unit in
the same stack), ``inter`` (a unit in another stack), ``extended``
(CXL-attached memory) — filled from a single combined bincount over
``tier * n_buckets + bucket``.
"""

from __future__ import annotations

import numpy as np

# Bucket scheme "log24/0.1ns..10ms": 24 geometric buckets per decade
# across 8 decades, plus an underflow bucket (values below 0.1 ns,
# including exact zeros) and an overflow bucket.  ~10% relative
# resolution, 194 counters per histogram.
BUCKETS_PER_DECADE = 24
MIN_NS = 0.1
MAX_NS = 1e7
_DECADES = 8
EDGES = MIN_NS * np.power(
    10.0, np.arange(_DECADES * BUCKETS_PER_DECADE + 1) / BUCKETS_PER_DECADE
)
N_BUCKETS = len(EDGES) + 1  # underflow + len(EDGES)-1 internal + overflow
BUCKET_SCHEME = "log24/0.1ns-1e7ns"

# Serving tiers, coarse-to-fine distance from the issuing core.
TIERS = ("local", "intra", "inter", "extended")


def bucket_indices(values_ns: np.ndarray) -> np.ndarray:
    """Vectorized value -> bucket index (0 = underflow, N_BUCKETS-1 = overflow)."""
    return np.searchsorted(EDGES, values_ns, side="right")


class LatencyHistogram:
    """One latency distribution over the fixed log-bucket scheme."""

    __slots__ = ("counts", "total_ns", "min_ns", "max_ns")

    def __init__(self, counts: np.ndarray | None = None) -> None:
        self.counts = (
            np.zeros(N_BUCKETS, dtype=np.int64)
            if counts is None
            else np.asarray(counts, dtype=np.int64)
        )
        if len(self.counts) != N_BUCKETS:
            raise ValueError(
                f"expected {N_BUCKETS} buckets, got {len(self.counts)}"
            )
        self.total_ns = 0.0
        self.min_ns = float("inf")
        self.max_ns = 0.0

    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return int(self.counts.sum())

    @property
    def mean_ns(self) -> float:
        n = self.n
        return self.total_ns / n if n else 0.0

    def observe(self, values_ns: np.ndarray) -> None:
        """Fold an array of latencies in (one bincount, not per-value)."""
        values_ns = np.asarray(values_ns, dtype=np.float64)
        if len(values_ns) == 0:
            return
        idx = bucket_indices(values_ns)
        self.counts += np.bincount(idx, minlength=N_BUCKETS)
        self.total_ns += float(values_ns.sum())
        self.min_ns = min(self.min_ns, float(values_ns.min()))
        self.max_ns = max(self.max_ns, float(values_ns.max()))

    # ------------------------------------------------------------------

    def __add__(self, other: "LatencyHistogram") -> "LatencyHistogram":
        merged = LatencyHistogram(self.counts + other.counts)
        merged.total_ns = self.total_ns + other.total_ns
        merged.min_ns = min(self.min_ns, other.min_ns)
        merged.max_ns = max(self.max_ns, other.max_ns)
        return merged

    def __eq__(self, other) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            bool(np.array_equal(self.counts, other.counts))
            and self.total_ns == other.total_ns
            and self.min_ns == other.min_ns
            and self.max_ns == other.max_ns
        )

    # ------------------------------------------------------------------

    def _bucket_bounds(self, idx: int) -> tuple[float, float]:
        """The value range bucket ``idx`` covers, clamped to observations."""
        lo = 0.0 if idx == 0 else float(EDGES[idx - 1])
        hi = float(EDGES[idx]) if idx < len(EDGES) else self.max_ns
        if self.min_ns != float("inf"):
            lo = max(lo, self.min_ns)
        hi = min(hi, self.max_ns) if self.max_ns else hi
        return lo, max(lo, hi)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100), interpolated within its bucket."""
        n = self.n
        if n == 0:
            return 0.0
        if q <= 0:
            return self.min_ns
        if q >= 100:
            return self.max_ns
        target = q / 100.0 * n
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, target, side="left"))
        below = float(cum[idx - 1]) if idx > 0 else 0.0
        in_bucket = float(self.counts[idx])
        lo, hi = self._bucket_bounds(idx)
        frac = (target - below) / in_bucket if in_bucket else 0.0
        return lo + (hi - lo) * min(1.0, max(0.0, frac))

    def percentiles(self) -> dict[str, float]:
        """The headline order statistics (p50/p95/p99/p99.9)."""
        return {
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
        }

    def cdf_points(self) -> list[tuple[float, float]]:
        """(latency upper bound, cumulative fraction) per non-empty prefix,
        for CDF plots; empty histogram yields []."""
        n = self.n
        if n == 0:
            return []
        cum = np.cumsum(self.counts)
        points = []
        for idx in range(N_BUCKETS):
            if self.counts[idx] == 0:
                continue
            _, hi = self._bucket_bounds(idx)
            points.append((hi, float(cum[idx]) / n))
        return points

    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        """Sparse JSON form ([bucket index, count] pairs)."""
        nonzero = np.flatnonzero(self.counts)
        return {
            "scheme": BUCKET_SCHEME,
            "total_ns": self.total_ns,
            "min_ns": self.min_ns if self.min_ns != float("inf") else None,
            "max_ns": self.max_ns,
            "buckets": [[int(i), int(self.counts[i])] for i in nonzero],
        }

    @classmethod
    def from_json(cls, data: dict) -> "LatencyHistogram":
        if data.get("scheme") != BUCKET_SCHEME:
            raise ValueError(
                f"histogram scheme {data.get('scheme')!r} != {BUCKET_SCHEME!r}"
            )
        hist = cls()
        for idx, count in data.get("buckets", []):
            hist.counts[int(idx)] = int(count)
        hist.total_ns = float(data.get("total_ns", 0.0))
        min_ns = data.get("min_ns")
        hist.min_ns = float("inf") if min_ns is None else float(min_ns)
        hist.max_ns = float(data.get("max_ns", 0.0))
        return hist


class TierHistogramSet:
    """Per-serving-tier latency histograms, filled in one bincount.

    The engine classifies each post-L1 request into one of
    :data:`TIERS` and calls :meth:`observe` once per epoch; the combined
    ``tier * N_BUCKETS + bucket`` index lets one ``np.bincount`` cover
    all tiers at once.
    """

    def __init__(self) -> None:
        self.counts = np.zeros((len(TIERS), N_BUCKETS), dtype=np.int64)
        self.total_ns = np.zeros(len(TIERS))
        self.min_ns = np.full(len(TIERS), np.inf)
        self.max_ns = np.zeros(len(TIERS))

    def observe(self, tier: np.ndarray, values_ns: np.ndarray) -> None:
        if len(values_ns) == 0:
            return
        flat = tier * N_BUCKETS + bucket_indices(values_ns)
        self.counts += np.bincount(
            flat, minlength=len(TIERS) * N_BUCKETS
        ).reshape(len(TIERS), N_BUCKETS)
        self.total_ns += np.bincount(
            tier, weights=values_ns, minlength=len(TIERS)
        )
        for t in range(len(TIERS)):
            mask = tier == t
            if mask.any():
                vals = values_ns[mask]
                self.min_ns[t] = min(self.min_ns[t], float(vals.min()))
                self.max_ns[t] = max(self.max_ns[t], float(vals.max()))

    def histograms(self) -> dict[str, LatencyHistogram]:
        """Materialize one :class:`LatencyHistogram` per tier."""
        result: dict[str, LatencyHistogram] = {}
        for t, name in enumerate(TIERS):
            hist = LatencyHistogram(self.counts[t].copy())
            hist.total_ns = float(self.total_ns[t])
            hist.min_ns = float(self.min_ns[t])
            hist.max_ns = float(self.max_ns[t])
            result[name] = hist
        return result

"""Workload construction helpers shared by every generator.

A generator allocates its data structures in a flat physical address
space, annotates each with ``configure_stream`` (exactly the paper's API,
averaging a handful of annotations per workload), emits per-core address
sequences, and interleaves them into a global trace.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.stream import StreamConfig, StreamTable, configure_stream
from repro.sim.params import MB
from repro.workloads.trace import Workload, interleave

PAGE = 4096


@dataclass(frozen=True)
class WorkloadScale:
    """Knobs that size a workload relative to the simulated system.

    ``footprint_bytes`` is the TOTAL across all processes and should
    exceed the system's NDP cache so the extended memory is exercised
    (the paper runs processes "until the total footprint exceeds the NDP
    memory").  ``processes`` independent instances are merged by the
    registry, each with its own address space, streams, and core subset.
    """

    n_cores: int = 16
    accesses_per_core: int = 20_000
    footprint_bytes: int = 16 * MB
    seed: int = 1
    processes: int = 1

    def per_process(self, index: int) -> "WorkloadScale":
        """The scale of one process instance."""
        if self.processes <= 1:
            return self
        return self.scaled(
            processes=1,
            n_cores=max(1, self.n_cores // self.processes),
            footprint_bytes=max(4096, self.footprint_bytes // self.processes),
            accesses_per_core=self.accesses_per_core,
            seed=self.seed + 13 * index,
        )

    def scaled(self, **overrides) -> "WorkloadScale":
        return replace(self, **overrides)


SMALL = WorkloadScale(
    n_cores=16, accesses_per_core=20_000, footprint_bytes=3 * MB, processes=4
)
TINY = WorkloadScale(
    n_cores=4, accesses_per_core=3_000, footprint_bytes=128 * 1024
)
PAPER = WorkloadScale(
    n_cores=128,
    accesses_per_core=1_000_000,
    footprint_bytes=32 * 1024 * MB,
    processes=8,
)


class StreamHandle:
    """A configured stream plus address helpers for trace generation."""

    def __init__(self, config: StreamConfig) -> None:
        self.config = config

    @property
    def sid(self) -> int:
        return self.config.sid

    @property
    def n_elements(self) -> int:
        return self.config.n_elements

    def addr(self, storage_index: np.ndarray) -> np.ndarray:
        """Byte address of elements by *storage* index."""
        idx = np.asarray(storage_index, dtype=np.int64)
        if np.any((idx < 0) | (idx >= self.config.n_elements)):
            raise ValueError(
                f"index outside stream {self.config.name} "
                f"(0..{self.config.n_elements - 1})"
            )
        return self.config.base + idx * self.config.elem_size


class WorkloadBuilder:
    """Accumulates streams and per-core access chunks into a Workload."""

    def __init__(self, name: str, scale: WorkloadScale) -> None:
        self.name = name
        self.scale = scale
        self.streams = StreamTable()
        self._next_base = PAGE
        self._chunks: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(scale.n_cores)
        ]
        self._emitted = [0] * scale.n_cores
        self.phases: list[tuple[int, str]] = []

    def add_stream(
        self,
        name: str,
        kind: str,
        n_elements: int,
        elem_size: int,
        dims: tuple[int, ...] = (),
        order: int = 0,
        read_only: bool = True,
    ) -> StreamHandle:
        if n_elements <= 0:
            raise ValueError(f"stream {name} needs at least one element")
        size = n_elements * elem_size
        config = configure_stream(
            self.streams,
            kind,
            base=self._next_base,
            size=size,
            elem_size=elem_size,
            dims=dims,
            order=order,
            read_only=read_only,
            name=name,
        )
        self._next_base += (size + PAGE - 1) // PAGE * PAGE + PAGE
        return StreamHandle(config)

    def emit(self, core: int, addrs: np.ndarray, write: bool | np.ndarray = False) -> None:
        """Append an address chunk to a core's sequence.

        Chunks beyond ~1.2x the per-core access budget are dropped — the
        final build truncates to the budget anyway, so generating more
        would only waste memory.
        """
        if self.emitted(core) >= self.scale.accesses_per_core * 1.2:
            return
        addrs = np.asarray(addrs, dtype=np.int64)
        if isinstance(write, (bool, np.bool_)):
            writes = np.full(len(addrs), bool(write))
        else:
            writes = np.asarray(write, dtype=bool)
            if len(writes) != len(addrs):
                raise ValueError("write mask length mismatch")
        self._chunks[core].append((addrs, writes))
        self._emitted[core] += len(addrs)

    def emitted(self, core: int) -> int:
        return self._emitted[core]

    def full(self) -> bool:
        """True when every core has reached its access budget."""
        return all(
            count >= self.scale.accesses_per_core for count in self._emitted
        )

    def mark_phase(self, name: str) -> None:
        """Record a phase boundary at the current trace position."""
        done = sum(len(a) for a, _ in self._chunks[0])
        self.phases.append((done, name))

    def build(
        self, compute_cycles_per_access: float = 2.0, description: str = ""
    ) -> Workload:
        per_core = []
        limit = self.scale.accesses_per_core
        for chunks in self._chunks:
            if chunks:
                addrs = np.concatenate([a for a, _ in chunks])[:limit]
                writes = np.concatenate([w for _, w in chunks])[:limit]
            else:
                addrs = np.empty(0, dtype=np.int64)
                writes = np.empty(0, dtype=bool)
            per_core.append((addrs, writes))
        trace = interleave(per_core, seed=self.scale.seed)
        return Workload(
            name=self.name,
            streams=self.streams,
            trace=trace,
            compute_cycles_per_access=compute_cycles_per_access,
            description=description,
            phases=self.phases,
        )


def interleave_pairs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two equal-length address arrays as a1 b1 a2 b2 ...

    Models loops that alternate between two structures (e.g. reading an
    edge id and then gathering the rank it points to).
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape:
        raise ValueError("interleave_pairs needs equal-length arrays")
    out = np.empty(2 * len(a), dtype=np.int64)
    out[0::2] = a
    out[1::2] = b
    return out


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Vectorised ``concatenate([arange(s, s+l) for s, l in zip(...)])``.

    The workhorse for CSR traversals: given per-vertex edge-list starts
    and degrees, produce all edge ids without a Python-level loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must have the same shape")
    if np.any(lengths < 0):
        raise ValueError("lengths cannot be negative")
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    offsets_in_concat = np.arange(total) - np.repeat(ends - lengths, lengths)
    return np.repeat(starts, lengths) + offsets_in_concat


def partition_range(n: int, parts: int, index: int) -> tuple[int, int]:
    """Contiguous partition [start, stop) of range(n) for worker ``index``."""
    if not 0 <= index < parts:
        raise ValueError("partition index out of range")
    base, extra = divmod(n, parts)
    start = index * base + min(index, extra)
    stop = start + base + (1 if index < extra else 0)
    return start, stop
